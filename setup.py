"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e .`` works in offline environments whose pip/setuptools
combination lacks the ``wheel`` package required by the PEP 517 editable
install path.
"""

from setuptools import setup

setup()
