"""Benchmark regenerating Figure 3 of the paper.

Runs the corresponding experiment module end to end (functional simulation at
the ``tiny`` scale plus cost-model extrapolation to the paper's workload) and
reports its wall-clock cost via pytest-benchmark.  The printed result table is
the reproduction of the paper's Figure 3.
"""

import pytest

from repro.bench.experiments import fig03_key_modes as experiment


@pytest.mark.benchmark(group="fig3a")
def test_fig3a_key_representations(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(scale="tiny"), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.series, "experiment produced no series"
    print()
    print(result.to_text())

@pytest.mark.benchmark(group="fig3b")
def test_fig3b_key_stride(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run_fig3b(scale="tiny"), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.series, "experiment produced no series"
    print()
    print(result.to_text())
