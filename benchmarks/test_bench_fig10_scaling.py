"""Benchmark regenerating Figure 10 of the paper.

Runs the corresponding experiment module end to end (functional simulation at
the ``tiny`` scale plus cost-model extrapolation to the paper's workload) and
reports its wall-clock cost via pytest-benchmark.  The printed result table is
the reproduction of the paper's Figure 10.
"""

import pytest

from repro.bench.experiments import fig10_scaling as experiment


@pytest.mark.benchmark(group="fig10")
def test_fig10a_lookup_scaling(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(scale="tiny"), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.series, "experiment produced no series"
    print()
    print(result.to_text())

@pytest.mark.benchmark(group="fig10")
def test_fig10b_key_scaling(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run_fig10b(scale="tiny"), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.series, "experiment produced no series"
    print()
    print(result.to_text())

@pytest.mark.benchmark(group="fig10")
def test_fig10c_build_time(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run_fig10c(scale="tiny"), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.series, "experiment produced no series"
    print()
    print(result.to_text())

@pytest.mark.benchmark(group="fig10")
def test_fig10d_sharded_build_wallclock(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run_fig10d(scale="tiny"), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.series, "experiment produced no series"
    print()
    print(result.to_text())
