"""Wall-clock micro-benchmarks of the engine hot paths.

Unlike the figure/table benchmarks (which regenerate paper results through
the cost model), these time the *functional* engine itself — ``build_bvh``,
``TraversalEngine.trace`` and ``refit_accel`` — and append a small trajectory
entry to ``BENCH_engine.json`` so speedups and regressions stay visible
across PRs.  The heavyweight sweep against the golden reference lives in
``benchmarks/perf_smoke.py`` (``make bench-smoke``); this file keeps a fast
always-on signal in the test suite.
"""

import numpy as np
import pytest

from perf_smoke import append_artifact, bench_build, bench_refit, bench_trace

#: Small enough to keep the benchmark suite fast, big enough to be
#: interpreter-dominated in the reference implementation.
LOG2_KEYS = 14


@pytest.mark.benchmark(group="engine")
def test_engine_build_wallclock(benchmark):
    entry = benchmark.pedantic(
        lambda: bench_build(LOG2_KEYS, "lbvh", compare=False),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert entry["new_seconds"] > 0
    print()
    print(f"build lbvh 2^{LOG2_KEYS}: {entry['new_seconds']:.3f}s")


@pytest.mark.benchmark(group="engine")
def test_engine_trace_wallclock(benchmark):
    entry = benchmark.pedantic(
        lambda: bench_trace(LOG2_KEYS, LOG2_KEYS, compare=False),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert entry["new_seconds"] > 0
    print()
    print(f"trace 2^{LOG2_KEYS} rays: {entry['new_seconds']:.3f}s")


@pytest.mark.benchmark(group="engine")
def test_engine_refit_wallclock(benchmark):
    entry = benchmark.pedantic(
        lambda: bench_refit(LOG2_KEYS, compare=False),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert entry["new_seconds"] > 0
    print()
    print(f"refit 2^{LOG2_KEYS}: {entry['new_seconds']:.3f}s")


@pytest.mark.benchmark(group="engine")
def test_engine_speedup_vs_reference_and_artifact(benchmark, tmp_path):
    """One compared measurement per hot path, recorded to the artifact.

    Uses the golden-reference comparisons (which also assert equivalence) at
    the small size and checks the reference is not *faster* — the vectorised
    engine must never regress below the seed loops.
    """
    def measure():
        return [
            bench_build(LOG2_KEYS, "lbvh"),
            bench_trace(LOG2_KEYS, LOG2_KEYS),
            bench_refit(LOG2_KEYS),
        ]

    entries = benchmark.pedantic(measure, rounds=1, iterations=1, warmup_rounds=0)
    run = append_artifact(entries, tmp_path / "BENCH_engine.json")
    assert run["entries"] == entries
    print()
    for entry in entries:
        print(
            f"{entry['path']:<6} 2^{LOG2_KEYS}: new {entry['new_seconds']:.3f}s "
            f"ref {entry['ref_seconds']:.3f}s speedup {entry['speedup']:.2f}x"
        )
    speedups = np.array([entry["speedup"] for entry in entries])
    assert (speedups > 1.0).all(), f"engine slower than the seed loops: {speedups}"
