"""Benchmark regenerating Figure 15 of the paper.

Runs the corresponding experiment module end to end (functional simulation at
the ``tiny`` scale plus cost-model extrapolation to the paper's workload) and
reports its wall-clock cost via pytest-benchmark.  The printed result table is
the reproduction of the paper's Figure 15.
"""

import pytest

from repro.bench.experiments import fig15_keysize as experiment


@pytest.mark.benchmark(group="fig15")
def test_fig15a_key_size_lookup(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(scale="tiny", panel="lookup"), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.series, "experiment produced no series"
    print()
    print(result.to_text())

@pytest.mark.benchmark(group="fig15")
def test_fig15b_key_size_memory(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(scale="tiny", panel="memory"), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.series, "experiment produced no series"
    print()
    print(result.to_text())
