"""Benchmark regenerating Figure 7 of the paper.

Runs the corresponding experiment module end to end (functional simulation at
the ``tiny`` scale plus cost-model extrapolation to the paper's workload) and
reports its wall-clock cost via pytest-benchmark.  The printed result table is
the reproduction of the paper's Figure 7.
"""

import pytest

from repro.bench.experiments import fig07_primitives as experiment


@pytest.mark.benchmark(group="fig7")
def test_fig7a_primitive_lookup(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(scale="tiny", panel="lookup"), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.series, "experiment produced no series"
    print()
    print(result.to_text())

@pytest.mark.benchmark(group="fig7")
def test_fig7b_primitive_build(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(scale="tiny", panel="build"), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.series, "experiment produced no series"
    print()
    print(result.to_text())

@pytest.mark.benchmark(group="fig7")
def test_fig7c_primitive_memory(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(scale="tiny", panel="memory"), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.series, "experiment produced no series"
    print()
    print(result.to_text())
