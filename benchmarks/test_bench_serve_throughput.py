"""Benchmark of the serving-layer throughput experiment.

Replays a Zipf-skewed open-loop point-lookup stream through the
micro-batching :class:`repro.serve.service.IndexService` at several
``max_batch`` settings (1 = one-query-per-launch serving) and reports the
measured throughput and p95 latency, with and without the result cache.
"""

import pytest

from repro.bench.experiments import serve_throughput as experiment


@pytest.mark.benchmark(group="serve")
def test_serve_throughput(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(scale="tiny"), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.series, "experiment produced no series"
    solo, *rest = result.series[0].y
    assert max(rest) > solo, "micro-batching should beat one-query-per-launch"
    print()
    print(result.to_text())
