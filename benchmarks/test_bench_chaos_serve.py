"""Benchmark of the fault-injection serving experiment.

Replays a deadline-annotated Zipf point-lookup stream through
:class:`repro.serve.service.IndexService` at increasing per-site fault
probabilities (0 = clean baseline) and reports goodput, error rate, p99
latency and forced launch retries per intensity.
"""

import pytest

from repro.bench.experiments import chaos_serve as experiment


@pytest.mark.benchmark(group="serve")
def test_chaos_serve(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(scale="tiny"), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.series, "experiment produced no series"
    errors = result.series_by_label("error rate").y
    goodput = result.series_by_label("goodput").y
    assert errors[0] == 0.0, "the clean baseline must be error-free"
    assert errors[-1] > 0.0, "top fault intensity should surface explicit errors"
    assert goodput[-1] < goodput[0], "faults should burn goodput"
    print()
    print(result.to_text())
