"""Benchmark regenerating Figure 18 / Table 8 of the paper.

Runs the corresponding experiment module end to end (functional simulation at
the ``tiny`` scale plus cost-model extrapolation to the paper's workload) and
reports its wall-clock cost via pytest-benchmark.  The printed result table is
the reproduction of the paper's Figure 18 / Table 8.
"""

import pytest

from repro.bench.experiments import fig18_hardware as experiment


@pytest.mark.benchmark(group="fig18")
def test_fig18_hardware_generations(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(scale="tiny"), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.series, "experiment produced no series"
    print()
    print(result.to_text())
