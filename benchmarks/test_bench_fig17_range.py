"""Benchmark regenerating Figure 17 of the paper.

Runs the corresponding experiment module end to end (functional simulation at
the ``tiny`` scale plus cost-model extrapolation to the paper's workload) and
reports its wall-clock cost via pytest-benchmark.  The printed result table is
the reproduction of the paper's Figure 17.
"""

import pytest

from repro.bench.experiments import fig17_range as experiment


@pytest.mark.benchmark(group="fig17")
def test_fig17_range_lookups(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(scale="tiny"), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.series, "experiment produced no series"
    print()
    print(result.to_text())
