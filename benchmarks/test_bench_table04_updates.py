"""Benchmark regenerating Table 4 of the paper.

Runs the corresponding experiment module end to end (functional simulation at
the ``tiny`` scale plus cost-model extrapolation to the paper's workload) and
reports its wall-clock cost via pytest-benchmark.  The printed result table is
the reproduction of the paper's Table 4.
"""

import pytest

from repro.bench.experiments import table04_updates as experiment


@pytest.mark.benchmark(group="table4")
def test_table4_update_strategies(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(scale="tiny"), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.series, "experiment produced no series"
    print()
    print(result.to_text())
