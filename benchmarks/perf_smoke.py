"""Wall-clock perf smoke for the level-synchronous engine.

Measures the engine hot paths — ``build_bvh``, ``TraversalEngine.trace``,
``refit_accel`` and the per-pair primitive intersectors — against the golden
reference implementations preserved in :mod:`repro.rtx._reference`, verifies
observable equivalence on the way (identical topology, bit-identical masks
and counters), and appends the results to a ``BENCH_engine.json`` trajectory
artifact so future PRs can track the engine's speed over time.  Three
further scenarios have no seed counterpart and are measured against the
engine's own default configuration: the early-exit any-hit point-lookup
trace, the limit-pushdown ``first_k`` range-lookup trace, and a paper-scale
2^20-ray batch streamed under a ``max_frontier`` bound.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py               # full smoke
    PYTHONPATH=src python benchmarks/perf_smoke.py --quick       # small sizes
    PYTHONPATH=src python benchmarks/perf_smoke.py --strict      # enforce targets
    PYTHONPATH=src python benchmarks/perf_smoke.py --check-only  # correctness only (CI)

A sharded-build scenario measures the Morton-prefix forest
(:mod:`repro.rtx.forest`) at 2^20 keys against the serial single-tree build:
one entry per worker count, each verifying that the stitched forest tree is
bit-identical to the single-tree arrays.  Because the worker pool is a host
multiprocessing pool, every recorded entry carries the effective pool size,
the shard count and the machine's CPU count, keeping BENCH trajectories
comparable across machines — the parallel-speedup target is only *enforced*
on hosts with enough CPUs to run the pool concurrently (a single-CPU host
still records the scenario).

Targets (checked, reported, and enforced under ``--strict``):

* ``build_bvh`` (lbvh, 2^18 keys) at least 5x faster than the reference,
* ``trace`` (2^16 point rays) at least 1.5x faster than the reference,
* triangle ``intersect_pairs`` (2^20 range-ray pairs) at least 2x faster
  than the reference row-gather intersector,
* ``first_k`` limited (k=8) range lookups (2^16 rays) at least 2x faster
  than the same batch traced in all-hits mode,
* the sharded forest build (2^20 keys, 4 workers) at least 2x faster than
  the serial single-tree build — enforced on hosts with >= 4 CPUs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.rtx._reference import (
    reference_aabb_intersect_pairs,
    reference_build_bvh,
    reference_refit_bounds,
    reference_sphere_intersect_pairs,
    reference_trace,
    reference_triangle_intersect_pairs,
)
from repro.rtx.build_input import build_input_for_points
from repro.rtx.bvh import BvhBuildOptions, build_bvh, bvh_arrays_diff
from repro.rtx.forest import build_forest
from repro.rtx.geometry import RayBatch, TriangleBuffer, make_triangle_vertices
from repro.rtx.refit import refit_accel
from repro.rtx.traversal import TraversalEngine

DEFAULT_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

BUILD_SPEEDUP_TARGET = 5.0
TRACE_SPEEDUP_TARGET = 1.5
INTERSECT_SPEEDUP_TARGET = 2.0
FIRSTK_SPEEDUP_TARGET = 2.0
FOREST_BUILD_SPEEDUP_TARGET = 2.0
#: CPUs the host must expose before the parallel forest-build target is
#: enforced (a pool cannot beat the serial build without real concurrency).
FOREST_TARGET_MIN_CPUS = 4


def _time(fn, repeats: int = 1) -> float:
    """Best-of-N wall-clock seconds for ``fn()``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _line_points(n: int) -> np.ndarray:
    return np.column_stack([np.arange(n), np.zeros(n), np.zeros(n)])


def bench_build(log2_keys: int, builder: str = "lbvh", compare: bool = True) -> dict:
    """Time a BVH build at ``2**log2_keys`` keys, optionally vs the reference."""
    n = 2**log2_keys
    rng = np.random.default_rng(log2_keys)
    points = rng.uniform(0, 1e6, size=(n, 3))
    buffer = TriangleBuffer(make_triangle_vertices(points))
    options = BvhBuildOptions(builder=builder)

    new_seconds = _time(lambda: build_bvh(buffer, options), repeats=2)
    entry = {
        "path": "build",
        "builder": builder,
        "log2_keys": log2_keys,
        "new_seconds": new_seconds,
    }
    if compare:
        built = build_bvh(buffer, options)
        ref_seconds = _time(lambda: reference_build_bvh(buffer, options))
        golden = reference_build_bvh(buffer, options)
        assert np.array_equal(built.left, golden.left), "topology diverged"
        assert np.array_equal(built.prim_indices, golden.prim_indices)
        assert np.array_equal(built.node_mins, golden.node_mins)
        entry["ref_seconds"] = ref_seconds
        entry["speedup"] = ref_seconds / new_seconds
    return entry


def bench_build_forest(
    log2_keys: int, shard_bits: int, workers_list: tuple[int, ...], compare: bool = True
) -> list[dict]:
    """Time sharded forest builds against the serial single-tree build.

    One entry per worker count, all sharing a single timed single-tree
    comparison partner (``ref_seconds``) — our own vectorised ``build_bvh``,
    not the seed reference — so the speedup isolates what sharding plus the
    worker pool buys.  Every stitched tree is verified bit-identical to the
    single-tree arrays on the way.
    """
    n = 2**log2_keys
    rng = np.random.default_rng(log2_keys)
    points = rng.uniform(0, 1e6, size=(n, 3))
    buffer = TriangleBuffer(make_triangle_vertices(points))

    single = None
    ref_seconds = None
    if compare:
        single = build_bvh(buffer, BvhBuildOptions())
        ref_seconds = _time(lambda: build_bvh(buffer, BvhBuildOptions()), repeats=2)

    entries = []
    for workers in workers_list:
        options = BvhBuildOptions(shard_bits=shard_bits, workers=workers)
        forest = build_forest(buffer, options)
        new_seconds = _time(lambda: build_forest(buffer, options), repeats=2)
        entry = {
            "path": "build_forest",
            "log2_keys": log2_keys,
            "shard_bits": shard_bits,
            "workers_requested": workers,
            "workers": forest.workers_used,
            "shards": forest.non_empty_shards,
            "delegated_shards": forest.delegated_shards,
            "cpu_count": os.cpu_count() or 1,
            "new_seconds": new_seconds,
        }
        if compare:
            entry["ref_seconds"] = ref_seconds
            entry["speedup"] = ref_seconds / new_seconds
            diff = bvh_arrays_diff(forest.bvh, single)
            assert diff is None, f"forest diverged from the single tree on {diff!r}"
        entries.append(entry)
    return entries


def bench_trace(log2_keys: int, log2_rays: int, compare: bool = True) -> dict:
    """Time point-lookup tracing of ``2**log2_rays`` rays, vs the reference."""
    n = 2**log2_keys
    rng = np.random.default_rng(log2_rays)
    buffer = build_input_for_points("triangle", _line_points(n)).primitive_buffer()
    bvh = build_bvh(buffer)
    xs = rng.uniform(0, n, size=2**log2_rays)
    rays = RayBatch(
        origins=np.column_stack([xs, np.zeros_like(xs), np.full_like(xs, -0.5)]),
        directions=np.tile([0.0, 0.0, 1.0], (xs.shape[0], 1)),
        tmin=0.0,
        tmax=1.0,
    )
    engine = TraversalEngine(bvh, buffer)
    engine.trace(rays)  # warm-up (also builds the float64 vertex cache)

    new_seconds = _time(lambda: engine.trace(rays), repeats=2)
    entry = {
        "path": "trace",
        "log2_keys": log2_keys,
        "log2_rays": log2_rays,
        "new_seconds": new_seconds,
    }
    if compare:
        engine.reset_counters()
        hits = engine.trace(rays)
        ref_seconds = _time(lambda: reference_trace(bvh, buffer, rays))
        golden_hits, golden_counters = reference_trace(bvh, buffer, rays)
        assert engine.counters.as_dict() == golden_counters.as_dict(), (
            "traversal counters diverged"
        )
        assert np.array_equal(hits.prim_indices, golden_hits.prim_indices)
        entry["ref_seconds"] = ref_seconds
        entry["speedup"] = ref_seconds / new_seconds
    return entry


def bench_refit(log2_keys: int, compare: bool = True) -> dict:
    """Time a refit at ``2**log2_keys`` keys, vs the reference sweep."""
    n = 2**log2_keys
    rng = np.random.default_rng(log2_keys + 100)
    points = rng.uniform(0, 1e5, size=(n, 3))
    buffer = TriangleBuffer(make_triangle_vertices(points))
    bvh = build_bvh(buffer, BvhBuildOptions(allow_update=True))
    moved = TriangleBuffer(
        make_triangle_vertices(points + rng.uniform(-1, 1, size=(n, 3)))
    )

    new_seconds = _time(lambda: refit_accel(bvh, moved), repeats=2)
    entry = {"path": "refit", "log2_keys": log2_keys, "new_seconds": new_seconds}
    if compare:
        golden_mins, golden_maxs = reference_refit_bounds(bvh, moved)
        ref_seconds = _time(lambda: reference_refit_bounds(bvh, moved))
        refit_accel(bvh, moved)
        assert np.array_equal(bvh.node_mins, golden_mins.astype(np.float32))
        assert np.array_equal(bvh.node_maxs, golden_maxs.astype(np.float32))
        entry["ref_seconds"] = ref_seconds
        entry["speedup"] = ref_seconds / new_seconds
    return entry


def _range_pair_inputs(kind: str, log2_keys: int, log2_pairs: int):
    """Range-ray (ray, primitive) pair stream over a line of keys.

    The rays run along +x with a span of several keys — the shape of the
    paper's range lookups, where the Möller–Trumbore inner loop dominates —
    and each pair tests the ray against a primitive near its span so the hit
    branches are exercised.
    """
    n = 2**log2_keys
    m = 2**log2_pairs
    rng = np.random.default_rng(log2_pairs + 7)
    buffer = build_input_for_points(kind, _line_points(n)).primitive_buffer()
    xs = rng.uniform(0, n - 32, size=m)
    origins = np.column_stack([xs, np.zeros(m), np.zeros(m)]).astype(np.float32)
    directions = np.tile(np.float32([1.0, 0.0, 0.0]), (m, 1))
    tmins = np.zeros(m, dtype=np.float32)
    tmaxs = rng.uniform(1, 25, size=m).astype(np.float32)
    prim = (xs.astype(np.int64) + rng.integers(0, 25, size=m)) % n
    return buffer, origins, directions, tmins, tmaxs, prim


def bench_intersect_pairs(kind: str, log2_pairs: int, compare: bool = True) -> dict:
    """Time per-pair intersection throughput of the SoA packs vs the seed's
    row-gather intersectors, on a range-ray pair stream."""
    buffer, o, d, tmins, tmaxs, prim = _range_pair_inputs(kind, 16, log2_pairs)
    buffer.intersection_pack()  # warm the cache (the seed cached its float64 copy too)

    new_seconds = _time(lambda: buffer.intersect_pairs(o, d, tmins, tmaxs, prim), repeats=3)
    entry = {
        "path": "intersect",
        "kind": kind,
        "log2_pairs": log2_pairs,
        "new_seconds": new_seconds,
    }
    if compare:
        if kind == "triangle":
            v64 = buffer.vertices.astype(np.float64)
            ref = lambda: reference_triangle_intersect_pairs(v64, o, d, tmins, tmaxs, prim)
        elif kind == "sphere":
            ref = lambda: reference_sphere_intersect_pairs(
                buffer.centers, buffer.radius, o, d, tmins, tmaxs, prim
            )
        else:
            ref = lambda: reference_aabb_intersect_pairs(
                buffer.mins, buffer.maxs, o, d, tmins, tmaxs, prim
            )
        golden = ref()
        mask = buffer.intersect_pairs(o, d, tmins, tmaxs, prim)
        assert mask.any(), "pair workload must contain hits"
        assert np.array_equal(mask, golden), f"{kind} intersection masks diverged"
        entry["ref_seconds"] = _time(ref, repeats=3)
        entry["speedup"] = entry["ref_seconds"] / new_seconds
    return entry


def bench_trace_anyhit(log2_keys: int, log2_rays: int, compare: bool = True) -> dict:
    """Time any-hit point lookups against the default all-hits mode.

    A skewed key column (a deep dense cluster at low x plus a sparse tail)
    probed with from-zero parallel point rays for the sparse keys: every ray
    geometrically overlaps the whole cluster, but its own key sits in a
    shallow leaf, so terminating at the first hit (the hardware any-hit
    behaviour) skips the entire cluster descent — the situation the paper's
    point-lookup numbers depend on.
    """
    rng = np.random.default_rng(log2_rays + 13)
    n = 2**log2_keys
    n_cluster = int(n * 0.9)
    cluster = np.arange(n_cluster, dtype=np.float64)
    sparse = n_cluster + np.cumsum(
        rng.integers(8, 16, size=n - n_cluster)
    ).astype(np.float64)
    xs = np.concatenate([cluster, sparse])
    points = np.column_stack([xs, np.zeros_like(xs), np.zeros_like(xs)])
    buffer = build_input_for_points("triangle", points).primitive_buffer()
    bvh = build_bvh(buffer)
    engine = TraversalEngine(bvh, buffer)
    k = sparse[rng.integers(0, sparse.shape[0], size=2**log2_rays)]
    m = k.shape[0]
    rays = RayBatch(
        origins=np.zeros((m, 3)),
        directions=np.tile([1.0, 0.0, 0.0], (m, 1)),
        tmin=k - 0.5,
        tmax=k + 0.5,
    )
    engine.trace(rays, mode="any_hit")  # warm-up

    new_seconds = _time(lambda: engine.trace(rays, mode="any_hit"), repeats=2)
    entry = {
        "path": "trace_anyhit",
        "log2_keys": log2_keys,
        "log2_rays": log2_rays,
        "new_seconds": new_seconds,
    }
    if compare:
        # The all-hits side is the expensive one; a single repeat keeps the
        # smoke's wall-clock in check.
        entry["ref_seconds"] = _time(lambda: engine.trace(rays), repeats=1)
        entry["speedup"] = entry["ref_seconds"] / new_seconds
        engine.reset_counters()
        any_hits = engine.trace(rays, mode="any_hit")
        any_counters = engine.counters
        engine.reset_counters()
        all_hits = engine.trace(rays)
        all_counters = engine.counters
        assert any_counters.node_visits < all_counters.node_visits
        assert any_counters.prim_tests < all_counters.prim_tests
        assert any_counters.rays_with_hits == all_counters.rays_with_hits
        assert np.unique(any_hits.ray_indices).size == any_hits.count
        assert all_hits.count >= any_hits.count
        entry["node_visits_all"] = all_counters.node_visits
        entry["node_visits_anyhit"] = any_counters.node_visits
        entry["prim_tests_all"] = all_counters.prim_tests
        entry["prim_tests_anyhit"] = any_counters.prim_tests
    return entry


def bench_range_firstk(
    log2_keys: int, log2_rays: int, limit: int = 8, span: int = 32, compare: bool = True
) -> dict:
    """Paper-scale limited range lookups: ``first_k`` vs the all-hits trace.

    The key column is a deep dense cluster at low x plus a sparse tail, and
    the lookups are from-zero range rays over ``span`` keys of the tail —
    the layout of Table 3's from-zero measurements, where every ray
    geometrically overlaps the whole cluster (node culling ignores tmin) and
    the all-hits trace pays the full cluster descent.  With ``limit`` hits
    per lookup the budget is spent in the shallow tail leaves, the rays
    compact out of the frontier, and the deep cluster rounds never run —
    node visits must come out strictly below the all-hits run.  The reported
    rows are pinned to the stable top-``limit`` cut of the all-hits stream.
    """
    rng = np.random.default_rng(log2_rays + 29)
    n = 2**log2_keys
    n_cluster = int(n * 0.9)
    cluster = np.arange(n_cluster, dtype=np.float64)
    sparse = n_cluster + np.cumsum(
        rng.integers(8, 16, size=n - n_cluster)
    ).astype(np.float64)
    xs = np.concatenate([cluster, sparse])
    points = np.column_stack([xs, np.zeros_like(xs), np.zeros_like(xs)])
    buffer = build_input_for_points("triangle", points).primitive_buffer()
    bvh = build_bvh(buffer)
    engine = TraversalEngine(bvh, buffer)
    starts = rng.integers(0, sparse.shape[0] - span, size=2**log2_rays)
    lo = sparse[starts]
    hi = sparse[starts + span - 1]
    rays = RayBatch(
        origins=np.zeros((lo.shape[0], 3)),
        directions=np.tile([1.0, 0.0, 0.0], (lo.shape[0], 1)),
        tmin=lo - 0.5,
        tmax=hi + 0.5,
    )
    engine.trace(rays, mode="first_k", limit=limit)  # warm-up

    new_seconds = _time(lambda: engine.trace(rays, mode="first_k", limit=limit), repeats=2)
    entry = {
        "path": "trace_firstk",
        "log2_keys": log2_keys,
        "log2_rays": log2_rays,
        "limit": limit,
        "span": span,
        "new_seconds": new_seconds,
    }
    if compare:
        # The all-hits side descends the whole cluster; one repeat keeps the
        # smoke's wall-clock in check.
        entry["ref_seconds"] = _time(lambda: engine.trace(rays), repeats=1)
        entry["speedup"] = entry["ref_seconds"] / new_seconds
        engine.reset_counters()
        fk_hits = engine.trace(rays, mode="first_k", limit=limit)
        fk_counters = engine.counters
        engine.reset_counters()
        all_hits = engine.trace(rays)
        all_counters = engine.counters
        assert fk_counters.node_visits < all_counters.node_visits
        assert fk_counters.prim_tests < all_counters.prim_tests
        assert fk_counters.rays_with_hits == all_counters.rays_with_hits
        # The reported rows must be the stable top-k cut of the all-hits
        # stream: the first `limit` hits of every lookup, in stream order.
        taken = np.zeros(len(rays), dtype=np.int64)
        keep = np.empty(all_hits.count, dtype=bool)
        for i, lookup in enumerate(all_hits.lookup_ids.tolist()):
            keep[i] = taken[lookup] < limit
            taken[lookup] += keep[i]
        assert np.array_equal(fk_hits.ray_indices, all_hits.ray_indices[keep])
        assert np.array_equal(fk_hits.prim_indices, all_hits.prim_indices[keep])
        entry["node_visits_all"] = all_counters.node_visits
        entry["node_visits_firstk"] = fk_counters.node_visits
        entry["prim_tests_all"] = all_counters.prim_tests
        entry["prim_tests_firstk"] = fk_counters.prim_tests
    return entry


def bench_frontier(log2_keys: int, log2_rays: int, max_frontier: int, compare: bool = True) -> dict:
    """Paper-scale ray batch traced under a ``max_frontier`` memory bound.

    Records the wall-clock of the bounded-streaming schedule next to the
    unbounded one, plus the logical peak frontier the counters report — the
    working set ``max_frontier`` caps.  Hit records and every counter are
    identical for both settings (checked here on the hit/counter digests).
    """
    n = 2**log2_keys
    rng = np.random.default_rng(log2_rays + 3)
    buffer = build_input_for_points("triangle", _line_points(n)).primitive_buffer()
    bvh = build_bvh(buffer)
    xs = rng.uniform(0, n, size=2**log2_rays)
    rays = RayBatch(
        origins=np.column_stack([xs, np.zeros_like(xs), np.full_like(xs, -0.5)]),
        directions=np.tile([0.0, 0.0, 1.0], (xs.shape[0], 1)),
        tmin=0.0,
        tmax=1.0,
    )
    bounded = TraversalEngine(bvh, buffer, max_frontier=max_frontier)
    bounded.trace(rays)  # warm-up

    bounded_seconds = _time(lambda: bounded.trace(rays), repeats=2)
    bounded.reset_counters()
    bounded_hits = bounded.trace(rays)
    entry = {
        "path": "trace_frontier",
        "log2_keys": log2_keys,
        "log2_rays": log2_rays,
        "max_frontier": max_frontier,
        "new_seconds": bounded_seconds,
        "logical_peak_frontier": bounded.counters.max_frontier_size,
    }
    if compare:
        unbounded = TraversalEngine(bvh, buffer)
        entry["ref_seconds"] = _time(lambda: unbounded.trace(rays), repeats=2)
        entry["speedup"] = entry["ref_seconds"] / bounded_seconds
        unbounded.reset_counters()
        unbounded_hits = unbounded.trace(rays)
        assert np.array_equal(bounded_hits.prim_indices, unbounded_hits.prim_indices)
        assert bounded.counters.as_dict() == unbounded.counters.as_dict(), (
            "max_frontier changed observable behaviour"
        )
    return entry


def run_smoke(quick: bool = False) -> list[dict]:
    """Run the smoke sweep (2^14–2^18 keys) and return the result entries."""
    entries = []
    build_sizes = [14] if quick else [14, 16, 18]
    for log2_keys in build_sizes:
        entries.append(bench_build(log2_keys, "lbvh"))
    if not quick:
        # The reference SAH/median builders are too slow for the big sizes;
        # time them where a comparison stays cheap.
        entries.append(bench_build(14, "median"))
        entries.append(bench_build(14, "sah"))
    entries.append(bench_trace(14 if quick else 16, 14 if quick else 16))
    entries.append(bench_refit(14 if quick else 16))
    log2_pairs = 16 if quick else 20
    for kind in ("triangle", "sphere", "aabb"):
        entries.append(bench_intersect_pairs(kind, log2_pairs))
    entries.append(bench_trace_anyhit(10, 12 if quick else 16))
    # Paper-scale limited (LIMIT 8) range lookups in first_k mode.
    entries.append(bench_range_firstk(10, 12 if quick else 16))
    # Paper-scale ray batch (2^20 rays) streamed under a max_frontier bound.
    if quick:
        entries.append(bench_frontier(12, 14, max_frontier=2**12))
    else:
        entries.append(bench_frontier(16, 20, max_frontier=2**18))
    # Sharded forest build vs the serial single-tree build (one entry per
    # worker count; the pool only helps on multi-CPU hosts, which the
    # recorded workers/cpu_count fields make explicit).
    if quick:
        entries.extend(bench_build_forest(16, shard_bits=4, workers_list=(1, 2)))
    else:
        entries.extend(bench_build_forest(20, shard_bits=6, workers_list=(1, 4)))
    return entries


def append_artifact(entries: list[dict], path: Path = DEFAULT_ARTIFACT) -> dict:
    """Append one run to the ``BENCH_engine.json`` trajectory artifact.

    Every entry records the worker-pool size and shard count it ran with
    (1/1 for the unsharded serial paths) plus the run records the host CPU
    count, so trajectories from machines with different parallel hardware
    remain comparable.
    """
    if path.exists():
        trajectory = json.loads(path.read_text())
    else:
        trajectory = {"description": "engine wall-clock trajectory", "runs": []}
    for entry in entries:
        entry.setdefault("workers", 1)
        entry.setdefault("shards", 1)
    run = {
        "unix_time": time.time(),
        "cpu_count": os.cpu_count() or 1,
        "peak_workers": max(entry["workers"] for entry in entries),
        "entries": entries,
    }
    trajectory["runs"].append(run)
    path.write_text(json.dumps(trajectory, indent=2) + "\n")
    return run


def check_targets(entries: list[dict]) -> list[str]:
    """Return a list of target violations (empty = all good)."""
    problems = []
    for entry in entries:
        speedup = entry.get("speedup")
        if speedup is None:
            continue
        if entry["path"] == "build" and entry["builder"] == "lbvh" and entry["log2_keys"] >= 18:
            if speedup < BUILD_SPEEDUP_TARGET:
                problems.append(
                    f"build lbvh 2^{entry['log2_keys']}: {speedup:.2f}x < {BUILD_SPEEDUP_TARGET}x"
                )
        if entry["path"] == "trace" and entry["log2_rays"] >= 16:
            if speedup < TRACE_SPEEDUP_TARGET:
                problems.append(
                    f"trace 2^{entry['log2_rays']} rays: {speedup:.2f}x < {TRACE_SPEEDUP_TARGET}x"
                )
        if (
            entry["path"] == "intersect"
            and entry["kind"] == "triangle"
            and entry["log2_pairs"] >= 20
        ):
            if speedup < INTERSECT_SPEEDUP_TARGET:
                problems.append(
                    f"intersect triangle 2^{entry['log2_pairs']} pairs: "
                    f"{speedup:.2f}x < {INTERSECT_SPEEDUP_TARGET}x"
                )
        if entry["path"] == "trace_firstk" and entry["log2_rays"] >= 16:
            if speedup < FIRSTK_SPEEDUP_TARGET:
                problems.append(
                    f"first_k 2^{entry['log2_rays']} range rays: "
                    f"{speedup:.2f}x < {FIRSTK_SPEEDUP_TARGET}x"
                )
        if (
            entry["path"] == "build_forest"
            and entry["log2_keys"] >= 20
            and entry["workers_requested"] >= 4
        ):
            # A worker pool cannot beat the serial build without CPUs to run
            # on; the target binds only where the hardware allows it (the
            # entry records cpu_count so skips are visible in the artifact).
            if entry["cpu_count"] >= FOREST_TARGET_MIN_CPUS:
                if speedup < FOREST_BUILD_SPEEDUP_TARGET:
                    problems.append(
                        f"forest build 2^{entry['log2_keys']} keys, "
                        f"{entry['workers_requested']} workers: "
                        f"{speedup:.2f}x < {FOREST_BUILD_SPEEDUP_TARGET}x"
                    )
    return problems


def format_table(entries: list[dict]) -> str:
    lines = [
        f"{'path':<15}{'config':<26}{'new (s)':>10}{'ref (s)':>10}{'speedup':>10}",
        "-" * 71,
    ]
    for entry in entries:
        if entry["path"] == "build":
            config = f"{entry['builder']} 2^{entry['log2_keys']} keys"
        elif entry["path"] == "build_forest":
            config = (
                f"2^{entry['log2_keys']} keys {entry['shards']}sh "
                f"w={entry['workers_requested']}"
            )
        elif entry["path"] == "trace_firstk":
            config = f"2^{entry['log2_rays']} rays k={entry['limit']}"
        elif entry["path"] in ("trace", "trace_anyhit"):
            config = f"2^{entry['log2_rays']} rays / 2^{entry['log2_keys']} keys"
        elif entry["path"] == "trace_frontier":
            config = f"2^{entry['log2_rays']} rays cap {entry['max_frontier']}"
        elif entry["path"] == "intersect":
            config = f"{entry['kind']} 2^{entry['log2_pairs']} pairs"
        else:
            config = f"2^{entry['log2_keys']} keys"
        ref = entry.get("ref_seconds")
        speedup = entry.get("speedup")
        lines.append(
            f"{entry['path']:<15}{config:<26}{entry['new_seconds']:>10.3f}"
            f"{ref if ref is not None else float('nan'):>10.3f}"
            f"{speedup if speedup is not None else float('nan'):>9.2f}x"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small sizes only")
    parser.add_argument(
        "--strict", action="store_true", help="exit non-zero if targets are missed"
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_ARTIFACT, help="trajectory artifact path"
    )
    parser.add_argument(
        "--check-only",
        action="store_true",
        help="run the equivalence assertions at small sizes without timing "
        "thresholds or artifact writes (for CI)",
    )
    args = parser.parse_args(argv)

    if args.check_only:
        # Every bench function asserts observable equivalence against its
        # reference on the way; small sizes keep this cheap enough for CI.
        entries = run_smoke(quick=True)
        print(format_table(entries))
        print("\nequivalence checks passed (timings not enforced)")
        return 0

    entries = run_smoke(quick=args.quick)
    append_artifact(entries, args.out)
    print(format_table(entries))
    problems = check_targets(entries)
    if problems:
        print("\nTARGETS MISSED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1 if args.strict else 0
    print("\nall speedup targets met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
