"""Wall-clock perf smoke for the level-synchronous engine.

Measures the three engine hot paths — ``build_bvh``, ``TraversalEngine.trace``
and ``refit_accel`` — against the golden reference implementations preserved
in :mod:`repro.rtx._reference`, verifies observable equivalence on the way
(identical topology and bit-identical counters), and appends the results to a
``BENCH_engine.json`` trajectory artifact so future PRs can track the
engine's speed over time.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py            # full smoke
    PYTHONPATH=src python benchmarks/perf_smoke.py --quick    # 2^14 only
    PYTHONPATH=src python benchmarks/perf_smoke.py --strict   # enforce targets

Targets (checked, reported, and enforced under ``--strict``):

* ``build_bvh`` (lbvh, 2^18 keys) at least 5x faster than the reference,
* ``trace`` (2^16 point rays) at least 1.5x faster than the reference.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.rtx._reference import (
    reference_build_bvh,
    reference_refit_bounds,
    reference_trace,
)
from repro.rtx.build_input import build_input_for_points
from repro.rtx.bvh import BvhBuildOptions, build_bvh
from repro.rtx.geometry import RayBatch, TriangleBuffer, make_triangle_vertices
from repro.rtx.refit import refit_accel
from repro.rtx.traversal import TraversalEngine

DEFAULT_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

BUILD_SPEEDUP_TARGET = 5.0
TRACE_SPEEDUP_TARGET = 1.5


def _time(fn, repeats: int = 1) -> float:
    """Best-of-N wall-clock seconds for ``fn()``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _line_points(n: int) -> np.ndarray:
    return np.column_stack([np.arange(n), np.zeros(n), np.zeros(n)])


def bench_build(log2_keys: int, builder: str = "lbvh", compare: bool = True) -> dict:
    """Time a BVH build at ``2**log2_keys`` keys, optionally vs the reference."""
    n = 2**log2_keys
    rng = np.random.default_rng(log2_keys)
    points = rng.uniform(0, 1e6, size=(n, 3))
    buffer = TriangleBuffer(make_triangle_vertices(points))
    options = BvhBuildOptions(builder=builder)

    new_seconds = _time(lambda: build_bvh(buffer, options), repeats=2)
    entry = {
        "path": "build",
        "builder": builder,
        "log2_keys": log2_keys,
        "new_seconds": new_seconds,
    }
    if compare:
        built = build_bvh(buffer, options)
        ref_seconds = _time(lambda: reference_build_bvh(buffer, options))
        golden = reference_build_bvh(buffer, options)
        assert np.array_equal(built.left, golden.left), "topology diverged"
        assert np.array_equal(built.prim_indices, golden.prim_indices)
        assert np.array_equal(built.node_mins, golden.node_mins)
        entry["ref_seconds"] = ref_seconds
        entry["speedup"] = ref_seconds / new_seconds
    return entry


def bench_trace(log2_keys: int, log2_rays: int, compare: bool = True) -> dict:
    """Time point-lookup tracing of ``2**log2_rays`` rays, vs the reference."""
    n = 2**log2_keys
    rng = np.random.default_rng(log2_rays)
    buffer = build_input_for_points("triangle", _line_points(n)).primitive_buffer()
    bvh = build_bvh(buffer)
    xs = rng.uniform(0, n, size=2**log2_rays)
    rays = RayBatch(
        origins=np.column_stack([xs, np.zeros_like(xs), np.full_like(xs, -0.5)]),
        directions=np.tile([0.0, 0.0, 1.0], (xs.shape[0], 1)),
        tmin=0.0,
        tmax=1.0,
    )
    engine = TraversalEngine(bvh, buffer)
    engine.trace(rays)  # warm-up (also builds the float64 vertex cache)

    new_seconds = _time(lambda: engine.trace(rays), repeats=2)
    entry = {
        "path": "trace",
        "log2_keys": log2_keys,
        "log2_rays": log2_rays,
        "new_seconds": new_seconds,
    }
    if compare:
        engine.reset_counters()
        hits = engine.trace(rays)
        ref_seconds = _time(lambda: reference_trace(bvh, buffer, rays))
        golden_hits, golden_counters = reference_trace(bvh, buffer, rays)
        assert engine.counters.as_dict() == golden_counters.as_dict(), (
            "traversal counters diverged"
        )
        assert np.array_equal(hits.prim_indices, golden_hits.prim_indices)
        entry["ref_seconds"] = ref_seconds
        entry["speedup"] = ref_seconds / new_seconds
    return entry


def bench_refit(log2_keys: int, compare: bool = True) -> dict:
    """Time a refit at ``2**log2_keys`` keys, vs the reference sweep."""
    n = 2**log2_keys
    rng = np.random.default_rng(log2_keys + 100)
    points = rng.uniform(0, 1e5, size=(n, 3))
    buffer = TriangleBuffer(make_triangle_vertices(points))
    bvh = build_bvh(buffer, BvhBuildOptions(allow_update=True))
    moved = TriangleBuffer(
        make_triangle_vertices(points + rng.uniform(-1, 1, size=(n, 3)))
    )

    new_seconds = _time(lambda: refit_accel(bvh, moved), repeats=2)
    entry = {"path": "refit", "log2_keys": log2_keys, "new_seconds": new_seconds}
    if compare:
        golden_mins, golden_maxs = reference_refit_bounds(bvh, moved)
        ref_seconds = _time(lambda: reference_refit_bounds(bvh, moved))
        refit_accel(bvh, moved)
        assert np.array_equal(bvh.node_mins, golden_mins.astype(np.float32))
        assert np.array_equal(bvh.node_maxs, golden_maxs.astype(np.float32))
        entry["ref_seconds"] = ref_seconds
        entry["speedup"] = ref_seconds / new_seconds
    return entry


def run_smoke(quick: bool = False) -> list[dict]:
    """Run the smoke sweep (2^14–2^18 keys) and return the result entries."""
    entries = []
    build_sizes = [14] if quick else [14, 16, 18]
    for log2_keys in build_sizes:
        entries.append(bench_build(log2_keys, "lbvh"))
    if not quick:
        # The reference SAH/median builders are too slow for the big sizes;
        # time them where a comparison stays cheap.
        entries.append(bench_build(14, "median"))
        entries.append(bench_build(14, "sah"))
    entries.append(bench_trace(14 if quick else 16, 14 if quick else 16))
    entries.append(bench_refit(14 if quick else 16))
    return entries


def append_artifact(entries: list[dict], path: Path = DEFAULT_ARTIFACT) -> dict:
    """Append one run to the ``BENCH_engine.json`` trajectory artifact."""
    if path.exists():
        trajectory = json.loads(path.read_text())
    else:
        trajectory = {"description": "engine wall-clock trajectory", "runs": []}
    run = {
        "unix_time": time.time(),
        "entries": entries,
    }
    trajectory["runs"].append(run)
    path.write_text(json.dumps(trajectory, indent=2) + "\n")
    return run


def check_targets(entries: list[dict]) -> list[str]:
    """Return a list of target violations (empty = all good)."""
    problems = []
    for entry in entries:
        speedup = entry.get("speedup")
        if speedup is None:
            continue
        if entry["path"] == "build" and entry["builder"] == "lbvh" and entry["log2_keys"] >= 18:
            if speedup < BUILD_SPEEDUP_TARGET:
                problems.append(
                    f"build lbvh 2^{entry['log2_keys']}: {speedup:.2f}x < {BUILD_SPEEDUP_TARGET}x"
                )
        if entry["path"] == "trace" and entry["log2_rays"] >= 16:
            if speedup < TRACE_SPEEDUP_TARGET:
                problems.append(
                    f"trace 2^{entry['log2_rays']} rays: {speedup:.2f}x < {TRACE_SPEEDUP_TARGET}x"
                )
    return problems


def format_table(entries: list[dict]) -> str:
    lines = [
        f"{'path':<8}{'config':<22}{'new (s)':>10}{'ref (s)':>10}{'speedup':>10}",
        "-" * 60,
    ]
    for entry in entries:
        if entry["path"] == "build":
            config = f"{entry['builder']} 2^{entry['log2_keys']} keys"
        elif entry["path"] == "trace":
            config = f"2^{entry['log2_rays']} rays / 2^{entry['log2_keys']} keys"
        else:
            config = f"2^{entry['log2_keys']} keys"
        ref = entry.get("ref_seconds")
        speedup = entry.get("speedup")
        lines.append(
            f"{entry['path']:<8}{config:<22}{entry['new_seconds']:>10.3f}"
            f"{ref if ref is not None else float('nan'):>10.3f}"
            f"{speedup if speedup is not None else float('nan'):>9.2f}x"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small sizes only")
    parser.add_argument(
        "--strict", action="store_true", help="exit non-zero if targets are missed"
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_ARTIFACT, help="trajectory artifact path"
    )
    args = parser.parse_args(argv)

    entries = run_smoke(quick=args.quick)
    append_artifact(entries, args.out)
    print(format_table(entries))
    problems = check_targets(entries)
    if problems:
        print("\nTARGETS MISSED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1 if args.strict else 0
    print("\nall speedup targets met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
