"""Wall-clock perf smoke for the level-synchronous engine.

Measures the engine hot paths — ``build_bvh``, ``TraversalEngine.trace``,
``refit_accel`` and the per-pair primitive intersectors — against the golden
reference implementations preserved in :mod:`repro.rtx._reference`, verifies
observable equivalence on the way (identical topology, bit-identical masks
and counters), and appends the results to a ``BENCH_engine.json`` trajectory
artifact so future PRs can track the engine's speed over time.  Three
further scenarios have no seed counterpart and are measured against the
engine's own default configuration: the early-exit any-hit point-lookup
trace, the limit-pushdown ``first_k`` range-lookup trace, and a paper-scale
2^20-ray batch streamed under a ``max_frontier`` bound.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py               # full smoke
    PYTHONPATH=src python benchmarks/perf_smoke.py --quick       # small sizes
    PYTHONPATH=src python benchmarks/perf_smoke.py --strict      # enforce targets
    PYTHONPATH=src python benchmarks/perf_smoke.py --check-only  # correctness only (CI)

A sharded-build scenario measures the Morton-prefix forest
(:mod:`repro.rtx.forest`) at 2^20 keys against the serial single-tree build:
one entry per (worker count, backend) pair — the pickling ``fork`` backend
and the zero-copy shared-memory ``shm`` backend — each verifying that the
stitched forest tree is bit-identical to the single-tree arrays, and each
recording the bytes pickled vs shared per build.  ``--build-only`` runs
just this scenario (``make bench-build``; ``--scale paper`` lifts it to the
paper's 2^26-key column).  Because the worker pool is a host
multiprocessing pool, every recorded entry carries the effective pool size,
the shard count and the machine's CPU count, keeping BENCH trajectories
comparable across machines — the parallel-speedup and shm-beats-fork
targets are only *enforced* on hosts with enough CPUs to run the pool
concurrently (a single-CPU host still records the scenario).

Targets (checked, reported, and enforced under ``--strict``):

* ``build_bvh`` (lbvh, 2^18 keys) at least 5x faster than the reference,
* ``trace`` (2^16 point rays) at least 1.5x faster than the reference,
* triangle ``intersect_pairs`` (2^20 range-ray pairs) at least 2x faster
  than the reference row-gather intersector,
* ``first_k`` limited (k=8) range lookups (2^16 rays) at least 2x faster
  than the same batch traced in all-hits mode,
* the sharded forest build (2^20 keys, 4 workers) at least 2x faster than
  the serial single-tree build — enforced on hosts with >= 4 CPUs,
* micro-batched serving of a 2^16-request Zipf point-lookup stream
  (:mod:`repro.serve`) at least 5x the sustained throughput of
  one-query-per-launch serving (the solo side is timed on a 2^12-request
  prefix of the same stream — recorded as ``solo_requests_measured`` — and
  its per-request results are verified bit-identical to the demuxed
  coalesced ones),
* keyset-cursor pagination (2^20-key table, k=64 pages over a 2^16-row
  range): resuming the deepest page from its cursor at least 5x faster
  than the OFFSET-style full-prefix rescan, both pages verified
  bit-identical to the reference ``(key, rowID)`` order
  (``--paging-only``; ``make bench-paging`` runs the check-only CI gate).

A warm-restart scenario (``--restart-only``; ``make bench-restart``) saves
a built paper-default index through the crash-safe epoch store
(:mod:`repro.persist`) and times cold-load-to-first-query — a verified
``RXIndex.load(mmap=True)`` plus one point-lookup batch — against a full
rebuild plus the same batch, asserting the loaded index answers
bit-identically first.  The load must come out at least 1.5x faster than
the rebuild at 2^20 keys (``--scale paper`` lifts it to the paper's 2^26
column, where the gap widens: checksummed mmap ingest is I/O-bound while
the rebuild pays the full Morton/LBVH pipeline again).

Every entry now carries ``new_seconds_p50`` / ``new_seconds_p95`` /
``timing_repeats`` next to the historical best-of-N ``new_seconds``
(additive fields; the speedup basis is unchanged).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.rtx._reference import (
    reference_aabb_intersect_pairs,
    reference_build_bvh,
    reference_refit_bounds,
    reference_sphere_intersect_pairs,
    reference_trace,
    reference_triangle_intersect_pairs,
)
from repro.rtx.build_input import build_input_for_points
from repro.rtx.bvh import BvhBuildOptions, build_bvh, bvh_arrays_diff
from repro.rtx.forest import build_forest
from repro.rtx.geometry import RayBatch, TriangleBuffer, make_triangle_vertices
from repro.rtx.refit import refit_accel
from repro.rtx.traversal import TraversalEngine

DEFAULT_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

BUILD_SPEEDUP_TARGET = 5.0
TRACE_SPEEDUP_TARGET = 1.5
INTERSECT_SPEEDUP_TARGET = 2.0
FIRSTK_SPEEDUP_TARGET = 2.0
FOREST_BUILD_SPEEDUP_TARGET = 2.0
SERVE_SPEEDUP_TARGET = 5.0
PAGING_SPEEDUP_TARGET = 5.0
RESTART_SPEEDUP_TARGET = 1.5
#: CPUs the host must expose before the parallel forest-build target is
#: enforced (a pool cannot beat the serial build without real concurrency).
FOREST_TARGET_MIN_CPUS = 4


def _time(fn, repeats: int = 1) -> float:
    """Best-of-N wall-clock seconds for ``fn()``."""
    return _time_stats(fn, repeats)["new_seconds"]


def _time_stats(fn, repeats: int = 1) -> dict:
    """Wall-clock distribution of ``fn()`` over ``repeats`` runs.

    Returns the additive timing fields of a BENCH entry: the historical
    ``new_seconds`` best stays the comparison/speedup basis, while the p50
    and p95 over the repeats expose run-to-run variance (with one repeat all
    three coincide).
    """
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    p50, p95 = np.percentile(samples, [50.0, 95.0])
    return {
        "new_seconds": min(samples),
        "new_seconds_p50": float(p50),
        "new_seconds_p95": float(p95),
        "timing_repeats": repeats,
    }


def _line_points(n: int) -> np.ndarray:
    return np.column_stack([np.arange(n), np.zeros(n), np.zeros(n)])


def bench_build(log2_keys: int, builder: str = "lbvh", compare: bool = True) -> dict:
    """Time a BVH build at ``2**log2_keys`` keys, optionally vs the reference."""
    n = 2**log2_keys
    rng = np.random.default_rng(log2_keys)
    points = rng.uniform(0, 1e6, size=(n, 3))
    buffer = TriangleBuffer(make_triangle_vertices(points))
    options = BvhBuildOptions(builder=builder)

    timing = _time_stats(lambda: build_bvh(buffer, options), repeats=2)
    entry = {
        "path": "build",
        "builder": builder,
        "log2_keys": log2_keys,
        **timing,
    }
    if compare:
        built = build_bvh(buffer, options)
        ref_seconds = _time(lambda: reference_build_bvh(buffer, options))
        golden = reference_build_bvh(buffer, options)
        assert np.array_equal(built.left, golden.left), "topology diverged"
        assert np.array_equal(built.prim_indices, golden.prim_indices)
        assert np.array_equal(built.node_mins, golden.node_mins)
        entry["ref_seconds"] = ref_seconds
        entry["speedup"] = ref_seconds / entry["new_seconds"]
    return entry


def bench_build_forest(
    log2_keys: int,
    shard_bits: int,
    workers_list: tuple[int, ...],
    backends: tuple[str, ...] = ("fork", "shm"),
    compare: bool = True,
) -> list[dict]:
    """Time sharded forest builds against the serial single-tree build.

    One entry per (worker count, backend), all sharing a single timed
    single-tree comparison partner (``ref_seconds``) — our own vectorised
    ``build_bvh``, not the seed reference — so the speedup isolates what
    sharding plus the worker pool buys.  Every stitched tree is verified
    bit-identical to the single-tree arrays on the way.

    The backend axis records what each execution schedule moves: ``fork``
    ships O(n) arrays through the pool's pickle channel per task
    (``bytes_pickled``), ``shm`` places inputs and outputs in shared-memory
    blocks (``bytes_shared``) and pickles only O(1) task descriptors.  A shm
    entry additionally carries ``fork_seconds`` (the fork entry's wall-clock
    at the same worker count) and ``speedup_vs_fork`` — the head-to-head the
    zero-copy backend is gated on.
    """
    n = 2**log2_keys
    rng = np.random.default_rng(log2_keys)
    points = rng.uniform(0, 1e6, size=(n, 3))
    buffer = TriangleBuffer(make_triangle_vertices(points))

    single = None
    ref_seconds = None
    if compare:
        single = build_bvh(buffer, BvhBuildOptions())
        ref_seconds = _time(lambda: build_bvh(buffer, BvhBuildOptions()), repeats=2)

    entries = []
    fork_seconds: dict[int, float] = {}
    for workers in workers_list:
        for backend in backends:
            options = BvhBuildOptions(
                shard_bits=shard_bits, workers=workers, backend=backend
            )
            forest = build_forest(buffer, options)
            timing = _time_stats(lambda: build_forest(buffer, options), repeats=2)
            telemetry = forest.telemetry
            entry = {
                "path": "build_forest",
                "log2_keys": log2_keys,
                "shard_bits": shard_bits,
                "backend": backend,
                "workers_requested": workers,
                "workers": forest.workers_used,
                "shards": forest.non_empty_shards,
                "delegated_shards": forest.delegated_shards,
                "bytes_pickled": telemetry.bytes_pickled,
                "bytes_shared": telemetry.bytes_shared,
                "cpu_count": os.cpu_count() or 1,
                **timing,
            }
            if backend == "fork":
                fork_seconds[workers] = entry["new_seconds"]
            elif workers in fork_seconds:
                entry["fork_seconds"] = fork_seconds[workers]
                entry["speedup_vs_fork"] = fork_seconds[workers] / entry["new_seconds"]
            if compare:
                entry["ref_seconds"] = ref_seconds
                entry["speedup"] = ref_seconds / entry["new_seconds"]
                diff = bvh_arrays_diff(forest.bvh, single)
                assert diff is None, (
                    f"{backend} forest diverged from the single tree on {diff!r}"
                )
            entries.append(entry)
    return entries


def bench_trace(log2_keys: int, log2_rays: int, compare: bool = True) -> dict:
    """Time point-lookup tracing of ``2**log2_rays`` rays, vs the reference."""
    n = 2**log2_keys
    rng = np.random.default_rng(log2_rays)
    buffer = build_input_for_points("triangle", _line_points(n)).primitive_buffer()
    bvh = build_bvh(buffer)
    xs = rng.uniform(0, n, size=2**log2_rays)
    rays = RayBatch(
        origins=np.column_stack([xs, np.zeros_like(xs), np.full_like(xs, -0.5)]),
        directions=np.tile([0.0, 0.0, 1.0], (xs.shape[0], 1)),
        tmin=0.0,
        tmax=1.0,
    )
    engine = TraversalEngine(bvh, buffer)
    engine.trace(rays)  # warm-up (also builds the float64 vertex cache)

    timing = _time_stats(lambda: engine.trace(rays), repeats=2)
    entry = {
        "path": "trace",
        "log2_keys": log2_keys,
        "log2_rays": log2_rays,
        **timing,
    }
    if compare:
        engine.reset_counters()
        hits = engine.trace(rays)
        ref_seconds = _time(lambda: reference_trace(bvh, buffer, rays))
        golden_hits, golden_counters = reference_trace(bvh, buffer, rays)
        assert engine.counters.as_dict() == golden_counters.as_dict(), (
            "traversal counters diverged"
        )
        assert np.array_equal(hits.prim_indices, golden_hits.prim_indices)
        entry["ref_seconds"] = ref_seconds
        entry["speedup"] = ref_seconds / entry["new_seconds"]
    return entry


def bench_refit(log2_keys: int, compare: bool = True) -> dict:
    """Time a refit at ``2**log2_keys`` keys, vs the reference sweep."""
    n = 2**log2_keys
    rng = np.random.default_rng(log2_keys + 100)
    points = rng.uniform(0, 1e5, size=(n, 3))
    buffer = TriangleBuffer(make_triangle_vertices(points))
    bvh = build_bvh(buffer, BvhBuildOptions(allow_update=True))
    moved = TriangleBuffer(
        make_triangle_vertices(points + rng.uniform(-1, 1, size=(n, 3)))
    )

    timing = _time_stats(lambda: refit_accel(bvh, moved), repeats=2)
    entry = {"path": "refit", "log2_keys": log2_keys, **timing}
    if compare:
        golden_mins, golden_maxs = reference_refit_bounds(bvh, moved)
        ref_seconds = _time(lambda: reference_refit_bounds(bvh, moved))
        refit_accel(bvh, moved)
        assert np.array_equal(bvh.node_mins, golden_mins.astype(np.float32))
        assert np.array_equal(bvh.node_maxs, golden_maxs.astype(np.float32))
        entry["ref_seconds"] = ref_seconds
        entry["speedup"] = ref_seconds / entry["new_seconds"]
    return entry


def _range_pair_inputs(kind: str, log2_keys: int, log2_pairs: int):
    """Range-ray (ray, primitive) pair stream over a line of keys.

    The rays run along +x with a span of several keys — the shape of the
    paper's range lookups, where the Möller–Trumbore inner loop dominates —
    and each pair tests the ray against a primitive near its span so the hit
    branches are exercised.
    """
    n = 2**log2_keys
    m = 2**log2_pairs
    rng = np.random.default_rng(log2_pairs + 7)
    buffer = build_input_for_points(kind, _line_points(n)).primitive_buffer()
    xs = rng.uniform(0, n - 32, size=m)
    origins = np.column_stack([xs, np.zeros(m), np.zeros(m)]).astype(np.float32)
    directions = np.tile(np.float32([1.0, 0.0, 0.0]), (m, 1))
    tmins = np.zeros(m, dtype=np.float32)
    tmaxs = rng.uniform(1, 25, size=m).astype(np.float32)
    prim = (xs.astype(np.int64) + rng.integers(0, 25, size=m)) % n
    return buffer, origins, directions, tmins, tmaxs, prim


def bench_intersect_pairs(kind: str, log2_pairs: int, compare: bool = True) -> dict:
    """Time per-pair intersection throughput of the SoA packs vs the seed's
    row-gather intersectors, on a range-ray pair stream."""
    buffer, o, d, tmins, tmaxs, prim = _range_pair_inputs(kind, 16, log2_pairs)
    buffer.intersection_pack()  # warm the cache (the seed cached its float64 copy too)

    timing = _time_stats(
        lambda: buffer.intersect_pairs(o, d, tmins, tmaxs, prim), repeats=3
    )
    entry = {
        "path": "intersect",
        "kind": kind,
        "log2_pairs": log2_pairs,
        **timing,
    }
    if compare:
        if kind == "triangle":
            v64 = buffer.vertices.astype(np.float64)
            ref = lambda: reference_triangle_intersect_pairs(v64, o, d, tmins, tmaxs, prim)
        elif kind == "sphere":
            ref = lambda: reference_sphere_intersect_pairs(
                buffer.centers, buffer.radius, o, d, tmins, tmaxs, prim
            )
        else:
            ref = lambda: reference_aabb_intersect_pairs(
                buffer.mins, buffer.maxs, o, d, tmins, tmaxs, prim
            )
        golden = ref()
        mask = buffer.intersect_pairs(o, d, tmins, tmaxs, prim)
        assert mask.any(), "pair workload must contain hits"
        assert np.array_equal(mask, golden), f"{kind} intersection masks diverged"
        entry["ref_seconds"] = _time(ref, repeats=3)
        entry["speedup"] = entry["ref_seconds"] / entry["new_seconds"]
    return entry


def bench_trace_anyhit(log2_keys: int, log2_rays: int, compare: bool = True) -> dict:
    """Time any-hit point lookups against the default all-hits mode.

    A skewed key column (a deep dense cluster at low x plus a sparse tail)
    probed with from-zero parallel point rays for the sparse keys: every ray
    geometrically overlaps the whole cluster, but its own key sits in a
    shallow leaf, so terminating at the first hit (the hardware any-hit
    behaviour) skips the entire cluster descent — the situation the paper's
    point-lookup numbers depend on.
    """
    rng = np.random.default_rng(log2_rays + 13)
    n = 2**log2_keys
    n_cluster = int(n * 0.9)
    cluster = np.arange(n_cluster, dtype=np.float64)
    sparse = n_cluster + np.cumsum(
        rng.integers(8, 16, size=n - n_cluster)
    ).astype(np.float64)
    xs = np.concatenate([cluster, sparse])
    points = np.column_stack([xs, np.zeros_like(xs), np.zeros_like(xs)])
    buffer = build_input_for_points("triangle", points).primitive_buffer()
    bvh = build_bvh(buffer)
    engine = TraversalEngine(bvh, buffer)
    k = sparse[rng.integers(0, sparse.shape[0], size=2**log2_rays)]
    m = k.shape[0]
    rays = RayBatch(
        origins=np.zeros((m, 3)),
        directions=np.tile([1.0, 0.0, 0.0], (m, 1)),
        tmin=k - 0.5,
        tmax=k + 0.5,
    )
    engine.trace(rays, mode="any_hit")  # warm-up

    timing = _time_stats(lambda: engine.trace(rays, mode="any_hit"), repeats=2)
    entry = {
        "path": "trace_anyhit",
        "log2_keys": log2_keys,
        "log2_rays": log2_rays,
        **timing,
    }
    if compare:
        # The all-hits side is the expensive one; a single repeat keeps the
        # smoke's wall-clock in check.
        entry["ref_seconds"] = _time(lambda: engine.trace(rays), repeats=1)
        entry["speedup"] = entry["ref_seconds"] / entry["new_seconds"]
        engine.reset_counters()
        any_hits = engine.trace(rays, mode="any_hit")
        any_counters = engine.counters
        engine.reset_counters()
        all_hits = engine.trace(rays)
        all_counters = engine.counters
        assert any_counters.node_visits < all_counters.node_visits
        assert any_counters.prim_tests < all_counters.prim_tests
        assert any_counters.rays_with_hits == all_counters.rays_with_hits
        assert np.unique(any_hits.ray_indices).size == any_hits.count
        assert all_hits.count >= any_hits.count
        entry["node_visits_all"] = all_counters.node_visits
        entry["node_visits_anyhit"] = any_counters.node_visits
        entry["prim_tests_all"] = all_counters.prim_tests
        entry["prim_tests_anyhit"] = any_counters.prim_tests
    return entry


def bench_range_firstk(
    log2_keys: int, log2_rays: int, limit: int = 8, span: int = 32, compare: bool = True
) -> dict:
    """Paper-scale limited range lookups: ``first_k`` vs the all-hits trace.

    The key column is a deep dense cluster at low x plus a sparse tail, and
    the lookups are from-zero range rays over ``span`` keys of the tail —
    the layout of Table 3's from-zero measurements, where every ray
    geometrically overlaps the whole cluster (node culling ignores tmin) and
    the all-hits trace pays the full cluster descent.  With ``limit`` hits
    per lookup the budget is spent in the shallow tail leaves, the rays
    compact out of the frontier, and the deep cluster rounds never run —
    node visits must come out strictly below the all-hits run.  The reported
    rows are pinned to the stable top-``limit`` cut of the all-hits stream.
    """
    rng = np.random.default_rng(log2_rays + 29)
    n = 2**log2_keys
    n_cluster = int(n * 0.9)
    cluster = np.arange(n_cluster, dtype=np.float64)
    sparse = n_cluster + np.cumsum(
        rng.integers(8, 16, size=n - n_cluster)
    ).astype(np.float64)
    xs = np.concatenate([cluster, sparse])
    points = np.column_stack([xs, np.zeros_like(xs), np.zeros_like(xs)])
    buffer = build_input_for_points("triangle", points).primitive_buffer()
    bvh = build_bvh(buffer)
    engine = TraversalEngine(bvh, buffer)
    starts = rng.integers(0, sparse.shape[0] - span, size=2**log2_rays)
    lo = sparse[starts]
    hi = sparse[starts + span - 1]
    rays = RayBatch(
        origins=np.zeros((lo.shape[0], 3)),
        directions=np.tile([1.0, 0.0, 0.0], (lo.shape[0], 1)),
        tmin=lo - 0.5,
        tmax=hi + 0.5,
    )
    engine.trace(rays, mode="first_k", limit=limit)  # warm-up

    timing = _time_stats(
        lambda: engine.trace(rays, mode="first_k", limit=limit), repeats=2
    )
    entry = {
        "path": "trace_firstk",
        "log2_keys": log2_keys,
        "log2_rays": log2_rays,
        "limit": limit,
        "span": span,
        **timing,
    }
    if compare:
        # The all-hits side descends the whole cluster; one repeat keeps the
        # smoke's wall-clock in check.
        entry["ref_seconds"] = _time(lambda: engine.trace(rays), repeats=1)
        entry["speedup"] = entry["ref_seconds"] / entry["new_seconds"]
        engine.reset_counters()
        fk_hits = engine.trace(rays, mode="first_k", limit=limit)
        fk_counters = engine.counters
        engine.reset_counters()
        all_hits = engine.trace(rays)
        all_counters = engine.counters
        assert fk_counters.node_visits < all_counters.node_visits
        assert fk_counters.prim_tests < all_counters.prim_tests
        assert fk_counters.rays_with_hits == all_counters.rays_with_hits
        # The reported rows must be the stable top-k cut of the all-hits
        # stream: the first `limit` hits of every lookup, in stream order.
        taken = np.zeros(len(rays), dtype=np.int64)
        keep = np.empty(all_hits.count, dtype=bool)
        for i, lookup in enumerate(all_hits.lookup_ids.tolist()):
            keep[i] = taken[lookup] < limit
            taken[lookup] += keep[i]
        assert np.array_equal(fk_hits.ray_indices, all_hits.ray_indices[keep])
        assert np.array_equal(fk_hits.prim_indices, all_hits.prim_indices[keep])
        entry["node_visits_all"] = all_counters.node_visits
        entry["node_visits_firstk"] = fk_counters.node_visits
        entry["prim_tests_all"] = all_counters.prim_tests
        entry["prim_tests_firstk"] = fk_counters.prim_tests
    return entry


def bench_frontier(log2_keys: int, log2_rays: int, max_frontier: int, compare: bool = True) -> dict:
    """Paper-scale ray batch traced under a ``max_frontier`` memory bound.

    Records the wall-clock of the bounded-streaming schedule next to the
    unbounded one, plus the logical peak frontier the counters report — the
    working set ``max_frontier`` caps.  Hit records and every counter are
    identical for both settings (checked here on the hit/counter digests).
    """
    n = 2**log2_keys
    rng = np.random.default_rng(log2_rays + 3)
    buffer = build_input_for_points("triangle", _line_points(n)).primitive_buffer()
    bvh = build_bvh(buffer)
    xs = rng.uniform(0, n, size=2**log2_rays)
    rays = RayBatch(
        origins=np.column_stack([xs, np.zeros_like(xs), np.full_like(xs, -0.5)]),
        directions=np.tile([0.0, 0.0, 1.0], (xs.shape[0], 1)),
        tmin=0.0,
        tmax=1.0,
    )
    bounded = TraversalEngine(bvh, buffer, max_frontier=max_frontier)
    bounded.trace(rays)  # warm-up

    timing = _time_stats(lambda: bounded.trace(rays), repeats=2)
    bounded.reset_counters()
    bounded_hits = bounded.trace(rays)
    entry = {
        "path": "trace_frontier",
        "log2_keys": log2_keys,
        "log2_rays": log2_rays,
        "max_frontier": max_frontier,
        **timing,
        "logical_peak_frontier": bounded.counters.max_frontier_size,
    }
    if compare:
        unbounded = TraversalEngine(bvh, buffer)
        entry["ref_seconds"] = _time(lambda: unbounded.trace(rays), repeats=2)
        entry["speedup"] = entry["ref_seconds"] / entry["new_seconds"]
        unbounded.reset_counters()
        unbounded_hits = unbounded.trace(rays)
        assert np.array_equal(bounded_hits.prim_indices, unbounded_hits.prim_indices)
        assert bounded.counters.as_dict() == unbounded.counters.as_dict(), (
            "max_frontier changed observable behaviour"
        )
    return entry


def bench_serve(
    log2_keys: int,
    log2_requests: int,
    max_batch: int = 4096,
    zipf: float = 1.0,
    solo_cap: int = 4096,
    compare: bool = True,
) -> dict:
    """Micro-batched serving vs one-query-per-launch on a Zipf stream.

    A ``2**log2_requests``-request open-loop stream of single-query point
    lookups (Zipf ``zipf`` popularity, offered far above capacity so every
    window closes by size) is served through
    :class:`repro.serve.service.IndexService` twice: coalesced into
    ``max_batch``-query launches, and with ``max_batch=1`` — the solo
    strawman, timed on the first ``solo_cap`` requests of the same stream
    (recorded honestly as ``solo_requests_measured``).  The speedup is the
    sustained service-throughput ratio; on the solo prefix every demuxed
    result (rows *and* counters) is asserted bit-identical to the solo
    launch.  A third cached pass records what the epoch-keyed result cache
    adds under this skew (additive fields, no target).
    """
    from repro.core.config import RXConfig
    from repro.core.rx_index import RXIndex
    from repro.serve import IndexService
    from repro.workloads import dense_shuffled_keys, zipf_point_stream

    num_requests = 2**log2_requests
    keys = dense_shuffled_keys(2**log2_keys, seed=log2_keys)
    stream = zipf_point_stream(
        keys, num_requests, zipf, rate=1e9, seed=log2_requests + 17
    )

    # Replays never mutate the index; one build serves every service.
    index = RXIndex(RXConfig.paper_default())
    index.build(keys)

    def make_service(max_batch, cache_capacity):
        return IndexService(
            index,
            max_batch=max_batch,
            max_wait=1e-3,
            cache_capacity=cache_capacity,
        )

    batched = make_service(max_batch, 0).replay(stream)
    percentiles = batched.latency_percentiles()
    entry = {
        "path": "serve",
        "log2_keys": log2_keys,
        "log2_requests": log2_requests,
        "max_batch": max_batch,
        "zipf": zipf,
        "new_seconds": batched.service_seconds,
        "new_seconds_p50": batched.service_seconds,
        "new_seconds_p95": batched.service_seconds,
        "timing_repeats": 1,
        "requests_per_second": batched.service_throughput_rps,
        "latency_p50_seconds": percentiles["p50"],
        "latency_p95_seconds": percentiles["p95"],
        "latency_p99_seconds": percentiles["p99"],
    }
    if compare:
        solo_n = min(solo_cap, num_requests)
        solo_stream = zipf_point_stream(
            keys, num_requests, zipf, rate=1e9, seed=log2_requests + 17
        )
        solo_stream.entries = solo_stream.entries[:solo_n]
        solo = make_service(1, 0).replay(solo_stream)
        # Demux equivalence on the shared prefix: rows and counters of the
        # coalesced serving must equal the solo launches bit for bit.
        batched_by_id = {r.request_id: r for r in batched.results}
        solo_by_id = {r.request_id: r for r in solo.results}
        for request_id in solo_by_id:
            a, b = batched_by_id[request_id], solo_by_id[request_id]
            assert np.array_equal(a.result_rows(), b.result_rows()), (
                "coalesced serving changed result rows"
            )
            assert np.array_equal(a.hits.prim_indices, b.hits.prim_indices)
            assert a.counters.as_dict() == b.counters.as_dict(), (
                "coalesced serving changed per-request counters"
            )
        entry["solo_requests_measured"] = solo_n
        entry["solo_requests_per_second"] = solo.service_throughput_rps
        # Extrapolate the solo wall-clock to the full stream length so
        # ref/new stay comparable; the measured prefix is recorded above.
        entry["ref_seconds"] = solo.service_seconds * (num_requests / solo_n)
        entry["speedup"] = (
            batched.service_throughput_rps / max(solo.service_throughput_rps, 1e-12)
        )
        cached = make_service(max_batch, max(num_requests // 8, 16))
        cached_report = cached.replay(stream)
        entry["cached_requests_per_second"] = cached_report.service_throughput_rps
        entry["cache_hit_rate"] = cached.stats()["cache"]["hit_rate"]
    return entry


def bench_paging(
    log2_keys: int, log2_range_rows: int, page_size: int = 64, compare: bool = True
) -> dict:
    """Keyset-cursor page resume vs the OFFSET-style full-prefix rescan.

    A dense ``2**log2_keys``-key table paged through a ``2**log2_range_rows``-
    row ordered range scan in ``page_size``-row pages.  The timed contenders
    are the two ways a client can fetch the scan's *deepest* full page:

    * **resume** — one ``order="key"`` lookup carrying the cursor of the
      previous page: the range ray starts just past the cursor's
      ``(key, rowID)``, so traversal and the ordered pool only ever touch
      O(page) qualifying entries;
    * **rescan** — the same lookup without a cursor but with
      ``limit = consumed + page_size``: the ordered pool re-pays every row
      of the prefix before the page (what a LIMIT/OFFSET plan does).

    Both pages are verified bit-identical to the reference ``(key, rowID)``
    order, the resumed page's primitive tests must come out strictly below
    the rescan's, and the wall-clock ratio is the ``paging`` target.
    """
    from repro.core.config import RXConfig
    from repro.core.cursor import encode_cursor
    from repro.core.rx_index import RXIndex
    from repro.workloads import dense_shuffled_keys

    n = 2**log2_keys
    span = 2**log2_range_rows
    keys = dense_shuffled_keys(n, seed=log2_keys + 41)
    index = RXIndex(RXConfig.paper_default())
    index.build(keys)
    lower = (n - span) // 2
    upper = lower + span - 1
    lowers = np.array([lower], dtype=np.uint64)
    uppers = np.array([upper], dtype=np.uint64)

    # Reference (key, rowID) order of the whole scan.
    sel = (keys >= np.uint64(lower)) & (keys <= np.uint64(upper))
    rows = np.nonzero(sel)[0].astype(np.uint64)
    golden = rows[np.lexsort((rows, keys[sel]))]
    total = golden.shape[0]
    assert total == span, "dense column must qualify exactly span rows"
    consumed = total - page_size  # the deepest full page of the scan
    cursor_row = int(golden[consumed - 1])
    cursor = encode_cursor(int(keys[cursor_row]), cursor_row)

    def resumed():
        return index.range_lookup(
            lowers, uppers, limit=page_size, order="key", cursor=cursor
        )

    def rescan():
        return index.range_lookup(
            lowers, uppers, limit=consumed + page_size, order="key"
        )

    resumed()  # warm-up
    timing = _time_stats(resumed, repeats=3)
    entry = {
        "path": "paging",
        "log2_keys": log2_keys,
        "log2_range_rows": log2_range_rows,
        "page_size": page_size,
        "pages_consumed": consumed // page_size,
        **timing,
    }
    if compare:
        expected = golden[consumed : consumed + page_size]
        resume_run, resume_next = resumed()
        assert np.array_equal(resume_run.row_ids, expected), (
            "resumed page diverged from the reference order"
        )
        rescan_run, _ = rescan()
        assert np.array_equal(rescan_run.row_ids, golden[: consumed + page_size]), (
            "prefix rescan diverged from the reference order"
        )
        assert np.array_equal(rescan_run.row_ids[consumed:], expected)
        # The budget bugfix: resuming inside the column must not re-pay the
        # prefix — the resumed page's primitive tests stay O(page).
        assert (
            resume_run.stats["total_prim_tests"]
            < rescan_run.stats["total_prim_tests"]
        ), "cursor resume did not skip the prefix work"
        entry["prim_tests_resume"] = resume_run.stats["total_prim_tests"]
        entry["prim_tests_rescan"] = rescan_run.stats["total_prim_tests"]
        entry["ref_seconds"] = _time(rescan, repeats=1)
        entry["speedup"] = entry["ref_seconds"] / entry["new_seconds"]
    return entry


def bench_restart(log2_keys: int, compare: bool = True) -> dict:
    """Cold snapshot load to first query vs a full rebuild to first query.

    Builds a paper-default index over a dense shuffled ``2**log2_keys``-key
    column, saves it through the crash-safe epoch store, then times the two
    ways a restarted server can reach its first answered batch:

    * **load** — ``RXIndex.load(mmap=True)``: checksum-verified zero-copy
      ingest of the committed epoch's segments, then one 64-query
      point-lookup batch;
    * **rebuild** — ``RXIndex().build(keys)`` from the raw key column, then
      the same batch.

    The loaded index must answer the batch bit-identically to the rebuilt
    one before any timing counts, and the wall-clock ratio is the
    ``restart`` target.  Each load repeat constructs a fresh index from
    disk, so the p50/p95 spread reflects genuine cold starts (the page
    cache stays warm across repeats, as it would on a real restart of a
    recently-written snapshot).
    """
    import shutil
    import tempfile

    from repro.core.config import RXConfig
    from repro.core.rx_index import RXIndex
    from repro.workloads import dense_shuffled_keys

    n = 2**log2_keys
    keys = dense_shuffled_keys(n, seed=log2_keys + 67)
    rng = np.random.default_rng(log2_keys)
    queries = rng.choice(keys, size=64)

    index = RXIndex(RXConfig.paper_default())
    index.build(keys)
    golden = index.point_lookup(queries)

    snapdir = Path(tempfile.mkdtemp(prefix="rx-restart-"))
    try:
        save_info = index.save(snapdir)

        def cold_load():
            loaded = RXIndex.load(snapdir, mmap=True)
            return loaded, loaded.point_lookup(queries)

        def rebuild():
            fresh = RXIndex(RXConfig.paper_default())
            fresh.build(keys)
            return fresh, fresh.point_lookup(queries)

        loaded, replay = cold_load()  # warm-up + identity gate
        assert np.array_equal(golden.result_rows, replay.result_rows), (
            "loaded index answered differently from the index it snapshots"
        )
        assert golden.stats == replay.stats, (
            "loaded index did different traversal work than the original"
        )
        timing = _time_stats(cold_load, repeats=3)
        entry = {
            "path": "restart",
            "log2_keys": log2_keys,
            "bytes_on_disk": save_info["bytes_on_disk"],
            "segments_total": save_info["segments_total"],
            "load_epoch": loaded.epoch,
            **timing,
        }
        if compare:
            rebuilt, again = rebuild()
            assert np.array_equal(golden.result_rows, again.result_rows)
            assert bvh_arrays_diff(loaded.accel.bvh, rebuilt.accel.bvh) is None, (
                "loaded accel diverged from a from-scratch build"
            )
            entry["ref_seconds"] = _time(rebuild, repeats=1)
            entry["speedup"] = entry["ref_seconds"] / entry["new_seconds"]
        return entry
    finally:
        shutil.rmtree(snapdir, ignore_errors=True)


def bench_chaos_serve(
    log2_keys: int,
    log2_requests: int,
    max_batch: int = 256,
    zipf: float = 1.0,
    error_budget: float = 0.05,
    compare: bool = True,
) -> dict:
    """Serving under a seeded fault schedule vs the clean run (chaos bench).

    Replays one deadline-annotated Zipf point-lookup stream twice through
    :class:`repro.serve.service.IndexService` — once clean, once under a
    :class:`repro.serve.faults.FaultInjector` schedule that guarantees at
    least four distinct fault types fire (launch failure, launch latency,
    cache unavailability/corruption, update-swap failure) while two
    mid-stream index updates land (the first one faults and rolls back).

    The correctness gate is absolute: every successful result of the chaos
    run must be bit-identical to a reference lookup against the key column
    of the epoch that served it, every submitted request must receive
    exactly one explicit outcome, and the entry records
    ``correctness_violations`` (asserted zero).  Goodput, p99 latency and
    error-budget burn are recorded next to the clean run's numbers.
    """
    from repro.core.config import RXConfig
    from repro.core.rx_index import RXIndex
    from repro.serve import FaultInjector, FaultSpec, IndexService, RetryPolicy
    from repro.workloads import dense_shuffled_keys, zipf_point_stream

    num_requests = 2**log2_requests
    keys0 = dense_shuffled_keys(2**log2_keys, seed=log2_keys)

    def shifted(keys, lo, hi):
        out = keys.copy()
        out[lo:hi] = out[lo:hi][::-1]
        return out

    keys1 = shifted(keys0, 0, 2 ** (log2_keys - 1))
    keys2 = shifted(keys1, 2 ** (log2_keys - 2), 2**log2_keys - 7)
    config = RXConfig.paper_default().with_delta_updates(shard_bits=4)
    deadline = 0.05
    rate = float(2**log2_requests)  # ~1 second of stream time

    def make_stream():
        return zipf_point_stream(
            keys0,
            num_requests,
            zipf,
            rate=rate,
            seed=log2_requests + 23,
            deadline=deadline,
        )

    stream = make_stream()
    arrivals = [e.arrival for e in stream.entries]
    updates = [
        (arrivals[len(arrivals) // 3], keys1),
        (arrivals[2 * len(arrivals) // 3], keys2),
    ]

    def run(injector):
        # Updates mutate the index, so each replay gets its own build.
        index = RXIndex(config)
        index.build(keys0)
        service = IndexService(
            index,
            max_batch=max_batch,
            max_wait=2e-3,
            cache_capacity=max(num_requests // 8, 64),
            max_queue=8 * max_batch,
            retry=RetryPolicy(max_retries=3, jitter=0.0),
            fault_injector=injector,
        )
        report = service.replay(make_stream(), updates=updates)
        return service, report

    injector = FaultInjector(
        seed=log2_requests,
        specs={
            # Explicit occurrence schedules guarantee every fault type fires
            # in a recorded run; the probabilities add seeded background
            # noise on top.  Occurrences 1-4 of the launch site fail in a
            # row, exhausting the 3-retry budget once (-> launch_failed
            # errors); occurrence 3 of the latency site stalls past the
            # request deadline, and the backlog the stall creates times out
            # everything that arrives behind it (scheduled-only: one spike
            # at 1024+ req/s already burns a visible slice of the budget).
            "launch": FaultSpec(probability=0.02, at={1, 2, 3, 4}),
            "launch_latency": FaultSpec(at={3}, latency=1.5 * deadline),
            "cache": FaultSpec(probability=0.01, at={2}),
            "cache_corrupt": FaultSpec(probability=0.02, at={0}),
            "update": FaultSpec(at={0}),  # first update faults + rolls back
        },
    )
    _, clean = run(None)
    service, chaos = run(injector)

    # The schedule must actually have exercised >= 4 distinct fault types.
    fired = {site for site, count in injector.fired.items() if count > 0}
    required = {"launch", "launch_latency", "cache", "update"}
    assert required <= fired, f"fault schedule missed sites: {required - fired}"
    # The schedule guarantees one retry exhaustion and one deadline blowout:
    # failed requests must surface as explicit errors, never silent drops.
    reasons = set(chaos.errors_by_reason())
    assert {"launch_failed", "timeout"} <= reasons, f"missing errors: {reasons}"
    # Explicit outcomes for every request: no silent drops, no hangs.
    all_ids = sorted(
        [r.request_id for r in chaos.results] + [f.request_id for f in chaos.errors]
    )
    assert all_ids == list(range(1, num_requests + 1)), "requests dropped silently"

    violations = 0
    if compare:
        # Reconstruct each epoch's key column from the update log, then
        # verify every success bit-identically against a per-epoch
        # reference index (batched: one reference launch per epoch).
        columns = {0: keys0}
        content = keys0
        for entry, new_keys in zip(chaos.updates, [keys1, keys2]):
            if entry["failed"]:
                columns[entry["epoch"] - 1] = new_keys  # never serves
                columns[entry["epoch"]] = content
            else:
                content = new_keys
                columns[entry["epoch"]] = content
        by_epoch: dict[int, list] = {}
        for result in chaos.results:
            by_epoch.setdefault(result.epoch, []).append(result)
        for epoch, group in by_epoch.items():
            assert epoch in columns, f"epoch {epoch} served but never recorded"
            reference = RXIndex(config)
            reference.build(columns[epoch])
            queries = np.concatenate(
                [stream.entries[r.request_id - 1].queries for r in group]
            )
            expected = reference.point_lookup(queries).result_rows
            got = np.concatenate([r.result_rows() for r in group])
            violations += int(np.sum(expected != got))
        assert violations == 0, f"{violations} correctness violations under faults"

    resilience = service.stats()["resilience"]
    clean_p = clean.latency_percentiles()
    chaos_p = chaos.latency_percentiles()
    entry = {
        "path": "chaos_serve",
        "log2_keys": log2_keys,
        "log2_requests": log2_requests,
        "max_batch": max_batch,
        "zipf": zipf,
        "deadline_seconds": deadline,
        "new_seconds": chaos.service_seconds,
        "new_seconds_p50": chaos.service_seconds,
        "new_seconds_p95": chaos.service_seconds,
        "timing_repeats": 1,
        "ref_seconds": clean.service_seconds,
        "goodput_rps": chaos.goodput_rps,
        "clean_goodput_rps": clean.goodput_rps,
        "latency_p50_seconds": chaos_p["p50"],
        "latency_p99_seconds": chaos_p["p99"],
        "clean_latency_p99_seconds": clean_p["p99"],
        "error_rate": chaos.error_rate,
        "clean_error_rate": clean.error_rate,
        "error_budget": error_budget,
        "error_budget_burn": chaos.error_rate / error_budget,
        "errors_by_reason": chaos.errors_by_reason(),
        "faults_fired": {site: n for site, n in injector.fired.items() if n},
        "retries": resilience["retries"],
        "degraded_flushes": resilience["degraded_flushes"],
        "updates_rolled_back": resilience["updates_rolled_back"],
        "correctness_violations": violations,
    }
    return entry


def run_smoke(quick: bool = False) -> list[dict]:
    """Run the smoke sweep (2^14–2^18 keys) and return the result entries."""
    entries = []
    build_sizes = [14] if quick else [14, 16, 18]
    for log2_keys in build_sizes:
        entries.append(bench_build(log2_keys, "lbvh"))
    if not quick:
        # The reference SAH/median builders are too slow for the big sizes;
        # time them where a comparison stays cheap.
        entries.append(bench_build(14, "median"))
        entries.append(bench_build(14, "sah"))
    entries.append(bench_trace(14 if quick else 16, 14 if quick else 16))
    entries.append(bench_refit(14 if quick else 16))
    log2_pairs = 16 if quick else 20
    for kind in ("triangle", "sphere", "aabb"):
        entries.append(bench_intersect_pairs(kind, log2_pairs))
    entries.append(bench_trace_anyhit(10, 12 if quick else 16))
    # Paper-scale limited (LIMIT 8) range lookups in first_k mode.
    entries.append(bench_range_firstk(10, 12 if quick else 16))
    # Paper-scale ray batch (2^20 rays) streamed under a max_frontier bound.
    if quick:
        entries.append(bench_frontier(12, 14, max_frontier=2**12))
    else:
        entries.append(bench_frontier(16, 20, max_frontier=2**18))
    # Sharded forest build vs the serial single-tree build (one entry per
    # worker count; the pool only helps on multi-CPU hosts, which the
    # recorded workers/cpu_count fields make explicit).
    if quick:
        entries.extend(bench_build_forest(16, shard_bits=4, workers_list=(1, 2)))
    else:
        entries.extend(bench_build_forest(20, shard_bits=6, workers_list=(1, 4)))
    # Micro-batched serving of a Zipf point-lookup stream (2^16 requests at
    # full size) vs one-query-per-launch, with demux equivalence asserted on
    # the solo prefix.
    if quick:
        entries.append(bench_serve(12, 10, max_batch=256, solo_cap=256))
    else:
        entries.append(bench_serve(16, 16, max_batch=4096, solo_cap=4096))
    # The same Zipf stream replayed under a seeded fault schedule (launch
    # failures + latency, cache faults, one update rolled back), with every
    # success verified bit-identical against its serving epoch.
    if quick:
        entries.append(bench_chaos_serve(12, 10, max_batch=256))
    else:
        entries.append(bench_chaos_serve(16, 13, max_batch=1024))
    # Keyset-cursor pagination: resumed page vs full-prefix rescan.
    if quick:
        entries.append(bench_paging(14, 10, page_size=64))
    else:
        entries.append(bench_paging(20, 16, page_size=64))
    return entries


#: Keys every BENCH entry must carry before it may enter the artifact: the
#: scenario identity plus the full timing-distribution block.  A scenario
#: that forgets one (a new bench hand-rolling its entry dict instead of
#: spreading ``_time_stats``) would silently poison the trajectory for
#: every later comparison, so ``append_artifact`` refuses it up front.
REQUIRED_ENTRY_KEYS = (
    "path",
    "new_seconds",
    "new_seconds_p50",
    "new_seconds_p95",
    "timing_repeats",
)


def validate_entries(entries: list[dict]) -> None:
    """Reject malformed BENCH entries before they reach the artifact."""
    for position, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ValueError(
                f"BENCH entry #{position} is {type(entry).__name__}, not a dict"
            )
        missing = [key for key in REQUIRED_ENTRY_KEYS if key not in entry]
        if missing:
            label = entry.get("path", f"#{position}")
            raise ValueError(
                f"BENCH entry {label!r} is missing required keys: "
                f"{', '.join(missing)}"
            )


def append_artifact(entries: list[dict], path: Path = DEFAULT_ARTIFACT) -> dict:
    """Append one run to the ``BENCH_engine.json`` trajectory artifact.

    Every entry records the worker-pool size and shard count it ran with
    (1/1 for the unsharded serial paths) plus the run records the host CPU
    count, so trajectories from machines with different parallel hardware
    remain comparable.  Entries missing the required identity/timing keys
    are rejected (:func:`validate_entries`) before anything is written.
    """
    validate_entries(entries)
    if path.exists():
        trajectory = json.loads(path.read_text())
    else:
        trajectory = {"description": "engine wall-clock trajectory", "runs": []}
    for entry in entries:
        entry.setdefault("workers", 1)
        entry.setdefault("shards", 1)
    run = {
        "unix_time": time.time(),
        "cpu_count": os.cpu_count() or 1,
        "peak_workers": max(entry["workers"] for entry in entries),
        "entries": entries,
    }
    trajectory["runs"].append(run)
    path.write_text(json.dumps(trajectory, indent=2) + "\n")
    return run


def check_targets(entries: list[dict]) -> list[str]:
    """Return a list of target violations (empty = all good)."""
    problems = []
    for entry in entries:
        speedup = entry.get("speedup")
        if speedup is None:
            continue
        if entry["path"] == "build" and entry["builder"] == "lbvh" and entry["log2_keys"] >= 18:
            if speedup < BUILD_SPEEDUP_TARGET:
                problems.append(
                    f"build lbvh 2^{entry['log2_keys']}: {speedup:.2f}x < {BUILD_SPEEDUP_TARGET}x"
                )
        if entry["path"] == "trace" and entry["log2_rays"] >= 16:
            if speedup < TRACE_SPEEDUP_TARGET:
                problems.append(
                    f"trace 2^{entry['log2_rays']} rays: {speedup:.2f}x < {TRACE_SPEEDUP_TARGET}x"
                )
        if (
            entry["path"] == "intersect"
            and entry["kind"] == "triangle"
            and entry["log2_pairs"] >= 20
        ):
            if speedup < INTERSECT_SPEEDUP_TARGET:
                problems.append(
                    f"intersect triangle 2^{entry['log2_pairs']} pairs: "
                    f"{speedup:.2f}x < {INTERSECT_SPEEDUP_TARGET}x"
                )
        if entry["path"] == "trace_firstk" and entry["log2_rays"] >= 16:
            if speedup < FIRSTK_SPEEDUP_TARGET:
                problems.append(
                    f"first_k 2^{entry['log2_rays']} range rays: "
                    f"{speedup:.2f}x < {FIRSTK_SPEEDUP_TARGET}x"
                )
        if (
            entry["path"] == "build_forest"
            and entry["log2_keys"] >= 20
            and entry["workers_requested"] >= 4
        ):
            # A worker pool cannot beat the serial build without CPUs to run
            # on; the target binds only where the hardware allows it (the
            # entry records cpu_count so skips are visible in the artifact).
            if entry["cpu_count"] >= FOREST_TARGET_MIN_CPUS:
                if speedup < FOREST_BUILD_SPEEDUP_TARGET:
                    problems.append(
                        f"forest build ({entry.get('backend', 'fork')}) "
                        f"2^{entry['log2_keys']} keys, "
                        f"{entry['workers_requested']} workers: "
                        f"{speedup:.2f}x < {FOREST_BUILD_SPEEDUP_TARGET}x"
                    )
                # The zero-copy backend exists to beat fork head-to-head at
                # the same worker count; recorded everywhere, enforced only
                # where the pool has real CPUs under it.
                if (
                    entry.get("backend") == "shm"
                    and entry.get("speedup_vs_fork") is not None
                    and entry["speedup_vs_fork"] < 1.0
                ):
                    problems.append(
                        f"shm build 2^{entry['log2_keys']} keys, "
                        f"{entry['workers_requested']} workers: "
                        f"{entry['speedup_vs_fork']:.2f}x vs fork (< 1.0x)"
                    )
        if entry["path"] == "serve" and entry["log2_requests"] >= 16:
            if speedup < SERVE_SPEEDUP_TARGET:
                problems.append(
                    f"serve 2^{entry['log2_requests']} Zipf requests: "
                    f"{speedup:.2f}x < {SERVE_SPEEDUP_TARGET}x"
                )
        if entry["path"] == "paging" and entry["log2_keys"] >= 20:
            if speedup < PAGING_SPEEDUP_TARGET:
                problems.append(
                    f"paging 2^{entry['log2_range_rows']}-row scan, "
                    f"k={entry['page_size']}: resume {speedup:.2f}x < "
                    f"{PAGING_SPEEDUP_TARGET}x vs prefix rescan"
                )
        if entry["path"] == "restart" and entry["log2_keys"] >= 20:
            if speedup < RESTART_SPEEDUP_TARGET:
                problems.append(
                    f"restart 2^{entry['log2_keys']} keys: cold load "
                    f"{speedup:.2f}x < {RESTART_SPEEDUP_TARGET}x vs rebuild"
                )
    return problems


def format_table(entries: list[dict]) -> str:
    lines = [
        f"{'path':<15}{'config':<26}{'new (s)':>10}{'ref (s)':>10}{'speedup':>10}",
        "-" * 71,
    ]
    for entry in entries:
        if entry["path"] == "build":
            config = f"{entry['builder']} 2^{entry['log2_keys']} keys"
        elif entry["path"] == "build_forest":
            config = (
                f"2^{entry['log2_keys']} {entry.get('backend', 'fork')} "
                f"w={entry['workers_requested']}"
            )
        elif entry["path"] == "trace_firstk":
            config = f"2^{entry['log2_rays']} rays k={entry['limit']}"
        elif entry["path"] in ("trace", "trace_anyhit"):
            config = f"2^{entry['log2_rays']} rays / 2^{entry['log2_keys']} keys"
        elif entry["path"] == "trace_frontier":
            config = f"2^{entry['log2_rays']} rays cap {entry['max_frontier']}"
        elif entry["path"] == "intersect":
            config = f"{entry['kind']} 2^{entry['log2_pairs']} pairs"
        elif entry["path"] == "serve":
            config = f"2^{entry['log2_requests']} req b={entry['max_batch']}"
        elif entry["path"] == "chaos_serve":
            config = (
                f"2^{entry['log2_requests']} req "
                f"err={entry['error_rate']:.1%}"
            )
        elif entry["path"] == "paging":
            config = (
                f"2^{entry['log2_range_rows']} rows k={entry['page_size']}"
            )
        elif entry["path"] == "restart":
            config = (
                f"2^{entry['log2_keys']} keys "
                f"{entry['bytes_on_disk'] / 1e6:.0f} MB"
            )
        else:
            config = f"2^{entry['log2_keys']} keys"
        ref = entry.get("ref_seconds")
        speedup = entry.get("speedup")
        lines.append(
            f"{entry['path']:<15}{config:<26}{entry['new_seconds']:>10.3f}"
            f"{ref if ref is not None else float('nan'):>10.3f}"
            f"{speedup if speedup is not None else float('nan'):>9.2f}x"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small sizes only")
    parser.add_argument(
        "--strict", action="store_true", help="exit non-zero if targets are missed"
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_ARTIFACT, help="trajectory artifact path"
    )
    parser.add_argument(
        "--check-only",
        action="store_true",
        help="run the equivalence assertions at small sizes without timing "
        "thresholds or artifact writes (for CI)",
    )
    parser.add_argument(
        "--serve-only",
        action="store_true",
        help="run only the serving-layer scenario (combine with --check-only "
        "for the CI gate: small sizes, demux equivalence asserted, no "
        "timing thresholds or artifact writes)",
    )
    parser.add_argument(
        "--chaos-only",
        action="store_true",
        help="run only the fault-injection serving scenario (combine with "
        "--check-only for the CI gate: small sizes, per-epoch bit-identity "
        "and explicit-outcome accounting asserted, no artifact writes)",
    )
    parser.add_argument(
        "--paging-only",
        action="store_true",
        help="run only the cursor-pagination scenario (combine with "
        "--check-only for the CI gate: small sizes, page bit-identity and "
        "O(page)-vs-O(prefix) counter ordering asserted, no artifact "
        "writes; make bench-paging)",
    )
    parser.add_argument(
        "--build-only",
        action="store_true",
        help="run only the forest-build scenario (serial vs fork vs shm, "
        "bit-identity asserted, artifact appended); the parallel targets "
        "are enforced — but only bind on hosts with >= "
        f"{FOREST_TARGET_MIN_CPUS} CPUs (make bench-build)",
    )
    parser.add_argument(
        "--restart-only",
        action="store_true",
        help="run only the warm-restart scenario (cold snapshot load to "
        "first query vs full rebuild, identity asserted, artifact "
        "appended; the restart target is enforced at 2^20 keys and up; "
        "make bench-restart)",
    )
    parser.add_argument(
        "--scale",
        choices=("tiny", "paper"),
        default="tiny",
        help="key count of the --build-only / --restart-only scenarios: "
        "tiny = 2^20 (the CI gate), paper = 2^26 (the paper-scale column "
        "— for builds ~40 GB of shared blocks and several minutes of "
        "wall-clock)",
    )
    args = parser.parse_args(argv)

    if args.restart_only:
        log2_keys = 20 if args.scale == "tiny" else 26
        entries = [bench_restart(log2_keys)]
        append_artifact(entries, args.out)
        print(format_table(entries))
        problems = check_targets(entries)
        if problems:
            print("\nTARGETS MISSED:")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print("\nrestart target met")
        return 0

    if args.build_only:
        log2_keys = 20 if args.scale == "tiny" else 26
        entries = bench_build_forest(
            log2_keys,
            shard_bits=6,
            workers_list=(1, 4),
            # The paper-scale single tree would dominate the run; the
            # backends still cross-check against each other via the gate.
            compare=args.scale == "tiny",
        )
        append_artifact(entries, args.out)
        print(format_table(entries))
        problems = check_targets(entries)
        if problems:
            print("\nTARGETS MISSED:")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        cpus = os.cpu_count() or 1
        if cpus < FOREST_TARGET_MIN_CPUS:
            print(
                f"\nbuild targets recorded, not enforced ({cpus} CPUs < "
                f"{FOREST_TARGET_MIN_CPUS})"
            )
        else:
            print("\nbuild targets met")
        return 0

    if args.serve_only and args.check_only:
        entries = [bench_serve(12, 10, max_batch=256, solo_cap=256)]
        print(format_table(entries))
        print("\nserve equivalence checks passed (timings not enforced)")
        return 0

    if args.chaos_only and args.check_only:
        entries = [bench_chaos_serve(12, 10, max_batch=256)]
        print(format_table(entries))
        print("\nchaos serve correctness checks passed (timings not enforced)")
        return 0

    if args.paging_only and args.check_only:
        entries = [bench_paging(14, 10, page_size=64)]
        print(format_table(entries))
        print("\npaging equivalence checks passed (timings not enforced)")
        return 0

    if args.check_only:
        # Every bench function asserts observable equivalence against its
        # reference on the way; small sizes keep this cheap enough for CI.
        entries = run_smoke(quick=True)
        print(format_table(entries))
        print("\nequivalence checks passed (timings not enforced)")
        return 0

    if args.serve_only:
        entries = [
            bench_serve(12, 10, max_batch=256, solo_cap=256)
            if args.quick
            else bench_serve(16, 16, max_batch=4096, solo_cap=4096)
        ]
    elif args.chaos_only:
        entries = [
            bench_chaos_serve(12, 10, max_batch=256)
            if args.quick
            else bench_chaos_serve(16, 13, max_batch=1024)
        ]
    elif args.paging_only:
        entries = [
            bench_paging(14, 10, page_size=64)
            if args.quick
            else bench_paging(20, 16, page_size=64)
        ]
    else:
        entries = run_smoke(quick=args.quick)
    append_artifact(entries, args.out)
    print(format_table(entries))
    problems = check_targets(entries)
    if problems:
        print("\nTARGETS MISSED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1 if args.strict else 0
    print("\nall speedup targets met")
    return 0


if __name__ == "__main__":
    sys.exit(main())
