"""Benchmark regenerating Table 3 of the paper.

Runs the corresponding experiment module end to end (functional simulation at
the ``tiny`` scale plus cost-model extrapolation to the paper's workload) and
reports its wall-clock cost via pytest-benchmark.  The printed result table is
the reproduction of the paper's Table 3.
"""

import pytest

from repro.bench.experiments import table03_range_origin as experiment


@pytest.mark.benchmark(group="table3")
def test_table3_range_ray_origin(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(scale="tiny"), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.series, "experiment produced no series"
    print()
    print(result.to_text())
