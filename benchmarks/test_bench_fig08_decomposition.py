"""Benchmark regenerating Figures 8 and 9 of the paper.

Runs the corresponding experiment module end to end (functional simulation at
the ``tiny`` scale plus cost-model extrapolation to the paper's workload) and
reports its wall-clock cost via pytest-benchmark.  The printed result table is
the reproduction of the paper's Figures 8 and 9.
"""

import pytest

from repro.bench.experiments import fig08_decomposition as experiment


@pytest.mark.benchmark(group="fig8")
def test_fig8_point_decompositions(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(scale="tiny"), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.series, "experiment produced no series"
    print()
    print(result.to_text())

@pytest.mark.benchmark(group="fig9")
def test_fig9_range_decompositions(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run_fig9(scale="tiny"), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.series, "experiment produced no series"
    print()
    print(result.to_text())
