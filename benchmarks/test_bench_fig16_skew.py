"""Benchmark regenerating Figure 16 of the paper.

Runs the corresponding experiment module end to end (functional simulation at
the ``tiny`` scale plus cost-model extrapolation to the paper's workload) and
reports its wall-clock cost via pytest-benchmark.  The printed result table is
the reproduction of the paper's Figure 16.
"""

import pytest

from repro.bench.experiments import fig16_skew as experiment


@pytest.mark.benchmark(group="fig16")
def test_fig16_zipf_skew_unsorted(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(scale="tiny", sorted_lookups=False), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.series, "experiment produced no series"
    print()
    print(result.to_text())

@pytest.mark.benchmark(group="fig16")
def test_fig16_zipf_skew_sorted(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(scale="tiny", sorted_lookups=True), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.series, "experiment produced no series"
    print()
    print(result.to_text())
