"""Benchmark regenerating Figure 14 of the paper.

Runs the corresponding experiment module end to end (functional simulation at
the ``tiny`` scale plus cost-model extrapolation to the paper's workload) and
reports its wall-clock cost via pytest-benchmark.  The printed result table is
the reproduction of the paper's Figure 14.
"""

import pytest

from repro.bench.experiments import fig14_hitrate as experiment


@pytest.mark.benchmark(group="fig14")
def test_fig14_hit_rate_unsorted(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(scale="tiny", sorted_lookups=False), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.series, "experiment produced no series"
    print()
    print(result.to_text())

@pytest.mark.benchmark(group="fig14")
def test_fig14_hit_rate_sorted(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(scale="tiny", sorted_lookups=True), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.series, "experiment produced no series"
    print()
    print(result.to_text())
