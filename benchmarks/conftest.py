"""Benchmark-suite configuration.

Every benchmark regenerates one table or figure of the paper.  The experiment
functions already average/extrapolate internally, so a single round per
benchmark is sufficient and keeps the whole suite fast.
"""
