"""Benchmark regenerating Table 5 of the paper.

Runs the corresponding experiment module end to end (functional simulation at
the ``tiny`` scale plus cost-model extrapolation to the paper's workload) and
reports its wall-clock cost via pytest-benchmark.  The printed result table is
the reproduction of the paper's Table 5.
"""

import pytest

from repro.bench.experiments import table05_warps as experiment


@pytest.mark.benchmark(group="table5")
def test_table5_warp_occupancy(benchmark):
    result = benchmark.pedantic(
        lambda: experiment.run(scale="tiny"), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.series, "experiment produced no series"
    print()
    print(result.to_text())
