"""CUB ``DeviceRadixSort`` — functional result plus cost model.

The paper uses CUB's key-value radix sort in three places: the B+-Tree and
sorted-array builds, and the optional sorting of lookup batches
(Sections 4.1, 4.4, 4.5).  Functionally we only need a stable key-value sort
(NumPy ``argsort``); the cost model charges the passes an out-of-place LSD
radix sort performs: each pass streams keys and values in and out of DRAM
once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.counters import WorkProfile

#: Radix bits resolved per pass (CUB uses 6–8 depending on key size; 8 keeps
#: the arithmetic simple and matches the 4-pass behaviour for 32-bit keys).
RADIX_BITS_PER_PASS = 8

#: Below this many items the sort run time no longer shrinks: kernel launch
#: and histogram overheads dominate (the paper observes the run time of
#: DeviceRadixSort stabilising at a lower bound for batches below 2^20).
MIN_EFFECTIVE_ITEMS = 2**20


@dataclass
class RadixSortResult:
    """Sorted keys/values plus the work profile of the sort."""

    keys: np.ndarray
    values: np.ndarray
    profile: WorkProfile


class DeviceRadixSort:
    """Functional + modelled replacement for CUB's DeviceRadixSort."""

    def __init__(self, key_bytes: int = 4, value_bytes: int = 4):
        if key_bytes not in (4, 8):
            raise ValueError("key_bytes must be 4 or 8")
        if value_bytes not in (0, 4, 8):
            raise ValueError("value_bytes must be 0, 4 or 8")
        self.key_bytes = key_bytes
        self.value_bytes = value_bytes

    @property
    def passes(self) -> int:
        return (self.key_bytes * 8 + RADIX_BITS_PER_PASS - 1) // RADIX_BITS_PER_PASS

    def sort_pairs(self, keys: np.ndarray, values: np.ndarray | None = None) -> RadixSortResult:
        """Sort ``keys`` ascending, permuting ``values`` alongside."""
        keys = np.asarray(keys)
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        if values is None:
            sorted_values = order.astype(np.uint64)
        else:
            values = np.asarray(values)
            if values.shape[0] != keys.shape[0]:
                raise ValueError("keys and values must have the same length")
            sorted_values = values[order]
        profile = self.work_profile(keys.shape[0])
        return RadixSortResult(keys=sorted_keys, values=sorted_values, profile=profile)

    def work_profile(self, num_items: int, num_invocations: int = 1) -> WorkProfile:
        """Work profile of sorting ``num_items`` pairs, ``num_invocations`` times.

        Small batches are clamped to ``MIN_EFFECTIVE_ITEMS`` per invocation to
        model the sort's fixed lower bound.
        """
        effective = max(int(num_items), 1)
        charged = max(effective, MIN_EFFECTIVE_ITEMS if num_invocations > 1 or effective < MIN_EFFECTIVE_ITEMS else effective)
        item_bytes = self.key_bytes + self.value_bytes
        # Each pass reads and writes every key/value pair once (out of place).
        bytes_per_invocation = 2.0 * self.passes * charged * item_bytes
        instructions_per_invocation = 12.0 * self.passes * charged
        return WorkProfile(
            name="radix_sort",
            threads=effective,
            instructions=instructions_per_invocation * num_invocations,
            bytes_accessed=bytes_per_invocation * num_invocations,
            working_set_bytes=2.0 * effective * item_bytes,
            serial_depth=0.0,
            kernel_launches=2 * self.passes * num_invocations,
            # Radix sort streams sequentially: perfect coalescing, no reuse.
            locality=0.0,
            dram_bytes_min=bytes_per_invocation * num_invocations * 0.9,
        )


def sort_cost_profile(
    num_items: int,
    key_bytes: int = 4,
    value_bytes: int = 4,
    num_invocations: int = 1,
) -> WorkProfile:
    """Convenience wrapper used by experiments that only need the cost."""
    sorter = DeviceRadixSort(key_bytes=key_bytes, value_bytes=value_bytes)
    return sorter.work_profile(num_items, num_invocations=num_invocations)
