"""GPU device specifications.

The presets correspond to the four test systems of Table 8 in the paper,
spanning three RTX generations (Turing, Ampere, Ada Lovelace).  Only the
attributes the cost model needs are included; the RT-core intersection
throughput doubles with every generation, as stated by NVIDIA's architecture
whitepapers and quoted in Section 4.10.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one GPU.

    Attributes
    ----------
    name, architecture:
        Marketing name and architecture family ("Turing", "Ampere", "Ada").
    sm_count:
        Number of streaming multiprocessors.
    max_warps_per_sm:
        Warps one SM can keep in flight for the raytracing pipeline (the
        paper measures 16 for RX on the RTX 4090).
    clock_ghz:
        Sustained SM clock.
    dram_bandwidth_gbs:
        Peak device-memory bandwidth in GB/s.
    l2_size_bytes:
        Size of the L2 cache.
    rt_core_count:
        Number of raytracing cores.
    rt_core_generation:
        1 (Turing), 2 (Ampere), 3 (Ada); intersection throughput per core
        doubles each generation.
    vram_bytes:
        Total device memory.
    mem_latency_ns:
        Average DRAM access latency (used for dependent-access chains).
    kernel_launch_overhead_us:
        Host-side cost of launching one kernel / one OptiX pipeline.
    """

    name: str
    architecture: str
    sm_count: int
    max_warps_per_sm: int
    clock_ghz: float
    dram_bandwidth_gbs: float
    l2_size_bytes: int
    rt_core_count: int
    rt_core_generation: int
    vram_bytes: int
    mem_latency_ns: float = 480.0
    kernel_launch_overhead_us: float = 6.0
    instructions_per_clock_per_sm: float = 64.0

    @property
    def threads_in_flight(self) -> int:
        """Maximum resident threads across the whole device."""
        return self.sm_count * self.max_warps_per_sm * 32

    @property
    def rt_tests_per_second(self) -> float:
        """Aggregate ray/box + ray/triangle test throughput of the RT cores.

        Calibrated to ~1 test per RT core per clock on Turing, doubling per
        generation (NVIDIA quotes 2x ray/triangle throughput per generation).
        """
        per_core_per_clock = 1.0 * (2 ** (self.rt_core_generation - 1))
        return self.rt_core_count * per_core_per_clock * self.clock_ghz * 1e9

    @property
    def instructions_per_second(self) -> float:
        """Aggregate scalar instruction throughput of the SMs."""
        return self.sm_count * self.instructions_per_clock_per_sm * self.clock_ghz * 1e9

    @property
    def dram_bandwidth_bytes_per_s(self) -> float:
        return self.dram_bandwidth_gbs * 1e9


RTX_4090 = DeviceSpec(
    name="RTX 4090",
    architecture="Ada Lovelace",
    sm_count=128,
    max_warps_per_sm=16,
    clock_ghz=2.52,
    dram_bandwidth_gbs=1008.0,
    l2_size_bytes=72 * 1024 * 1024,
    rt_core_count=128,
    rt_core_generation=3,
    vram_bytes=24 * 1024**3,
)

RTX_A6000 = DeviceSpec(
    name="RTX A6000",
    architecture="Ampere",
    sm_count=84,
    max_warps_per_sm=16,
    clock_ghz=1.80,
    dram_bandwidth_gbs=768.0,
    l2_size_bytes=6 * 1024 * 1024,
    rt_core_count=84,
    rt_core_generation=2,
    vram_bytes=48 * 1024**3,
)

RTX_3090 = DeviceSpec(
    name="RTX 3090",
    architecture="Ampere",
    sm_count=82,
    max_warps_per_sm=16,
    clock_ghz=1.70,
    dram_bandwidth_gbs=936.0,
    l2_size_bytes=6 * 1024 * 1024,
    rt_core_count=82,
    rt_core_generation=2,
    vram_bytes=24 * 1024**3,
)

RTX_2080TI = DeviceSpec(
    name="RTX 2080 Ti",
    architecture="Turing",
    sm_count=68,
    max_warps_per_sm=16,
    clock_ghz=1.55,
    dram_bandwidth_gbs=616.0,
    l2_size_bytes=5632 * 1024,
    rt_core_count=68,
    rt_core_generation=1,
    vram_bytes=11 * 1024**3,
)

#: Presets keyed by short name; ``"4090"`` is the paper's primary test system.
DEVICE_PRESETS: dict[str, DeviceSpec] = {
    "4090": RTX_4090,
    "a6000": RTX_A6000,
    "3090": RTX_3090,
    "2080ti": RTX_2080TI,
}


def get_device(name: str) -> DeviceSpec:
    """Look up a device preset by short name (case-insensitive)."""
    key = name.lower().replace("rtx", "").replace(" ", "").replace("_", "")
    if key not in DEVICE_PRESETS:
        raise KeyError(
            f"unknown device {name!r}; available: {sorted(DEVICE_PRESETS)}"
        )
    return DEVICE_PRESETS[key]
