"""L2 cache model.

The paper's profiling repeatedly attributes performance transitions to the L2
cache: index structures that fit into the 72 MB L2 of the RTX 4090 make every
method compute-bound (Figure 10b, small build sets); skewed or sorted lookups
raise the cache hit rate and again shift the bottleneck from bandwidth to
instructions (Table 7, Figure 12).  This module provides a deliberately simple
analytic model of that behaviour: the hit rate is the fraction of the working
set that fits in L2, blended with an access-locality bonus.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import DeviceSpec


@dataclass
class CacheModel:
    """Analytic L2 hit-rate model.

    ``base hit rate = min(1, l2_size / working_set)`` — with a uniformly
    random access pattern, a cache of size C over a working set of size W
    serves roughly C/W of the accesses.

    ``locality`` in [0, 1] raises the hit rate toward 1: sorted lookups and
    Zipf-skewed lookups concentrate accesses on a small, hot subset of the
    structure, which the L2 retains.
    """

    device: DeviceSpec
    #: Fraction of the L2 usable for index data (the rest holds queues,
    #: instruction caches, spill, etc.).
    usable_fraction: float = 0.85
    #: Minimum hit rate: headers and top tree levels are always cached.
    floor_hit_rate: float = 0.20

    def hit_rate(self, working_set_bytes: float, locality: float = 0.0) -> float:
        """Estimated L2 hit rate for a phase with the given working set."""
        if working_set_bytes <= 0:
            return 1.0
        locality = min(max(locality, 0.0), 1.0)
        usable = self.device.l2_size_bytes * self.usable_fraction
        base = min(1.0, usable / float(working_set_bytes))
        base = max(base, self.floor_hit_rate)
        return base + (1.0 - base) * locality

    def dram_bytes(
        self,
        bytes_accessed: float,
        working_set_bytes: float,
        locality: float = 0.0,
        dram_bytes_min: float = 0.0,
        hot_fraction: float = 0.0,
    ) -> float:
        """Bytes that actually reach DRAM after the L2 filtered the accesses.

        ``hot_fraction`` of the accesses targets a small, heavily reused
        region (top tree levels) that stays cached regardless of the working
        set.  The cache can never eliminate compulsory misses: every byte of
        the working set that is touched at all must be fetched at least once,
        and the phase's declared streaming traffic (``dram_bytes_min``)
        bypasses the cache entirely.
        """
        hot_fraction = min(max(hot_fraction, 0.0), 1.0)
        locality = min(max(locality, 0.0), 1.0)
        hit = self.hit_rate(working_set_bytes, locality)
        cold_bytes = bytes_accessed * (1.0 - hot_fraction)
        filtered = cold_bytes * (1.0 - hit)
        # Compulsory misses: the part of the working set the cold accesses
        # actually touch has to be fetched at least once.  Locality shrinks
        # the touched region, the hot region is assumed resident.
        touched = min(working_set_bytes, cold_bytes) * (1.0 - locality)
        return max(filtered, touched) + max(dram_bytes_min, 0.0)
