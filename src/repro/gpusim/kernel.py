"""Kernel occupancy and launch-overhead model.

Reproduces the saturation behaviour the paper analyses in Section 4.2
(Table 5): small lookup batches cannot fill the GPU — fewer than the maximum
16 warps are resident per SM, memory latencies cannot be hidden, and the
achieved memory bandwidth stays well below peak.  Batches beyond ~2^21
lookups saturate both warp slots and bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import DeviceSpec


@dataclass
class OccupancyModel:
    """Maps a batch size (threads) to occupancy and bandwidth efficiency."""

    device: DeviceSpec
    #: Bandwidth utilisation achievable at full occupancy (Table 5 measures
    #: ~79% of peak for the largest batches).
    max_bandwidth_fraction: float = 0.80
    #: Bandwidth utilisation floor for tiny batches.
    min_bandwidth_fraction: float = 0.18

    def active_warps_per_sm(self, threads: int) -> float:
        """Average number of resident warps per SM for a batch of ``threads``.

        Threads are distributed over all SMs in warps of 32; per SM at most
        ``max_warps_per_sm`` can be resident.  The asymptotic approach to the
        maximum mirrors the measured values of Table 5 (e.g. ~14.25 active
        warps for 2^21 lookups on 128 SMs).
        """
        if threads <= 0:
            return 0.0
        warps_total = threads / 32.0
        warps_per_sm = warps_total / self.device.sm_count
        max_warps = float(self.device.max_warps_per_sm)
        # Scheduling inefficiency: some warps finish early, so the average
        # resident count approaches the limit asymptotically.
        return max_warps * (1.0 - pow(2.718281828, -warps_per_sm / (max_warps * 0.55)))

    def occupancy(self, threads: int) -> float:
        """Occupancy in [0, 1]: fraction of the maximum resident warps."""
        if threads <= 0:
            return 0.0
        return self.active_warps_per_sm(threads) / self.device.max_warps_per_sm

    def bandwidth_fraction(self, threads: int) -> float:
        """Achievable fraction of peak DRAM bandwidth for the batch size."""
        occ = self.occupancy(threads)
        return (
            self.min_bandwidth_fraction
            + (self.max_bandwidth_fraction - self.min_bandwidth_fraction) * occ
        )

    def launch_overhead_ms(self, kernel_launches: int) -> float:
        """Host-side launch overhead for ``kernel_launches`` launches."""
        return kernel_launches * self.device.kernel_launch_overhead_us / 1000.0

    def latency_bound_ms(self, threads: int, serial_depth: float) -> float:
        """Time needed to cover each thread's dependent-load chain.

        Each thread performs ``serial_depth`` dependent memory accesses of
        ``mem_latency_ns`` each.  The device can keep ``threads_in_flight``
        threads resident, so the chains of successive thread waves execute
        back to back while memory latency within a wave is only hidden by
        other warps up to the occupancy limit.
        """
        if threads <= 0 or serial_depth <= 0:
            return 0.0
        waves = max(threads / self.device.threads_in_flight, 1.0)
        chain_ns = serial_depth * self.device.mem_latency_ns
        # Dependent random loads overlap poorly even at full occupancy: the
        # next address is only known once the previous load returned, so the
        # warp scheduler can hide only a fraction of each chain step.  This is
        # what makes the binary-search baseline latency-bound (Section 4.2).
        occ = max(self.occupancy(threads), 0.05)
        hiding = 0.15 + 0.20 * occ
        return waves * chain_ns / hiding / 1e6
