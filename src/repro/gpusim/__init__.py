"""Analytic GPU execution model.

The functional layer (:mod:`repro.rtx`, :mod:`repro.baselines`) produces exact
results plus *work counters* (instructions, bytes touched, dependent memory
accesses, RT-core intersection tests).  This subpackage converts those
counters into simulated kernel times for a particular GPU, using a
roofline-style model:

``time = max(compute, memory bandwidth, RT-core throughput, latency chain)``

per kernel, plus per-launch overheads.  Device presets mirror the four test
systems of Table 8 in the paper (RTX 2080 Ti, RTX 3090, RTX A6000, RTX 4090).
"""

from repro.gpusim.cache import CacheModel
from repro.gpusim.costmodel import CostModel, KernelCost
from repro.gpusim.counters import WorkProfile
from repro.gpusim.device import (
    DEVICE_PRESETS,
    RTX_2080TI,
    RTX_3090,
    RTX_4090,
    RTX_A6000,
    DeviceSpec,
)
from repro.gpusim.kernel import OccupancyModel
from repro.gpusim.sorting import DeviceRadixSort

__all__ = [
    "CacheModel",
    "CostModel",
    "DeviceRadixSort",
    "DeviceSpec",
    "DEVICE_PRESETS",
    "KernelCost",
    "OccupancyModel",
    "RTX_2080TI",
    "RTX_3090",
    "RTX_4090",
    "RTX_A6000",
    "WorkProfile",
]
