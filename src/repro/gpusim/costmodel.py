"""Roofline-style cost model: work profiles -> simulated milliseconds.

For every kernel-like phase the model evaluates four potential bottlenecks
and charges the slowest one, mirroring how the paper reasons about its
profiling results:

* **compute** — scalar instructions over the SMs' instruction throughput
  (scaled by occupancy),
* **memory** — DRAM traffic (after the L2 filtered it) over the achievable
  bandwidth for the batch size,
* **RT cores** — ray/box and ray/primitive tests over the RT-core throughput
  of the device generation,
* **latency** — dependent-load chains that neither bandwidth nor compute can
  hide (binary search is the canonical victim).

Launch overheads are added per kernel launch, which is what makes very small
batches unattractive (Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.cache import CacheModel
from repro.gpusim.counters import WorkProfile
from repro.gpusim.device import RTX_4090, DeviceSpec
from repro.gpusim.kernel import OccupancyModel


@dataclass
class KernelCost:
    """Breakdown of the simulated cost of one phase."""

    profile_name: str
    time_ms: float
    compute_ms: float
    memory_ms: float
    rt_ms: float
    latency_ms: float
    launch_overhead_ms: float
    dram_bytes: float
    l2_hit_rate: float
    active_warps_per_sm: float
    bandwidth_utilization: float
    bottleneck: str

    def as_dict(self) -> dict:
        return {
            "profile": self.profile_name,
            "time_ms": self.time_ms,
            "compute_ms": self.compute_ms,
            "memory_ms": self.memory_ms,
            "rt_ms": self.rt_ms,
            "latency_ms": self.latency_ms,
            "launch_overhead_ms": self.launch_overhead_ms,
            "dram_bytes": self.dram_bytes,
            "l2_hit_rate": self.l2_hit_rate,
            "active_warps_per_sm": self.active_warps_per_sm,
            "bandwidth_utilization": self.bandwidth_utilization,
            "bottleneck": self.bottleneck,
        }


@dataclass
class CostModel:
    """Converts :class:`WorkProfile` objects into simulated times."""

    device: DeviceSpec = field(default_factory=lambda: RTX_4090)

    def __post_init__(self) -> None:
        self.cache = CacheModel(self.device)
        self.occupancy = OccupancyModel(self.device)

    def kernel_cost(self, profile: WorkProfile) -> KernelCost:
        """Simulate one phase and return its cost breakdown."""
        device = self.device
        threads = max(int(profile.threads), 0)

        occ = self.occupancy.occupancy(threads)
        active_warps = self.occupancy.active_warps_per_sm(threads)
        bw_fraction = self.occupancy.bandwidth_fraction(threads)

        l2_hit = self.cache.hit_rate(profile.working_set_bytes, profile.locality)
        dram_bytes = self.cache.dram_bytes(
            profile.bytes_accessed,
            profile.working_set_bytes,
            profile.locality,
            profile.dram_bytes_min,
            profile.hot_fraction,
        )

        effective_bw = device.dram_bandwidth_bytes_per_s * bw_fraction
        memory_ms = dram_bytes / effective_bw * 1e3 if dram_bytes > 0 else 0.0

        # Low occupancy also throttles the achievable instruction rate.
        compute_rate = device.instructions_per_second * max(occ, 0.05)
        compute_ms = (
            profile.instructions / compute_rate * 1e3 if profile.instructions > 0 else 0.0
        )

        rt_rate = device.rt_tests_per_second * max(occ, 0.05)
        rt_ms = profile.rt_tests / rt_rate * 1e3 if profile.rt_tests > 0 else 0.0

        latency_ms = self.occupancy.latency_bound_ms(threads, profile.serial_depth)
        # Sorted or skewed lookups keep dependent loads in cache, which hides
        # most of their latency (Section 4.4).
        latency_ms *= 1.0 - 0.85 * min(max(profile.locality, 0.0), 1.0)

        launch_ms = self.occupancy.launch_overhead_ms(profile.kernel_launches)

        parts = {
            "compute": compute_ms,
            "memory": memory_ms,
            "rt": rt_ms,
            "latency": latency_ms,
        }
        bottleneck = max(parts, key=parts.get)
        time_ms = max(parts.values()) + launch_ms

        return KernelCost(
            profile_name=profile.name,
            time_ms=time_ms,
            compute_ms=compute_ms,
            memory_ms=memory_ms,
            rt_ms=rt_ms,
            latency_ms=latency_ms,
            launch_overhead_ms=launch_ms,
            dram_bytes=dram_bytes,
            l2_hit_rate=l2_hit,
            active_warps_per_sm=active_warps,
            bandwidth_utilization=bw_fraction if memory_ms >= max(parts.values()) else
            bw_fraction * (memory_ms / max(max(parts.values()), 1e-12)),
            bottleneck=bottleneck,
        )

    def time_ms(self, profile: WorkProfile) -> float:
        """Shortcut: simulated milliseconds of one phase."""
        return self.kernel_cost(profile).time_ms

    def total_time_ms(self, profiles: list[WorkProfile]) -> float:
        """Simulated milliseconds of several phases run back to back."""
        return sum(self.kernel_cost(p).time_ms for p in profiles)
