"""Work profiles: the interface between functional indexes and the cost model.

A :class:`WorkProfile` describes the device work performed by one kernel-like
phase (a lookup batch, an index build, a sort): how many logical threads run,
how many instructions they execute, how many bytes they request from the
memory system, how deep their dependent-load chains are, and how many RT-core
tests they issue.  The :class:`repro.gpusim.costmodel.CostModel` turns a
profile into simulated milliseconds; :class:`repro.gpusim.cache.CacheModel`
decides how many of the requested bytes actually reach DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass
class WorkProfile:
    """Device work performed by one kernel-like phase.

    Attributes
    ----------
    name:
        Label used in reports ("lookup", "build", "sort", ...).
    threads:
        Number of logical threads (one per lookup in the paper's setup).
    instructions:
        Total scalar instructions executed on the SMs.
    bytes_accessed:
        Total bytes requested from the memory hierarchy (before caches).
    working_set_bytes:
        Size of the data structure (plus any referenced columns) the phase
        touches; determines how much of the traffic the L2 can absorb.
    serial_depth:
        Dependent memory accesses per thread that cannot be overlapped within
        the thread (e.g. binary-search steps); produces a latency term.
    rt_tests:
        Ray/box and ray/primitive tests executed on the RT cores.
    kernel_launches:
        Number of kernel/pipeline launches in this phase.
    locality:
        Access-locality hint in [0, 1]; raised by sorted lookups and skew.
    hot_fraction:
        Fraction of ``bytes_accessed`` that targets a small, heavily reused
        region (e.g. the top levels of a tree) which the L2 retains
        regardless of the total working-set size.
    dram_bytes_min:
        Compulsory DRAM traffic that no cache can avoid (e.g. streaming
        writes of results, first-touch reads of the lookup array).
    """

    name: str
    threads: int
    instructions: float = 0.0
    bytes_accessed: float = 0.0
    working_set_bytes: float = 0.0
    serial_depth: float = 0.0
    rt_tests: float = 0.0
    kernel_launches: int = 1
    locality: float = 0.0
    hot_fraction: float = 0.0
    dram_bytes_min: float = 0.0
    metadata: dict = field(default_factory=dict)

    def scaled(self, factor: float) -> "WorkProfile":
        """Return a copy with all extensive quantities multiplied by ``factor``.

        Used when a phase is repeated (e.g. one sort per batch): threads,
        instructions, bytes and launches scale; the working set and locality
        do not.
        """
        return replace(
            self,
            threads=int(self.threads * factor),
            instructions=self.instructions * factor,
            bytes_accessed=self.bytes_accessed * factor,
            serial_depth=self.serial_depth,
            rt_tests=self.rt_tests * factor,
            kernel_launches=max(int(round(self.kernel_launches * factor)), 1),
            dram_bytes_min=self.dram_bytes_min * factor,
        )

    def merged_with(self, other: "WorkProfile", name: str | None = None) -> "WorkProfile":
        """Combine two phases that run back to back into one profile."""
        return WorkProfile(
            name=name or f"{self.name}+{other.name}",
            threads=max(self.threads, other.threads),
            instructions=self.instructions + other.instructions,
            bytes_accessed=self.bytes_accessed + other.bytes_accessed,
            working_set_bytes=max(self.working_set_bytes, other.working_set_bytes),
            serial_depth=self.serial_depth + other.serial_depth,
            rt_tests=self.rt_tests + other.rt_tests,
            kernel_launches=self.kernel_launches + other.kernel_launches,
            locality=min(self.locality, other.locality),
            dram_bytes_min=self.dram_bytes_min + other.dram_bytes_min,
        )


@dataclass
class ProfiledPhase:
    """A profile together with the cost the model assigned to it."""

    profile: WorkProfile
    time_ms: float
    details: dict = field(default_factory=dict)
