"""Common interface shared by every GPU-resident index (RX and baselines).

The benchmark harness interacts with indexes in two steps:

1. **Functional step** — build the index over a key array, run point/range
   lookup batches, and verify the returned rowIDs / aggregates against a
   NumPy reference.  This step also records *structural statistics* (probe
   counts, node visits, ...) measured at the simulation scale.
2. **Costing step** — ask the index for :class:`repro.gpusim.counters.WorkProfile`
   objects describing the device work of the build and the lookup batch,
   optionally extrapolated to the paper's scale (2^26 keys, 2^27 lookups),
   and feed them to :class:`repro.gpusim.costmodel.CostModel`.

Keeping the two steps separate lets the functional simulation stay small and
fast while the reported series retain the paper's shape.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field

import numpy as np

from repro.gpusim.counters import WorkProfile

#: Reserved value written into result arrays when a lookup finds no match,
#: mirroring the paper's miss sentinel.
MISS_SENTINEL = np.uint64(0xFFFFFFFFFFFFFFFF)


def keyset_page_slice(
    sorted_keys: np.ndarray,
    sorted_rows: np.ndarray,
    lower: int,
    upper: int,
    cursor_key: int | None = None,
    cursor_row: int | None = None,
) -> tuple[int, int]:
    """Slice bounds ``[lo, hi)`` of a keyset page over a sorted run.

    Selects the entries of a ``(key, rowID)``-sorted run that fall in the
    inclusive range ``[lower, upper]`` *strictly after* the cursor position
    — the resume arithmetic every sorted-run baseline (SA/B+/LSM levels)
    shares.  Rows ascend within every equal-key segment (the runs come from
    stable sorts over ascending rowIDs), so a cursor landing inside a
    duplicate-key run resumes mid-segment with one extra ``searchsorted``
    over the segment's rows: rows already paid out are skipped, none are
    re-emitted and none are dropped.
    """
    lo = int(np.searchsorted(sorted_keys, np.uint64(lower), side="left"))
    hi = int(np.searchsorted(sorted_keys, np.uint64(upper), side="right"))
    if cursor_key is not None:
        ck = np.uint64(cursor_key)
        run_lo = int(np.searchsorted(sorted_keys, ck, side="left"))
        run_hi = int(np.searchsorted(sorted_keys, ck, side="right"))
        skip = int(
            np.searchsorted(
                sorted_rows[run_lo:run_hi], np.uint64(cursor_row), side="right"
            )
        )
        lo = max(lo, run_lo + skip)
    return lo, max(hi, lo)


def expand_slices(start: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flatten per-query slices ``[start[i], start[i] + counts[i])`` into one
    int64 index array (the batched-gather idiom shared by every sorted-run
    probe: SA/B+/LSM range scans and the workload reference answers)."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    return np.arange(total, dtype=np.int64) - offsets + np.repeat(start, counts)


@dataclass
class MemoryFootprint:
    """Device memory of an index, as the paper reports it in Table 6."""

    final_bytes: int
    build_peak_bytes: int

    @property
    def build_overhead_bytes(self) -> int:
        """Extra memory needed only while building (peak minus final)."""
        return max(self.build_peak_bytes - self.final_bytes, 0)


@dataclass
class BuildResult:
    """Outcome of building an index over a key column."""

    num_keys: int
    key_bits: int
    memory: MemoryFootprint
    stats: dict = field(default_factory=dict)


@dataclass
class LookupRun:
    """Outcome of one lookup batch (functional results + structural stats).

    ``result_rows`` holds, for every lookup, the rowID of the first match or
    ``MISS_SENTINEL``; ``hits_per_lookup`` counts all matches (needed for
    duplicate keys and range lookups); ``aggregate`` is the sum of the values
    associated with every matching rowID — the paper's end-to-end result.
    ``stats`` carries per-index structural counters used for costing.
    """

    kind: str
    num_lookups: int
    result_rows: np.ndarray
    hits_per_lookup: np.ndarray
    aggregate: int
    stats: dict = field(default_factory=dict)
    #: for ordered (``order="key"``) lookups: the page's rowIDs in
    #: ``(key, row_id)`` order; ``None`` for unordered lookups, whose rowIDs
    #: arrive in traversal order and are only summarised above.
    row_ids: np.ndarray | None = None

    @property
    def total_hits(self) -> int:
        return int(self.hits_per_lookup.sum())

    @property
    def hit_rate(self) -> float:
        if self.num_lookups == 0:
            return 0.0
        return float((self.hits_per_lookup > 0).mean())


class GpuIndex(abc.ABC):
    """Abstract GPU index: build once, answer batched lookups."""

    #: short name used in reports ("RX", "HT", "B+", "SA", ...)
    name: str = "abstract"
    #: whether the index can answer range lookups at all
    supports_range_lookups: bool = True
    #: whether duplicate keys may be inserted
    supports_duplicates: bool = True
    #: maximum key width in bits (the GPU B+-Tree only supports 32)
    max_key_bits: int = 64

    def __init__(self) -> None:
        self._keys: np.ndarray | None = None
        self._values: np.ndarray | None = None
        self._build_result: BuildResult | None = None

    # ------------------------------------------------------------------ #
    # functional interface
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def build(self, keys: np.ndarray, values: np.ndarray | None = None) -> BuildResult:
        """Build the index over ``keys``; ``values[i]`` belongs to rowID ``i``."""

    @abc.abstractmethod
    def point_lookup(self, queries: np.ndarray) -> LookupRun:
        """Answer a batch of point lookups (one exact key per query)."""

    def range_lookup(self, lowers: np.ndarray, uppers: np.ndarray) -> LookupRun:
        """Answer a batch of inclusive range lookups ``[lowers[i], uppers[i]]``."""
        raise NotImplementedError(f"{self.name} does not support range lookups")

    # ------------------------------------------------------------------ #
    # costing interface
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def build_profiles(
        self, target_keys: int | None = None, presorted: bool = False
    ) -> list[WorkProfile]:
        """Work profiles of the build phase, extrapolated to ``target_keys``."""

    @abc.abstractmethod
    def lookup_profile(
        self,
        run: LookupRun,
        target_keys: int | None = None,
        target_lookups: int | None = None,
        locality: float = 0.0,
        value_bytes: int = 4,
    ) -> WorkProfile:
        """Work profile of a lookup batch, extrapolated to the target scale."""

    @abc.abstractmethod
    def memory_footprint(self, target_keys: int | None = None) -> MemoryFootprint:
        """Device memory of the index, extrapolated to ``target_keys`` keys."""

    # ------------------------------------------------------------------ #
    # shared helpers
    # ------------------------------------------------------------------ #

    @property
    def num_keys(self) -> int:
        if self._keys is None:
            raise RuntimeError(f"{self.name}: build() has not been called yet")
        return int(self._keys.shape[0])

    @property
    def keys(self) -> np.ndarray:
        if self._keys is None:
            raise RuntimeError(f"{self.name}: build() has not been called yet")
        return self._keys

    @property
    def values(self) -> np.ndarray:
        if self._values is None:
            raise RuntimeError(f"{self.name}: build() has not been called yet")
        return self._values

    def _store_column(self, keys: np.ndarray, values: np.ndarray | None, key_bits: int) -> None:
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.ndim != 1:
            raise ValueError("keys must be a one-dimensional array")
        if keys.shape[0] == 0:
            raise ValueError("cannot build an index over an empty key array")
        if key_bits < 64:
            limit = np.uint64(1) << np.uint64(key_bits)
            if np.any(keys >= limit):
                raise ValueError(
                    f"{self.name} supports at most {key_bits}-bit keys; got larger keys"
                )
        if values is None:
            values = np.arange(keys.shape[0], dtype=np.uint64)
        else:
            values = np.asarray(values, dtype=np.uint64)
            if values.shape != keys.shape:
                raise ValueError("values must have the same shape as keys")
        self._keys = keys
        self._values = values

    def _aggregate(self, row_ids: np.ndarray) -> int:
        """Sum the values referenced by ``row_ids`` (the paper's final result)."""
        if row_ids.size == 0:
            return 0
        return int(self.values[row_ids].sum(dtype=np.uint64))

    @staticmethod
    def _depth_delta(sim_keys: int, target_keys: int | None, base: float = 2.0) -> float:
        """Extra tree levels when scaling from ``sim_keys`` to ``target_keys``.

        Tree-structured indexes gain ``log_base(target / sim)`` levels; hash
        tables gain none (they pass ``base=None`` and skip the call).
        """
        if not target_keys or target_keys <= sim_keys:
            return 0.0
        return math.log(target_keys / sim_keys, base)

    @staticmethod
    def _scale_lookups(sim_lookups: int, target_lookups: int | None) -> float:
        if not target_lookups or sim_lookups == 0:
            return 1.0
        return target_lookups / sim_lookups

    @staticmethod
    def _key_scale(sim_keys: int, target_keys: int | None) -> float:
        if not target_keys or sim_keys == 0:
            return 1.0
        return target_keys / sim_keys
