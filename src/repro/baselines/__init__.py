"""Traditional GPU-resident index structures used as baselines.

The paper compares RX against three GPU indexes (Section 4.1):

* :class:`repro.baselines.hashtable.WarpCoreHashTable` (**HT**) — a
  WarpCore-style open-addressing hash table with cooperative probing,
* :class:`repro.baselines.btree.GpuBPlusTree` (**B+**) — a bulk-loaded GPU
  B+-Tree with 16-wide nodes and linked leaves,
* :class:`repro.baselines.sorted_array.SortedArrayIndex` (**SA**) — a sorted
  array probed with binary search.

:class:`repro.baselines.lsm.GpuLsmTree` implements the GPU LSM tree mentioned
in related work, used by our ablation benchmarks.

All of them, and RX itself, implement the common
:class:`repro.baselines.base.GpuIndex` interface so the benchmark harness can
treat them uniformly.
"""

from repro.baselines.base import (
    BuildResult,
    GpuIndex,
    LookupRun,
    MemoryFootprint,
    MISS_SENTINEL,
)
from repro.baselines.btree import GpuBPlusTree
from repro.baselines.hashtable import WarpCoreHashTable
from repro.baselines.lsm import GpuLsmTree
from repro.baselines.sorted_array import SortedArrayIndex

__all__ = [
    "BuildResult",
    "GpuBPlusTree",
    "GpuIndex",
    "GpuLsmTree",
    "LookupRun",
    "MISS_SENTINEL",
    "MemoryFootprint",
    "SortedArrayIndex",
    "WarpCoreHashTable",
]
