"""B+ — a bulk-loaded GPU B+-Tree (Awad et al. style).

The baseline in the paper traverses the tree in groups of 16 threads so that
the search within one node happens cooperatively with warp intrinsics; the
build phase sorts the keys with CUB's ``DeviceRadixSort`` and then bulk-loads
the tree.  Keys are restricted to 32 bits and duplicates are not supported,
both of which the paper calls out explicitly (Sections 4.1, 4.3, 4.7).

The implementation here stores the tree as one array per level (an implicit
B+-Tree): the leaf level holds the sorted keys with their rowIDs, inner
levels hold the separator keys of their children.  Lookups descend one level
at a time; range lookups locate the leaf of the lower bound and then scan
sideways, exactly like the linked-leaf traversal of the original.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.base import (
    BuildResult,
    GpuIndex,
    LookupRun,
    MemoryFootprint,
    MISS_SENTINEL,
    expand_slices,
    keyset_page_slice,
)
from repro.gpusim.counters import WorkProfile
from repro.gpusim.sorting import DeviceRadixSort

#: Keys per node; the paper's baseline cooperates in groups of 16 threads.
DEFAULT_NODE_WIDTH = 16
#: Bulk loads leave nodes partially filled so later inserts have room; the
#: original implementation targets roughly half-full nodes.
DEFAULT_FILL_FACTOR = 0.5


class GpuBPlusTree(GpuIndex):
    """Array-based bulk-loaded B+-Tree with linked leaves."""

    name = "B+"
    supports_range_lookups = True
    supports_duplicates = False
    max_key_bits = 32

    def __init__(
        self,
        node_width: int = DEFAULT_NODE_WIDTH,
        fill_factor: float = DEFAULT_FILL_FACTOR,
        key_bytes: int = 4,
        value_bytes: int = 4,
    ):
        super().__init__()
        if node_width < 2:
            raise ValueError("node_width must be at least 2")
        if not 0.1 < fill_factor <= 1.0:
            raise ValueError("fill_factor must be in (0.1, 1.0]")
        if key_bytes != 4:
            raise ValueError("the GPU B+-Tree baseline only supports 32-bit keys")
        self.node_width = node_width
        self.fill_factor = fill_factor
        self.key_bytes = key_bytes
        self.value_bytes = value_bytes
        self._sorted_keys: np.ndarray | None = None
        self._sorted_rows: np.ndarray | None = None
        self._levels: list[np.ndarray] = []

    # ------------------------------------------------------------------ #
    # build
    # ------------------------------------------------------------------ #

    def build(self, keys: np.ndarray, values: np.ndarray | None = None) -> BuildResult:
        keys = np.asarray(keys, dtype=np.uint64)
        if np.unique(keys).shape[0] != keys.shape[0]:
            raise ValueError("the GPU B+-Tree baseline does not support duplicate keys")
        self._store_column(keys, values, key_bits=self.max_key_bits)

        sorter = DeviceRadixSort(key_bytes=self.key_bytes, value_bytes=self.value_bytes)
        row_ids = np.arange(self.num_keys, dtype=np.uint64)
        sorted_result = sorter.sort_pairs(self.keys, row_ids)
        self._sorted_keys = sorted_result.keys
        self._sorted_rows = sorted_result.values
        self._sort_profile = sorted_result.profile

        # Build separator levels bottom-up: level 0 is the leaf level (keys),
        # level i+1 stores the first key of every node of level i.
        self._levels = []
        current = self._sorted_keys
        while current.shape[0] > self.node_width:
            firsts = current[:: self.node_width]
            self._levels.append(firsts)
            current = firsts
        self._levels.reverse()  # root first

        memory = self.memory_footprint()
        self._build_result = BuildResult(
            num_keys=self.num_keys,
            key_bits=self.max_key_bits,
            memory=memory,
            stats={
                "height": self.height,
                "node_width": self.node_width,
                "leaf_nodes": math.ceil(self.num_keys / self.node_width),
            },
        )
        return self._build_result

    @property
    def height(self) -> int:
        """Number of levels including the leaf level."""
        return len(self._levels) + 1

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #

    def _descend(self, queries: np.ndarray) -> np.ndarray:
        """Return, per query, the index of the first leaf slot >= query.

        A genuine level-by-level descent, vectorised across the whole query
        batch: at every level each query gathers its candidate node's
        ``node_width`` separators in one batched window gather (the same
        technique as the hash-table probe) and counts how many are <= the
        query.  The functional result is pinned to a plain ``searchsorted``
        on the leaf level by a regression test; one node visit per level is
        what the cost model charges.  This does ``height`` batched passes
        where a leaf-level ``searchsorted`` would do one — acceptable at the
        functional simulation scale, and it makes the charged node visits
        correspond to work the model actually performs.
        """
        queries = np.asarray(queries, dtype=np.uint64)
        w = self.node_width
        lane = np.arange(w, dtype=np.int64)[None, :]
        # node index within the current level; the root level is one node.
        node = np.zeros(queries.shape[0], dtype=np.int64)
        for level in self._levels:
            window_idx = node[:, None] * w + lane
            # The (possibly partial) last node's window runs past the level
            # array; padded slots are masked out of the separator count
            # explicitly (a pad *value* alone would miscount for a query
            # equal to the maximum uint64).
            valid = window_idx < level.shape[0]
            window = np.where(
                valid, level[np.minimum(window_idx, level.shape[0] - 1)], MISS_SENTINEL
            )
            # Child = last separator <= query (clamped to the first child so
            # queries below the whole tree descend leftmost).
            child = ((window <= queries[:, None]) & valid).sum(axis=1) - 1
            node = node * w + np.maximum(child, 0)
        # Final level: position within the leaf node's window of keys.
        window_idx = node[:, None] * w + lane
        valid = window_idx < self._sorted_keys.shape[0]
        window = np.where(
            valid,
            self._sorted_keys[np.minimum(window_idx, self._sorted_keys.shape[0] - 1)],
            MISS_SENTINEL,
        )
        within = ((window < queries[:, None]) & valid).sum(axis=1)
        return node * w + within

    def point_lookup(self, queries: np.ndarray) -> LookupRun:
        if self._sorted_keys is None:
            raise RuntimeError("build() must be called before lookups")
        queries = np.asarray(queries, dtype=np.uint64)
        m = queries.shape[0]

        pos = self._descend(queries)
        pos_clamped = np.minimum(pos, self.num_keys - 1)
        found = self._sorted_keys[pos_clamped] == queries
        result_rows = np.full(m, MISS_SENTINEL, dtype=np.uint64)
        result_rows[found] = self._sorted_rows[pos_clamped[found]]
        hits_per_lookup = found.astype(np.int64)
        aggregate = self._aggregate(self._sorted_rows[pos_clamped[found]].astype(np.int64))

        return LookupRun(
            kind="point",
            num_lookups=m,
            result_rows=result_rows,
            hits_per_lookup=hits_per_lookup,
            aggregate=aggregate,
            stats={
                "node_visits_per_lookup": float(self.height),
                "leaf_entries_scanned": 1.0,
            },
        )

    def range_lookup(
        self,
        lowers: np.ndarray,
        uppers: np.ndarray,
        limit: int | None = None,
        order: str | None = None,
        cursor: str | None = None,
    ) -> LookupRun:
        """Linked-leaf scan from the lower bound, optionally capped at ``limit``.

        With a limit the sideways leaf walk stops after ``limit`` qualifying
        entries, so both the leaf-node visits and the scanned entries the
        cost model charges reflect the cap.

        ``order="key"`` returns one ordered page ``(run, next_cursor)``
        exactly like :meth:`repro.core.rx_index.RXIndex.range_lookup`: a
        resumed page re-descends from the root and walks leaves sideways
        starting just past the cursor's ``(key, rowID)``.
        """
        if self._sorted_keys is None:
            raise RuntimeError("build() must be called before lookups")
        if order is not None:
            if order != "key":
                raise ValueError(f"order must be None or 'key', got {order!r}")
            return self._ordered_range_page(lowers, uppers, limit, cursor)
        if cursor is not None:
            raise ValueError("cursor resume requires order='key'")
        lowers = np.asarray(lowers, dtype=np.uint64)
        uppers = np.asarray(uppers, dtype=np.uint64)
        if lowers.shape != uppers.shape:
            raise ValueError("lowers and uppers must have the same shape")
        m = lowers.shape[0]

        start = np.searchsorted(self._sorted_keys, lowers, side="left")
        stop = np.searchsorted(self._sorted_keys, uppers, side="right")
        counts = (stop - start).astype(np.int64)
        if limit is not None:
            if limit < 1:
                raise ValueError(f"limit must be at least 1, got {limit}")
            counts = np.minimum(counts, int(limit))

        result_rows = np.full(m, MISS_SENTINEL, dtype=np.uint64)
        nonempty = counts > 0
        result_rows[nonempty] = self._sorted_rows[start[nonempty]]

        # Aggregate all returned values by expanding the per-range slices.
        aggregate = self._aggregate(
            self._sorted_rows[expand_slices(start, counts)].astype(np.int64)
        )

        leaves_scanned = 1.0 + counts.mean() / self.node_width if m else 1.0
        stats = {
            "node_visits_per_lookup": float(self.height) + float(leaves_scanned) - 1.0,
            "leaf_entries_scanned": float(counts.mean()) if m else 0.0,
        }
        if limit is not None:
            stats["range_limit"] = int(limit)
        return LookupRun(
            kind="range",
            num_lookups=m,
            result_rows=result_rows,
            hits_per_lookup=counts,
            aggregate=aggregate,
            stats=stats,
        )

    def _ordered_range_page(self, lowers, uppers, limit, cursor):
        """One keyset page of the linked leaves: ``(run, next_cursor)``."""
        from repro.core.cursor import encode_cursor, parse_cursor

        lowers = np.asarray(lowers, dtype=np.uint64).reshape(-1)
        uppers = np.asarray(uppers, dtype=np.uint64).reshape(-1)
        if lowers.shape[0] != 1 or uppers.shape[0] != 1:
            raise ValueError("order='key' pages one range at a time")
        if limit is None:
            raise ValueError("order='key' requires a page size (limit)")
        limit = int(limit)
        if limit < 1:
            raise ValueError(f"limit must be at least 1, got {limit}")
        cur = parse_cursor(cursor)
        lo, hi = keyset_page_slice(
            self._sorted_keys,
            self._sorted_rows,
            int(lowers[0]),
            int(uppers[0]),
            cur.key if cur is not None else None,
            cur.row_id if cur is not None else None,
        )
        take = min(limit, hi - lo)
        page = self._sorted_rows[lo : lo + take]
        result_rows = np.full(1, MISS_SENTINEL, dtype=np.uint64)
        if take:
            result_rows[0] = page[0]
        # Every page re-descends from the root to find its resume leaf, then
        # walks sideways: height node visits plus take/node_width leaves.
        run = LookupRun(
            kind="range",
            num_lookups=1,
            result_rows=result_rows,
            hits_per_lookup=np.array([take], dtype=np.int64),
            aggregate=self._aggregate(page.astype(np.int64)),
            stats={
                "node_visits_per_lookup": float(self.height) + take / self.node_width,
                "leaf_entries_scanned": float(take),
                "range_limit": limit,
                "trace_mode": "ordered_k",
                "resumed": cur is not None,
            },
            row_ids=page.copy(),
        )
        next_cursor = (
            encode_cursor(int(self._sorted_keys[lo + take - 1]), int(page[-1]))
            if take == limit
            else None
        )
        return run, next_cursor

    # ------------------------------------------------------------------ #
    # costing
    # ------------------------------------------------------------------ #

    def _node_bytes(self) -> int:
        return self.node_width * (self.key_bytes + self.value_bytes)

    def memory_footprint(self, target_keys: int | None = None) -> MemoryFootprint:
        n = self.num_keys if target_keys is None else target_keys
        entry_bytes = self.key_bytes + self.value_bytes
        leaf_bytes = n * entry_bytes / self.fill_factor
        # Inner levels shrink geometrically by the node width.
        inner_bytes = leaf_bytes / (self.node_width - 1)
        final = int(leaf_bytes + inner_bytes)
        # The build sorts out of place: two key+value buffers coexist.
        sort_buffers = 2 * n * entry_bytes
        return MemoryFootprint(final_bytes=final, build_peak_bytes=final + sort_buffers)

    def build_profiles(
        self, target_keys: int | None = None, presorted: bool = False
    ) -> list[WorkProfile]:
        n = self.num_keys if target_keys is None else target_keys
        profiles: list[WorkProfile] = []
        if not presorted:
            sorter = DeviceRadixSort(key_bytes=self.key_bytes, value_bytes=self.value_bytes)
            profiles.append(sorter.work_profile(n))
        final = self.memory_footprint(target_keys).final_bytes
        profiles.append(
            WorkProfile(
                name="B+ bulk load",
                threads=n,
                instructions=n * 14.0,
                bytes_accessed=n * (self.key_bytes + self.value_bytes) + final,
                working_set_bytes=final,
                serial_depth=0.0,
                kernel_launches=2,
                dram_bytes_min=final,
            )
        )
        return profiles

    def _height_for(self, n: int) -> float:
        if n <= self.node_width:
            return 1.0
        return 1.0 + math.ceil(math.log(n / self.node_width, self.node_width))

    def lookup_profile(
        self,
        run: LookupRun,
        target_keys: int | None = None,
        target_lookups: int | None = None,
        locality: float = 0.0,
        value_bytes: int = 4,
    ) -> WorkProfile:
        m = run.num_lookups if target_lookups is None else target_lookups
        lookup_scale = self._scale_lookups(run.num_lookups, target_lookups)

        node_visits = run.stats.get("node_visits_per_lookup", float(self.height))
        if target_keys is not None:
            node_visits += self._height_for(target_keys) - self._height_for(self.num_keys)
        leaf_scans = run.stats.get("leaf_entries_scanned", 1.0)
        hits = run.total_hits * lookup_scale

        node_bytes = self._node_bytes()
        structure_bytes = self.memory_footprint(target_keys).final_bytes
        n_values = (self.num_keys if target_keys is None else target_keys) * value_bytes

        # The cooperative search executes a handful of instructions per slot
        # of every visited node plus bookkeeping; this is what makes B+
        # execute well over an order of magnitude more instructions per
        # lookup than RX (Table 7).
        instr_per_node = 6.0 * self.node_width
        instructions = m * (node_visits * instr_per_node + 25.0) + hits * 8.0
        bytes_accessed = (
            m * (node_visits * node_bytes + self.key_bytes) + hits * value_bytes
        )
        return WorkProfile(
            name="B+ lookup",
            threads=int(m),
            instructions=instructions,
            bytes_accessed=bytes_accessed,
            working_set_bytes=structure_bytes + n_values,
            serial_depth=node_visits,
            kernel_launches=1,
            locality=locality,
            hot_fraction=0.70,
            dram_bytes_min=m * (self.key_bytes + 8),
            metadata={"node_visits": node_visits, "leaf_entries_scanned": leaf_scans},
        )
