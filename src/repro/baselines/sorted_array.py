"""SA — a sorted array probed with binary search.

The simplest order-preserving baseline of the paper: the key column is sorted
(with CUB's radix sort) alongside its rowIDs, lookups run a naive binary
search per query, and range lookups scan forward from the lower bound.  SA
has zero structural overhead but its binary search performs ``log2(n)``
*dependent* random memory accesses per lookup, which is exactly why the paper
finds it latency-bound and slowest under unsorted lookups.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.base import (
    BuildResult,
    GpuIndex,
    LookupRun,
    MemoryFootprint,
    MISS_SENTINEL,
    expand_slices,
    keyset_page_slice,
)
from repro.gpusim.counters import WorkProfile
from repro.gpusim.sorting import DeviceRadixSort

#: Bytes fetched per binary-search step: one key access touches a cache line.
CACHE_LINE_BYTES = 32


class SortedArrayIndex(GpuIndex):
    """Sorted (key, rowID) array with per-query binary search."""

    name = "SA"
    supports_range_lookups = True
    supports_duplicates = True
    max_key_bits = 64

    def __init__(self, key_bytes: int = 4, value_bytes: int = 4):
        super().__init__()
        if key_bytes not in (4, 8):
            raise ValueError("key_bytes must be 4 or 8")
        self.key_bytes = key_bytes
        self.value_bytes = value_bytes
        self._sorted_keys: np.ndarray | None = None
        self._sorted_rows: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # build
    # ------------------------------------------------------------------ #

    def build(self, keys: np.ndarray, values: np.ndarray | None = None) -> BuildResult:
        key_bits = 32 if self.key_bytes == 4 else 64
        self._store_column(keys, values, key_bits=key_bits)
        sorter = DeviceRadixSort(key_bytes=self.key_bytes, value_bytes=self.value_bytes)
        row_ids = np.arange(self.num_keys, dtype=np.uint64)
        result = sorter.sort_pairs(self.keys, row_ids)
        self._sorted_keys = result.keys
        self._sorted_rows = result.values
        memory = self.memory_footprint()
        self._build_result = BuildResult(
            num_keys=self.num_keys,
            key_bits=key_bits,
            memory=memory,
            stats={"binary_search_depth": self._search_depth(self.num_keys)},
        )
        return self._build_result

    @staticmethod
    def _search_depth(n: int) -> float:
        return float(max(math.ceil(math.log2(max(n, 2))), 1))

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #

    def point_lookup(self, queries: np.ndarray) -> LookupRun:
        if self._sorted_keys is None:
            raise RuntimeError("build() must be called before lookups")
        queries = np.asarray(queries, dtype=np.uint64)
        m = queries.shape[0]

        start = np.searchsorted(self._sorted_keys, queries, side="left")
        stop = np.searchsorted(self._sorted_keys, queries, side="right")
        counts = (stop - start).astype(np.int64)

        result_rows = np.full(m, MISS_SENTINEL, dtype=np.uint64)
        nonempty = counts > 0
        result_rows[nonempty] = self._sorted_rows[start[nonempty]]

        aggregate = self._aggregate(
            self._sorted_rows[expand_slices(start, counts)].astype(np.int64)
        )

        return LookupRun(
            kind="point",
            num_lookups=m,
            result_rows=result_rows,
            hits_per_lookup=counts,
            aggregate=aggregate,
            stats={
                "binary_search_depth": self._search_depth(self.num_keys),
                "entries_scanned": float(counts.mean()) if m else 0.0,
            },
        )

    def range_lookup(
        self,
        lowers: np.ndarray,
        uppers: np.ndarray,
        limit: int | None = None,
        order: str | None = None,
        cursor: str | None = None,
    ) -> LookupRun:
        """Forward scan from each lower bound, optionally capped at ``limit``.

        With a limit the scan stops after ``limit`` qualifying entries (the
        LIMIT-k pushdown every sorted run supports for free), so the scanned
        entry count — and therefore the costed bytes — reflects the cap.

        ``order="key"`` returns one ordered page ``(run, next_cursor)``
        exactly like :meth:`repro.core.rx_index.RXIndex.range_lookup`: the
        sorted run *is* the key order, so a page is one slice after the
        keyset resume point.
        """
        if self._sorted_keys is None:
            raise RuntimeError("build() must be called before lookups")
        if order is not None:
            if order != "key":
                raise ValueError(f"order must be None or 'key', got {order!r}")
            return self._ordered_range_page(lowers, uppers, limit, cursor)
        if cursor is not None:
            raise ValueError("cursor resume requires order='key'")
        lowers = np.asarray(lowers, dtype=np.uint64)
        uppers = np.asarray(uppers, dtype=np.uint64)
        if lowers.shape != uppers.shape:
            raise ValueError("lowers and uppers must have the same shape")
        m = lowers.shape[0]

        start = np.searchsorted(self._sorted_keys, lowers, side="left")
        stop = np.searchsorted(self._sorted_keys, uppers, side="right")
        counts = (stop - start).astype(np.int64)
        if limit is not None:
            if limit < 1:
                raise ValueError(f"limit must be at least 1, got {limit}")
            counts = np.minimum(counts, int(limit))

        result_rows = np.full(m, MISS_SENTINEL, dtype=np.uint64)
        nonempty = counts > 0
        result_rows[nonempty] = self._sorted_rows[start[nonempty]]

        aggregate = self._aggregate(
            self._sorted_rows[expand_slices(start, counts)].astype(np.int64)
        )

        stats = {
            "binary_search_depth": self._search_depth(self.num_keys),
            "entries_scanned": float(counts.mean()) if m else 0.0,
        }
        if limit is not None:
            stats["range_limit"] = int(limit)
        return LookupRun(
            kind="range",
            num_lookups=m,
            result_rows=result_rows,
            hits_per_lookup=counts,
            aggregate=aggregate,
            stats=stats,
        )

    def _ordered_range_page(self, lowers, uppers, limit, cursor):
        """One keyset page of the sorted run: ``(run, next_cursor)``."""
        from repro.core.cursor import encode_cursor, parse_cursor

        lowers = np.asarray(lowers, dtype=np.uint64).reshape(-1)
        uppers = np.asarray(uppers, dtype=np.uint64).reshape(-1)
        if lowers.shape[0] != 1 or uppers.shape[0] != 1:
            raise ValueError("order='key' pages one range at a time")
        if limit is None:
            raise ValueError("order='key' requires a page size (limit)")
        limit = int(limit)
        if limit < 1:
            raise ValueError(f"limit must be at least 1, got {limit}")
        cur = parse_cursor(cursor)
        lo, hi = keyset_page_slice(
            self._sorted_keys,
            self._sorted_rows,
            int(lowers[0]),
            int(uppers[0]),
            cur.key if cur is not None else None,
            cur.row_id if cur is not None else None,
        )
        take = min(limit, hi - lo)
        page = self._sorted_rows[lo : lo + take]
        result_rows = np.full(1, MISS_SENTINEL, dtype=np.uint64)
        if take:
            result_rows[0] = page[0]
        run = LookupRun(
            kind="range",
            num_lookups=1,
            result_rows=result_rows,
            hits_per_lookup=np.array([take], dtype=np.int64),
            aggregate=self._aggregate(page.astype(np.int64)),
            stats={
                "binary_search_depth": self._search_depth(self.num_keys),
                "entries_scanned": float(take),
                "range_limit": limit,
                "trace_mode": "ordered_k",
                "resumed": cur is not None,
            },
            row_ids=page.copy(),
        )
        next_cursor = (
            encode_cursor(int(self._sorted_keys[lo + take - 1]), int(page[-1]))
            if take == limit
            else None
        )
        return run, next_cursor

    # ------------------------------------------------------------------ #
    # costing
    # ------------------------------------------------------------------ #

    def memory_footprint(self, target_keys: int | None = None) -> MemoryFootprint:
        n = self.num_keys if target_keys is None else target_keys
        entry_bytes = self.key_bytes + self.value_bytes
        final = n * entry_bytes
        # The radix sort works out of place: a second buffer coexists with
        # the final one during construction.
        return MemoryFootprint(final_bytes=final, build_peak_bytes=final + final)

    def build_profiles(
        self, target_keys: int | None = None, presorted: bool = False
    ) -> list[WorkProfile]:
        n = self.num_keys if target_keys is None else target_keys
        profiles: list[WorkProfile] = []
        if not presorted:
            sorter = DeviceRadixSort(key_bytes=self.key_bytes, value_bytes=self.value_bytes)
            profiles.append(sorter.work_profile(n))
        profiles.append(
            WorkProfile(
                name="SA materialize",
                threads=n,
                instructions=n * 4.0,
                bytes_accessed=2.0 * n * (self.key_bytes + self.value_bytes),
                working_set_bytes=n * (self.key_bytes + self.value_bytes),
                kernel_launches=1,
                dram_bytes_min=n * (self.key_bytes + self.value_bytes),
            )
        )
        return profiles

    def lookup_profile(
        self,
        run: LookupRun,
        target_keys: int | None = None,
        target_lookups: int | None = None,
        locality: float = 0.0,
        value_bytes: int = 4,
    ) -> WorkProfile:
        m = run.num_lookups if target_lookups is None else target_lookups
        lookup_scale = self._scale_lookups(run.num_lookups, target_lookups)
        depth = run.stats.get("binary_search_depth", self._search_depth(self.num_keys))
        if target_keys is not None:
            depth += self._search_depth(target_keys) - self._search_depth(self.num_keys)
        entries = run.stats.get("entries_scanned", 1.0)
        hits = run.total_hits * lookup_scale

        n = self.num_keys if target_keys is None else target_keys
        structure_bytes = n * (self.key_bytes + self.value_bytes)
        n_values = n * value_bytes

        # Each binary-search step touches one cache line at a random position
        # and depends on the previous step: high latency sensitivity, few
        # instructions.
        instructions = m * (depth * 8.0 + 12.0) + hits * 6.0 + m * entries * 2.0
        bytes_accessed = (
            m * (depth * CACHE_LINE_BYTES + self.key_bytes)
            + (hits + m * max(entries - 1.0, 0.0)) * (self.key_bytes + value_bytes)
        )
        return WorkProfile(
            name="SA lookup",
            threads=int(m),
            instructions=instructions,
            bytes_accessed=bytes_accessed,
            working_set_bytes=structure_bytes + n_values,
            serial_depth=depth,
            kernel_launches=1,
            locality=locality,
            hot_fraction=0.60,
            dram_bytes_min=m * (self.key_bytes + 8),
            metadata={"binary_search_depth": depth},
        )
