"""HT — a WarpCore-style GPU hash table.

WarpCore [Jünger et al., HiPC 2020] implements *cooperative probing*: each
key is assigned to a group of (by default eight) threads that inspects eight
neighbouring slots of an open-addressing table at once, moving to the next
group of slots only when the current one is exhausted.  The paper configures
a target load factor of 0.8 and group size 8 and inserts keys one by one
(hash tables have no bulk load).

Functional behaviour reproduced here:

* multi-value semantics — duplicate keys occupy separate slots, and a lookup
  reports *all* matching rowIDs (probing only stops at the first empty slot,
  exactly like the original),
* misses probe longer than hits, which is why HT degrades as the hit rate
  drops (Figure 14),
* no range-lookup support (Section 4.9 excludes HT for this reason).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    BuildResult,
    GpuIndex,
    LookupRun,
    MemoryFootprint,
    MISS_SENTINEL,
)
from repro.gpusim.counters import WorkProfile

#: Probing group size used by the paper (8 threads inspect 8 slots at once).
DEFAULT_GROUP_SIZE = 8
#: Target load factor used by the paper.
DEFAULT_LOAD_FACTOR = 0.8

#: Sentinel for an empty slot (keys are restricted to < 2^64 - 1).
_EMPTY = np.uint64(0xFFFFFFFFFFFFFFFF)


def _mix_hash(keys: np.ndarray) -> np.ndarray:
    """64-bit finaliser-style hash (splitmix64), vectorised."""
    x = np.asarray(keys, dtype=np.uint64).copy()
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    x = x ^ (x >> np.uint64(31))
    return x


class WarpCoreHashTable(GpuIndex):
    """Open-addressing hash table with cooperative (group) probing."""

    name = "HT"
    supports_range_lookups = False
    supports_duplicates = True
    max_key_bits = 64

    def __init__(
        self,
        load_factor: float = DEFAULT_LOAD_FACTOR,
        group_size: int = DEFAULT_GROUP_SIZE,
        key_bytes: int = 4,
        value_bytes: int = 4,
    ):
        super().__init__()
        if not 0.1 <= load_factor <= 0.95:
            raise ValueError("load_factor must be in [0.1, 0.95]")
        if group_size < 1:
            raise ValueError("group_size must be positive")
        self.load_factor = load_factor
        self.group_size = group_size
        self.key_bytes = key_bytes
        self.value_bytes = value_bytes
        self._slot_keys: np.ndarray | None = None
        self._slot_rows: np.ndarray | None = None
        self._num_groups = 0
        self._build_probe_groups = 0.0

    # ------------------------------------------------------------------ #
    # build
    # ------------------------------------------------------------------ #

    def build(self, keys: np.ndarray, values: np.ndarray | None = None) -> BuildResult:
        key_bits = 32 if self.key_bytes == 4 else 64
        self._store_column(keys, values, key_bits=key_bits)
        n = self.num_keys
        capacity = int(np.ceil(n / self.load_factor))
        # Round capacity up to a whole number of probing groups.
        self._num_groups = max((capacity + self.group_size - 1) // self.group_size, 1)
        capacity = self._num_groups * self.group_size

        slot_keys = np.full(capacity, _EMPTY, dtype=np.uint64)
        slot_rows = np.zeros(capacity, dtype=np.uint64)

        group_of = (_mix_hash(self.keys) % np.uint64(self._num_groups)).astype(np.int64)
        # The device inserts keys one at a time (hash tables have no bulk
        # load), but the *outcome* of that sequential process is computed
        # here with flat array passes.  Group-granular linear probing fills
        # every group as a prefix of its window, and per-group occupancy —
        # hence lookup probe lengths and the total insert displacement — is
        # independent of insertion order.  Processing keys sorted (stably)
        # by home group therefore preserves every observable of the
        # sequential loop: probe statistics, the stored (key, rowID) pairs,
        # per-lookup match sets, and duplicates of a key staying in row
        # order along their probe sequence.  Only which individual slot a
        # displaced key occupies may differ, which lookups never expose.
        #
        # For keys sorted by home group, "first free slot in the first
        # non-full group at or after the home group" reduces to a running
        # maximum over unrolled slot indices:  slot_i = max(slot_{i-1} + 1,
        # group_size * home_i), i.e. one vectorised maximum.accumulate.
        total_probe_groups = 0
        if n:
            order = np.argsort(group_of, kind="stable")
            homes = group_of[order]
            gs = self.group_size
            steps = np.arange(n, dtype=np.int64)
            slots = np.maximum.accumulate(homes * gs - steps) + steps
            wrapped = slots >= capacity
            probes = (slots // gs) - homes + 1
            if wrapped.any():
                # Keys pushed past the last group continue probing from
                # group 0; they take the smallest still-free slots in order.
                n_wrapped = int(wrapped.sum())
                free = np.setdiff1d(
                    np.arange(capacity, dtype=np.int64),
                    slots[~wrapped],
                    assume_unique=True,
                )
                if free.size < n_wrapped:
                    raise RuntimeError("hash table overflow during insert")
                wrap_slots = free[:n_wrapped]
                slots[wrapped] = wrap_slots
                probes[wrapped] = (
                    self._num_groups - homes[wrapped] + (wrap_slots // gs) + 1
                )
            slot_keys[slots] = self.keys[order]
            slot_rows[slots] = order.astype(np.uint64)
            total_probe_groups = int(probes.sum())

        self._slot_keys = slot_keys
        self._slot_rows = slot_rows
        self._build_probe_groups = total_probe_groups / max(n, 1)

        memory = self.memory_footprint()
        self._build_result = BuildResult(
            num_keys=n,
            key_bits=key_bits,
            memory=memory,
            stats={
                "capacity": capacity,
                "num_groups": self._num_groups,
                "avg_probe_groups_insert": self._build_probe_groups,
                "achieved_load_factor": n / capacity,
            },
        )
        return self._build_result

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #

    def point_lookup(self, queries: np.ndarray) -> LookupRun:
        if self._slot_keys is None:
            raise RuntimeError("build() must be called before lookups")
        queries = np.asarray(queries, dtype=np.uint64)
        m = queries.shape[0]

        result_rows = np.full(m, MISS_SENTINEL, dtype=np.uint64)
        hits_per_lookup = np.zeros(m, dtype=np.int64)
        aggregate = np.uint64(0)

        group = (_mix_hash(queries) % np.uint64(self._num_groups)).astype(np.int64)
        active = np.arange(m, dtype=np.int64)
        total_probe_groups = 0
        rounds = 0
        slot_keys = self._slot_keys
        slot_rows = self._slot_rows
        gs = self.group_size

        while active.size:
            rounds += 1
            total_probe_groups += int(active.size)
            starts = group[active] * gs
            # Gather each active query's probing window of `gs` slots.
            window_idx = starts[:, None] + np.arange(gs)[None, :]
            window_keys = slot_keys[window_idx]
            matches = window_keys == queries[active][:, None]
            has_empty = (window_keys == _EMPTY).any(axis=1)

            if matches.any():
                q_idx, s_idx = np.nonzero(matches)
                matched_lookups = active[q_idx]
                matched_rows = slot_rows[window_idx[q_idx, s_idx]]
                np.add.at(hits_per_lookup, matched_lookups, 1)
                aggregate += self.values[matched_rows].sum(dtype=np.uint64)
                # Report the smallest matching rowID per lookup.  Duplicates
                # of a key sit in insertion order along the probe sequence,
                # so the minimum is the first match — and unlike the raw slot
                # layout it is identical however the table was filled
                # (MISS_SENTINEL is the max uint64, the identity for min).
                np.minimum.at(result_rows, matched_lookups, matched_rows)

            # A query retires once its window contains an empty slot (the
            # probe chain is guaranteed to end there); otherwise it moves on.
            keep = ~has_empty
            active = active[keep]
            group[active] = (group[active] + 1) % self._num_groups
            if rounds > self._num_groups:
                break

        return LookupRun(
            kind="point",
            num_lookups=m,
            result_rows=result_rows,
            hits_per_lookup=hits_per_lookup,
            aggregate=int(aggregate),
            stats={
                "avg_probe_groups": total_probe_groups / max(m, 1),
                "probe_rounds": rounds,
                "total_probe_groups": total_probe_groups,
            },
        )

    # ------------------------------------------------------------------ #
    # costing
    # ------------------------------------------------------------------ #

    def memory_footprint(self, target_keys: int | None = None) -> MemoryFootprint:
        n = self.num_keys if target_keys is None else target_keys
        capacity = int(np.ceil(n / self.load_factor))
        slot_bytes = self.key_bytes + self.value_bytes
        final = capacity * slot_bytes
        # Hash tables build in place: no extra memory beyond the table itself.
        return MemoryFootprint(final_bytes=final, build_peak_bytes=final)

    def build_profiles(
        self, target_keys: int | None = None, presorted: bool = False
    ) -> list[WorkProfile]:
        n = self.num_keys if target_keys is None else target_keys
        probe_groups = self._build_probe_groups if self._build_probe_groups else 1.2
        group_bytes = self.group_size * (self.key_bytes + self.value_bytes)
        table_bytes = self.memory_footprint(target_keys).final_bytes
        return [
            WorkProfile(
                name="HT build",
                threads=n,
                instructions=n * (30.0 + 25.0 * probe_groups),
                bytes_accessed=n * (probe_groups * group_bytes + self.key_bytes + self.value_bytes),
                working_set_bytes=table_bytes,
                serial_depth=probe_groups + 1.0,
                kernel_launches=1,
                # Inserts are uncoalesced read-modify-write cycles on random
                # probing windows; each one moves full cache sectors.
                dram_bytes_min=n * (probe_groups * self.group_size * 8.0 + 32.0),
            )
        ]

    def lookup_profile(
        self,
        run: LookupRun,
        target_keys: int | None = None,
        target_lookups: int | None = None,
        locality: float = 0.0,
        value_bytes: int = 4,
    ) -> WorkProfile:
        m = run.num_lookups if target_lookups is None else target_lookups
        lookup_scale = self._scale_lookups(run.num_lookups, target_lookups)
        probe_groups = run.stats.get("avg_probe_groups", 1.2)
        hits = run.total_hits * lookup_scale
        group_bytes = self.group_size * (self.key_bytes + self.value_bytes)
        table_bytes = self.memory_footprint(target_keys).final_bytes
        n_values = (self.num_keys if target_keys is None else target_keys) * value_bytes

        bytes_accessed = m * (probe_groups * group_bytes + self.key_bytes) + hits * value_bytes
        instructions = m * (25.0 + 30.0 * probe_groups) + hits * 6.0
        return WorkProfile(
            name="HT lookup",
            threads=int(m),
            instructions=instructions,
            bytes_accessed=bytes_accessed,
            working_set_bytes=table_bytes + n_values,
            serial_depth=probe_groups + 1.0,
            kernel_launches=1,
            locality=locality,
            dram_bytes_min=m * (self.key_bytes + 8),
            metadata={"avg_probe_groups": probe_groups},
        )
