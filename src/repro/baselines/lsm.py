"""GPU LSM tree (related-work extension).

The paper mentions the GPU LSM tree of Ashkiani et al. as the dynamic
alternative the B+-Tree baseline was preferred over ("In comparison to a GPU
LSM tree, the B+-Tree yields better lookup performance").  We implement a
simple levelled LSM so ablation benchmarks can confirm that ordering: every
level is a sorted run of geometrically increasing size, lookups probe the
levels newest-first, and range lookups merge the per-level results.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.base import (
    BuildResult,
    GpuIndex,
    LookupRun,
    MemoryFootprint,
    MISS_SENTINEL,
    expand_slices,
    keyset_page_slice,
)
from repro.gpusim.counters import WorkProfile
from repro.gpusim.sorting import DeviceRadixSort

CACHE_LINE_BYTES = 32


class GpuLsmTree(GpuIndex):
    """Levelled LSM tree of sorted runs with geometric growth."""

    name = "LSM"
    supports_range_lookups = True
    supports_duplicates = True
    max_key_bits = 64

    def __init__(self, level_ratio: int = 4, key_bytes: int = 4, value_bytes: int = 4):
        super().__init__()
        if level_ratio < 2:
            raise ValueError("level_ratio must be at least 2")
        self.level_ratio = level_ratio
        self.key_bytes = key_bytes
        self.value_bytes = value_bytes
        self._levels: list[tuple[np.ndarray, np.ndarray]] = []

    # ------------------------------------------------------------------ #
    # build
    # ------------------------------------------------------------------ #

    def build(self, keys: np.ndarray, values: np.ndarray | None = None) -> BuildResult:
        key_bits = 32 if self.key_bytes == 4 else 64
        self._store_column(keys, values, key_bits=key_bits)
        n = self.num_keys

        # Split the bulk load into geometrically growing runs (oldest run is
        # the largest), mimicking the state of an LSM after many batches.
        sorter = DeviceRadixSort(key_bytes=self.key_bytes, value_bytes=self.value_bytes)
        self._levels = []
        row_ids = np.arange(n, dtype=np.uint64)
        start = 0
        run_size = max(n // (self.level_ratio ** 3), 1)
        remaining = n
        while remaining > 0:
            size = min(run_size, remaining)
            chunk = slice(start, start + size)
            result = sorter.sort_pairs(self.keys[chunk], row_ids[chunk])
            self._levels.append((result.keys, result.values))
            start += size
            remaining -= size
            run_size *= self.level_ratio

        memory = self.memory_footprint()
        self._build_result = BuildResult(
            num_keys=n,
            key_bits=key_bits,
            memory=memory,
            stats={"levels": len(self._levels)},
        )
        return self._build_result

    @property
    def num_levels(self) -> int:
        return len(self._levels)

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #

    def _probe_all_levels(
        self,
        lowers: np.ndarray,
        uppers: np.ndarray,
        kind: str,
        limit: int | None = None,
    ) -> LookupRun:
        m = lowers.shape[0]
        result_rows = np.full(m, MISS_SENTINEL, dtype=np.uint64)
        hits_per_lookup = np.zeros(m, dtype=np.int64)
        aggregate = 0
        search_depth = 0.0
        # LIMIT-k pushdown: each query's budget drains across the levels in
        # probe order (newest run first), so older runs stop contributing —
        # and stop being scanned — once the budget is spent.
        remaining = None if limit is None else np.full(m, int(limit), dtype=np.int64)

        # Per-level probes are batched over all queries; the matched rowIDs
        # of every level are collected and aggregated in one final gather.
        matched_rows: list[np.ndarray] = []
        for level_keys, level_rows in self._levels:
            search_depth += max(math.ceil(math.log2(max(level_keys.shape[0], 2))), 1)
            start = np.searchsorted(level_keys, lowers, side="left")
            stop = np.searchsorted(level_keys, uppers, side="right")
            counts = (stop - start).astype(np.int64)
            if remaining is not None:
                counts = np.minimum(counts, remaining)
                remaining -= counts
            nonempty = counts > 0
            newly_found = nonempty & (result_rows == MISS_SENTINEL)
            result_rows[newly_found] = level_rows[start[newly_found]]
            hits_per_lookup += counts
            flat = expand_slices(start, counts)
            if flat.size:
                matched_rows.append(level_rows[flat].astype(np.int64))
        if matched_rows:
            aggregate = self._aggregate(np.concatenate(matched_rows))

        stats = {
            "levels_probed": float(self.num_levels),
            "binary_search_depth": search_depth,
        }
        if limit is not None:
            stats["range_limit"] = int(limit)
        return LookupRun(
            kind=kind,
            num_lookups=m,
            result_rows=result_rows,
            hits_per_lookup=hits_per_lookup,
            aggregate=aggregate,
            stats=stats,
        )

    def point_lookup(self, queries: np.ndarray) -> LookupRun:
        if not self._levels:
            raise RuntimeError("build() must be called before lookups")
        queries = np.asarray(queries, dtype=np.uint64)
        return self._probe_all_levels(queries, queries, kind="point")

    def range_lookup(
        self,
        lowers: np.ndarray,
        uppers: np.ndarray,
        limit: int | None = None,
        order: str | None = None,
        cursor: str | None = None,
    ) -> LookupRun:
        if not self._levels:
            raise RuntimeError("build() must be called before lookups")
        if order is not None:
            if order != "key":
                raise ValueError(f"order must be None or 'key', got {order!r}")
            return self._ordered_range_page(lowers, uppers, limit, cursor)
        if cursor is not None:
            raise ValueError("cursor resume requires order='key'")
        if limit is not None and limit < 1:
            raise ValueError(f"limit must be at least 1, got {limit}")
        lowers = np.asarray(lowers, dtype=np.uint64)
        uppers = np.asarray(uppers, dtype=np.uint64)
        return self._probe_all_levels(lowers, uppers, kind="range", limit=limit)

    def _ordered_range_page(self, lowers, uppers, limit, cursor):
        """One keyset page merged across all levels: ``(run, next_cursor)``.

        Every level is its own sorted run, so a globally ordered page is a
        k-way merge: take up to ``limit`` candidates past the cursor from
        each level (the global first ``limit`` after the cursor can only
        come from those), then keep the ``limit`` smallest under the global
        ``(key, rowID)`` order.
        """
        from repro.core.cursor import encode_cursor, parse_cursor

        lowers = np.asarray(lowers, dtype=np.uint64).reshape(-1)
        uppers = np.asarray(uppers, dtype=np.uint64).reshape(-1)
        if lowers.shape[0] != 1 or uppers.shape[0] != 1:
            raise ValueError("order='key' pages one range at a time")
        if limit is None:
            raise ValueError("order='key' requires a page size (limit)")
        limit = int(limit)
        if limit < 1:
            raise ValueError(f"limit must be at least 1, got {limit}")
        cur = parse_cursor(cursor)

        cand_keys: list[np.ndarray] = []
        cand_rows: list[np.ndarray] = []
        search_depth = 0.0
        for level_keys, level_rows in self._levels:
            search_depth += max(math.ceil(math.log2(max(level_keys.shape[0], 2))), 1)
            lo, hi = keyset_page_slice(
                level_keys,
                level_rows,
                int(lowers[0]),
                int(uppers[0]),
                cur.key if cur is not None else None,
                cur.row_id if cur is not None else None,
            )
            take = min(limit, hi - lo)
            if take:
                cand_keys.append(level_keys[lo : lo + take])
                cand_rows.append(level_rows[lo : lo + take])

        if cand_keys:
            keys = np.concatenate(cand_keys)
            rows = np.concatenate(cand_rows)
            order_idx = np.lexsort((rows, keys))[:limit]
            keys = keys[order_idx]
            rows = rows[order_idx]
        else:
            keys = np.zeros(0, dtype=np.uint64)
            rows = np.zeros(0, dtype=np.uint64)
        take = int(rows.shape[0])

        result_rows = np.full(1, MISS_SENTINEL, dtype=np.uint64)
        if take:
            result_rows[0] = rows[0]
        run = LookupRun(
            kind="range",
            num_lookups=1,
            result_rows=result_rows,
            hits_per_lookup=np.array([take], dtype=np.int64),
            aggregate=self._aggregate(rows.astype(np.int64)),
            stats={
                "levels_probed": float(self.num_levels),
                "binary_search_depth": search_depth,
                "range_limit": limit,
                "trace_mode": "ordered_k",
                "resumed": cur is not None,
            },
            row_ids=rows.copy(),
        )
        next_cursor = (
            encode_cursor(int(keys[-1]), int(rows[-1])) if take == limit else None
        )
        return run, next_cursor

    # ------------------------------------------------------------------ #
    # costing
    # ------------------------------------------------------------------ #

    def memory_footprint(self, target_keys: int | None = None) -> MemoryFootprint:
        n = self.num_keys if target_keys is None else target_keys
        entry_bytes = self.key_bytes + self.value_bytes
        final = n * entry_bytes
        return MemoryFootprint(final_bytes=final, build_peak_bytes=2 * final)

    def build_profiles(
        self, target_keys: int | None = None, presorted: bool = False
    ) -> list[WorkProfile]:
        n = self.num_keys if target_keys is None else target_keys
        sorter = DeviceRadixSort(key_bytes=self.key_bytes, value_bytes=self.value_bytes)
        return [sorter.work_profile(n, num_invocations=max(self.num_levels, 1))]

    def lookup_profile(
        self,
        run: LookupRun,
        target_keys: int | None = None,
        target_lookups: int | None = None,
        locality: float = 0.0,
        value_bytes: int = 4,
    ) -> WorkProfile:
        m = run.num_lookups if target_lookups is None else target_lookups
        lookup_scale = self._scale_lookups(run.num_lookups, target_lookups)
        depth = run.stats.get("binary_search_depth", 1.0)
        if target_keys is not None and self.num_keys:
            depth += max(math.log2(target_keys / self.num_keys), 0.0)
        hits = run.total_hits * lookup_scale
        n = self.num_keys if target_keys is None else target_keys
        structure_bytes = n * (self.key_bytes + self.value_bytes)

        instructions = m * (depth * 8.0 + 15.0 * self.num_levels) + hits * 6.0
        bytes_accessed = m * depth * CACHE_LINE_BYTES + hits * value_bytes
        return WorkProfile(
            name="LSM lookup",
            threads=int(m),
            instructions=instructions,
            bytes_accessed=bytes_accessed,
            working_set_bytes=structure_bytes + n * value_bytes,
            serial_depth=depth,
            kernel_launches=1,
            locality=locality,
            hot_fraction=0.50,
            dram_bytes_min=m * (self.key_bytes + 8),
            metadata={"levels": self.num_levels},
        )
