"""RXIndex: the raytracing-backed secondary index (the paper's RX).

Build path (Section 2.1): every key of the indexed column is converted into a
primitive anchored at coordinates derived from the key, the primitive's
position in the buffer is its rowID, and ``accel_build`` turns the buffer
into a BVH (optionally compacted).

Lookup path (Section 2.2): each lookup becomes one or more rays; the
traversal reports every primitive the ray intersects, whose buffer offsets
are the matching rowIDs; an any-hit style aggregation sums the associated
values from the projected column.

The class implements the common :class:`repro.baselines.base.GpuIndex`
interface so the benchmark harness can pit it against the traditional GPU
indexes.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.base import (
    BuildResult,
    GpuIndex,
    LookupRun,
    MemoryFootprint,
)
from repro.core.config import (
    PointRayMode,
    PrimitiveType,
    RangeRayMode,
    RXConfig,
    UpdatePolicy,
)
from repro.core.cursor import make_cursor_filter, next_cursor_token, parse_cursor
from repro.core.keycodec import make_codec
from repro.core.results import (
    aggregate_values,
    collect_row_ids,
    first_row_per_lookup,
    hits_per_lookup,
)
from repro.gpusim.counters import WorkProfile
from repro.persist import SnapshotCorrupt, load_snapshot, save_snapshot
from repro.rtx.build_input import BuildFlags, build_input_for_points
from repro.rtx.bvh import BvhBuildOptions, bvh_from_arrays, bvh_state_arrays
from repro.rtx.forest import forest_from_saved, forest_state_segments
from repro.rtx.memory import accel_memory_estimate
from repro.rtx.pipeline import (
    BuildMetrics,
    DeviceContext,
    GeometryAccel,
    Pipeline,
    accel_build,
    accel_compact,
    accel_delta_update,
    accel_update,
)

#: Instructions the programmable pipeline stages execute per lookup / per hit.
#: The fixed-function BVH traversal runs on the RT cores and does not count
#: as SM instructions — this is why RX executes roughly an order of magnitude
#: fewer instructions per lookup than the software tree (Table 7).
_INSTR_PER_LOOKUP = 12.0
_INSTR_PER_RAY = 4.0
_INSTR_PER_HIT = 6.0

#: Bytes per primitive fetched for a hardware intersection test (the triangle
#: data is stored inside the accel in a compressed layout).
_PRIM_TEST_BYTES = {"triangle": 36, "sphere": 16, "aabb": 24}

#: Bytes per primitive streamed by the build/update passes (the raw input
#: buffer layout: 9/3/6 float32 per triangle/sphere/AABB).
_BUILD_PRIM_BYTES = {"triangle": 36, "sphere": 12, "aabb": 24}

#: Fraction of the hit-path traversal work a missing ray still performs
#: (calibrated to the paper's measured -63% memory traffic at hit rate 0).
MISS_TRAVERSAL_FACTOR = 0.35


@dataclass
class UpdateOutcome:
    """Result of applying an update batch to an existing RX index."""

    policy: UpdatePolicy
    profiles: list[WorkProfile]
    surface_area_growth: float = 1.0
    #: per-policy structural details (delta updates report their dirty-shard
    #: accounting here so experiments can check the O(dirty) scaling)
    stats: dict = field(default_factory=dict)


class RXIndex(GpuIndex):
    """Hardware-raytracing index over a 64-bit integer column."""

    name = "RX"
    supports_range_lookups = True
    supports_duplicates = True
    max_key_bits = 64

    def __init__(
        self,
        config: RXConfig | None = None,
        context: DeviceContext | None = None,
        max_frontier: int | None = None,
    ):
        super().__init__()
        self.config = config or RXConfig.paper_default()
        self.config.validate()
        self.codec = make_codec(self.config.key_mode, self.config.decomposition)
        self.context = context or DeviceContext()
        #: bound on the traversal working set per launch (see
        #: :class:`repro.rtx.traversal.TraversalEngine`); None = unbounded.
        self.max_frontier = max_frontier
        self._accel = None
        self._pipeline: Pipeline | None = None
        self._primitive_handle: int | None = None
        #: wall-clock of the last accel build or delta update (seconds)
        self._last_build_seconds: float | None = None
        #: Monotonically increasing accel-state counter: -1 before the first
        #: build, bumped by every build() and update() that swaps in a new
        #: accel state.  The serving layer's epoch snapshots key on it.
        self.epoch: int = -1
        #: True when the indexed column holds no duplicate keys; decides the
        #: "auto" point-lookup trace mode (any-hit termination is only
        #: result-preserving when every query has at most one match).
        #: Computed lazily — None means "not checked for the current column".
        self._keys_unique: bool | None = None
        #: telemetry of the epoch store interactions, mirrored into
        #: ``stats()["persist"]`` next to the ``"build"`` block.
        self._persist_stats: dict = self._empty_persist_stats()

    # ------------------------------------------------------------------ #
    # build
    # ------------------------------------------------------------------ #

    def _build_flags(self) -> BuildFlags:
        flags = BuildFlags.NONE
        if self.config.compaction:
            flags |= BuildFlags.ALLOW_COMPACTION
        if self.config.allow_updates:
            flags |= BuildFlags.ALLOW_UPDATE
        return flags

    def _bvh_options(self) -> BvhBuildOptions:
        return BvhBuildOptions(
            builder=self.config.bvh_builder,
            max_leaf_size=self.config.max_leaf_size,
            morton_bits=self.config.morton_bits,
            shard_bits=self.config.shard_bits,
            workers=self.config.build_workers,
            backend=self.config.build_backend,
        )

    def _make_build_input(self, keys: np.ndarray):
        points, x_half_extent = self.codec.encode_points(keys)
        return build_input_for_points(
            self.config.primitive.value,
            points,
            half_extent=0.5,
            x_half_extent=x_half_extent,
            sphere_radius=self.config.sphere_radius,
        )

    def build(self, keys: np.ndarray, values: np.ndarray | None = None) -> BuildResult:
        keys = np.asarray(keys, dtype=np.uint64)
        self.codec.validate_keys(keys)
        self._store_column(keys, values, key_bits=64)

        if self._accel is not None:
            # Rebuilding replaces the previous accel; release its allocation
            # so the memory tracker reflects the swap.
            self.context.memory.free(self._accel.memory_handle)
            self._accel = None

        build_input = self._make_build_input(self.keys)
        # The primitive buffer only needs to be resident during the build:
        # afterwards the accel embeds the geometry.
        self._primitive_handle = self.context.memory.alloc(
            "rx_primitive_buffer", build_input.primitive_bytes, temporary=True
        )
        build_t0 = time.perf_counter()
        self._accel = accel_build(
            self.context,
            build_input,
            flags=self._build_flags(),
            build_options=self._bvh_options(),
        )
        self._last_build_seconds = time.perf_counter() - build_t0
        compaction_stats = {}
        if self.config.compaction:
            result = accel_compact(self.context, self._accel)
            compaction_stats = {
                "compaction_saved_bytes": result.saved_bytes,
                "compaction_reduction": result.reduction_fraction,
            }
        self.context.memory.free(self._primitive_handle)
        self._primitive_handle = None

        self._pipeline = Pipeline(self.context, self._accel, max_frontier=self.max_frontier)
        self.epoch += 1
        bvh = self._accel.bvh
        memory = self.memory_footprint()
        self._build_result = BuildResult(
            num_keys=self.num_keys,
            key_bits=64,
            memory=memory,
            stats={
                "primitive": self.config.primitive.value,
                "key_mode": self.config.key_mode.value,
                "builder": self.config.bvh_builder,
                "bvh_nodes": bvh.node_count,
                "bvh_depth": bvh.depth(),
                "bvh_leaves": bvh.leaf_count,
                "compacted": self._accel.compacted,
                **compaction_stats,
                **(
                    {
                        "shards": self._accel.forest.non_empty_shards,
                        "delegated_shards": self._accel.forest.delegated_shards,
                        "build_workers": self._accel.forest.workers_used,
                    }
                    if self._accel.forest is not None
                    else {}
                ),
            },
        )
        return self._build_result

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #

    def _require_built(self) -> Pipeline:
        if self._pipeline is None:
            raise RuntimeError("RXIndex.build() must be called before lookups")
        return self._pipeline

    @property
    def pipeline(self) -> Pipeline:
        """The pipeline bound to the current accel state (built index only).

        Each build/update binds a *new* pipeline object, so holding on to
        this reference pins one accel epoch — the serving layer's epoch
        snapshots rely on exactly that.
        """
        return self._require_built()

    def _run_to_lookup(self, launch, num_lookups: int, kind: str) -> LookupRun:
        hits = launch.hits
        counters = launch.counters
        result_rows = first_row_per_lookup(hits, num_lookups)
        per_lookup = hits_per_lookup(hits, num_lookups)
        aggregate = aggregate_values(hits, self.values)
        rays = max(launch.num_rays, 1)
        return LookupRun(
            kind=kind,
            num_lookups=num_lookups,
            result_rows=result_rows,
            hits_per_lookup=per_lookup,
            aggregate=aggregate,
            stats={
                "rays_per_lookup": launch.num_rays / max(num_lookups, 1),
                "node_visits_per_ray": counters.node_visits / rays,
                "leaf_visits_per_ray": counters.leaf_visits / rays,
                "box_tests_per_ray": counters.box_tests / rays,
                "prim_tests_per_ray": counters.prim_tests / rays,
                "node_bytes_per_ray": counters.node_bytes_read / rays,
                "prim_bytes_per_ray": counters.prim_bytes_read / rays,
                "rays_without_hits": counters.rays_without_hits,
                "traversal_rounds": counters.traversal_rounds,
                "total_node_visits": counters.node_visits,
                "total_prim_tests": counters.prim_tests,
                "budget_dropped_hits": counters.budget_dropped_hits,
            },
        )

    def _store_column(self, keys, values, key_bits: int) -> None:
        super()._store_column(keys, values, key_bits)
        self._keys_unique = None  # the uniqueness of the new column is unknown

    def _point_trace_mode(self) -> str:
        """Resolve the configured point-lookup trace mode for this column.

        The duplicate check costs one key sort, so it runs lazily on the
        first "auto" point lookup after a (re)build and is skipped entirely
        when the mode is forced.
        """
        mode = self.config.point_trace_mode
        if mode != "auto":
            return mode
        if self._keys_unique is None:
            self._keys_unique = bool(np.unique(self.keys).size == self.num_keys)
        return "any_hit" if self._keys_unique else "all"

    def resolved_point_trace_mode(self) -> str:
        """Public form of the resolved point trace mode (serving layer)."""
        return self._point_trace_mode()

    def point_lookup(self, queries: np.ndarray) -> LookupRun:
        pipeline = self._require_built()
        queries = np.asarray(queries, dtype=np.uint64)
        rays = self.codec.point_ray_batch(queries, self.config.point_ray_mode)
        mode = self._point_trace_mode()
        launch = pipeline.launch(rays, num_lookups=queries.shape[0], mode=mode)
        run = self._run_to_lookup(launch, queries.shape[0], kind="point")
        run.stats["trace_mode"] = mode
        return run

    def _range_limit(self, limit) -> int | None:
        """Resolve the per-call ``limit`` against the configured default.

        ``"auto"`` (the default) defers to ``RXConfig.range_limit`` —
        mirroring how ``point_trace_mode="auto"`` resolves the point-lookup
        mode; ``None`` forces an all-hits lookup regardless of the config;
        an integer overrides the config for this call.
        """
        if isinstance(limit, str):
            if limit != "auto":
                raise ValueError(f"limit must be an int, None or 'auto', got {limit!r}")
            return self.config.range_limit
        if limit is not None:
            limit = int(limit)
            if limit < 1:
                raise ValueError(f"limit must be at least 1, got {limit}")
        return limit

    def range_lookup(
        self, lowers: np.ndarray, uppers: np.ndarray, limit="auto", order=None, cursor=None
    ):
        """Answer inclusive range lookups, optionally with limit pushdown.

        With an effective ``limit`` of ``k`` the traversal runs in
        ``first_k`` mode: every lookup's rays share a budget of ``k`` hits
        and stop traversing once it is spent, so the returned rows are
        exactly the first ``k`` the all-hits trace would report (a stable
        top-k cut) at a fraction of the traversal work.

        ``order="key"`` switches to the ordered paged form (one range per
        call): the traversal runs in ``ordered_k`` mode so the page holds
        exactly the ``limit`` smallest ``(key, rowID)`` matches, and the
        call returns ``(run, next_cursor)`` where ``run.row_ids`` is the
        page in key order and ``next_cursor`` is an opaque ``"key|row_id"``
        token (``None`` once the range is exhausted).  Passing the token
        back as ``cursor`` resumes just past that row: the ray is rebuilt
        from the cursor key (O(page) work instead of re-scanning the
        prefix) and an exclusive any-hit filter drops the rows of a
        duplicate-key run the previous page already returned *before* they
        can consume budget.
        """
        if order is not None:
            if order != "key":
                raise ValueError(f"order must be None or 'key', got {order!r}")
            return self._ordered_range_page(lowers, uppers, limit, cursor)
        if cursor is not None:
            raise ValueError("cursor resume requires order='key'")
        pipeline = self._require_built()
        lowers = np.asarray(lowers, dtype=np.uint64)
        uppers = np.asarray(uppers, dtype=np.uint64)
        if lowers.shape != uppers.shape:
            raise ValueError("lowers and uppers must have the same shape")
        limit = self._range_limit(limit)
        rays = self.codec.range_ray_batch(
            lowers,
            uppers,
            self.config.range_ray_mode,
            max_rays_per_range=self.config.max_rays_per_range,
        )
        mode = "all" if limit is None else "first_k"
        launch = pipeline.launch(
            rays, num_lookups=lowers.shape[0], mode=mode, limit=limit
        )
        run = self._run_to_lookup(launch, lowers.shape[0], kind="range")
        run.stats["trace_mode"] = mode
        if limit is not None:
            run.stats["range_limit"] = limit
        return run

    def _ordered_range_page(self, lowers, uppers, limit, cursor):
        """One page of an ordered range scan: ``(run, next_cursor)``."""
        pipeline = self._require_built()
        lowers = np.asarray(lowers, dtype=np.uint64).reshape(-1)
        uppers = np.asarray(uppers, dtype=np.uint64).reshape(-1)
        if lowers.shape[0] != 1 or uppers.shape[0] != 1:
            raise ValueError(
                "order='key' pages one range at a time; batch paged lookups "
                "through the serving layer"
            )
        limit = self._range_limit(limit)
        if limit is None:
            raise ValueError("order='key' requires a page size (limit)")
        lower = int(lowers[0])
        upper = int(uppers[0])
        if upper < lower:
            raise ValueError("range lookups require upper >= lower")
        cur = parse_cursor(cursor, max_key=self.codec.max_key())
        # Resume *at* the cursor key (duplicates may straddle the page
        # boundary); the exclusive filter below rejects the already-paid
        # rows of that key.  Clamping to the upper bound keeps the ray
        # batch well-formed when the cursor ran past the range.
        resume_lower = lower if cur is None else min(max(lower, cur.key), upper)
        rays = self.codec.range_ray_batch(
            np.array([resume_lower], dtype=np.uint64),
            uppers,
            self.config.range_ray_mode,
            max_rays_per_range=self.config.max_rays_per_range,
        )
        any_hit = make_cursor_filter(self.keys, [cur], base_any_hit=pipeline.any_hit)
        launch = pipeline.launch(
            rays, num_lookups=1, mode="ordered_k", limit=limit, any_hit=any_hit
        )
        run = self._run_to_lookup(launch, 1, kind="range")
        page_rows = launch.hits.prim_indices
        run.row_ids = page_rows.astype(np.uint64)
        run.stats["trace_mode"] = "ordered_k"
        run.stats["range_limit"] = limit
        run.stats["resumed"] = cur is not None
        return run, next_cursor_token(self.keys, page_rows, limit)

    def collect_point_matches(self, queries: np.ndarray) -> list[np.ndarray]:
        """Materialise all matching rowIDs per query (example/demo helper)."""
        pipeline = self._require_built()
        queries = np.asarray(queries, dtype=np.uint64)
        rays = self.codec.point_ray_batch(queries, self.config.point_ray_mode)
        launch = pipeline.launch(rays, num_lookups=queries.shape[0])
        return collect_row_ids(launch.hits, queries.shape[0])

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #

    def update(self, new_keys: np.ndarray, new_values: np.ndarray | None = None) -> UpdateOutcome:
        """Replace the key column and bring the index up to date.

        ``UpdatePolicy.REBUILD`` constructs a fresh accel; ``REFIT`` keeps
        the tree topology and only adjusts the bounding volumes (requires the
        index to have been built with updates enabled).  The number of keys
        must stay the same under REFIT, matching the OptiX restriction.
        """
        new_keys = np.asarray(new_keys, dtype=np.uint64)
        self.codec.validate_keys(new_keys)
        if self._accel is None:
            raise RuntimeError("RXIndex.build() must be called before update()")
        if new_values is None:
            # Updates permute the key buffer; the projected value column stays
            # associated with the (unchanged) rowIDs.  When the update adds or
            # removes rows the stored column no longer lines up — the caller
            # must say what the new rows project to.
            if new_keys.shape[0] != self.num_keys:
                raise ValueError(
                    "update() changed the key count from "
                    f"{self.num_keys} to {new_keys.shape[0]}; pass new_values "
                    "explicitly (the stored value column has the old length)"
                )
            new_values = self.values

        if self.config.update_policy is UpdatePolicy.REBUILD:
            self.build(new_keys, new_values)
            return UpdateOutcome(
                policy=UpdatePolicy.REBUILD,
                profiles=self.build_profiles(),
            )

        if self.config.update_policy is UpdatePolicy.DELTA_SHARD:
            self._store_column(new_keys, new_values, key_bits=64)
            build_input = self._make_build_input(self.keys)
            build_t0 = time.perf_counter()
            delta = accel_delta_update(self.context, self._accel, build_input)
            self._last_build_seconds = time.perf_counter() - build_t0
            # The stitched tree object was swapped; rebind the pipeline.
            self._pipeline = Pipeline(
                self.context, self._accel, max_frontier=self.max_frontier
            )
            self.epoch += 1
            return UpdateOutcome(
                policy=UpdatePolicy.DELTA_SHARD,
                profiles=[self._delta_update_profile(delta)],
                stats={
                    "dirty_shards": delta.dirty_shards,
                    "non_empty_shards": delta.non_empty_shards,
                    "total_shards": delta.total_shards,
                    "rebuilt_trees": delta.rebuilt_trees,
                    "dirty_keys": delta.dirty_keys,
                    "total_keys": delta.total_keys,
                    "noop": delta.noop,
                    "rescaled": delta.rescaled,
                },
            )

        if new_keys.shape[0] != self.num_keys:
            raise ValueError("refit updates cannot add or remove keys")
        self._store_column(new_keys, new_values, key_bits=64)
        build_input = self._make_build_input(self.keys)
        refit = accel_update(self.context, self._accel, build_input)
        self._pipeline = Pipeline(self.context, self._accel, max_frontier=self.max_frontier)
        self.epoch += 1
        profile = WorkProfile(
            name="RX refit",
            threads=self.num_keys,
            instructions=self.num_keys * 18.0,
            # The refit streams the primitive buffer and rewrites every node
            # bottom-up, touching temporary update memory along the way.
            bytes_accessed=2.5 * (refit.bytes_read + refit.bytes_written),
            working_set_bytes=self._accel.size_bytes,
            kernel_launches=1,
            # Refits stream the whole structure through DRAM: there is no
            # reuse for the cache to exploit.
            dram_bytes_min=2.5 * (refit.bytes_read + refit.bytes_written),
        )
        return UpdateOutcome(
            policy=UpdatePolicy.REFIT,
            profiles=[profile],
            surface_area_growth=refit.surface_area_growth,
        )

    def _delta_update_profile(self, delta) -> WorkProfile:
        """Device work of a delta-shard update.

        The dirty shards redo the build passes (AABBs, Morton sort, hierarchy
        emission) over *their* keys only; every update additionally pays one
        streaming diff over the primitive buffers (dirty detection) and one
        streaming rewrite of the node table (the re-stitch), both linear with
        small constants.  A no-op update degenerates to just the diff pass.
        """
        n = self.num_keys
        estimate = accel_memory_estimate(self.config.primitive.value, n)
        prim_bytes = _BUILD_PRIM_BYTES[self.config.primitive.value]
        dirty = int(delta.dirty_keys)
        dirty_frac = dirty / max(delta.total_keys, 1)
        diff_bytes = n * prim_bytes * 2.0  # read old + new buffers once
        stitch_bytes = 0.0 if delta.noop else estimate["uncompacted"] * 1.0
        rebuild_bytes = (
            dirty * prim_bytes * 2.0
            + dirty * 12.0 * 2.0 * 4.0
            + estimate["uncompacted"] * 3.0 * dirty_frac
        )
        bytes_accessed = diff_bytes + stitch_bytes + rebuild_bytes
        return WorkProfile(
            name="RX delta-shard update",
            threads=max(n, 1),
            instructions=n * 4.0 + dirty * 320.0,
            bytes_accessed=bytes_accessed,
            working_set_bytes=estimate["uncompacted"]
            + estimate["peak_during_build"] * dirty_frac,
            serial_depth=4.0,
            kernel_launches=2 + int(delta.rebuilt_trees > 0) * 4,
            dram_bytes_min=bytes_accessed * 0.8,
            metadata={
                "dirty_shards": delta.dirty_shards,
                "dirty_keys": dirty,
                "rebuilt_trees": delta.rebuilt_trees,
            },
        )

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #

    @staticmethod
    def _empty_persist_stats() -> dict:
        return {
            "saves": 0,
            "loads": 0,
            "last_save_seconds": None,
            "last_load_seconds": None,
            "checksum_verify_seconds": None,
            "bytes_on_disk": 0,
            "segments_total": 0,
            "segments_rewritten": 0,
            "segments_reused": 0,
            "last_epoch": None,
        }

    def save(self, path, fault_injector=None) -> dict:
        """Persist the built index as one crash-safe epoch snapshot.

        Every accel component becomes an immutable, checksummed segment
        file under ``path``: the key/value columns, plus either the single
        BVH's node arrays or one segment per forest shard.  The save
        commits by atomically renaming a new manifest — a crash at any
        earlier point leaves the previous committed epoch untouched.
        Segments whose payload did not change since the last committed
        manifest are referenced instead of rewritten, so a save after a
        DELTA_SHARD update only writes the dirty shards (plus columns).
        """
        accel = self.accel
        segments: dict = {
            "columns": (
                {
                    "keys": np.ascontiguousarray(self.keys),
                    "values": np.ascontiguousarray(self.values),
                },
                None,
            )
        }
        if accel.forest is None:
            segments["bvh"] = (
                {
                    name: np.ascontiguousarray(array)
                    for name, array in bvh_state_arrays(accel.bvh).items()
                },
                {"refit_generation": int(accel.bvh.refit_generation)},
            )
        else:
            for bucket, arrays, meta in forest_state_segments(accel.forest):
                segments[f"shard-{bucket:05d}"] = (arrays, meta)
        index_meta = {
            "config": self.config.as_dict(),
            "num_keys": int(self.num_keys),
            "num_primitives": int(accel.bvh.num_primitives),
            "kind": "bvh" if accel.forest is None else "forest",
            "compacted": bool(accel.compacted),
            "refit_generation": int(accel.bvh.refit_generation),
        }
        result = save_snapshot(
            path,
            epoch=max(self.epoch, 0),
            segments=segments,
            index_meta=index_meta,
            fault_injector=fault_injector,
        )
        self._persist_stats.update(
            saves=self._persist_stats["saves"] + 1,
            last_save_seconds=result.save_seconds,
            bytes_on_disk=result.bytes_on_disk,
            segments_total=result.segments_total,
            segments_rewritten=result.segments_rewritten,
            segments_reused=result.segments_reused,
            last_epoch=result.epoch,
        )
        return result.as_dict()

    @classmethod
    def load(
        cls,
        path,
        mmap: bool = True,
        context: DeviceContext | None = None,
        max_frontier: int | None = None,
        fault_injector=None,
    ) -> "RXIndex":
        """Open the last committed snapshot at ``path`` as a fresh index.

        The configuration is taken from the snapshot, every segment is
        checksum-verified before use, and with ``mmap=True`` the column and
        node arrays stay zero-copy views into the segment files — the
        cold-start path the restart benchmark measures.  Lookups against
        the loaded index are bit-identical to the index that was saved.
        """
        snap = load_snapshot(path, mmap=mmap, fault_injector=fault_injector)
        index = cls(
            config=RXConfig.from_dict(snap.index_meta["config"]),
            context=context,
            max_frontier=max_frontier,
        )
        index._install_snapshot(snap)
        index.epoch = snap.epoch
        return index

    def restore_from(self, path, mmap: bool = True, fault_injector=None) -> dict:
        """Adopt the last committed snapshot at ``path`` into *this* index.

        The warm-restart form of :meth:`load`: the index object (and
        whatever serving state observes it) stays, the accel state is
        swapped for the snapshot's, and the epoch counter advances past
        both the snapshot's tag and the current epoch so epoch-keyed
        consumers (caches, pinned cursor pages) see a state change.
        """
        snap = load_snapshot(path, mmap=mmap, fault_injector=fault_injector)
        config = RXConfig.from_dict(snap.index_meta["config"])
        config.validate()
        self.config = config
        self.codec = make_codec(config.key_mode, config.decomposition)
        self._install_snapshot(snap)
        self.epoch = max(snap.epoch, self.epoch + 1)
        return {
            "epoch": self.epoch,
            "snapshot_epoch": snap.epoch,
            "manifest_version": snap.manifest_version,
            "load_seconds": snap.load_seconds,
            "bytes_on_disk": snap.bytes_on_disk,
            "segments_total": snap.segments_total,
        }

    def _install_snapshot(self, snap) -> None:
        """Rebuild the live accel state from a verified snapshot."""
        meta = snap.index_meta
        columns = snap.arrays("columns")
        self._store_column(columns["keys"], columns["values"], key_bits=64)
        if int(meta.get("num_keys", self.num_keys)) != self.num_keys:
            raise SnapshotCorrupt(
                f"snapshot manifest records {meta.get('num_keys')} keys but the "
                f"columns segment holds {self.num_keys}",
                segment="columns",
            )

        if self._accel is not None:
            self.context.memory.free(self._accel.memory_handle)
            self._accel = None

        build_input = self._make_build_input(self.keys)
        buffer = build_input.primitive_buffer()
        flags = self._build_flags()
        base = self._bvh_options()
        # Normalise exactly like accel_build so the restored options compare
        # equal to the ones the original build ran with.
        options = BvhBuildOptions(
            builder=base.builder,
            max_leaf_size=base.max_leaf_size,
            sah_bins=base.sah_bins,
            morton_bits=base.morton_bits,
            allow_update=bool(flags & BuildFlags.ALLOW_UPDATE),
            allow_compaction=bool(flags & BuildFlags.ALLOW_COMPACTION),
            shard_bits=base.shard_bits,
            workers=base.workers,
            backend=base.backend,
        )
        compacted = bool(meta.get("compacted", False))
        if meta.get("kind") == "forest":
            shard_rows: dict = {}
            shard_tree_arrays: dict = {}
            for name in snap.segments:
                if not name.startswith("shard-"):
                    continue
                seg_arrays = snap.arrays(name)
                seg_meta = snap.meta(name)
                bucket = int(seg_meta["bucket"])
                shard_rows[bucket] = seg_arrays["rows"]
                if seg_meta.get("delegated"):
                    shard_tree_arrays[bucket] = {
                        k: v for k, v in seg_arrays.items() if k != "rows"
                    }
            forest = forest_from_saved(buffer, options, shard_rows, shard_tree_arrays)
            bvh = forest.bvh
            bvh.compacted = compacted
        else:
            forest = None
            bvh = bvh_from_arrays(
                snap.arrays("bvh"),
                num_primitives=int(meta.get("num_primitives", self.num_keys)),
                options=options,
                compacted=compacted,
                refit_generation=int(meta.get("refit_generation", 0)),
            )

        # Mirror the build path's device-memory accounting: the accel is
        # allocated uncompacted, then (when the snapshot was compacted) the
        # compacted allocation replaces it.
        memory_info = accel_memory_estimate(buffer.kind, len(buffer))
        accel_handle = self.context.memory.alloc("accel", memory_info["uncompacted"])
        accel = GeometryAccel(
            bvh=bvh,
            build_input=build_input,
            flags=flags,
            memory_handle=accel_handle,
            memory_info=memory_info,
            build_metrics=BuildMetrics(num_primitives=len(buffer)),
            forest=forest,
        )
        if compacted:
            new_handle = self.context.memory.alloc(
                "accel_compacted", memory_info["compacted"]
            )
            self.context.memory.free(accel.memory_handle)
            accel.memory_handle = new_handle
            accel.compacted = True
        self._accel = accel
        self._pipeline = Pipeline(self.context, accel, max_frontier=self.max_frontier)
        self._last_build_seconds = None
        memory = self.memory_footprint()
        self._build_result = BuildResult(
            num_keys=self.num_keys,
            key_bits=64,
            memory=memory,
            stats={
                "primitive": self.config.primitive.value,
                "key_mode": self.config.key_mode.value,
                "builder": self.config.bvh_builder,
                "bvh_nodes": bvh.node_count,
                "bvh_depth": bvh.depth(),
                "bvh_leaves": bvh.leaf_count,
                "compacted": compacted,
                "restored_from_snapshot": True,
            },
        )
        self._persist_stats.update(
            loads=self._persist_stats["loads"] + 1,
            last_load_seconds=snap.load_seconds,
            checksum_verify_seconds=snap.checksum_verify_seconds,
            bytes_on_disk=snap.bytes_on_disk,
            segments_total=snap.segments_total,
            last_epoch=snap.epoch,
        )

    # ------------------------------------------------------------------ #
    # costing
    # ------------------------------------------------------------------ #

    @property
    def accel(self):
        if self._accel is None:
            raise RuntimeError("RXIndex.build() must be called first")
        return self._accel

    def stats(self) -> dict:
        """One-dict summary of the index's live state.

        Bundles the column, epoch, shard and memory bookkeeping with the
        pipeline's cumulative trace counters and the primitive buffer's
        intersection-pack cache state — the summary the serving layer's
        demo/driver prints.  Requires a built index.
        """
        accel = self.accel
        memory = self.memory_footprint()
        buffer = accel.build_input.primitive_buffer()
        forest = accel.forest
        return {
            "num_keys": self.num_keys,
            "epoch": self.epoch,
            "key_mode": self.config.key_mode.value,
            "primitive": self.config.primitive.value,
            "builder": self.config.bvh_builder,
            "update_policy": self.config.update_policy.value,
            "bvh_nodes": accel.bvh.node_count,
            "bvh_depth": accel.bvh.depth(),
            "compacted": accel.compacted,
            "shard_bits": self.config.shard_bits,
            "shard_count": forest.non_empty_shards if forest is not None else 1,
            "memory_final_bytes": memory.final_bytes,
            "memory_build_peak_bytes": memory.build_peak_bytes,
            "device_bytes_in_use": self.context.memory.current_bytes,
            "device_bytes_peak": self.context.memory.peak_bytes,
            "intersection_pack_warm": buffer.intersection_pack_warm,
            "build": self._build_stats_block(forest),
            "persist": dict(self._persist_stats),
            "trace_counters": self._pipeline.engine.counters.as_dict()
            if self._pipeline is not None
            else {},
        }

    def _build_stats_block(self, forest) -> dict:
        """The ``stats()["build"]`` telemetry: what the last accel build (or
        delta update) moved and spent.  Single-tree builds have no pool and
        no shared blocks, so they report a synthesized serial entry."""
        telemetry = forest.telemetry if forest is not None else None
        if telemetry is None:
            return {
                "backend": "serial",
                "workers_requested": 1,
                "workers_used": 1,
                "shards": 1,
                "delegated_shards": 0,
                "bytes_shared": 0,
                "bytes_pickled": 0,
                "tasks": 0,
                "wall_seconds": self._last_build_seconds,
            }
        return {
            "backend": telemetry.backend,
            "workers_requested": telemetry.workers_requested,
            "workers_used": telemetry.workers_used,
            "shards": telemetry.shards,
            "delegated_shards": telemetry.delegated_shards,
            "bytes_shared": telemetry.bytes_shared,
            "bytes_pickled": telemetry.bytes_pickled,
            "tasks": telemetry.tasks,
            "wall_seconds": self._last_build_seconds
            if self._last_build_seconds is not None
            else telemetry.wall_seconds,
        }

    def memory_footprint(self, target_keys: int | None = None) -> MemoryFootprint:
        n = self.num_keys if target_keys is None else target_keys
        estimate = accel_memory_estimate(self.config.primitive.value, n)
        final = estimate["compacted"] if self.config.compaction else estimate["uncompacted"]
        # The triangle/sphere/AABB input buffer is derived from the key
        # column the caller already owns, so only the accel's own scratch
        # space counts as build overhead (Table 6).
        peak = estimate["peak_during_build"]
        return MemoryFootprint(final_bytes=final, build_peak_bytes=peak)

    def build_profiles(
        self, target_keys: int | None = None, presorted: bool = False
    ) -> list[WorkProfile]:
        n = self.num_keys if target_keys is None else target_keys
        estimate = accel_memory_estimate(self.config.primitive.value, n)
        prim_bytes = _BUILD_PRIM_BYTES[self.config.primitive.value]
        # The BVH build makes several passes: primitive AABB computation,
        # Morton coding + sort, hierarchy emission, bound fitting, and
        # (optionally) compaction.  This is what makes RX the most expensive
        # index to construct (Figure 10c) even though it scales linearly.
        # Spheres need an extra software pass to derive their bounds, AABBs
        # skip the vertex-to-bounds conversion entirely (Figure 7b).
        pass_factor = {"triangle": 1.0, "sphere": 1.4, "aabb": 0.85}[self.config.primitive.value]
        passes_bytes = (
            n * prim_bytes * 2.0                      # read primitives, write AABBs
            + n * 12.0 * 2.0 * 4.0                    # Morton key/value sort passes
            + estimate["uncompacted"] * 3.0 * pass_factor  # hierarchy emission + fitting
            + (estimate["compacted"] if self.config.compaction else 0)
        )
        profiles = [
            WorkProfile(
                name="RX accel build",
                threads=n,
                instructions=n * 320.0,
                bytes_accessed=passes_bytes,
                working_set_bytes=estimate["peak_during_build"],
                serial_depth=4.0,
                kernel_launches=6,
                dram_bytes_min=passes_bytes * 0.8,
            )
        ]
        return profiles

    def _node_visit_scale(self, target_keys: int | None) -> float:
        """Extra BVH levels per ray when extrapolating to ``target_keys``."""
        if not target_keys or target_keys <= self.num_keys:
            return 0.0
        return math.log2(target_keys / self.num_keys)

    def lookup_profile(
        self,
        run: LookupRun,
        target_keys: int | None = None,
        target_lookups: int | None = None,
        locality: float = 0.0,
        value_bytes: int | None = None,
    ) -> WorkProfile:
        value_bytes = value_bytes if value_bytes is not None else self.config.value_bytes
        m = run.num_lookups if target_lookups is None else target_lookups
        lookup_scale = self._scale_lookups(run.num_lookups, target_lookups)

        rays_per_lookup = run.stats.get("rays_per_lookup", 1.0)
        node_visits = run.stats.get("node_visits_per_ray", 1.0)
        prim_tests = run.stats.get("prim_tests_per_ray", 1.0)
        # Early-exit traversal (any_hit / first_k): the wavefront engine only
        # retires a terminated ray between rounds, so on balanced trees —
        # where every leaf sits on the last level — its measured counters
        # still include leaf-phase work that per-ray RT hardware would have
        # skipped once the budget ran dry.  ``budget_dropped_hits`` counts
        # exactly those surplus hits; discount the leaf visits and primitive
        # tests by the surviving fraction so a pushed-down LIMIT shows up in
        # the modelled cost even on balanced dense trees.
        dropped = run.stats.get("budget_dropped_hits", 0)
        if dropped > 0:
            kept = max(run.total_hits, 1)
            survive = kept / (kept + dropped)
            leaf_visits = run.stats.get("leaf_visits_per_ray", 0.0)
            node_visits -= leaf_visits * (1.0 - survive)
            prim_tests *= survive
        extra_levels = self._node_visit_scale(target_keys)
        node_visits += extra_levels
        # Rays that miss every primitive abort their traversal early: the
        # quantised hardware BVH excludes them high up in the tree, which the
        # paper measures as a -63% drop in memory traffic at a hit rate of
        # zero.  Discount the traversal work of the measured miss fraction
        # accordingly.
        rays_measured = max(run.num_lookups * rays_per_lookup, 1.0)
        miss_fraction = min(run.stats.get("rays_without_hits", 0.0) / rays_measured, 1.0)
        traversal_discount = 1.0 - miss_fraction * (1.0 - MISS_TRAVERSAL_FACTOR)
        node_visits *= traversal_discount
        prim_tests *= traversal_discount
        node_bytes_per_visit = self.accel.bvh.node_bytes()
        prim_bytes = _PRIM_TEST_BYTES[self.config.primitive.value]

        hits = run.total_hits * lookup_scale
        rays = m * rays_per_lookup

        bytes_accessed = (
            rays * (node_visits * node_bytes_per_visit + prim_tests * prim_bytes)
            + m * 8.0
            + hits * value_bytes
        )
        rt_tests = rays * (node_visits + prim_tests)
        instructions = (
            m * _INSTR_PER_LOOKUP + rays * _INSTR_PER_RAY + hits * _INSTR_PER_HIT
        )
        # AABB (and sphere) primitives call a software intersection program,
        # shifting work from the RT cores back onto the SMs and fetching the
        # candidate data through the regular (less efficient) load path
        # (Figure 7a).
        if self.config.primitive is not PrimitiveType.TRIANGLE:
            instructions += rays * prim_tests * 25.0
            bytes_accessed += rays * prim_tests * prim_bytes * 1.5
            rt_tests = rays * node_visits

        accel_bytes = accel_memory_estimate(
            self.config.primitive.value,
            self.num_keys if target_keys is None else target_keys,
        )["compacted" if self.config.compaction else "uncompacted"]
        n_values = (self.num_keys if target_keys is None else target_keys) * value_bytes

        return WorkProfile(
            name="RX lookup",
            threads=int(m),
            instructions=instructions,
            bytes_accessed=bytes_accessed,
            working_set_bytes=accel_bytes + n_values,
            serial_depth=2.0,
            rt_tests=rt_tests,
            hot_fraction=0.55,
            kernel_launches=1,
            locality=locality,
            dram_bytes_min=m * 12.0,
            metadata={
                "rays_per_lookup": rays_per_lookup,
                "node_visits_per_ray": node_visits,
                "prim_tests_per_ray": prim_tests,
            },
        )
