"""Order-preserving mappings from native data types to uint64 keys.

Section 3.2 ("Handling other data types"): RX indexes unsigned 64-bit
integers, but every native C data type can be mapped to a uint64 while
preserving its ordering — the classic radix-sort trick — and composite types
with lexicographic ordering can pack their leading components into 64 bits
for hardware-accelerated prefiltering.

Floating-point values in particular should *always* be remapped and never be
indexed directly: their raw value range ratio can be astronomically large,
which is exactly the situation that slows the BVH down (see the Extended-Mode
experiments in Figure 3).
"""

from __future__ import annotations

import numpy as np

_SIGN_BIT_64 = np.uint64(1) << np.uint64(63)
_SIGN_BIT_32 = np.uint32(1) << np.uint32(31)


def int64_to_uint64(values) -> np.ndarray:
    """Map signed 64-bit integers to uint64, preserving order.

    Flipping the sign bit shifts the signed range ``[-2^63, 2^63)`` onto
    ``[0, 2^64)`` monotonically.
    """
    arr = np.asarray(values, dtype=np.int64)
    return arr.view(np.uint64) ^ _SIGN_BIT_64


def uint64_to_int64(values) -> np.ndarray:
    """Inverse of :func:`int64_to_uint64`."""
    arr = np.asarray(values, dtype=np.uint64)
    return (arr ^ _SIGN_BIT_64).view(np.int64)


def float64_to_uint64(values) -> np.ndarray:
    """Map IEEE-754 doubles to uint64, preserving their total order.

    Positive floats only need their sign bit flipped; negative floats are
    bitwise inverted so that more-negative values map to smaller integers.
    NaNs are not supported (their order is undefined).
    """
    arr = np.asarray(values, dtype=np.float64)
    if np.isnan(arr).any():
        raise ValueError("NaN values cannot be mapped order-preservingly")
    bits = arr.view(np.uint64)
    negative = bits >> np.uint64(63) == 1
    flipped = np.where(negative, ~bits, bits ^ _SIGN_BIT_64)
    return flipped.astype(np.uint64)


def uint64_to_float64(values) -> np.ndarray:
    """Inverse of :func:`float64_to_uint64`."""
    bits = np.asarray(values, dtype=np.uint64)
    negative = bits >> np.uint64(63) == 0
    restored = np.where(negative, ~bits, bits ^ _SIGN_BIT_64)
    return restored.astype(np.uint64).view(np.float64)


def float32_to_uint64(values) -> np.ndarray:
    """Map IEEE-754 singles to uint64 (via the 32-bit trick, widened)."""
    arr = np.asarray(values, dtype=np.float32)
    if np.isnan(arr).any():
        raise ValueError("NaN values cannot be mapped order-preservingly")
    bits = arr.view(np.uint32)
    negative = bits >> np.uint32(31) == 1
    flipped = np.where(negative, ~bits, bits ^ _SIGN_BIT_32)
    return flipped.astype(np.uint64)


def string_to_uint64(values, num_chars: int = 8) -> np.ndarray:
    """Pack the first ``num_chars`` bytes of each string into a uint64.

    The packing is big-endian so that the integer order equals the
    lexicographic order of the prefixes.  Strings sharing a 64-bit prefix
    compare equal here and must be disambiguated in software, exactly as the
    paper describes.
    """
    if not 1 <= num_chars <= 8:
        raise ValueError("num_chars must be between 1 and 8")
    out = np.zeros(len(values), dtype=np.uint64)
    for i, value in enumerate(values):
        raw = value.encode("utf-8")[:num_chars] if isinstance(value, str) else bytes(value)[:num_chars]
        padded = raw.ljust(8, b"\x00")
        out[i] = np.uint64(int.from_bytes(padded, byteorder="big"))
    return out


def composite_to_uint64(components: list[np.ndarray], bits: list[int]) -> np.ndarray:
    """Densely pack several integer components into one uint64 key.

    ``components[0]`` becomes the most significant part, so the packed key
    orders lexicographically — e.g. ``composite_to_uint64([year, month, day],
    [16, 8, 8])``.
    """
    if len(components) != len(bits):
        raise ValueError("components and bits must have the same length")
    if sum(bits) > 64:
        raise ValueError(f"total bit width {sum(bits)} exceeds 64")
    arrays = [np.asarray(c, dtype=np.uint64) for c in components]
    length = arrays[0].shape[0]
    result = np.zeros(length, dtype=np.uint64)
    for component, width in zip(arrays, bits):
        if component.shape[0] != length:
            raise ValueError("all components must have the same length")
        limit = np.uint64(1) << np.uint64(width)
        if np.any(component >= limit):
            raise ValueError(f"a component exceeds its allotted {width} bits")
        result = (result << np.uint64(width)) | component
    return result
