"""Keyset cursors for resumable ordered range scans.

A paged ``ORDER BY key LIMIT k`` scan resumes from an opaque cursor token
``"{key}|{row_id}"`` naming the last row the previous page returned (the
keyset-pagination idiom).  Resuming is a plain range lookup whose lower
bound is clamped to the cursor key — the ray origin starts *at* the cursor
key, not past it, because duplicate keys may straddle the page boundary —
plus an exclusive any-hit filter that rejects every primitive at or before
``(key, row_id)``.  The filter runs before budget accounting, so rows the
previous page already paid for never consume the new page's budget (the
duplicate-run boundary case: a cursor landing in the middle of a run of
equal keys must re-scan the run's primitives but re-emit none of them).

The serving layer coalesces many paged lookups into one launch, so the
filter builder is vectorised per lookup: each lookup carries its own
``(cursor_key, cursor_row)`` pair, and lookups without a cursor pass
everything through.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Cursor",
    "encode_cursor",
    "parse_cursor",
    "make_cursor_filter",
    "next_cursor_token",
]


@dataclass(frozen=True)
class Cursor:
    """The last row a page returned: resume strictly after ``(key, row_id)``."""

    key: int
    row_id: int

    def encode(self) -> str:
        return f"{self.key}|{self.row_id}"


def encode_cursor(key: int, row_id: int) -> str:
    """Opaque keyset token for the row ``(key, row_id)``."""
    return Cursor(int(key), int(row_id)).encode()


def parse_cursor(
    token: "str | Cursor | None", max_key: int | None = None
) -> Cursor | None:
    """Decode a cursor token; ``None`` (first page) passes through.

    Every way a client-supplied token can be malformed — wrong field count,
    non-integer parts, negative values, a key or rowID too large for the
    engine's fixed-width arithmetic, or (with ``max_key``) a key outside
    the codec's representable range — raises a single clean ``ValueError``
    here at the API boundary, never an internal overflow from deep inside
    the codec or the filter builder.
    """
    if token is None:
        return None
    if isinstance(token, Cursor):
        cursor = token
    else:
        if not isinstance(token, str):
            raise ValueError(f"cursor must be a 'key|row_id' string, got {token!r}")
        key_part, sep, row_part = token.partition("|")
        if not sep:
            raise ValueError(f"malformed cursor {token!r}: expected 'key|row_id'")
        try:
            key = int(key_part)
            row_id = int(row_part)
        except ValueError as exc:
            raise ValueError(
                f"malformed cursor {token!r}: expected 'key|row_id'"
            ) from exc
        cursor = Cursor(key, row_id)
    if cursor.key < 0 or cursor.row_id < 0:
        raise ValueError(f"malformed cursor {token!r}: key and row_id must be >= 0")
    # The engine stores keys as uint64 and rowIDs as int64; anything wider
    # would overflow far from the API boundary.
    if cursor.key >= 1 << 64:
        raise ValueError(
            f"malformed cursor {token!r}: key does not fit an unsigned 64-bit key"
        )
    if cursor.row_id >= 1 << 63:
        raise ValueError(
            f"malformed cursor {token!r}: row_id does not fit a 64-bit rowID"
        )
    if max_key is not None and cursor.key > int(max_key):
        raise ValueError(
            f"malformed cursor {token!r}: key {cursor.key} exceeds the codec's "
            f"maximum representable key {int(max_key)}"
        )
    return cursor


def make_cursor_filter(keys: np.ndarray, cursors, base_any_hit=None):
    """Exclusive per-lookup resume filter as an any-hit program.

    ``keys`` is the indexed key column (``keys[row_id]`` is the key of that
    row); ``cursors`` holds one ``Cursor | None`` per lookup.  The returned
    callable has the any-hit signature ``(ray_indices, prim_indices,
    lookup_ids) -> bool mask`` and keeps a candidate row iff its lookup has
    no cursor or the row orders strictly after the cursor under the scan
    order ``(key, row_id)`` — so a cursor sitting on the first, middle or
    last primitive of a duplicate-key run excludes exactly the rows already
    paid out.  Composes with ``base_any_hit`` (logical AND) when the
    pipeline already filters intersections.

    Returns ``base_any_hit`` unchanged (possibly ``None``) when no lookup
    carries a cursor — the first page must trace bit-identically to a plain
    ordered lookup.
    """
    cursors = list(cursors)
    if not any(c is not None for c in cursors):
        return base_any_hit

    keys = np.asarray(keys, dtype=np.uint64)
    has_cursor = np.array([c is not None for c in cursors], dtype=bool)
    cursor_keys = np.array(
        [c.key if c is not None else 0 for c in cursors], dtype=np.uint64
    )
    cursor_rows = np.array(
        [c.row_id if c is not None else -1 for c in cursors], dtype=np.int64
    )

    def cursor_any_hit(ray_indices, prim_indices, lookup_ids):
        prim_keys = keys[prim_indices]
        ck = cursor_keys[lookup_ids]
        keep = (
            ~has_cursor[lookup_ids]
            | (prim_keys > ck)
            | ((prim_keys == ck) & (prim_indices > cursor_rows[lookup_ids]))
        )
        if base_any_hit is not None:
            keep &= np.asarray(base_any_hit(ray_indices, prim_indices, lookup_ids))
        return keep

    return cursor_any_hit


def next_cursor_token(keys: np.ndarray, page_rows: np.ndarray, limit: int) -> str | None:
    """Cursor resuming after an ordered page, or ``None`` when exhausted.

    ``page_rows`` are one lookup's returned rowIDs in ``(key, row_id)``
    order.  A short page means the scan ran off the end of the range —
    there is nothing left to resume into.
    """
    if page_rows.size < limit:
        return None
    last_row = int(page_rows[-1])
    return encode_cursor(int(np.asarray(keys, dtype=np.uint64)[last_row]), last_row)
