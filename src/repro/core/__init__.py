"""The paper's contribution: RX, a raytracing-backed secondary index.

Public entry points:

* :class:`repro.core.config.RXConfig` — the five configuration dimensions of
  Section 3 (key mode, primitive type, ray modes, key decomposition, update
  policy) plus builder knobs,
* :class:`repro.core.rx_index.RXIndex` — build / point lookup / range lookup /
  update, implementing the common :class:`repro.baselines.base.GpuIndex`
  interface,
* :mod:`repro.core.keycodec` — the three key-to-coordinate conversions of
  Table 1,
* :mod:`repro.core.typemap` — order-preserving mapping of other data types to
  uint64 keys.
"""

from repro.core.config import (
    KeyDecomposition,
    KeyMode,
    PointRayMode,
    PrimitiveType,
    RangeRayMode,
    RXConfig,
    UpdatePolicy,
)
from repro.core.keycodec import (
    ExtendedCodec,
    KeyCodec,
    NaiveCodec,
    ThreeDCodec,
    make_codec,
)
from repro.core.rx_index import RXIndex
from repro.core.typemap import (
    composite_to_uint64,
    float32_to_uint64,
    float64_to_uint64,
    int64_to_uint64,
    string_to_uint64,
    uint64_to_float64,
    uint64_to_int64,
)

__all__ = [
    "ExtendedCodec",
    "KeyCodec",
    "KeyDecomposition",
    "KeyMode",
    "NaiveCodec",
    "PointRayMode",
    "PrimitiveType",
    "RangeRayMode",
    "RXConfig",
    "RXIndex",
    "ThreeDCodec",
    "UpdatePolicy",
    "composite_to_uint64",
    "float32_to_uint64",
    "float64_to_uint64",
    "int64_to_uint64",
    "make_codec",
    "string_to_uint64",
    "uint64_to_float64",
    "uint64_to_int64",
]
