"""Helpers for turning raw hit records into lookup results.

A pipeline launch yields a flat list of (ray, primitive) hits.  The paper's
evaluation needs three derived quantities per lookup batch:

* the rowID of the first match per lookup — with a reserved *miss value* when
  nothing matched,
* the number of matches per lookup (duplicates and range lookups return more
  than one rowID),
* the sum of the values associated with every matching rowID (the end-to-end
  aggregate the paper computes after the index probe).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import MISS_SENTINEL
from repro.rtx.traversal import HitRecords


def hits_per_lookup(hits: HitRecords, num_lookups: int) -> np.ndarray:
    """Number of reported matches for each of ``num_lookups`` lookups."""
    counts = np.zeros(num_lookups, dtype=np.int64)
    if hits.count:
        np.add.at(counts, hits.lookup_ids, 1)
    return counts


def first_row_per_lookup(hits: HitRecords, num_lookups: int) -> np.ndarray:
    """RowID of the first match per lookup, ``MISS_SENTINEL`` where none."""
    result = np.full(num_lookups, MISS_SENTINEL, dtype=np.uint64)
    if hits.count:
        # Process hits in reverse so the first occurrence wins.
        order = np.argsort(hits.lookup_ids, kind="stable")[::-1]
        result[hits.lookup_ids[order]] = hits.prim_indices[order].astype(np.uint64)
    return result


def aggregate_values(hits: HitRecords, values: np.ndarray) -> int:
    """Sum of ``values[rowID]`` over every reported hit."""
    if hits.count == 0:
        return 0
    return int(values[hits.prim_indices].sum(dtype=np.uint64))


def collect_row_ids(hits: HitRecords, num_lookups: int) -> list[np.ndarray]:
    """Materialise the full list of matching rowIDs per lookup.

    One stable argsort groups the hits by lookup and two ``searchsorted``
    calls find every lookup's slice boundaries, so the per-lookup arrays are
    zero-copy views into the sorted buffer — no per-lookup allocation.
    """
    if hits.count == 0:
        return [np.empty(0, dtype=np.uint64) for _ in range(num_lookups)]
    order = np.argsort(hits.lookup_ids, kind="stable")
    sorted_lookups = hits.lookup_ids[order]
    sorted_prims = hits.prim_indices[order].astype(np.uint64)
    lookup_range = np.arange(num_lookups, dtype=sorted_lookups.dtype)
    starts = np.searchsorted(sorted_lookups, lookup_range, side="left")
    ends = np.searchsorted(sorted_lookups, lookup_range, side="right")
    return [sorted_prims[s:e] for s, e in zip(starts, ends)]
