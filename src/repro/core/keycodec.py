"""Key-to-coordinate codecs: Naive, Extended and 3D Mode (Section 3.2, Table 1).

OptiX only accepts float32 coordinates, so 32/64-bit integer keys cannot be
used as coordinates directly.  The three codecs trade supported key range
against scene layout:

=========  ==============  ==========================================  ==========
mode       distinct keys   conversion                                  gap
=========  ==============  ==========================================  ==========
Naive      2^23            ``k -> (float(k), 0, 0)``                   ``±0.5``
Extended   2^29            ``k -> (bit_cast<float>(2k + C), 0, 0)``    ``nextafter``
3D         2^64            ``k -> (float(k_x), float(k_y), float(k_z))``  ``±0.5``
=========  ==============  ==========================================  ==========

Each codec knows how to encode the key column into primitive anchor points
and how to build the ray batches for point and range lookups under every ray
mode it supports.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.config import (
    KeyDecomposition,
    KeyMode,
    PointRayMode,
    RangeRayMode,
)
from repro.core.rays import (
    expand_multi_row_ranges,
    parallel_rays_from_offset,
    parallel_rays_from_zero,
    perpendicular_point_rays,
)
from repro.rtx import float32 as f32
from repro.rtx.geometry import RayBatch


class KeyCodec(abc.ABC):
    """Base class of the three key conversion modes."""

    mode: KeyMode

    @abc.abstractmethod
    def max_key(self) -> int:
        """Largest key value this codec can represent correctly."""

    def validate_keys(self, keys: np.ndarray) -> None:
        """Raise ``ValueError`` if any key exceeds the codec's supported range."""
        keys = np.asarray(keys, dtype=np.uint64)
        limit = np.uint64(self.max_key())
        if keys.size and np.any(keys > limit):
            raise ValueError(
                f"{self.mode.value} mode supports keys up to {int(limit)}, "
                f"but the column contains {int(keys.max())}"
            )

    @abc.abstractmethod
    def encode_points(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray | None]:
        """Map keys to ``(n, 3)`` float32 anchor points.

        Returns ``(points, x_half_extent)`` where ``x_half_extent`` is either
        ``None`` (use the default ±0.5 gap) or a per-key array of world-space
        half widths along x (Extended Mode's one-ULP gaps).
        """

    @abc.abstractmethod
    def point_ray_batch(self, queries: np.ndarray, mode: PointRayMode) -> RayBatch:
        """Build the ray batch answering one point lookup per query key."""

    @abc.abstractmethod
    def range_ray_batch(
        self,
        lowers: np.ndarray,
        uppers: np.ndarray,
        mode: RangeRayMode,
        max_rays_per_range: int = 64,
    ) -> RayBatch:
        """Build the ray batch answering one range lookup per (lower, upper) pair."""


class NaiveCodec(KeyCodec):
    """Naive Mode: cast the key directly to a float32 x coordinate.

    Limited to 2^23 distinct keys so that ``k ± 0.5`` stays exactly
    representable for every key (the ray endpoints need the gaps).
    """

    mode = KeyMode.NAIVE

    def max_key(self) -> int:
        return f32.NAIVE_MODE_KEY_LIMIT - 1

    def encode_points(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray | None]:
        self.validate_keys(keys)
        keys = np.asarray(keys, dtype=np.uint64)
        points = np.zeros((keys.shape[0], 3), dtype=np.float32)
        points[:, 0] = keys.astype(np.float32)
        return points, None

    def point_ray_batch(self, queries: np.ndarray, mode: PointRayMode) -> RayBatch:
        self.validate_keys(queries)
        queries = np.asarray(queries, dtype=np.uint64)
        anchors, _ = self.encode_points(queries)
        x = queries.astype(np.float64)
        zeros = np.zeros(queries.shape[0])
        if mode is PointRayMode.PERPENDICULAR:
            return perpendicular_point_rays(anchors)
        if mode is PointRayMode.PARALLEL_FROM_OFFSET:
            return parallel_rays_from_offset(zeros, zeros, x - 0.5, x + 0.5)
        return parallel_rays_from_zero(zeros, zeros, x - 0.5, x + 0.5)

    def range_ray_batch(
        self,
        lowers: np.ndarray,
        uppers: np.ndarray,
        mode: RangeRayMode,
        max_rays_per_range: int = 64,
    ) -> RayBatch:
        self.validate_keys(lowers)
        self.validate_keys(uppers)
        lo = np.asarray(lowers, dtype=np.float64)
        hi = np.asarray(uppers, dtype=np.float64)
        zeros = np.zeros(lo.shape[0])
        if mode is RangeRayMode.PARALLEL_FROM_OFFSET:
            return parallel_rays_from_offset(zeros, zeros, lo - 0.5, hi + 0.5)
        return parallel_rays_from_zero(zeros, zeros, lo - 0.5, hi + 0.5)


class ExtendedCodec(KeyCodec):
    """Extended Mode: map key ``k`` to the float32 with bit pattern ``2k + C``.

    Mapping to every second representable float guarantees a gap value
    between adjacent keys, found with ``nextafter`` instead of ``± 0.5``.
    Supports 2^29 distinct keys; rays can only start from zero because the
    origin cannot be offset without rounding.
    """

    mode = KeyMode.EXTENDED

    def max_key(self) -> int:
        return f32.EXTENDED_MODE_KEY_LIMIT - 1

    def _coords(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64)
        bits = (np.uint64(2) * keys + np.uint64(f32.EXTENDED_MODE_OFFSET)).astype(np.uint32)
        return f32.bit_cast_u32_to_f32(bits)

    def gap_below(self, keys: np.ndarray) -> np.ndarray:
        """The representable float just below each key's coordinate."""
        return f32.nextafter_f32(self._coords(keys), np.float32(-np.inf))

    def gap_above(self, keys: np.ndarray) -> np.ndarray:
        """The representable float just above each key's coordinate."""
        return f32.nextafter_f32(self._coords(keys), np.float32(np.inf))

    def encode_points(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray | None]:
        self.validate_keys(keys)
        coords = self._coords(keys)
        points = np.zeros((coords.shape[0], 3), dtype=np.float32)
        points[:, 0] = coords
        x_half_extent = f32.ulp_f32(coords).astype(np.float64)
        return points, x_half_extent

    def point_ray_batch(self, queries: np.ndarray, mode: PointRayMode) -> RayBatch:
        self.validate_keys(queries)
        queries = np.asarray(queries, dtype=np.uint64)
        if mode is PointRayMode.PARALLEL_FROM_OFFSET:
            raise ValueError("Extended Mode does not support offset ray origins")
        anchors, _ = self.encode_points(queries)
        zeros = np.zeros(queries.shape[0])
        if mode is PointRayMode.PERPENDICULAR:
            return perpendicular_point_rays(anchors)
        lo = self.gap_below(queries).astype(np.float64)
        hi = self.gap_above(queries).astype(np.float64)
        return parallel_rays_from_zero(zeros, zeros, lo, hi)

    def range_ray_batch(
        self,
        lowers: np.ndarray,
        uppers: np.ndarray,
        mode: RangeRayMode,
        max_rays_per_range: int = 64,
    ) -> RayBatch:
        if mode is RangeRayMode.PARALLEL_FROM_OFFSET:
            raise ValueError("Extended Mode does not support offset ray origins")
        self.validate_keys(lowers)
        self.validate_keys(uppers)
        zeros = np.zeros(np.asarray(lowers).shape[0])
        lo = self.gap_below(lowers).astype(np.float64)
        hi = self.gap_above(uppers).astype(np.float64)
        return parallel_rays_from_zero(zeros, zeros, lo, hi)


class ThreeDCodec(KeyCodec):
    """3D Mode: split the key's bits across the x, y and z coordinates.

    The default 23+23+18 split supports full 64-bit keys.  Point lookups
    receive a three-dimensional anchor; range lookups may need one ray per
    (y, z) row the range touches (Figure 4).
    """

    mode = KeyMode.THREE_D

    def __init__(self, decomposition: KeyDecomposition | None = None):
        self.decomposition = decomposition or KeyDecomposition()

    def max_key(self) -> int:
        return self.decomposition.max_key

    def decompose(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Split keys into their (x, y, z) integer components."""
        keys = np.asarray(keys, dtype=np.uint64)
        d = self.decomposition
        x_mask = np.uint64((1 << d.x_bits) - 1)
        y_mask = np.uint64((1 << d.y_bits) - 1) if d.y_bits else np.uint64(0)
        x = keys & x_mask
        y = (keys >> np.uint64(d.x_bits)) & y_mask if d.y_bits else np.zeros_like(keys)
        z = keys >> np.uint64(d.x_bits + d.y_bits) if d.z_bits else np.zeros_like(keys)
        return x, y, z

    def recompose(self, x: np.ndarray, y: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`decompose`."""
        d = self.decomposition
        x = np.asarray(x, dtype=np.uint64)
        y = np.asarray(y, dtype=np.uint64)
        z = np.asarray(z, dtype=np.uint64)
        return x | (y << np.uint64(d.x_bits)) | (z << np.uint64(d.x_bits + d.y_bits))

    def encode_points(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray | None]:
        self.validate_keys(keys)
        x, y, z = self.decompose(keys)
        points = np.column_stack(
            [x.astype(np.float32), y.astype(np.float32), z.astype(np.float32)]
        )
        return points, None

    def point_ray_batch(self, queries: np.ndarray, mode: PointRayMode) -> RayBatch:
        self.validate_keys(queries)
        queries = np.asarray(queries, dtype=np.uint64)
        x, y, z = self.decompose(queries)
        xf = x.astype(np.float64)
        yf = y.astype(np.float64)
        zf = z.astype(np.float64)
        if mode is PointRayMode.PERPENDICULAR:
            anchors = np.column_stack([xf, yf, zf])
            return perpendicular_point_rays(anchors)
        if mode is PointRayMode.PARALLEL_FROM_OFFSET:
            return parallel_rays_from_offset(yf, zf, xf - 0.5, xf + 0.5)
        return parallel_rays_from_zero(yf, zf, xf - 0.5, xf + 0.5)

    def range_ray_batch(
        self,
        lowers: np.ndarray,
        uppers: np.ndarray,
        mode: RangeRayMode,
        max_rays_per_range: int = 64,
    ) -> RayBatch:
        self.validate_keys(lowers)
        self.validate_keys(uppers)
        lowers = np.asarray(lowers, dtype=np.uint64)
        uppers = np.asarray(uppers, dtype=np.uint64)
        if np.any(uppers < lowers):
            raise ValueError("range lookups require upper >= lower")
        d = self.decomposition
        x_max = float((1 << d.x_bits) - 1)

        x_lo, y_lo, z_lo = self.decompose(lowers)
        x_hi, y_hi, z_hi = self.decompose(uppers)
        row_lo = lowers >> np.uint64(d.x_bits)
        row_hi = uppers >> np.uint64(d.x_bits)

        lookup_ids, rows, is_first, is_last = expand_multi_row_ranges(
            row_lo, row_hi, max_rays_per_range
        )
        y_mask = np.uint64((1 << d.y_bits) - 1) if d.y_bits else np.uint64(0)
        row_y = (rows & y_mask).astype(np.float64) if d.y_bits else np.zeros(rows.shape[0])
        row_z = (rows >> np.uint64(d.y_bits)).astype(np.float64) if d.z_bits else np.zeros(rows.shape[0])

        # The first row starts at the lookup's lower x, the last row ends at
        # the lookup's upper x; intermediate rows span the whole x axis.
        ray_x_lo = np.where(is_first, x_lo[lookup_ids].astype(np.float64), 0.0)
        ray_x_hi = np.where(is_last, x_hi[lookup_ids].astype(np.float64), x_max)

        if mode is RangeRayMode.PARALLEL_FROM_OFFSET:
            return parallel_rays_from_offset(
                row_y, row_z, ray_x_lo - 0.5, ray_x_hi + 0.5, lookup_ids=lookup_ids
            )
        return parallel_rays_from_zero(
            row_y, row_z, ray_x_lo - 0.5, ray_x_hi + 0.5, lookup_ids=lookup_ids
        )


def make_codec(
    mode: KeyMode, decomposition: KeyDecomposition | None = None
) -> KeyCodec:
    """Factory: build the codec for ``mode`` (3D Mode takes a decomposition)."""
    if mode is KeyMode.NAIVE:
        return NaiveCodec()
    if mode is KeyMode.EXTENDED:
        return ExtendedCodec()
    if mode is KeyMode.THREE_D:
        return ThreeDCodec(decomposition)
    raise ValueError(f"unknown key mode {mode!r}")
