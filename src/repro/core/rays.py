"""Ray construction for point and range lookups (Section 3.3, Table 2).

Three ray shapes are supported:

* **perpendicular** point rays fired along the z axis straight at one key's
  primitive (origin ``(x, y, z - 0.5)``, direction ``(0, 0, 1)``,
  ``t in (0, 1)``),
* **parallel-from-offset** rays fired along the x axis starting just before
  the lower bound (origin ``(l - gap, y, z)``, ``t in (0, u - l + 2*gap)``),
* **parallel-from-zero** rays fired along the x axis from the origin of the
  scene, restricted to the interesting interval with ``tmin``/``tmax``.

All functions return a :class:`repro.rtx.geometry.RayBatch`; ``lookup_ids``
map rays back to the lookups that spawned them (a single 3D-Mode range lookup
can fan out into several rays).
"""

from __future__ import annotations

import numpy as np

from repro.rtx.geometry import RayBatch

#: Length of a perpendicular point ray: it starts half a unit before the
#: primitive's plane along z and ends half a unit after it.
PERPENDICULAR_RAY_LENGTH = 1.0


def perpendicular_point_rays(
    anchors: np.ndarray, lookup_ids: np.ndarray | None = None
) -> RayBatch:
    """Point-lookup rays fired perpendicular to the line of primitives."""
    anchors = np.asarray(anchors, dtype=np.float64).reshape(-1, 3)
    m = anchors.shape[0]
    origins = anchors + np.array([0.0, 0.0, -0.5], dtype=np.float64)
    directions = np.tile(np.array([0.0, 0.0, 1.0], dtype=np.float32), (m, 1))
    return RayBatch(
        origins=origins.astype(np.float32),
        directions=directions,
        tmin=np.zeros(m, dtype=np.float32),
        tmax=np.full(m, PERPENDICULAR_RAY_LENGTH, dtype=np.float32),
        lookup_ids=lookup_ids,
    )


def parallel_rays_from_offset(
    y: np.ndarray,
    z: np.ndarray,
    x_start: np.ndarray,
    x_end: np.ndarray,
    lookup_ids: np.ndarray | None = None,
) -> RayBatch:
    """Rays along x that originate at ``x_start`` (just before the range).

    ``x_start`` and ``x_end`` are already gap-adjusted world coordinates
    (e.g. ``l - 0.5`` and ``u + 0.5``); the intersection interval becomes
    ``t in (0, x_end - x_start)``.
    """
    y = np.asarray(y, dtype=np.float64).reshape(-1)
    z = np.asarray(z, dtype=np.float64).reshape(-1)
    x_start = np.asarray(x_start, dtype=np.float64).reshape(-1)
    x_end = np.asarray(x_end, dtype=np.float64).reshape(-1)
    m = x_start.shape[0]
    origins = np.column_stack([x_start, y, z]).astype(np.float32)
    directions = np.tile(np.array([1.0, 0.0, 0.0], dtype=np.float32), (m, 1))
    return RayBatch(
        origins=origins,
        directions=directions,
        tmin=np.zeros(m, dtype=np.float32),
        tmax=(x_end - x_start).astype(np.float32),
        lookup_ids=lookup_ids,
    )


def parallel_rays_from_zero(
    y: np.ndarray,
    z: np.ndarray,
    x_start: np.ndarray,
    x_end: np.ndarray,
    lookup_ids: np.ndarray | None = None,
) -> RayBatch:
    """Rays along x that always originate at ``x = 0``.

    The interesting interval is carved out with ``tmin``/``tmax`` instead of
    moving the origin — the only option available to Extended Mode, whose
    coordinates cannot be offset without losing precision.
    """
    y = np.asarray(y, dtype=np.float64).reshape(-1)
    z = np.asarray(z, dtype=np.float64).reshape(-1)
    x_start = np.asarray(x_start, dtype=np.float64).reshape(-1)
    x_end = np.asarray(x_end, dtype=np.float64).reshape(-1)
    m = x_start.shape[0]
    origins = np.column_stack([np.zeros(m), y, z]).astype(np.float32)
    directions = np.tile(np.array([1.0, 0.0, 0.0], dtype=np.float32), (m, 1))
    return RayBatch(
        origins=origins,
        directions=directions,
        tmin=x_start.astype(np.float32),
        tmax=x_end.astype(np.float32),
        lookup_ids=lookup_ids,
    )


def expand_multi_row_ranges(
    row_lo: np.ndarray,
    row_hi: np.ndarray,
    max_rays_per_range: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Fan a batch of multi-row range lookups out into one entry per row.

    In 3D Mode a range lookup spanning several (y, z) rows needs one ray per
    row (Figure 4).  Given the inclusive row bounds of each lookup, returns
    ``(lookup_ids, rows, is_first_row, is_last_row)`` with one element per
    generated ray.

    Raises ``ValueError`` when any lookup would need more than
    ``max_rays_per_range`` rays — the caller should either widen the x
    component of the decomposition or split the range.
    """
    row_lo = np.asarray(row_lo, dtype=np.uint64)
    row_hi = np.asarray(row_hi, dtype=np.uint64)
    if row_lo.shape != row_hi.shape:
        raise ValueError("row_lo and row_hi must have the same shape")
    if np.any(row_hi < row_lo):
        raise ValueError("row_hi must be >= row_lo for every lookup")
    counts = (row_hi - row_lo + np.uint64(1)).astype(np.int64)
    if np.any(counts > max_rays_per_range):
        worst = int(counts.max())
        raise ValueError(
            f"a range lookup spans {worst} rows, exceeding the cap of "
            f"{max_rays_per_range} rays per range; increase x_bits in the "
            "key decomposition or raise max_rays_per_range"
        )
    total = int(counts.sum())
    lookup_ids = np.repeat(np.arange(row_lo.shape[0], dtype=np.int64), counts)
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    within = np.arange(total, dtype=np.int64) - offsets
    rows = row_lo[lookup_ids] + within.astype(np.uint64)
    is_first = within == 0
    is_last = within == (counts[lookup_ids] - 1)
    return lookup_ids, rows, is_first, is_last
