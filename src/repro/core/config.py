"""Configuration of the RX index: the five design dimensions of Section 3.

The defaults encode the *selected configuration* the paper arrives at after
evaluating every option: 3D key mode with the 23+23+18 decomposition,
triangle primitives, perpendicular rays for point lookups, offset-origin
parallel rays for range lookups, BVH compaction enabled, and full rebuilds
instead of refits for updates.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace


class KeyMode(enum.Enum):
    """How integer keys are expressed as float32 scene coordinates (Sec 3.2)."""

    NAIVE = "naive"
    EXTENDED = "extended"
    THREE_D = "3d"


class PrimitiveType(enum.Enum):
    """Scene primitive used to represent one key (Sec 3.5)."""

    TRIANGLE = "triangle"
    SPHERE = "sphere"
    AABB = "aabb"


class PointRayMode(enum.Enum):
    """Ray shape used for point lookups (Sec 3.3, Figure 6)."""

    PERPENDICULAR = "perpendicular"
    PARALLEL_FROM_OFFSET = "parallel_from_offset"
    PARALLEL_FROM_ZERO = "parallel_from_zero"


class RangeRayMode(enum.Enum):
    """Ray shape used for range lookups (Sec 3.3, Table 3)."""

    PARALLEL_FROM_OFFSET = "parallel_from_offset"
    PARALLEL_FROM_ZERO = "parallel_from_zero"


class UpdatePolicy(enum.Enum):
    """How an existing index absorbs key updates (Sec 3.6, Table 4).

    ``DELTA_SHARD`` is the forest-backed middle ground: partition the key
    space by Morton prefix (``RXConfig.shard_bits``), re-sort and rebuild
    only the shards an update actually touched, and re-stitch — full-rebuild
    lookup quality at a cost that scales with the dirty shards instead of
    the total key count.
    """

    REBUILD = "rebuild"
    REFIT = "refit"
    DELTA_SHARD = "delta_shard"


@dataclass(frozen=True)
class KeyDecomposition:
    """Bit split of a 64-bit key onto the x, y and z axes (Sec 3.4).

    The paper's default assigns the 23 least significant bits to x, the next
    23 to y and the remaining 18 to z.  Every component must stay within 23
    bits so the resulting integer coordinate is exactly representable as a
    float32 together with its ±0.5 gap.
    """

    x_bits: int = 23
    y_bits: int = 23
    z_bits: int = 18

    def __post_init__(self) -> None:
        for name, bits in (("x", self.x_bits), ("y", self.y_bits), ("z", self.z_bits)):
            if not 0 <= bits <= 23:
                raise ValueError(
                    f"{name}_bits must be in [0, 23] to stay float32-exact, got {bits}"
                )
        if self.x_bits == 0:
            raise ValueError("the x component must receive at least one bit")
        if self.total_bits > 64:
            raise ValueError(
                f"decomposition covers {self.total_bits} bits; at most 64 are allowed"
            )

    @property
    def total_bits(self) -> int:
        return self.x_bits + self.y_bits + self.z_bits

    @property
    def max_key(self) -> int:
        """Largest key representable under this decomposition."""
        if self.total_bits >= 64:
            return (1 << 64) - 1
        return (1 << self.total_bits) - 1

    def label(self) -> str:
        """Human-readable form used in the paper's figures, e.g. ``"23+23+18"``."""
        return f"{self.x_bits}+{self.y_bits}+{self.z_bits}"

    @staticmethod
    def from_label(label: str) -> "KeyDecomposition":
        """Parse a ``"x+y+z"`` label back into a decomposition."""
        parts = label.split("+")
        if len(parts) != 3:
            raise ValueError(f"expected a 'x+y+z' label, got {label!r}")
        x, y, z = (int(p) for p in parts)
        return KeyDecomposition(x_bits=x, y_bits=y, z_bits=z)


@dataclass
class RXConfig:
    """Full configuration of an RX index instance."""

    key_mode: KeyMode = KeyMode.THREE_D
    primitive: PrimitiveType = PrimitiveType.TRIANGLE
    point_ray_mode: PointRayMode = PointRayMode.PERPENDICULAR
    range_ray_mode: RangeRayMode = RangeRayMode.PARALLEL_FROM_OFFSET
    decomposition: KeyDecomposition = field(default_factory=KeyDecomposition)
    compaction: bool = True
    update_policy: UpdatePolicy = UpdatePolicy.REBUILD
    allow_updates: bool = False
    #: software-BVH builder knobs (passed through to the rtx substrate)
    bvh_builder: str = "lbvh"
    max_leaf_size: int = 4
    morton_bits: int = 21
    #: Morton-prefix sharding of the accel build: 0 builds one tree, ``b > 0``
    #: builds a forest of ``2**b`` shards stitched into a bit-identical tree
    #: (requires the lbvh builder).  Enables parallel builds and the
    #: DELTA_SHARD update policy.
    shard_bits: int = 0
    #: worker processes for sharded builds; 1 = serial (always bit-identical)
    build_workers: int = 1
    #: execution backend of sharded builds: "fork" ships shard arrays through
    #: the pool's pickle channel, "shm" places inputs and outputs in
    #: ``multiprocessing.shared_memory`` blocks so workers read and write
    #: zero-copy views (requires ``shard_bits >= 1``).  Purely a schedule
    #: knob: both backends emit bit-identical trees.
    build_backend: str = "fork"
    sphere_radius: float = 0.25
    #: safety cap for the ray fan-out of wide range lookups in 3D Mode
    max_rays_per_range: int = 64
    #: bytes per entry of the projected value column (used for costing)
    value_bytes: int = 4
    #: trace mode for point lookups: "any_hit" ends each ray at its first
    #: hit (the hardware any-hit termination the paper's point-lookup
    #: numbers rely on), "all" reports every match (required when the key
    #: column holds duplicates), "auto" picks any_hit exactly when the
    #: indexed column is duplicate-free.
    point_trace_mode: str = "auto"
    #: default hit budget pushed down into range lookups: every range lookup
    #: stops traversing after this many qualifying rows (LIMIT-k pushdown,
    #: ``mode="first_k"``).  ``None`` keeps the all-hits behaviour.  A
    #: per-call ``limit=`` on :meth:`repro.core.rx_index.RXIndex.range_lookup`
    #: overrides this (its default ``"auto"`` defers to this config value,
    #: mirroring how ``point_trace_mode="auto"`` resolves the point mode).
    range_limit: int | None = None
    #: serving-layer knobs (:mod:`repro.serve`): the micro-batching scheduler
    #: closes a coalesced launch once it holds ``serve_max_batch`` queries or
    #: the oldest pending request has waited ``serve_max_wait`` seconds of
    #: stream time, whichever comes first.
    serve_max_batch: int = 4096
    serve_max_wait: float = 1e-3
    #: capacity (entries) of the serving layer's epoch-keyed result cache;
    #: 0 disables caching.
    serve_cache_capacity: int = 4096
    #: default per-request deadline, relative seconds after arrival; ``None``
    #: keeps requests deadline-free.  Requests whose deadline cannot be met
    #: are rejected up front, and deadline-aware flushing closes windows
    #: early enough that the flush still fits before the tightest deadline.
    serve_deadline: float | None = None
    #: admission-control bound on *pending queries* in the scheduler queue;
    #: ``None`` keeps the queue unbounded.  Over the bound, requests are shed
    #: with an explicit rejection carrying a retry-after hint.
    serve_max_queue: int | None = None
    #: retry policy for faulted coalesced launches: max retry attempts and
    #: exponential backoff (``base * factor**attempt``, jittered upward by at
    #: most ``jitter`` of itself).
    serve_retry_max: int = 3
    serve_retry_backoff: float = 1e-3
    serve_retry_factor: float = 2.0
    serve_retry_jitter: float = 0.1

    def validate(self) -> None:
        """Reject configurations the hardware (or float32) cannot express."""
        if self.key_mode is KeyMode.EXTENDED:
            if self.primitive is PrimitiveType.SPHERE:
                raise ValueError(
                    "Extended Mode cannot use sphere primitives: the fixed "
                    "radius is not representable between adjacent float keys "
                    "(Table 1)"
                )
            if self.point_ray_mode is PointRayMode.PARALLEL_FROM_OFFSET:
                raise ValueError(
                    "Extended Mode does not support offsetting the ray origin "
                    "(float32 precision); use perpendicular or from-zero rays"
                )
            if self.range_ray_mode is RangeRayMode.PARALLEL_FROM_OFFSET:
                raise ValueError(
                    "Extended Mode does not support offsetting the ray origin "
                    "(float32 precision); use from-zero range rays"
                )
        if self.compaction and self.allow_updates:
            raise ValueError(
                "compaction has no effect on accels built with the update flag; "
                "disable one of the two (the paper chooses rebuilds + compaction)"
            )
        if self.update_policy is UpdatePolicy.REFIT and not self.allow_updates:
            raise ValueError(
                "refit updates require allow_updates=True at build time "
                "(the OptiX update flag must be set during construction)"
            )
        if not 0 <= self.shard_bits <= 16:
            raise ValueError("shard_bits must be in [0, 16]")
        if self.shard_bits and self.bvh_builder != "lbvh":
            raise ValueError(
                "sharded (forest) builds require bvh_builder='lbvh': the "
                "Morton-prefix partition is only a prefix of lbvh's split "
                "hierarchy"
            )
        if self.build_workers < 1:
            raise ValueError("build_workers must be at least 1")
        if self.build_backend not in ("fork", "shm"):
            raise ValueError(
                f"build_backend must be 'fork' or 'shm', got {self.build_backend!r}"
            )
        if self.build_backend == "shm" and self.shard_bits < 1:
            raise ValueError(
                "the shm build backend operates on the sharded forest "
                "pipeline; it requires shard_bits >= 1"
            )
        if self.update_policy is UpdatePolicy.DELTA_SHARD and self.shard_bits < 1:
            raise ValueError(
                "delta-shard updates require shard_bits >= 1: the update "
                "granularity is the Morton-prefix shard"
            )
        if self.max_leaf_size < 1:
            raise ValueError("max_leaf_size must be positive")
        if self.max_rays_per_range < 1:
            raise ValueError("max_rays_per_range must be positive")
        if self.sphere_radius <= 0 or self.sphere_radius >= 0.5:
            raise ValueError("sphere_radius must lie in (0, 0.5) to keep gaps")
        if self.value_bytes not in (4, 8):
            raise ValueError("value_bytes must be 4 or 8")
        if self.point_trace_mode not in ("auto", "any_hit", "all"):
            raise ValueError(
                "point_trace_mode must be 'auto', 'any_hit' or 'all', "
                f"got {self.point_trace_mode!r}"
            )
        if self.range_limit is not None and self.range_limit < 1:
            raise ValueError(
                f"range_limit must be at least 1 (or None), got {self.range_limit}"
            )
        if self.serve_max_batch < 1:
            raise ValueError(
                f"serve_max_batch must be at least 1, got {self.serve_max_batch}"
            )
        if not self.serve_max_wait >= 0:  # NaN-proof: NaN fails every compare
            raise ValueError(
                f"serve_max_wait must be non-negative, got {self.serve_max_wait}"
            )
        if self.serve_cache_capacity < 0:
            raise ValueError(
                "serve_cache_capacity must be non-negative (0 disables), "
                f"got {self.serve_cache_capacity}"
            )
        if self.serve_deadline is not None:
            if not (self.serve_deadline > 0 and math.isfinite(self.serve_deadline)):
                raise ValueError(
                    "serve_deadline must be a positive, finite number of "
                    f"seconds (or None to disable), got {self.serve_deadline}"
                )
            if self.serve_max_wait > self.serve_deadline:
                raise ValueError(
                    f"serve_max_wait ({self.serve_max_wait}) exceeds "
                    f"serve_deadline ({self.serve_deadline}): every request "
                    "would time out while still queued; lower serve_max_wait "
                    "(serve_max_wait=0 flushes immediately and is allowed) or "
                    "raise serve_deadline"
                )
        if self.serve_max_queue is not None and self.serve_max_queue < 1:
            raise ValueError(
                "serve_max_queue must be at least 1 query (or None for an "
                f"unbounded queue), got {self.serve_max_queue}"
            )
        if self.serve_retry_max < 0:
            raise ValueError(
                f"serve_retry_max must be >= 0 (0 disables retries), "
                f"got {self.serve_retry_max}"
            )
        if math.isnan(self.serve_retry_backoff) or self.serve_retry_backoff < 0:
            raise ValueError(
                "serve_retry_backoff must be a non-negative number of "
                f"seconds, got {self.serve_retry_backoff}"
            )
        if math.isnan(self.serve_retry_factor) or self.serve_retry_factor < 1.0:
            raise ValueError(
                "serve_retry_factor must be >= 1.0 (backoff must not shrink), "
                f"got {self.serve_retry_factor}"
            )
        if math.isnan(self.serve_retry_jitter) or not 0.0 <= self.serve_retry_jitter <= 1.0:
            raise ValueError(
                "serve_retry_jitter must be a fraction in [0, 1], "
                f"got {self.serve_retry_jitter}"
            )

    def with_updates_enabled(self) -> "RXConfig":
        """Copy of this config prepared for refit-style updates."""
        return replace(
            self,
            allow_updates=True,
            compaction=False,
            update_policy=UpdatePolicy.REFIT,
        )

    def with_delta_updates(
        self, shard_bits: int = 6, workers: int = 1, backend: str = "fork"
    ) -> "RXConfig":
        """Copy of this config prepared for forest-backed delta-shard updates.

        Unlike refits, delta updates rebuild (and recompact) the dirty
        subtrees, so neither the OptiX update flag nor disabling compaction
        is required.  ``backend="shm"`` selects the zero-copy shared-memory
        build backend (bit-identical output, different execution schedule).
        """
        return replace(
            self,
            shard_bits=shard_bits,
            build_workers=workers,
            build_backend=backend,
            update_policy=UpdatePolicy.DELTA_SHARD,
        )

    @staticmethod
    def paper_default() -> "RXConfig":
        """The configuration the paper selects for its main evaluation."""
        return RXConfig()

    def as_dict(self) -> dict:
        """JSON-safe form of the full configuration (enums by value, the
        decomposition by its ``"x+y+z"`` label) — what the persistent epoch
        store records in its manifest so ``RXIndex.load`` can reconstruct
        the index exactly as configured at save time."""
        return {
            "key_mode": self.key_mode.value,
            "primitive": self.primitive.value,
            "point_ray_mode": self.point_ray_mode.value,
            "range_ray_mode": self.range_ray_mode.value,
            "decomposition": self.decomposition.label(),
            "compaction": self.compaction,
            "update_policy": self.update_policy.value,
            "allow_updates": self.allow_updates,
            "bvh_builder": self.bvh_builder,
            "max_leaf_size": self.max_leaf_size,
            "morton_bits": self.morton_bits,
            "shard_bits": self.shard_bits,
            "build_workers": self.build_workers,
            "build_backend": self.build_backend,
            "sphere_radius": self.sphere_radius,
            "max_rays_per_range": self.max_rays_per_range,
            "value_bytes": self.value_bytes,
            "point_trace_mode": self.point_trace_mode,
            "range_limit": self.range_limit,
            "serve_max_batch": self.serve_max_batch,
            "serve_max_wait": self.serve_max_wait,
            "serve_cache_capacity": self.serve_cache_capacity,
            "serve_deadline": self.serve_deadline,
            "serve_max_queue": self.serve_max_queue,
            "serve_retry_max": self.serve_retry_max,
            "serve_retry_backoff": self.serve_retry_backoff,
            "serve_retry_factor": self.serve_retry_factor,
            "serve_retry_jitter": self.serve_retry_jitter,
        }

    @staticmethod
    def from_dict(data: dict) -> "RXConfig":
        """Inverse of :meth:`as_dict`; validates the reconstructed config."""
        data = dict(data)
        try:
            config = RXConfig(
                key_mode=KeyMode(data.pop("key_mode")),
                primitive=PrimitiveType(data.pop("primitive")),
                point_ray_mode=PointRayMode(data.pop("point_ray_mode")),
                range_ray_mode=RangeRayMode(data.pop("range_ray_mode")),
                decomposition=KeyDecomposition.from_label(data.pop("decomposition")),
                update_policy=UpdatePolicy(data.pop("update_policy")),
                **data,
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed RXConfig dict: {exc}") from exc
        config.validate()
        return config
