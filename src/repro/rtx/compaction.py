"""Acceleration-structure compaction (``optixAccelCompact`` analogue).

Compaction copies the acceleration structure into a tightly-packed buffer,
roughly halving its footprint for triangle BVHs (Section 3.5 / Figure 7c).
Functionally the tree is unchanged; only the modelled node size and the
memory accounting differ.  Compaction is impossible when the accel was built
with the update flag, mirroring the OptiX restriction quoted in Section 3.6.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.rtx.bvh import NODE_BYTES_COMPACTED, NODE_BYTES_UNCOMPACTED, Bvh


@dataclass
class CompactionResult:
    """Outcome of a compaction pass."""

    bvh: Bvh
    bytes_before: int
    bytes_after: int
    bytes_copied: int

    @property
    def saved_bytes(self) -> int:
        return max(self.bytes_before - self.bytes_after, 0)

    @property
    def reduction_fraction(self) -> float:
        if self.bytes_before == 0:
            return 0.0
        return self.saved_bytes / self.bytes_before


def compact_accel(bvh: Bvh) -> CompactionResult:
    """Compact a BVH, returning the new (functionally identical) structure.

    Raises ``ValueError`` when the BVH was built with ``allow_update``: OptiX
    accepts the call but the compaction has no effect, which we surface
    explicitly so experiments cannot silently mis-measure.
    """
    if bvh.options.allow_update:
        raise ValueError(
            "compaction has no effect on accels built with ALLOW_UPDATE; "
            "build without the update flag to compact"
        )
    if bvh.compacted:
        # Idempotent: compacting twice neither helps nor hurts.
        return CompactionResult(
            bvh=bvh,
            bytes_before=bvh.structure_bytes(),
            bytes_after=bvh.structure_bytes(),
            bytes_copied=0,
        )
    bytes_before = bvh.node_count * NODE_BYTES_UNCOMPACTED
    compacted = copy.copy(bvh)
    compacted.compacted = True
    bytes_after = bvh.node_count * NODE_BYTES_COMPACTED
    return CompactionResult(
        bvh=compacted,
        bytes_before=bytes_before,
        bytes_after=bytes_after,
        bytes_copied=bytes_after,
    )
