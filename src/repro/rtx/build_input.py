"""OptiX-style acceleration-structure build inputs.

``optixAccelBuild`` consumes a *build input* describing the primitives (a
vertex buffer for triangles, centre/radius buffers for spheres, or an AABB
buffer for custom primitives) plus build flags.  This module provides the
same shape of API so that :mod:`repro.core.rx_index` reads like the OptiX
code in the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.rtx.geometry import (
    AabbBuffer,
    PrimitiveBuffer,
    SphereBuffer,
    TriangleBuffer,
)


class BuildFlags(enum.Flag):
    """Subset of ``OptixBuildFlags`` relevant to the paper.

    * ``ALLOW_COMPACTION`` — the accel may later be compacted
      (``optixAccelCompact``), roughly halving its memory footprint.
    * ``ALLOW_UPDATE`` — the accel may later be refitted in place
      (``optixAccelBuild`` with ``OPTIX_BUILD_OPERATION_UPDATE``); setting it
      disables the effect of compaction, as documented by NVIDIA and noted in
      Section 3.6 of the paper.
    * ``PREFER_FAST_TRACE`` / ``PREFER_FAST_BUILD`` — builder quality hints.
    """

    NONE = 0
    ALLOW_COMPACTION = enum.auto()
    ALLOW_UPDATE = enum.auto()
    PREFER_FAST_TRACE = enum.auto()
    PREFER_FAST_BUILD = enum.auto()


@dataclass
class BuildInput:
    """Base class: a primitive buffer plus accounting helpers."""

    def primitive_buffer(self) -> PrimitiveBuffer:
        raise NotImplementedError

    @property
    def num_primitives(self) -> int:
        return len(self.primitive_buffer())

    @property
    def primitive_bytes(self) -> int:
        return self.primitive_buffer().primitive_bytes()


@dataclass
class TriangleBuildInput(BuildInput):
    """Triangle build input: an ``(n, 3, 3)`` float32 vertex buffer.

    The position of each triangle in the buffer is its primitive index, which
    the paper equates with the rowID of the indexed table entry.
    """

    vertices: np.ndarray

    def __post_init__(self) -> None:
        self._buffer = TriangleBuffer(self.vertices)

    def primitive_buffer(self) -> TriangleBuffer:
        return self._buffer


@dataclass
class SphereBuildInput(BuildInput):
    """Sphere build input: ``(n, 3)`` centres plus one shared radius."""

    centers: np.ndarray
    radius: float = 0.25

    def __post_init__(self) -> None:
        self._buffer = SphereBuffer(self.centers, self.radius)

    def primitive_buffer(self) -> SphereBuffer:
        return self._buffer


@dataclass
class AabbBuildInput(BuildInput):
    """Custom-primitive build input: per-primitive axis-aligned boxes."""

    mins: np.ndarray
    maxs: np.ndarray

    def __post_init__(self) -> None:
        self._buffer = AabbBuffer(self.mins, self.maxs)

    def primitive_buffer(self) -> AabbBuffer:
        return self._buffer


def write_aabbs_into(
    source: BuildInput | PrimitiveBuffer,
    out_mins: np.ndarray,
    out_maxs: np.ndarray,
) -> int:
    """Write per-primitive AABBs into caller-provided arrays, in place.

    The zero-copy build backend allocates its bound arrays as shared-memory
    blocks before computing anything into them; this is the fill step.  The
    float32 buffer bounds widen to the destination dtype exactly as an
    ``astype`` would, so downstream arithmetic matches the copying path bit
    for bit.  Returns the number of primitives written.
    """
    buffer = source.primitive_buffer() if isinstance(source, BuildInput) else source
    mins, maxs = buffer.compute_aabbs()
    out_mins[: mins.shape[0]] = mins
    out_maxs[: maxs.shape[0]] = maxs
    return int(mins.shape[0])


def build_input_for_points(
    primitive: str,
    points: np.ndarray,
    half_extent: float = 0.5,
    x_half_extent: np.ndarray | None = None,
    sphere_radius: float = 0.25,
) -> BuildInput:
    """Create the appropriate build input for key anchor ``points``.

    ``primitive`` is one of ``"triangle"``, ``"sphere"``, ``"aabb"``.
    """
    from repro.rtx.geometry import (
        make_aabbs_from_points,
        make_sphere_centers,
        make_triangle_vertices,
    )

    if primitive == "triangle":
        vertices = make_triangle_vertices(points, half_extent, x_half_extent)
        return TriangleBuildInput(vertices)
    if primitive == "sphere":
        return SphereBuildInput(make_sphere_centers(points), radius=sphere_radius)
    if primitive == "aabb":
        mins, maxs = make_aabbs_from_points(points, half_extent / 2.0, x_half_extent)
        return AabbBuildInput(mins, maxs)
    raise ValueError(f"unknown primitive type: {primitive!r}")
