"""Morton (Z-order) codes for the LBVH builder.

GPU BVH builders quantise primitive centroids onto a uniform grid spanning
the scene bounds and sort them along a space-filling curve.  The grid has a
fixed number of bits per axis, which is exactly why coordinate distributions
with an enormous value range (Extended Mode with a large key-range ratio)
collapse many primitives into the same cell and degrade the tree.
"""

from __future__ import annotations

import numpy as np


def _byte_expansion_table() -> np.ndarray:
    """256-entry table mapping a byte to its 3-way bit expansion (24 bits)."""
    table = np.zeros(256, dtype=np.uint64)
    for bit in range(8):
        table |= ((np.arange(256, dtype=np.uint64) >> np.uint64(bit)) & np.uint64(1)) << np.uint64(3 * bit)
    return table


_EXPAND_BYTE = _byte_expansion_table()


def expand_bits_3(values: np.ndarray, bits: int) -> np.ndarray:
    """Spread the lowest ``bits`` bits of each value so that two zero bits
    separate consecutive payload bits (the classic Morton interleave step).

    Evaluated one byte at a time through a precomputed 256-entry table (three
    gathers for the full 21-bit range) instead of one pass per bit; the
    resulting codes are identical integers either way.
    """
    values = np.asarray(values, dtype=np.uint64)
    if bits < 64:
        values = values & np.uint64((1 << bits) - 1)
    result = _EXPAND_BYTE[(values & np.uint64(0xFF)).astype(np.intp)]
    for byte in range(1, (bits + 7) // 8):
        chunk = (values >> np.uint64(8 * byte)) & np.uint64(0xFF)
        result |= _EXPAND_BYTE[chunk.astype(np.intp)] << np.uint64(24 * byte)
    return result


def quantize_points_to_grid(
    points: np.ndarray, lo: np.ndarray, hi: np.ndarray, bits: int
) -> np.ndarray:
    """Quantise points onto the Morton grid defined by ``(lo, hi)``.

    Row-independent (each point's cell depends only on that point and the
    fixed bounds), so any row subset or chunk quantises to exactly the cells
    the full pass would assign — the property the shm build backend relies on
    to split this pass across workers and to re-quantise only changed rows
    during delta updates.
    """
    pts = np.asarray(points, dtype=np.float64).reshape(-1, 3)
    extent = np.where(hi - lo > 0, hi - lo, 1.0)
    cells = (1 << bits) - 1
    normalized = (pts - lo) / extent
    return np.minimum((normalized * cells).astype(np.uint64), np.uint64(cells))


def quantize_to_grid_with_bounds(
    points: np.ndarray, bits: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Quantise points onto the Morton grid and return the bounds that
    defined it.

    The sharded forest build stores the returned ``(lo, hi)`` so delta
    updates can detect when the global grid itself moved (any change of the
    scene bounds re-quantises *every* code and dirties every shard).
    """
    pts = np.asarray(points, dtype=np.float64).reshape(-1, 3)
    lo = pts.min(axis=0)
    hi = pts.max(axis=0)
    return quantize_points_to_grid(pts, lo, hi, bits), lo, hi


def quantize_to_grid(points: np.ndarray, bits: int) -> np.ndarray:
    """Quantise ``(n, 3)`` points onto a ``2**bits`` per-axis grid over their bounds."""
    grid, _, _ = quantize_to_grid_with_bounds(points, bits)
    return grid


def morton_interleave_grid(grid: np.ndarray, bits: int) -> np.ndarray:
    """Interleave already-quantised ``(n, 3)`` grid coordinates into codes.

    Split out of :func:`morton_encode_3d` so the sharded forest build can
    quantise once globally and interleave per shard (the interleave is the
    expensive half and parallelises trivially); the codes are the same
    integers either way.
    """
    x = expand_bits_3(grid[:, 0], bits)
    y = expand_bits_3(grid[:, 1], bits)
    z = expand_bits_3(grid[:, 2], bits)
    return (x << np.uint64(2)) | (y << np.uint64(1)) | z


def morton_encode_3d(points: np.ndarray, bits: int = 21) -> np.ndarray:
    """Morton-encode ``(n, 3)`` float points using ``bits`` bits per axis.

    Returns an ``(n,)`` uint64 array of codes; ``bits`` must be at most 21 so
    the interleaved code fits into 63 bits.
    """
    if not 1 <= bits <= 21:
        raise ValueError("bits must be in [1, 21]")
    grid = quantize_to_grid(points, bits)
    return morton_interleave_grid(grid, bits)


def morton_prefix_buckets(grid: np.ndarray, bits: int, prefix_bits: int) -> np.ndarray:
    """Top ``prefix_bits`` bits of each grid point's Morton code.

    The bucket of a point is the ``prefix_bits``-bit prefix of its interleaved
    code — the shard key of the BVH forest.  Because the code interleaves the
    axes as ``x, y, z`` from the most significant bit downwards, the prefix can
    be assembled straight from the top grid bits without expanding the full
    code: bit ``j`` of the prefix (``j = 0`` most significant) is bit
    ``bits - 1 - j // 3`` of axis ``j % 3``.
    """
    if not 1 <= prefix_bits <= 3 * bits:
        raise ValueError("prefix_bits must be in [1, 3 * bits]")
    grid = np.asarray(grid, dtype=np.uint64)
    bucket = np.zeros(grid.shape[0], dtype=np.uint64)
    for j in range(prefix_bits):
        axis = j % 3
        bitpos = np.uint64(bits - 1 - j // 3)
        bucket = (bucket << np.uint64(1)) | ((grid[:, axis] >> bitpos) & np.uint64(1))
    return bucket.astype(np.int64)


def morton_decode_3d(codes: np.ndarray, bits: int = 21) -> np.ndarray:
    """Inverse of the interleave step: recover grid coordinates from codes."""
    codes = np.asarray(codes, dtype=np.uint64)
    coords = np.zeros((codes.shape[0], 3), dtype=np.uint64)
    for bit in range(bits):
        coords[:, 0] |= ((codes >> np.uint64(3 * bit + 2)) & np.uint64(1)) << np.uint64(bit)
        coords[:, 1] |= ((codes >> np.uint64(3 * bit + 1)) & np.uint64(1)) << np.uint64(bit)
        coords[:, 2] |= ((codes >> np.uint64(3 * bit)) & np.uint64(1)) << np.uint64(bit)
    return coords
