"""Morton (Z-order) codes for the LBVH builder.

GPU BVH builders quantise primitive centroids onto a uniform grid spanning
the scene bounds and sort them along a space-filling curve.  The grid has a
fixed number of bits per axis, which is exactly why coordinate distributions
with an enormous value range (Extended Mode with a large key-range ratio)
collapse many primitives into the same cell and degrade the tree.
"""

from __future__ import annotations

import numpy as np


def expand_bits_3(values: np.ndarray, bits: int) -> np.ndarray:
    """Spread the lowest ``bits`` bits of each value so that two zero bits
    separate consecutive payload bits (the classic Morton interleave step).
    """
    values = np.asarray(values, dtype=np.uint64)
    result = np.zeros_like(values)
    for bit in range(bits):
        result |= ((values >> np.uint64(bit)) & np.uint64(1)) << np.uint64(3 * bit)
    return result


def quantize_to_grid(points: np.ndarray, bits: int) -> np.ndarray:
    """Quantise ``(n, 3)`` points onto a ``2**bits`` per-axis grid over their bounds."""
    pts = np.asarray(points, dtype=np.float64).reshape(-1, 3)
    lo = pts.min(axis=0)
    hi = pts.max(axis=0)
    extent = np.where(hi - lo > 0, hi - lo, 1.0)
    cells = (1 << bits) - 1
    normalized = (pts - lo) / extent
    return np.minimum((normalized * cells).astype(np.uint64), np.uint64(cells))


def morton_encode_3d(points: np.ndarray, bits: int = 21) -> np.ndarray:
    """Morton-encode ``(n, 3)`` float points using ``bits`` bits per axis.

    Returns an ``(n,)`` uint64 array of codes; ``bits`` must be at most 21 so
    the interleaved code fits into 63 bits.
    """
    if not 1 <= bits <= 21:
        raise ValueError("bits must be in [1, 21]")
    grid = quantize_to_grid(points, bits)
    x = expand_bits_3(grid[:, 0], bits)
    y = expand_bits_3(grid[:, 1], bits)
    z = expand_bits_3(grid[:, 2], bits)
    return (x << np.uint64(2)) | (y << np.uint64(1)) | z


def morton_decode_3d(codes: np.ndarray, bits: int = 21) -> np.ndarray:
    """Inverse of the interleave step: recover grid coordinates from codes."""
    codes = np.asarray(codes, dtype=np.uint64)
    coords = np.zeros((codes.shape[0], 3), dtype=np.uint64)
    for bit in range(bits):
        coords[:, 0] |= ((codes >> np.uint64(3 * bit + 2)) & np.uint64(1)) << np.uint64(bit)
        coords[:, 1] |= ((codes >> np.uint64(3 * bit + 1)) & np.uint64(1)) << np.uint64(bit)
        coords[:, 2] |= ((codes >> np.uint64(3 * bit)) & np.uint64(1)) << np.uint64(bit)
    return coords
