"""Golden reference implementations of the pre-vectorisation engine.

The level-synchronous engine in :mod:`repro.rtx.bvh`,
:mod:`repro.rtx.traversal` and :mod:`repro.rtx.refit` replaced per-node
Python loops with batched NumPy passes.  The loops it replaced are kept here
verbatim (modulo trivial renames) as the *golden reference*: the equivalence
harness in ``tests/test_engine_equivalence.py`` asserts that the vectorised
engine reproduces these implementations bit for bit — identical tree
topology, ``prim_indices`` permutation, hit sets and traversal counters —
and ``benchmarks/perf_smoke.py`` measures the speedup against them.

Nothing in the production paths imports this module; it exists purely so
equivalence and performance claims stay checkable as the engine evolves.
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.rtx.bvh import Bvh, BvhBuildOptions
from repro.rtx.geometry import (
    PrimitiveBuffer,
    RayBatch,
    ray_box_overlap_pairs,
    ray_box_overlap_pairs_with_entry,
)
from repro.rtx.morton import morton_encode_3d
from repro.rtx.traversal import HitRecords, TraversalCounters


# --------------------------------------------------------------------------- #
# reference BVH build (per-node Python work stack)
# --------------------------------------------------------------------------- #


def reference_build_bvh(
    primitive_buffer: PrimitiveBuffer,
    options: BvhBuildOptions | None = None,
) -> Bvh:
    """The seed ``build_bvh``: one Python loop iteration per node."""
    options = options or BvhBuildOptions()
    options.validate()
    prim_mins, prim_maxs = primitive_buffer.compute_aabbs()
    prim_mins = prim_mins.astype(np.float64)
    prim_maxs = prim_maxs.astype(np.float64)
    n = prim_mins.shape[0]
    if n == 0:
        raise ValueError("cannot build a BVH over zero primitives")

    centroids = 0.5 * (prim_mins + prim_maxs)

    if options.builder == "lbvh":
        codes = morton_encode_3d(centroids, options.morton_bits)
        order = np.argsort(codes, kind="stable")
        splitter = _ReferenceLbvhSplitter(centroids, order, options)
    elif options.builder == "sah":
        order = np.arange(n, dtype=np.int64)
        splitter = _ReferenceSahSplitter(centroids, prim_mins, prim_maxs, options)
    else:
        order = np.arange(n, dtype=np.int64)
        splitter = _ReferenceMedianSplitter(centroids, options)

    builder = _ReferenceTopDownBuilder(prim_mins, prim_maxs, options, splitter)
    bvh = builder.build(order)
    bvh.num_primitives = n
    bvh.build_stats = {
        "builder": options.builder,
        "num_primitives": n,
        "node_count": bvh.node_count,
        "leaf_count": bvh.leaf_count,
    }
    return bvh


class _ReferenceTopDownBuilder:
    """Shared top-down build loop; the splitter decides how ranges split."""

    def __init__(self, prim_mins, prim_maxs, options, splitter):
        self.prim_mins = prim_mins
        self.prim_maxs = prim_maxs
        self.options = options
        self.splitter = splitter
        self.node_mins: list[np.ndarray] = []
        self.node_maxs: list[np.ndarray] = []
        self.left: list[int] = []
        self.right: list[int] = []
        self.first_prim: list[int] = []
        self.prim_count: list[int] = []

    def _new_node(self) -> int:
        self.node_mins.append(np.zeros(3))
        self.node_maxs.append(np.zeros(3))
        self.left.append(-1)
        self.right.append(-1)
        self.first_prim.append(0)
        self.prim_count.append(0)
        return len(self.left) - 1

    def build(self, order: np.ndarray) -> Bvh:
        prim_indices = np.array(order, dtype=np.int64, copy=True)
        root = self._new_node()
        stack = [(root, 0, len(prim_indices))]
        while stack:
            node, start, end = stack.pop()
            idx = prim_indices[start:end]
            mins = self.prim_mins[idx]
            maxs = self.prim_maxs[idx]
            self.node_mins[node] = mins.min(axis=0)
            self.node_maxs[node] = maxs.max(axis=0)
            count = end - start
            if count <= self.options.max_leaf_size:
                self.first_prim[node] = start
                self.prim_count[node] = count
                continue
            split = self.splitter.split(prim_indices, start, end)
            if split is None or split <= start or split >= end:
                split = start + count // 2
            left = self._new_node()
            right = self._new_node()
            self.left[node] = left
            self.right[node] = right
            stack.append((left, start, split))
            stack.append((right, split, end))
        return Bvh(
            node_mins=np.asarray(self.node_mins, dtype=np.float32),
            node_maxs=np.asarray(self.node_maxs, dtype=np.float32),
            left=np.asarray(self.left, dtype=np.int64),
            right=np.asarray(self.right, dtype=np.int64),
            first_prim=np.asarray(self.first_prim, dtype=np.int64),
            prim_count=np.asarray(self.prim_count, dtype=np.int64),
            prim_indices=prim_indices,
            num_primitives=len(prim_indices),
            options=self.options,
        )


class _ReferenceMedianSplitter:
    def __init__(self, centroids, options):
        self.centroids = centroids
        self.options = options

    def split(self, prim_indices, start, end):
        idx = prim_indices[start:end]
        cents = self.centroids[idx]
        extents = cents.max(axis=0) - cents.min(axis=0)
        axis = int(np.argmax(extents))
        if extents[axis] <= 0.0:
            return None
        order = np.argsort(cents[:, axis], kind="stable")
        prim_indices[start:end] = idx[order]
        return start + (end - start) // 2


class _ReferenceLbvhSplitter:
    def __init__(self, centroids, order, options):
        codes = morton_encode_3d(centroids, options.morton_bits)
        self.sorted_codes = codes[order]
        self.options = options

    def split(self, prim_indices, start, end):
        codes = self.sorted_codes[start:end]
        first, last = int(codes[0]), int(codes[-1])
        if first == last:
            return None
        diff = first ^ last
        split_bit = diff.bit_length() - 1
        prefix = first >> split_bit
        boundary = np.searchsorted(codes >> split_bit, prefix, side="right")
        return start + int(boundary)


class _ReferenceSahSplitter:
    def __init__(self, centroids, prim_mins, prim_maxs, options):
        self.centroids = centroids
        self.prim_mins = prim_mins
        self.prim_maxs = prim_maxs
        self.bins = options.sah_bins

    @staticmethod
    def _area(mins, maxs):
        ext = np.maximum(maxs - mins, 0.0)
        return 2.0 * (ext[0] * ext[1] + ext[1] * ext[2] + ext[2] * ext[0])

    def split(self, prim_indices, start, end):
        idx = prim_indices[start:end]
        cents = self.centroids[idx]
        lo = cents.min(axis=0)
        hi = cents.max(axis=0)
        extents = hi - lo
        axis = int(np.argmax(extents))
        if extents[axis] <= 0.0:
            return None

        nbins = self.bins
        scale = nbins / extents[axis]
        bin_ids = np.minimum(((cents[:, axis] - lo[axis]) * scale).astype(np.int64),
                             nbins - 1)

        best_cost = np.inf
        best_bin = -1
        counts = np.bincount(bin_ids, minlength=nbins)
        bin_mins = np.full((nbins, 3), np.inf)
        bin_maxs = np.full((nbins, 3), -np.inf)
        mins = self.prim_mins[idx]
        maxs = self.prim_maxs[idx]
        for b in range(nbins):
            mask = bin_ids == b
            if mask.any():
                bin_mins[b] = mins[mask].min(axis=0)
                bin_maxs[b] = maxs[mask].max(axis=0)
        for b in range(1, nbins):
            left_count = counts[:b].sum()
            right_count = counts[b:].sum()
            if left_count == 0 or right_count == 0:
                continue
            lmins = bin_mins[:b][counts[:b] > 0]
            lmaxs = bin_maxs[:b][counts[:b] > 0]
            rmins = bin_mins[b:][counts[b:] > 0]
            rmaxs = bin_maxs[b:][counts[b:] > 0]
            la = self._area(lmins.min(axis=0), lmaxs.max(axis=0))
            ra = self._area(rmins.min(axis=0), rmaxs.max(axis=0))
            cost = la * left_count + ra * right_count
            if cost < best_cost:
                best_cost = cost
                best_bin = b
        if best_bin < 0:
            return None
        mask_left = bin_ids < best_bin
        order = np.argsort(~mask_left, kind="stable")
        prim_indices[start:end] = idx[order]
        return start + int(mask_left.sum())


# --------------------------------------------------------------------------- #
# reference primitive intersection (row gathers + per-call edge recompute)
# --------------------------------------------------------------------------- #


def _cross_rows(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise 3D cross product of the pre-SoA intersection hot path."""
    out = np.empty_like(a)
    out[:, 0] = a[:, 1] * b[:, 2] - a[:, 2] * b[:, 1]
    out[:, 1] = a[:, 2] * b[:, 0] - a[:, 0] * b[:, 2]
    out[:, 2] = a[:, 0] * b[:, 1] - a[:, 1] * b[:, 0]
    return out


def reference_triangle_intersect_pairs(
    vertices64: np.ndarray, origins, directions, tmins, tmaxs, prim_indices
) -> np.ndarray:
    """The seed ``TriangleBuffer.intersect_pairs``: an ``(m, 3, 3)`` row
    gather from the cached float64 vertex array plus per-call edge
    recomputation.  ``vertices64`` is the pre-converted ``(n, 3, 3)`` float64
    vertex array (the seed cached that conversion too, so building it is not
    part of the per-call cost)."""
    prim_indices = np.asarray(prim_indices, dtype=np.int64)
    if prim_indices.size == 0:
        return np.zeros(0, dtype=bool)
    tri = vertices64[prim_indices]
    o = np.asarray(origins, dtype=np.float64)
    d = np.asarray(directions, dtype=np.float64)
    tmins = np.asarray(tmins, dtype=np.float64)
    tmaxs = np.asarray(tmaxs, dtype=np.float64)
    v0 = tri[:, 0]
    e1 = tri[:, 1] - v0
    e2 = tri[:, 2] - v0
    pvec = _cross_rows(d, e2)
    det = np.einsum("ij,ij->i", e1, pvec)
    eps = 1e-12
    parallel = np.abs(det) < eps
    safe_det = np.where(parallel, 1.0, det)
    inv_det = 1.0 / safe_det
    tvec = o - v0
    u = np.einsum("ij,ij->i", tvec, pvec) * inv_det
    qvec = _cross_rows(tvec, e1)
    v = np.einsum("ij,ij->i", d, qvec) * inv_det
    t = np.einsum("ij,ij->i", e2, qvec) * inv_det
    return (
        ~parallel
        & (u >= -1e-9)
        & (v >= -1e-9)
        & (u + v <= 1.0 + 1e-9)
        & (t > tmins)
        & (t < tmaxs)
    )


def reference_sphere_intersect_pairs(
    centers: np.ndarray, radius, origins, directions, tmins, tmaxs, prim_indices
) -> np.ndarray:
    """The seed ``SphereBuffer.intersect_pairs``: per-call row gather of the
    float32 centres followed by a float64 conversion."""
    prim_indices = np.asarray(prim_indices, dtype=np.int64)
    if prim_indices.size == 0:
        return np.zeros(0, dtype=bool)
    c = centers[prim_indices].astype(np.float64)
    o = np.asarray(origins, dtype=np.float64)
    d = np.asarray(directions, dtype=np.float64)
    tmins = np.asarray(tmins, dtype=np.float64)
    tmaxs = np.asarray(tmaxs, dtype=np.float64)
    r = float(radius)
    oc = o - c
    a = np.einsum("ij,ij->i", d, d)
    b = 2.0 * np.einsum("ij,ij->i", oc, d)
    cterm = np.einsum("ij,ij->i", oc, oc) - r * r
    disc = b * b - 4.0 * a * cterm
    valid = (disc >= 0.0) & (a > 0.0)
    sqrt_disc = np.sqrt(np.where(valid, disc, 0.0))
    safe_a = np.where(a > 0.0, a, 1.0)
    t0 = (-b - sqrt_disc) / (2.0 * safe_a)
    t1 = (-b + sqrt_disc) / (2.0 * safe_a)
    hit0 = valid & (t0 > tmins) & (t0 < tmaxs)
    hit1 = valid & (t1 > tmins) & (t1 < tmaxs)
    return hit0 | hit1


def reference_aabb_intersect_pairs(
    box_mins: np.ndarray, box_maxs: np.ndarray, origins, directions, tmins, tmaxs, prim_indices
) -> np.ndarray:
    """The seed ``AabbBuffer.intersect_pairs``: per-call row gathers of both
    float32 corners followed by the generic slab test."""
    prim_indices = np.asarray(prim_indices, dtype=np.int64)
    if prim_indices.size == 0:
        return np.zeros(0, dtype=bool)
    mins = box_mins[prim_indices].astype(np.float64)
    maxs = box_maxs[prim_indices].astype(np.float64)
    return ray_box_overlap_pairs(origins, directions, tmins, tmaxs, mins, maxs)


# --------------------------------------------------------------------------- #
# reference traversal (per-round re-gather + re-divide)
# --------------------------------------------------------------------------- #


def reference_trace(
    bvh: Bvh,
    primitives: PrimitiveBuffer,
    rays: RayBatch,
    any_hit=None,
    prim_test_bytes: int | None = None,
    node_cull_respects_tmin: bool = False,
) -> tuple[HitRecords, TraversalCounters]:
    """The seed ``TraversalEngine.trace`` loop, returning (hits, counters)."""
    counters = TraversalCounters()
    counters.rays = len(rays)
    node_bytes = bvh.node_bytes()
    per_prim_bytes = (
        prim_test_bytes
        if prim_test_bytes is not None
        else max(primitives.primitive_bytes() // max(len(primitives), 1), 1)
    )

    n_rays = len(rays)
    hit_rays: list[np.ndarray] = []
    hit_prims: list[np.ndarray] = []

    if n_rays > 0 and bvh.node_count > 0:
        if node_cull_respects_tmin:
            node_tmin = rays.tmin
        else:
            node_tmin = np.minimum(rays.tmin, np.float32(0.0))
        frontier_rays = np.arange(n_rays, dtype=np.int64)
        frontier_nodes = np.zeros(n_rays, dtype=np.int64)
        while frontier_rays.size:
            counters.traversal_rounds += 1
            counters.max_frontier_size = max(
                counters.max_frontier_size, int(frontier_rays.size)
            )
            counters.node_visits += int(frontier_rays.size)
            counters.box_tests += int(frontier_rays.size)
            counters.node_bytes_read += int(frontier_rays.size) * node_bytes

            overlap = ray_box_overlap_pairs(
                rays.origins[frontier_rays],
                rays.directions[frontier_rays],
                node_tmin[frontier_rays],
                rays.tmax[frontier_rays],
                bvh.node_mins[frontier_nodes],
                bvh.node_maxs[frontier_nodes],
            )
            frontier_rays = frontier_rays[overlap]
            frontier_nodes = frontier_nodes[overlap]
            if frontier_rays.size == 0:
                break

            is_leaf = bvh.left[frontier_nodes] < 0
            leaf_rays = frontier_rays[is_leaf]
            leaf_nodes = frontier_nodes[is_leaf]
            counters.leaf_visits += int(leaf_rays.size)
            if leaf_rays.size:
                counts = bvh.prim_count[leaf_nodes]
                firsts = bvh.first_prim[leaf_nodes]
                total = int(counts.sum())
                if total:
                    pair_rays = np.repeat(leaf_rays, counts)
                    offsets = np.repeat(np.cumsum(counts) - counts, counts)
                    within = np.arange(total, dtype=np.int64) - offsets
                    slot = np.repeat(firsts, counts) + within
                    pair_prims = bvh.prim_indices[slot]
                    counters.prim_tests += int(pair_prims.size)
                    counters.prim_bytes_read += int(pair_prims.size) * per_prim_bytes
                    if primitives.hardware_intersection:
                        counters.hardware_intersection_tests += int(pair_prims.size)
                    else:
                        counters.software_intersection_calls += int(pair_prims.size)
                    mask = primitives.intersect_pairs(
                        rays.origins[pair_rays],
                        rays.directions[pair_rays],
                        rays.tmin[pair_rays],
                        rays.tmax[pair_rays],
                        pair_prims,
                    )
                    hit_rays.append(pair_rays[mask])
                    hit_prims.append(pair_prims[mask])

            inner_rays = frontier_rays[~is_leaf]
            inner_nodes = frontier_nodes[~is_leaf]
            if inner_rays.size:
                frontier_rays = np.concatenate([inner_rays, inner_rays])
                frontier_nodes = np.concatenate(
                    [bvh.left[inner_nodes], bvh.right[inner_nodes]]
                )
            else:
                frontier_rays = np.zeros(0, dtype=np.int64)
                frontier_nodes = np.zeros(0, dtype=np.int64)

    if hit_rays:
        ray_indices = np.concatenate(hit_rays)
        prim_indices = np.concatenate(hit_prims)
    else:
        ray_indices = np.zeros(0, dtype=np.int64)
        prim_indices = np.zeros(0, dtype=np.int64)

    lookup_ids = rays.lookup_ids[ray_indices] if ray_indices.size else ray_indices
    if any_hit is not None and ray_indices.size:
        keep = np.asarray(any_hit(ray_indices, prim_indices, lookup_ids), dtype=bool)
        ray_indices = ray_indices[keep]
        prim_indices = prim_indices[keep]
        lookup_ids = lookup_ids[keep]

    counters.prim_hits = int(ray_indices.size)
    rays_hit = np.unique(ray_indices).size
    counters.rays_with_hits = int(rays_hit)
    counters.rays_without_hits = int(n_rays - rays_hit)

    hits = HitRecords(
        ray_indices=ray_indices,
        prim_indices=prim_indices,
        lookup_ids=lookup_ids,
        num_rays=n_rays,
    )
    return hits, counters


# --------------------------------------------------------------------------- #
# reference early-exit traversal (sequential per-hit budget scan)
# --------------------------------------------------------------------------- #


def _reference_budgeted_trace(
    bvh: Bvh,
    primitives: PrimitiveBuffer,
    rays: RayBatch,
    owner_of_ray: np.ndarray,
    budget: dict[int, int],
    any_hit=None,
    prim_test_bytes: int | None = None,
    node_cull_respects_tmin: bool = False,
) -> tuple[HitRecords, TraversalCounters]:
    """Shared golden loop of the early-exit trace modes.

    Mirrors :func:`reference_trace` round for round, but consumes the round's
    surviving hits one at a time in pair-stream order — every hit decrements
    its owner's entry in the plain Python ``budget`` dict, hits of exhausted
    owners are dropped, and rays whose owner is exhausted are excluded from
    the next round's frontier.  This is deliberately the *sequential*
    formulation of the budget cut; the engine's chunked rank-based
    vectorisation must reproduce it bit for bit (hits and counters) for any
    ``max_frontier`` setting.
    """
    counters = TraversalCounters()
    counters.rays = len(rays)
    node_bytes = bvh.node_bytes()
    per_prim_bytes = (
        prim_test_bytes
        if prim_test_bytes is not None
        else max(primitives.primitive_bytes() // max(len(primitives), 1), 1)
    )

    n_rays = len(rays)
    hit_rays: list[int] = []
    hit_prims: list[int] = []

    if n_rays > 0 and bvh.node_count > 0:
        if node_cull_respects_tmin:
            node_tmin = rays.tmin
        else:
            node_tmin = np.minimum(rays.tmin, np.float32(0.0))
        frontier_rays = np.arange(n_rays, dtype=np.int64)
        frontier_nodes = np.zeros(n_rays, dtype=np.int64)
        while frontier_rays.size:
            counters.traversal_rounds += 1
            counters.max_frontier_size = max(
                counters.max_frontier_size, int(frontier_rays.size)
            )
            counters.node_visits += int(frontier_rays.size)
            counters.box_tests += int(frontier_rays.size)
            counters.node_bytes_read += int(frontier_rays.size) * node_bytes

            overlap = ray_box_overlap_pairs(
                rays.origins[frontier_rays],
                rays.directions[frontier_rays],
                node_tmin[frontier_rays],
                rays.tmax[frontier_rays],
                bvh.node_mins[frontier_nodes],
                bvh.node_maxs[frontier_nodes],
            )
            frontier_rays = frontier_rays[overlap]
            frontier_nodes = frontier_nodes[overlap]
            if frontier_rays.size == 0:
                break

            is_leaf = bvh.left[frontier_nodes] < 0
            leaf_rays = frontier_rays[is_leaf]
            leaf_nodes = frontier_nodes[is_leaf]
            counters.leaf_visits += int(leaf_rays.size)
            if leaf_rays.size:
                counts = bvh.prim_count[leaf_nodes]
                firsts = bvh.first_prim[leaf_nodes]
                total = int(counts.sum())
                if total:
                    pair_rays = np.repeat(leaf_rays, counts)
                    offsets = np.repeat(np.cumsum(counts) - counts, counts)
                    within = np.arange(total, dtype=np.int64) - offsets
                    slot = np.repeat(firsts, counts) + within
                    pair_prims = bvh.prim_indices[slot]
                    counters.prim_tests += int(pair_prims.size)
                    counters.prim_bytes_read += int(pair_prims.size) * per_prim_bytes
                    if primitives.hardware_intersection:
                        counters.hardware_intersection_tests += int(pair_prims.size)
                    else:
                        counters.software_intersection_calls += int(pair_prims.size)
                    mask = primitives.intersect_pairs(
                        rays.origins[pair_rays],
                        rays.directions[pair_rays],
                        rays.tmin[pair_rays],
                        rays.tmax[pair_rays],
                        pair_prims,
                    )
                    cand_rays = pair_rays[mask]
                    cand_prims = pair_prims[mask]
                    if any_hit is not None and cand_rays.size:
                        # The filter is elementwise, so applying it to the
                        # whole round's candidates before the sequential
                        # budget scan matches the engine's eager per-chunk
                        # application.
                        keep = np.asarray(
                            any_hit(
                                cand_rays, cand_prims, rays.lookup_ids[cand_rays]
                            ),
                            dtype=bool,
                        )
                        cand_rays = cand_rays[keep]
                        cand_prims = cand_prims[keep]
                    for ray, prim in zip(cand_rays.tolist(), cand_prims.tolist()):
                        owner = int(owner_of_ray[ray])
                        if budget[owner] > 0:
                            budget[owner] -= 1
                            hit_rays.append(ray)
                            hit_prims.append(prim)
                        else:
                            counters.budget_dropped_hits += 1

            inner_rays = frontier_rays[~is_leaf]
            inner_nodes = frontier_nodes[~is_leaf]
            if inner_rays.size:
                alive = np.array(
                    [budget[int(owner_of_ray[ray])] > 0 for ray in inner_rays.tolist()],
                    dtype=bool,
                )
                inner_rays = inner_rays[alive]
                inner_nodes = inner_nodes[alive]
            if inner_rays.size:
                frontier_rays = np.concatenate([inner_rays, inner_rays])
                frontier_nodes = np.concatenate(
                    [bvh.left[inner_nodes], bvh.right[inner_nodes]]
                )
            else:
                frontier_rays = np.zeros(0, dtype=np.int64)
                frontier_nodes = np.zeros(0, dtype=np.int64)

    ray_indices = np.asarray(hit_rays, dtype=np.int64)
    prim_indices = np.asarray(hit_prims, dtype=np.int64)
    lookup_ids = rays.lookup_ids[ray_indices] if ray_indices.size else ray_indices

    counters.prim_hits = int(ray_indices.size)
    rays_hit = np.unique(ray_indices).size
    counters.rays_with_hits = int(rays_hit)
    counters.rays_without_hits = int(n_rays - rays_hit)

    hits = HitRecords(
        ray_indices=ray_indices,
        prim_indices=prim_indices,
        lookup_ids=lookup_ids,
        num_rays=n_rays,
    )
    return hits, counters


def reference_any_hit_trace(
    bvh: Bvh,
    primitives: PrimitiveBuffer,
    rays: RayBatch,
    any_hit=None,
    prim_test_bytes: int | None = None,
    node_cull_respects_tmin: bool = False,
) -> tuple[HitRecords, TraversalCounters]:
    """Golden ``mode="any_hit"`` trace: a per-ray budget of one hit."""
    owner_of_ray = np.arange(len(rays), dtype=np.int64)
    budget = {ray: 1 for ray in range(len(rays))}
    return _reference_budgeted_trace(
        bvh,
        primitives,
        rays,
        owner_of_ray,
        budget,
        any_hit=any_hit,
        prim_test_bytes=prim_test_bytes,
        node_cull_respects_tmin=node_cull_respects_tmin,
    )


def reference_first_k_trace(
    bvh: Bvh,
    primitives: PrimitiveBuffer,
    rays: RayBatch,
    limit: int,
    any_hit=None,
    prim_test_bytes: int | None = None,
    node_cull_respects_tmin: bool = False,
) -> tuple[HitRecords, TraversalCounters]:
    """Golden ``mode="first_k"`` trace: per-lookup budgets of ``limit`` hits,
    shared by every ray of the lookup and consumed in traversal-stream
    order."""
    limit = int(limit)
    if limit < 1:
        raise ValueError(f"limit must be at least 1, got {limit}")
    owner_of_ray = np.asarray(rays.lookup_ids, dtype=np.int64)
    budget = {int(lookup): limit for lookup in np.unique(owner_of_ray).tolist()}
    return _reference_budgeted_trace(
        bvh,
        primitives,
        rays,
        owner_of_ray,
        budget,
        any_hit=any_hit,
        prim_test_bytes=prim_test_bytes,
        node_cull_respects_tmin=node_cull_respects_tmin,
    )


def reference_ordered_k_trace(
    bvh: Bvh,
    primitives: PrimitiveBuffer,
    rays: RayBatch,
    limit: int,
    any_hit=None,
    prim_test_bytes: int | None = None,
    node_cull_respects_tmin: bool = False,
) -> tuple[HitRecords, TraversalCounters]:
    """Golden ``mode="ordered_k"`` trace: per-lookup t-ordered top-k pools.

    Every lookup keeps the ``limit`` candidates that sort smallest under the
    lexicographic key ``(ray_index, hit_t, prim_index)`` — for codec-built
    range rays that order is exactly ascending ``(key, row_id)``, so the
    reported hits are the k smallest-key matches with stable row_id
    tie-breaking on duplicate keys.  Two pruning rules make the mode cheaper
    than an all-hits trace, both mirrored bit for bit by the engine:

    * *slab-time cull* — a surviving (ray, node) pair whose box-entry ``t``
      already sorts strictly after the lookup's current k-th best candidate
      (using the bound frozen at the start of the round) cannot contribute,
      and is dropped before the leaf/inner split;
    * *rank cull* — after the round's leaf merges, inner pairs whose ray
      index sorts after the (recomputed) bound's ray are dropped from the
      next frontier, exactly like first_k's exhausted-budget compaction.

    A candidate displaced from (or refused entry to) a full pool counts as a
    ``budget_dropped_hits`` drop; the per-round totals are set-based, so they
    are independent of the engine's chunk schedule.
    """
    limit = int(limit)
    if limit < 1:
        raise ValueError(f"limit must be at least 1, got {limit}")
    counters = TraversalCounters()
    counters.rays = len(rays)
    node_bytes = bvh.node_bytes()
    per_prim_bytes = (
        prim_test_bytes
        if prim_test_bytes is not None
        else max(primitives.primitive_bytes() // max(len(primitives), 1), 1)
    )

    n_rays = len(rays)
    owner_of_ray = np.asarray(rays.lookup_ids, dtype=np.int64)
    #: per-lookup sorted candidate pools of (ray, t, prim) tuples
    pools: dict[int, list[tuple[int, float, int]]] = {}
    #: per-lookup (ray, t) of the k-th best candidate, once the pool is full;
    #: refreshed after each round's leaf phase and frozen for the next
    #: round's slab-time cull.
    bounds: dict[int, tuple[int, float]] = {}

    if n_rays > 0 and bvh.node_count > 0:
        if node_cull_respects_tmin:
            node_tmin = rays.tmin
        else:
            node_tmin = np.minimum(rays.tmin, np.float32(0.0))
        frontier_rays = np.arange(n_rays, dtype=np.int64)
        frontier_nodes = np.zeros(n_rays, dtype=np.int64)
        while frontier_rays.size:
            counters.traversal_rounds += 1
            counters.max_frontier_size = max(
                counters.max_frontier_size, int(frontier_rays.size)
            )
            counters.node_visits += int(frontier_rays.size)
            counters.box_tests += int(frontier_rays.size)
            counters.node_bytes_read += int(frontier_rays.size) * node_bytes

            overlap, entry = ray_box_overlap_pairs_with_entry(
                rays.origins[frontier_rays],
                rays.directions[frontier_rays],
                node_tmin[frontier_rays],
                rays.tmax[frontier_rays],
                bvh.node_mins[frontier_nodes],
                bvh.node_maxs[frontier_nodes],
            )
            frontier_rays = frontier_rays[overlap]
            frontier_nodes = frontier_nodes[overlap]
            entry = entry[overlap]
            if frontier_rays.size == 0:
                break

            # Slab-time cull with the bounds frozen at round start: a pair
            # cannot beat its lookup's k-th candidate when its ray sorts
            # after the bound's ray, or its box entry t sorts strictly after
            # the bound's t on the bound's own ray (every hit inside the box
            # has t >= entry).  Equality keeps the pair: a t-equal hit with a
            # smaller prim index could still enter the pool.
            alive = np.ones(frontier_rays.size, dtype=bool)
            for i, (ray, lo_val) in enumerate(
                zip(frontier_rays.tolist(), entry.tolist())
            ):
                bound = bounds.get(int(owner_of_ray[ray]))
                if bound is not None and (
                    ray > bound[0] or (ray == bound[0] and lo_val > bound[1])
                ):
                    alive[i] = False
            frontier_rays = frontier_rays[alive]
            frontier_nodes = frontier_nodes[alive]
            if frontier_rays.size == 0:
                break

            is_leaf = bvh.left[frontier_nodes] < 0
            leaf_rays = frontier_rays[is_leaf]
            leaf_nodes = frontier_nodes[is_leaf]
            counters.leaf_visits += int(leaf_rays.size)
            if leaf_rays.size:
                counts = bvh.prim_count[leaf_nodes]
                firsts = bvh.first_prim[leaf_nodes]
                total = int(counts.sum())
                if total:
                    pair_rays = np.repeat(leaf_rays, counts)
                    offsets = np.repeat(np.cumsum(counts) - counts, counts)
                    within = np.arange(total, dtype=np.int64) - offsets
                    slot = np.repeat(firsts, counts) + within
                    pair_prims = bvh.prim_indices[slot]
                    counters.prim_tests += int(pair_prims.size)
                    counters.prim_bytes_read += int(pair_prims.size) * per_prim_bytes
                    if primitives.hardware_intersection:
                        counters.hardware_intersection_tests += int(pair_prims.size)
                    else:
                        counters.software_intersection_calls += int(pair_prims.size)
                    mask = primitives.intersect_pairs(
                        rays.origins[pair_rays],
                        rays.directions[pair_rays],
                        rays.tmin[pair_rays],
                        rays.tmax[pair_rays],
                        pair_prims,
                    )
                    cand_rays = pair_rays[mask]
                    cand_prims = pair_prims[mask]
                    if any_hit is not None and cand_rays.size:
                        keep = np.asarray(
                            any_hit(
                                cand_rays, cand_prims, rays.lookup_ids[cand_rays]
                            ),
                            dtype=bool,
                        )
                        cand_rays = cand_rays[keep]
                        cand_prims = cand_prims[keep]
                    if cand_rays.size:
                        cand_t = primitives.hit_t_pairs(
                            rays.origins[cand_rays],
                            rays.directions[cand_rays],
                            rays.tmin[cand_rays],
                            rays.tmax[cand_rays],
                            cand_prims,
                        )
                        for ray, prim, t in zip(
                            cand_rays.tolist(), cand_prims.tolist(), cand_t.tolist()
                        ):
                            pool = pools.setdefault(int(owner_of_ray[ray]), [])
                            bisect.insort(pool, (ray, t, prim))
                            if len(pool) > limit:
                                pool.pop()
                                counters.budget_dropped_hits += 1

            # Refresh the bounds from the pools: they drive this round's rank
            # cull of the inner pairs and freeze as next round's slab bounds.
            bounds = {
                lookup: (pool[limit - 1][0], pool[limit - 1][1])
                for lookup, pool in pools.items()
                if len(pool) == limit
            }

            inner_rays = frontier_rays[~is_leaf]
            inner_nodes = frontier_nodes[~is_leaf]
            if inner_rays.size:
                alive = np.array(
                    [
                        bounds.get(int(owner_of_ray[ray]), (np.iinfo(np.int64).max,))[0]
                        >= ray
                        for ray in inner_rays.tolist()
                    ],
                    dtype=bool,
                )
                inner_rays = inner_rays[alive]
                inner_nodes = inner_nodes[alive]
            if inner_rays.size:
                frontier_rays = np.concatenate([inner_rays, inner_rays])
                frontier_nodes = np.concatenate(
                    [bvh.left[inner_nodes], bvh.right[inner_nodes]]
                )
            else:
                frontier_rays = np.zeros(0, dtype=np.int64)
                frontier_nodes = np.zeros(0, dtype=np.int64)

    hit_rays: list[int] = []
    hit_prims: list[int] = []
    for lookup in sorted(pools):
        for ray, _t, prim in pools[lookup]:
            hit_rays.append(ray)
            hit_prims.append(prim)
    ray_indices = np.asarray(hit_rays, dtype=np.int64)
    prim_indices = np.asarray(hit_prims, dtype=np.int64)
    lookup_ids = rays.lookup_ids[ray_indices] if ray_indices.size else ray_indices

    counters.prim_hits = int(ray_indices.size)
    rays_hit = np.unique(ray_indices).size
    counters.rays_with_hits = int(rays_hit)
    counters.rays_without_hits = int(n_rays - rays_hit)

    hits = HitRecords(
        ray_indices=ray_indices,
        prim_indices=prim_indices,
        lookup_ids=lookup_ids,
        num_rays=n_rays,
    )
    return hits, counters


# --------------------------------------------------------------------------- #
# reference refit (per-node reverse sweep)
# --------------------------------------------------------------------------- #


def reference_refit_bounds(
    bvh: Bvh, primitives: PrimitiveBuffer
) -> tuple[np.ndarray, np.ndarray]:
    """The seed refit sweep: returns the refitted float64 (mins, maxs).

    Unlike :func:`repro.rtx.refit.refit_accel` this does not mutate ``bvh``
    and skips the flag/shape validation — it exists to check the vectorised
    bottom-up pass bit for bit.
    """
    prim_mins, prim_maxs = primitives.compute_aabbs()
    prim_mins = prim_mins.astype(np.float64)
    prim_maxs = prim_maxs.astype(np.float64)

    node_mins = bvh.node_mins.astype(np.float64)
    node_maxs = bvh.node_maxs.astype(np.float64)

    for node in range(bvh.node_count - 1, -1, -1):
        if bvh.left[node] < 0:
            first = int(bvh.first_prim[node])
            count = int(bvh.prim_count[node])
            idx = bvh.prim_indices[first : first + count]
            node_mins[node] = prim_mins[idx].min(axis=0)
            node_maxs[node] = prim_maxs[idx].max(axis=0)
        else:
            l, r = int(bvh.left[node]), int(bvh.right[node])
            node_mins[node] = np.minimum(node_mins[l], node_mins[r])
            node_maxs[node] = np.maximum(node_maxs[l], node_maxs[r])
    return node_mins, node_maxs


# --------------------------------------------------------------------------- #
# reference hash-table insert loop
# --------------------------------------------------------------------------- #


def reference_hashtable_insert(
    keys: np.ndarray,
    group_of: np.ndarray,
    num_groups: int,
    group_size: int,
) -> tuple[np.ndarray, np.ndarray, int]:
    """The seed one-key-at-a-time insert loop of ``WarpCoreHashTable.build``.

    Returns ``(slot_keys, slot_rows, total_probe_groups)``.
    """
    from repro.baselines.hashtable import _EMPTY

    capacity = num_groups * group_size
    slot_keys = np.full(capacity, _EMPTY, dtype=np.uint64)
    slot_rows = np.zeros(capacity, dtype=np.uint64)
    total_probe_groups = 0
    for row_id in range(keys.shape[0]):
        group = int(group_of[row_id])
        probes = 0
        while True:
            probes += 1
            start = group * group_size
            window = slot_keys[start : start + group_size]
            empty = np.flatnonzero(window == _EMPTY)
            if empty.size:
                slot = start + int(empty[0])
                slot_keys[slot] = keys[row_id]
                slot_rows[slot] = row_id
                break
            group = (group + 1) % num_groups
            if probes > num_groups:
                raise RuntimeError("hash table overflow during insert")
        total_probe_groups += probes
    return slot_keys, slot_rows, total_probe_groups
