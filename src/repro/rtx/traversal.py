"""BVH traversal with hardware-style performance counters.

The traversal is *wavefront* style: instead of walking the tree one ray at a
time, a frontier of ``(ray, node)`` pairs is advanced level by level with
fully vectorised NumPy operations.  Functionally this is equivalent to the
per-ray stack traversal the RT cores perform; the counters it produces
(node visits, box tests, primitive intersection tests, bytes touched) are the
quantities the paper reads from Nsight Compute and that our GPU cost model
converts into simulated milliseconds.

Per-batch work is hoisted out of the per-round loop: ray origins, inverse
directions and the float64 node boxes are materialised once per ``trace``
call, rounds reuse a pair of preallocated child-expansion buffers, and the
``max_frontier`` knob streams the per-pair slab/intersection tests of huge
frontiers in bounded-memory slices.  None of this changes observable
behaviour — hit records and every counter (including ``traversal_rounds``
and ``max_frontier_size``, which count the *logical* frontier) are
bit-identical with the reference loop in :mod:`repro.rtx._reference` for any
``max_frontier`` setting.

``trace`` supports four reporting modes: the default reports every
intersection of every ray; ``mode="any_hit"`` models the hardware any-hit
program terminating the ray — each ray records exactly its first surviving
hit; ``mode="first_k"`` is the limit-pushdown variant for bounded range
lookups — every lookup carries a remaining-hit budget of ``limit`` shared by
all of its rays, and a ray stops traversing once its lookup's budget is
exhausted; ``mode="ordered_k"`` is the ordered top-k variant — every lookup
keeps the ``limit`` hits sorting smallest under ``(ray, hit_t, prim)``
(ascending ``(key, row_id)`` for codec-built range rays), with frontier
pairs that cannot beat the lookup's current k-th candidate culled against
their box-entry ``t``.  All non-default modes compact finished rays out of
the frontier (the budget/rank mask is fused into the leaf/inner split so no
separate compaction gather runs), with the counters reflecting only the
work actually executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rtx.bvh import Bvh
from repro.rtx.geometry import PrimitiveBuffer, RayBatch


@dataclass
class TraversalCounters:
    """Counters accumulated during one or more traced ray batches."""

    rays: int = 0
    node_visits: int = 0
    #: (ray, leaf) pairs among the node visits — the slice of the traversal
    #: that issues primitive tests; lets the cost model split inner descent
    #: from leaf-phase work.
    leaf_visits: int = 0
    box_tests: int = 0
    prim_tests: int = 0
    prim_hits: int = 0
    #: Hits that survived intersection + any-hit filtering but were discarded
    #: because their owner's early-exit budget was already spent (any_hit /
    #: first_k modes).  Zero in all-hits mode.  A per-ray hardware traversal
    #: would have terminated before producing these, so the ratio
    #: ``prim_hits / (prim_hits + budget_dropped_hits)`` measures how much of
    #: the leaf-phase work the wavefront schedule could not skip.
    budget_dropped_hits: int = 0
    rays_with_hits: int = 0
    rays_without_hits: int = 0
    node_bytes_read: int = 0
    prim_bytes_read: int = 0
    hardware_intersection_tests: int = 0
    software_intersection_calls: int = 0
    max_frontier_size: int = 0
    traversal_rounds: int = 0

    def merge(self, other: "TraversalCounters") -> "TraversalCounters":
        """Accumulate ``other`` into ``self`` and return ``self``."""
        self.rays += other.rays
        self.node_visits += other.node_visits
        self.leaf_visits += other.leaf_visits
        self.box_tests += other.box_tests
        self.prim_tests += other.prim_tests
        self.prim_hits += other.prim_hits
        self.budget_dropped_hits += other.budget_dropped_hits
        self.rays_with_hits += other.rays_with_hits
        self.rays_without_hits += other.rays_without_hits
        self.node_bytes_read += other.node_bytes_read
        self.prim_bytes_read += other.prim_bytes_read
        self.hardware_intersection_tests += other.hardware_intersection_tests
        self.software_intersection_calls += other.software_intersection_calls
        self.max_frontier_size = max(self.max_frontier_size, other.max_frontier_size)
        self.traversal_rounds += other.traversal_rounds
        return self

    @property
    def total_bytes_read(self) -> int:
        return self.node_bytes_read + self.prim_bytes_read

    @property
    def node_visits_per_ray(self) -> float:
        return self.node_visits / self.rays if self.rays else 0.0

    @property
    def prim_tests_per_ray(self) -> float:
        return self.prim_tests / self.rays if self.rays else 0.0

    def as_dict(self) -> dict:
        return {
            "rays": self.rays,
            "node_visits": self.node_visits,
            "leaf_visits": self.leaf_visits,
            "box_tests": self.box_tests,
            "prim_tests": self.prim_tests,
            "prim_hits": self.prim_hits,
            "budget_dropped_hits": self.budget_dropped_hits,
            "rays_with_hits": self.rays_with_hits,
            "rays_without_hits": self.rays_without_hits,
            "node_bytes_read": self.node_bytes_read,
            "prim_bytes_read": self.prim_bytes_read,
            "hardware_intersection_tests": self.hardware_intersection_tests,
            "software_intersection_calls": self.software_intersection_calls,
            "max_frontier_size": self.max_frontier_size,
            "traversal_rounds": self.traversal_rounds,
        }


@dataclass
class HitRecords:
    """All (ray, primitive) hits of a traced batch, in structure-of-arrays form.

    ``ray_indices[i]`` is the index of the ray *within the traced batch* and
    ``prim_indices[i]`` the primitive it hit.  ``lookup_ids[i]`` maps the hit
    back to the originating lookup (several rays can serve one lookup in 3D
    Mode range queries).
    """

    ray_indices: np.ndarray
    prim_indices: np.ndarray
    lookup_ids: np.ndarray
    num_rays: int

    @property
    def count(self) -> int:
        return int(self.ray_indices.shape[0])

    def hits_per_ray(self) -> np.ndarray:
        """Number of hits of each ray in the batch."""
        return np.bincount(self.ray_indices, minlength=self.num_rays)


def _cut_to_budget(owners: np.ndarray, budget: np.ndarray) -> tuple[np.ndarray, bool]:
    """Keep, in stream order, at most ``budget[owner]`` hits per owner.

    ``owners`` assigns every hit of one chunk to its budget owner (the ray
    itself in any-hit mode, the originating lookup in first_k mode).  Returns
    the boolean keep-mask plus whether any owner's budget reached zero, and
    decrements ``budget`` in place by the number of kept hits.  One stable
    argsort ranks each hit within its owner's hits, so the kept hits are
    exactly the first ``budget[owner]`` of the stream — for a budget of one
    this degenerates to "first hit per ray", the any-hit program semantics.
    """
    order = np.argsort(owners, kind="stable")
    sorted_owners = owners[order]
    is_first = np.empty(sorted_owners.shape[0], dtype=bool)
    is_first[0] = True
    np.not_equal(sorted_owners[1:], sorted_owners[:-1], out=is_first[1:])
    group_starts = np.flatnonzero(is_first)
    counts = np.diff(np.append(group_starts, sorted_owners.shape[0]))
    ranks = np.arange(sorted_owners.shape[0], dtype=np.int64) - np.repeat(
        group_starts, counts
    )
    keep_sorted = ranks < budget[sorted_owners]
    keep = np.empty_like(keep_sorted)
    keep[order] = keep_sorted
    unique_owners = sorted_owners[group_starts]
    budget[unique_owners] -= np.minimum(counts, budget[unique_owners])
    return keep, bool((budget[unique_owners] == 0).any())


class _OrderedKState:
    """Per-lookup t-ordered top-k candidate pools for ``mode="ordered_k"``.

    Each lookup keeps the ``k`` candidates that sort smallest under the
    lexicographic key ``(ray_index, hit_t, prim_index)``.  The pool arrays
    are maintained globally sorted by ``(lookup, ray, t, prim)``, so the
    final hit records fall out of them directly and the per-lookup bound
    (the k-th best candidate of a full pool) is one gather away.  Merging a
    candidate chunk is a single lexsort plus the same rank-within-group
    technique as :func:`_cut_to_budget` — set-based, so the surviving pool
    and the total number of displaced candidates are independent of how the
    round's candidates were chunked, matching the sequential insertion loop
    of the golden reference exactly.
    """

    def __init__(self, num_lookups: int, k: int, owners: np.ndarray):
        self.k = int(k)
        self.owners = owners
        self.lookups = np.zeros(0, dtype=np.int64)
        self.rays = np.zeros(0, dtype=np.int64)
        self.ts = np.zeros(0, dtype=np.float64)
        self.prims = np.zeros(0, dtype=np.int64)
        #: per-lookup bound state, valid after :meth:`refresh_bounds`
        self.full = np.zeros(num_lookups, dtype=bool)
        self.bound_ray = np.zeros(num_lookups, dtype=np.int64)
        self.bound_t = np.zeros(num_lookups, dtype=np.float64)

    def merge(
        self, cand_rays: np.ndarray, cand_t: np.ndarray, cand_prims: np.ndarray
    ) -> np.ndarray:
        """Fold one candidate chunk into the pools; returns the rays of the
        displaced entries (candidates that missed plus pool entries they
        evicted) for drop accounting."""
        all_l = np.concatenate([self.lookups, self.owners[cand_rays]])
        all_r = np.concatenate([self.rays, cand_rays])
        all_t = np.concatenate([self.ts, cand_t])
        all_p = np.concatenate([self.prims, cand_prims])
        order = np.lexsort((all_p, all_t, all_r, all_l))
        sorted_l = all_l[order]
        is_first = np.empty(sorted_l.shape[0], dtype=bool)
        is_first[0] = True
        np.not_equal(sorted_l[1:], sorted_l[:-1], out=is_first[1:])
        group_starts = np.flatnonzero(is_first)
        counts = np.diff(np.append(group_starts, sorted_l.shape[0]))
        ranks = np.arange(sorted_l.shape[0], dtype=np.int64) - np.repeat(
            group_starts, counts
        )
        keep = ranks < self.k
        kept = order[keep]
        self.lookups = sorted_l[keep]
        self.rays = all_r[kept]
        self.ts = all_t[kept]
        self.prims = all_p[kept]
        return all_r[order[~keep]]

    def refresh_bounds(self) -> None:
        """Recompute each full pool's k-th best (ray, t) bound."""
        self.full[:] = False
        if self.lookups.size == 0:
            return
        is_first = np.empty(self.lookups.shape[0], dtype=bool)
        is_first[0] = True
        np.not_equal(self.lookups[1:], self.lookups[:-1], out=is_first[1:])
        group_starts = np.flatnonzero(is_first)
        counts = np.diff(np.append(group_starts, self.lookups.shape[0]))
        full_groups = counts == self.k
        if not full_groups.any():
            return
        bound_idx = group_starts[full_groups] + self.k - 1
        full_lookups = self.lookups[group_starts[full_groups]]
        self.full[full_lookups] = True
        self.bound_ray[full_lookups] = self.rays[bound_idx]
        self.bound_t[full_lookups] = self.ts[bound_idx]

    def slab_keep_mask(self, pair_rays: np.ndarray, entry_t: np.ndarray) -> np.ndarray:
        """Keep-mask over frontier pairs against the frozen round-start
        bounds: a pair is hopeless when its ray sorts after the bound's ray,
        or its box-entry t sorts strictly after the bound's t on the bound's
        own ray (every hit inside the box has ``t >= entry``).  Equality
        keeps the pair — a t-equal hit with a smaller prim index could still
        enter the pool."""
        own = self.owners[pair_rays]
        bound_ray = self.bound_ray[own]
        cull = self.full[own] & (
            (pair_rays > bound_ray)
            | ((pair_rays == bound_ray) & (entry_t > self.bound_t[own]))
        )
        return ~cull

    def rank_keep_mask(self, pair_rays: np.ndarray) -> np.ndarray:
        """Keep-mask for the inner-pair compaction: after the round's merges,
        rays sorting after their lookup's bound ray can no longer contribute
        (their t is unknown here; the child's own slab cull handles it next
        round)."""
        own = self.owners[pair_rays]
        return ~(self.full[own] & (pair_rays > self.bound_ray[own]))


def _frontier_box_overlap(
    origins32: np.ndarray,
    directions32: np.ndarray,
    node_tmin32: np.ndarray,
    tmax32: np.ndarray,
    node_mins32: np.ndarray,
    node_maxs32: np.ndarray,
    frontier_rays: np.ndarray,
    frontier_nodes: np.ndarray,
    return_entry: bool = False,
):
    """Slab test of frontier (ray, node) pairs.

    Performs the same float64 arithmetic as
    :func:`repro.rtx.geometry.ray_box_overlap_pairs` — results are
    bit-identical — but specialises each axis on whether *any* ray of the
    frontier is parallel to it.  The paper's workloads trace axis-aligned
    rays (point rays along z, range rays along x), so two of the three axes
    take the all-parallel fast path, which needs only an in-slab test, and
    the remaining axis skips the parallel blends entirely.  Inputs arrive
    transposed (per-axis rows) so every per-pair gather is a contiguous 1D
    take.

    With ``return_entry=True`` the per-pair box-entry ``t`` (``lo`` after all
    axes — parallel axes leave it untouched, exactly like the reference's
    blend) is returned alongside the mask; the ordered top-k mode culls
    against it.
    """
    lo = node_tmin32[frontier_rays].astype(np.float64)
    hi = tmax32[frontier_rays].astype(np.float64)
    ok: np.ndarray | None = None
    with np.errstate(divide="ignore", invalid="ignore"):
        for axis in range(3):
            da32 = directions32[axis][frontier_rays]
            # Float32 directions convert to float64 magnitudes of at least
            # ~1.4e-45, so the reference's |d| < 1e-300 test is exactly a
            # zero test on the raw float32 values.
            parallel = da32 == np.float32(0.0)
            n_parallel = np.count_nonzero(parallel)
            if n_parallel == parallel.shape[0]:
                # Whole frontier parallel to this axis (axis-aligned ray
                # batches): only the in-slab test matters, and float32
                # comparisons equal the reference's compare-after-convert.
                oa32 = origins32[axis][frontier_rays]
                inside = (oa32 >= node_mins32[axis][frontier_nodes]) & (
                    oa32 <= node_maxs32[axis][frontier_nodes]
                )
                ok = inside if ok is None else (ok & inside)
                continue
            da = da32.astype(np.float64)
            oa = origins32[axis][frontier_rays].astype(np.float64)
            bmin = node_mins32[axis][frontier_nodes].astype(np.float64)
            bmax = node_maxs32[axis][frontier_nodes].astype(np.float64)
            if n_parallel == 0:
                inv = 1.0 / da
                t0 = (bmin - oa) * inv
                t1 = (bmax - oa) * inv
                np.maximum(lo, np.minimum(t0, t1), out=lo)
                np.minimum(hi, np.maximum(t0, t1), out=hi)
            else:
                inv = np.where(parallel, np.inf, 1.0 / np.where(parallel, 1.0, da))
                t0 = (bmin - oa) * inv
                t1 = (bmax - oa) * inv
                near = np.minimum(t0, t1)
                far = np.maximum(t0, t1)
                lo = np.where(parallel, lo, np.maximum(lo, near))
                hi = np.where(parallel, hi, np.minimum(hi, far))
                inside = (oa >= bmin) & (oa <= bmax)
                miss = parallel & ~inside
                ok = ~miss if ok is None else (ok & ~miss)
    result = lo <= hi
    if ok is not None:
        result &= ok
    if return_entry:
        return result, lo
    return result


class _GroupCounterRecorder:
    """Attributes one trace's counters to per-ray groups (serving demux).

    The wavefront schedule interleaves the rays of a coalesced launch, but a
    ray's survival and per-round (ray, node) pairs depend only on its own
    geometry and its own budget owner, so every counter can be attributed to
    the group that owns the ray.  The recorder accumulates, per group, the
    same quantities ``TraversalCounters`` accumulates globally — including
    ``traversal_rounds`` (rounds where the group still had frontier pairs)
    and ``max_frontier_size`` (the group's own per-round peak) — yielding
    counters bit-identical to tracing each group's rays in a solo launch.
    """

    def __init__(self, groups: np.ndarray, num_groups: int):
        self.groups = groups
        self.num_groups = num_groups
        self.node_visits = np.zeros(num_groups, dtype=np.int64)
        self.leaf_visits = np.zeros(num_groups, dtype=np.int64)
        self.prim_tests = np.zeros(num_groups, dtype=np.int64)
        self.budget_dropped = np.zeros(num_groups, dtype=np.int64)
        self.rounds = np.zeros(num_groups, dtype=np.int64)
        self.max_frontier = np.zeros(num_groups, dtype=np.int64)

    def on_round(self, frontier_rays: np.ndarray) -> None:
        counts = np.bincount(self.groups[frontier_rays], minlength=self.num_groups)
        self.node_visits += counts
        self.rounds += counts > 0
        np.maximum(self.max_frontier, counts, out=self.max_frontier)

    def on_leaves(self, leaf_rays: np.ndarray) -> None:
        if leaf_rays.size:
            self.leaf_visits += np.bincount(
                self.groups[leaf_rays], minlength=self.num_groups
            )

    def on_prim_tests(self, pair_rays: np.ndarray) -> None:
        if pair_rays.size:
            self.prim_tests += np.bincount(
                self.groups[pair_rays], minlength=self.num_groups
            )

    def on_budget_drops(self, dropped_rays: np.ndarray) -> None:
        if dropped_rays.size:
            self.budget_dropped += np.bincount(
                self.groups[dropped_rays], minlength=self.num_groups
            )

    def finalize(
        self,
        ray_indices: np.ndarray,
        node_bytes: int,
        per_prim_bytes: int,
        hardware: bool,
    ) -> list[TraversalCounters]:
        """Split the finished trace into one ``TraversalCounters`` per group."""
        rays_per_group = np.bincount(self.groups, minlength=self.num_groups)
        prim_hits = np.zeros(self.num_groups, dtype=np.int64)
        rays_with_hits = np.zeros(self.num_groups, dtype=np.int64)
        if ray_indices.size:
            prim_hits = np.bincount(
                self.groups[ray_indices], minlength=self.num_groups
            )
            rays_with_hits = np.bincount(
                self.groups[np.unique(ray_indices)], minlength=self.num_groups
            )
        out = []
        for g in range(self.num_groups):
            prim_tests = int(self.prim_tests[g])
            out.append(
                TraversalCounters(
                    rays=int(rays_per_group[g]),
                    node_visits=int(self.node_visits[g]),
                    leaf_visits=int(self.leaf_visits[g]),
                    box_tests=int(self.node_visits[g]),
                    prim_tests=prim_tests,
                    prim_hits=int(prim_hits[g]),
                    budget_dropped_hits=int(self.budget_dropped[g]),
                    rays_with_hits=int(rays_with_hits[g]),
                    rays_without_hits=int(rays_per_group[g] - rays_with_hits[g]),
                    node_bytes_read=int(self.node_visits[g]) * node_bytes,
                    prim_bytes_read=prim_tests * per_prim_bytes,
                    hardware_intersection_tests=prim_tests if hardware else 0,
                    software_intersection_calls=0 if hardware else prim_tests,
                    max_frontier_size=int(self.max_frontier[g]),
                    traversal_rounds=int(self.rounds[g]),
                )
            )
        return out


@dataclass
class TraversalEngine:
    """Traces ray batches against a BVH over a primitive buffer."""

    bvh: Bvh
    primitives: PrimitiveBuffer
    #: bytes charged per primitive intersection test (triangle data embedded
    #: in the accel); derived from the primitive buffer when left at None.
    prim_test_bytes: int | None = None
    #: The RTX hardware culls BVH nodes against the ray's *far* limit (tmax)
    #: but applies the *near* limit (tmin) only when testing primitives — the
    #: paper's Figure 6 / Table 3 measurements (rays "from zero" being far
    #: slower than offset rays despite identical geometric segments) are only
    #: explainable this way.  Set to True to model an idealised traversal
    #: that culls against the full [tmin, tmax] interval.
    node_cull_respects_tmin: bool = False
    #: Upper bound on the number of (ray, node) pairs whose geometry is
    #: materialised at once.  Frontiers larger than this are streamed through
    #: the slab/intersection tests in slices, bounding peak memory for huge
    #: batches.  Purely an execution-schedule knob: hit records and all
    #: counters are identical for every setting.  ``None`` disables slicing.
    max_frontier: int | None = None
    counters: TraversalCounters = field(default_factory=TraversalCounters)
    #: Per-group counters of the most recent ``trace(..., ray_groups=...)``
    #: call (None when the last trace did not request grouping).  Each entry
    #: is bit-identical to the counters a solo launch of that group's rays
    #: would produce — the demux contract of the serving layer.
    group_counters: list[TraversalCounters] | None = field(default=None, repr=False)

    def reset_counters(self) -> None:
        self.counters = TraversalCounters()

    def trace(
        self,
        rays: RayBatch,
        any_hit=None,
        mode: str = "all",
        limit: int | None = None,
        ray_groups: np.ndarray | None = None,
    ) -> HitRecords:
        """Trace all rays and return their (ray, primitive) intersections.

        ``any_hit`` optionally mimics the OptiX any-hit program: it receives
        ``(ray_indices, prim_indices, lookup_ids)`` and returns a boolean mask
        selecting the hits to keep (e.g. software filtering for AABB
        primitives).

        ``mode`` selects the reporting semantics:

        * ``"all"`` (default) — report every intersection of every ray; the
          ``any_hit`` filter is applied once to the accumulated hit list.
        * ``"any_hit"`` — early-exit traversal: each ray terminates at its
          first hit that survives the ``any_hit`` filter and reports exactly
          that one hit (on RT hardware the any-hit program ends the ray the
          same way).  The reported hit per ray equals the first surviving
          hit the default mode would report for it.
        * ``"first_k"`` — limit-pushdown traversal: every *lookup* carries a
          remaining-hit budget of ``limit``, shared by all of its rays
          (``rays.lookup_ids``).  Hits are recorded in traversal-stream
          order until the budget is exhausted, then every ray of the lookup
          terminates.  The reported hits per lookup equal the first
          ``limit`` surviving hits the default mode would report for it (a
          stable top-k cut of the all-hits stream).
        * ``"ordered_k"`` — ordered top-k traversal: every lookup keeps the
          ``limit`` surviving hits that sort smallest under the
          lexicographic key ``(ray_index, hit_t, prim_index)``, reported in
          that order (not traversal-stream order).  For codec-built range
          rays this is exactly ascending ``(key, row_id)``, i.e. a true
          ``ORDER BY key LIMIT k``.  Nodes whose box-entry ``t`` (and rays
          whose index) sort after a lookup's current k-th best candidate
          are culled from the frontier, so unbalanced trees prune like a
          per-ray ordered traversal would.

        In the early-exit and ordered modes finished rays are compacted out
        of the frontier between rounds, so the counters reflect only the
        traversal work actually executed, and the ``any_hit`` filter is
        applied eagerly per leaf chunk — it must be elementwise (decide
        each hit on its own), exactly like a real any-hit program.
        ``limit`` is only meaningful with ``mode="first_k"`` and
        ``mode="ordered_k"``.

        ``ray_groups`` optionally assigns every ray to a demux group (an
        int array of group ids, one per ray).  After the trace,
        ``self.group_counters`` holds one :class:`TraversalCounters` per
        group, each bit-identical to what a solo trace of only that group's
        rays would have produced — provided the groups do not share
        early-exit budget owners (in ``first_k`` mode all rays of a lookup
        must belong to one group).  Grouping does not change the traversal
        or the global counters in any way.
        """
        if mode not in ("all", "any_hit", "first_k", "ordered_k"):
            raise ValueError(
                f"unknown trace mode {mode!r}; use 'all', 'any_hit', 'first_k' "
                "or 'ordered_k'"
            )
        if mode in ("first_k", "ordered_k"):
            if limit is None:
                raise ValueError(f"mode={mode!r} requires a hit limit")
            limit = int(limit)
            if limit < 1:
                raise ValueError(f"limit must be at least 1, got {limit}")
        elif limit is not None:
            raise ValueError(
                f"limit is only meaningful with mode 'first_k' or 'ordered_k', "
                f"not {mode!r}"
            )
        ordered = mode == "ordered_k"
        early_exit = mode in ("any_hit", "first_k")
        self.group_counters = None
        recorder: _GroupCounterRecorder | None = None
        if ray_groups is not None:
            groups = np.asarray(ray_groups, dtype=np.int64).reshape(-1)
            if groups.shape[0] != len(rays):
                raise ValueError(
                    f"ray_groups must assign one group per ray: got "
                    f"{groups.shape[0]} groups for {len(rays)} rays"
                )
            if groups.size and int(groups.min()) < 0:
                raise ValueError("ray_groups must be non-negative group ids")
            num_groups = int(groups.max()) + 1 if groups.size else 0
            recorder = _GroupCounterRecorder(groups, num_groups)
        counters = TraversalCounters()
        counters.rays = len(rays)
        bvh = self.bvh
        node_bytes = bvh.node_bytes()
        per_prim_bytes = (
            self.prim_test_bytes
            if self.prim_test_bytes is not None
            else max(self.primitives.primitive_bytes() // max(len(self.primitives), 1), 1)
        )

        n_rays = len(rays)
        hit_rays: list[np.ndarray] = []
        hit_prims: list[np.ndarray] = []
        # Early-exit bookkeeping: every hit consumes one unit of its owner's
        # budget, and a ray whose owner is exhausted drops out of the
        # frontier.  The any-hit program owns budgets per *ray* (one hit ends
        # the ray); first_k owns them per *lookup* (rays of one lookup share
        # the lookup's limit).
        owners: np.ndarray | None = None
        budget: np.ndarray | None = None
        pool: _OrderedKState | None = None
        if early_exit and n_rays:
            if mode == "any_hit":
                budget = np.ones(n_rays, dtype=np.int64)
            else:
                owners = rays.lookup_ids
                budget = np.full(int(owners.max()) + 1, limit, dtype=np.int64)
        elif ordered and n_rays:
            pool = _OrderedKState(
                int(rays.lookup_ids.max()) + 1, limit, rays.lookup_ids
            )

        if n_rays > 0 and bvh.node_count > 0:
            if self.node_cull_respects_tmin:
                node_tmin = rays.tmin
            else:
                # Nodes in front of the origin but before tmin are still
                # visited; only their primitive hits are rejected later.
                node_tmin = np.minimum(rays.tmin, np.float32(0.0))

            origins = rays.origins
            directions = rays.directions
            prim_lo = rays.tmin
            t_hi = rays.tmax
            # Transposed copies (one contiguous row per axis) so the slab
            # test gathers single scalars per pair instead of strided rows;
            # built once per batch.
            origins_t = np.ascontiguousarray(origins.T)
            directions_t = np.ascontiguousarray(directions.T)
            mins_t = np.ascontiguousarray(bvh.node_mins.T)
            maxs_t = np.ascontiguousarray(bvh.node_maxs.T)
            left, right = bvh.left, bvh.right

            chunk = self.max_frontier if self.max_frontier else None
            frontier_rays = np.arange(n_rays, dtype=np.int64)
            frontier_nodes = np.zeros(n_rays, dtype=np.int64)
            # Reused child-expansion buffers (grown geometrically); the
            # frontier for the next round is a view into the active one.
            child_rays = np.empty(0, dtype=np.int64)
            child_nodes = np.empty(0, dtype=np.int64)

            while frontier_rays.size:
                fsize = int(frontier_rays.size)
                counters.traversal_rounds += 1
                if fsize > counters.max_frontier_size:
                    counters.max_frontier_size = fsize
                counters.node_visits += fsize
                counters.box_tests += fsize
                counters.node_bytes_read += fsize * node_bytes
                if recorder is not None:
                    recorder.on_round(frontier_rays)

                entry: np.ndarray | None = None
                if chunk is None or fsize <= chunk:
                    if ordered:
                        overlap, entry = _frontier_box_overlap(
                            origins_t, directions_t, node_tmin, t_hi,
                            mins_t, maxs_t, frontier_rays, frontier_nodes,
                            return_entry=True,
                        )
                    else:
                        overlap = _frontier_box_overlap(
                            origins_t, directions_t, node_tmin, t_hi,
                            mins_t, maxs_t, frontier_rays, frontier_nodes,
                        )
                else:
                    overlap = np.empty(fsize, dtype=bool)
                    if ordered:
                        entry = np.empty(fsize, dtype=np.float64)
                    for lo_idx in range(0, fsize, chunk):
                        hi_idx = min(lo_idx + chunk, fsize)
                        if ordered:
                            overlap[lo_idx:hi_idx], entry[lo_idx:hi_idx] = (
                                _frontier_box_overlap(
                                    origins_t, directions_t, node_tmin, t_hi,
                                    mins_t, maxs_t,
                                    frontier_rays[lo_idx:hi_idx],
                                    frontier_nodes[lo_idx:hi_idx],
                                    return_entry=True,
                                )
                            )
                        else:
                            overlap[lo_idx:hi_idx] = _frontier_box_overlap(
                                origins_t, directions_t, node_tmin, t_hi,
                                mins_t, maxs_t,
                                frontier_rays[lo_idx:hi_idx],
                                frontier_nodes[lo_idx:hi_idx],
                            )
                frontier_rays = frontier_rays[overlap]
                frontier_nodes = frontier_nodes[overlap]
                if frontier_rays.size == 0:
                    break
                if pool is not None:
                    # Ordered cull against the bounds frozen at round start
                    # (the previous round's refresh): pairs that cannot beat
                    # their lookup's k-th candidate drop out before the
                    # leaf/inner split, so neither their primitive tests nor
                    # their children happen.
                    keep = pool.slab_keep_mask(frontier_rays, entry[overlap])
                    frontier_rays = frontier_rays[keep]
                    frontier_nodes = frontier_nodes[keep]
                    if frontier_rays.size == 0:
                        break

                is_leaf = left[frontier_nodes] < 0
                leaf_rays = frontier_rays[is_leaf]
                leaf_nodes = frontier_nodes[is_leaf]
                counters.leaf_visits += int(leaf_rays.size)
                if recorder is not None:
                    recorder.on_leaves(leaf_rays)
                terminated_this_round = False
                if leaf_rays.size:
                    pair_rays, pair_prims = self._expand_leaf_pairs(leaf_rays, leaf_nodes)
                    npairs = int(pair_prims.size)
                    counters.prim_tests += npairs
                    counters.prim_bytes_read += npairs * per_prim_bytes
                    if recorder is not None:
                        recorder.on_prim_tests(pair_rays)
                    if self.primitives.hardware_intersection:
                        counters.hardware_intersection_tests += npairs
                    else:
                        counters.software_intersection_calls += npairs
                    # Chunk the pair stream with the same bound as the slab
                    # test; no bound (chunk None or 0) means one full chunk.
                    pair_chunk = chunk if chunk else npairs
                    for lo_idx in range(0, npairs, max(pair_chunk, 1)):
                        hi_idx = min(lo_idx + pair_chunk, npairs)
                        sub_rays = pair_rays[lo_idx:hi_idx]
                        sub_prims = pair_prims[lo_idx:hi_idx]
                        mask = self.primitives.intersect_pairs(
                            origins[sub_rays],
                            directions[sub_rays],
                            prim_lo[sub_rays],
                            t_hi[sub_rays],
                            sub_prims,
                        )
                        sub_hit_rays = sub_rays[mask]
                        sub_hit_prims = sub_prims[mask]
                        if early_exit or ordered:
                            # Run the any-hit program on each intersection as
                            # it is found; only surviving hits consume budget
                            # (or compete for a pool slot).
                            if any_hit is not None and sub_hit_rays.size:
                                keep = np.asarray(
                                    any_hit(
                                        sub_hit_rays,
                                        sub_hit_prims,
                                        rays.lookup_ids[sub_hit_rays],
                                    ),
                                    dtype=bool,
                                )
                                sub_hit_rays = sub_hit_rays[keep]
                                sub_hit_prims = sub_hit_prims[keep]
                        if pool is not None:
                            # Ordered mode: candidates are merged into their
                            # lookup's top-k pool instead of the hit stream;
                            # displaced entries count as budget drops.
                            if sub_hit_rays.size:
                                cand_t = self.primitives.hit_t_pairs(
                                    origins[sub_hit_rays],
                                    directions[sub_hit_rays],
                                    prim_lo[sub_hit_rays],
                                    t_hi[sub_hit_rays],
                                    sub_hit_prims,
                                )
                                dropped = pool.merge(
                                    sub_hit_rays, cand_t, sub_hit_prims
                                )
                                counters.budget_dropped_hits += int(dropped.size)
                                if recorder is not None:
                                    recorder.on_budget_drops(dropped)
                            continue
                        if early_exit and sub_hit_rays.size:
                            own = (
                                sub_hit_rays
                                if owners is None
                                else owners[sub_hit_rays]
                            )
                            keep, exhausted = _cut_to_budget(own, budget)
                            counters.budget_dropped_hits += int(
                                own.shape[0] - np.count_nonzero(keep)
                            )
                            if recorder is not None:
                                recorder.on_budget_drops(sub_hit_rays[~keep])
                            sub_hit_rays = sub_hit_rays[keep]
                            sub_hit_prims = sub_hit_prims[keep]
                            if exhausted:
                                terminated_this_round = True
                        hit_rays.append(sub_hit_rays)
                        hit_prims.append(sub_hit_prims)

                inner_mask = ~is_leaf
                if early_exit and terminated_this_round:
                    # Terminated rays drop out of the frontier between rounds,
                    # exactly like hardware ending a ray whose budget ran dry;
                    # the next round's counters only see survivors.  The alive
                    # mask is fused into the leaf/inner split so the children
                    # of dead rays are never materialised and no separate
                    # post-expansion compaction gather runs.  (Earlier
                    # terminations were compacted in their own round, so this
                    # only triggers when a ray died this round.)
                    own_frontier = (
                        frontier_rays if owners is None else owners[frontier_rays]
                    )
                    inner_mask &= budget[own_frontier] > 0
                if pool is not None:
                    # Re-derive the bounds from the pools the round's merges
                    # just updated; they compact hopeless rays out of the
                    # inner frontier now and freeze as the next round's
                    # slab-cull bounds.
                    pool.refresh_bounds()
                    inner_mask &= pool.rank_keep_mask(frontier_rays)
                inner_rays = frontier_rays[inner_mask]
                inner_nodes = frontier_nodes[inner_mask]
                n_inner = int(inner_rays.size)
                if n_inner:
                    if child_rays.shape[0] < 2 * n_inner:
                        child_rays = np.empty(2 * n_inner, dtype=np.int64)
                        child_nodes = np.empty(2 * n_inner, dtype=np.int64)
                    next_rays = child_rays[: 2 * n_inner]
                    next_nodes = child_nodes[: 2 * n_inner]
                    next_rays[:n_inner] = inner_rays
                    next_rays[n_inner:] = inner_rays
                    next_nodes[:n_inner] = left[inner_nodes]
                    next_nodes[n_inner:] = right[inner_nodes]
                    frontier_rays = next_rays
                    frontier_nodes = next_nodes
                else:
                    frontier_rays = np.zeros(0, dtype=np.int64)
                    frontier_nodes = np.zeros(0, dtype=np.int64)

        if pool is not None:
            # The pools are maintained sorted by (lookup, ray, t, prim), so
            # they already are the ordered hit stream.
            ray_indices = pool.rays
            prim_indices = pool.prims
        elif hit_rays:
            ray_indices = np.concatenate(hit_rays)
            prim_indices = np.concatenate(hit_prims)
        else:
            ray_indices = np.zeros(0, dtype=np.int64)
            prim_indices = np.zeros(0, dtype=np.int64)

        lookup_ids = rays.lookup_ids[ray_indices] if ray_indices.size else ray_indices
        if mode == "all" and any_hit is not None and ray_indices.size:
            keep = np.asarray(any_hit(ray_indices, prim_indices, lookup_ids), dtype=bool)
            ray_indices = ray_indices[keep]
            prim_indices = prim_indices[keep]
            lookup_ids = lookup_ids[keep]

        counters.prim_hits = int(ray_indices.size)
        rays_hit = np.unique(ray_indices).size
        counters.rays_with_hits = int(rays_hit)
        counters.rays_without_hits = int(n_rays - rays_hit)

        if recorder is not None:
            self.group_counters = recorder.finalize(
                ray_indices,
                node_bytes,
                per_prim_bytes,
                self.primitives.hardware_intersection,
            )
        self.counters.merge(counters)
        return HitRecords(
            ray_indices=ray_indices,
            prim_indices=prim_indices,
            lookup_ids=lookup_ids,
            num_rays=n_rays,
        )

    def _expand_leaf_pairs(self, leaf_rays: np.ndarray, leaf_nodes: np.ndarray):
        """Expand (ray, leaf) pairs into element-wise (ray, primitive) pairs."""
        bvh = self.bvh
        counts = bvh.prim_count[leaf_nodes]
        firsts = bvh.first_prim[leaf_nodes]
        total = int(counts.sum())
        if total == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        pair_rays = np.repeat(leaf_rays, counts)
        # Position of each expanded pair within its leaf's primitive range.
        offsets = np.repeat(np.cumsum(counts) - counts, counts)
        within = np.arange(total, dtype=np.int64) - offsets
        slot = np.repeat(firsts, counts) + within
        pair_prims = bvh.prim_indices[slot]
        return pair_rays, pair_prims
