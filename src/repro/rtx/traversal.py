"""BVH traversal with hardware-style performance counters.

The traversal is *wavefront* style: instead of walking the tree one ray at a
time, a frontier of ``(ray, node)`` pairs is advanced level by level with
fully vectorised NumPy operations.  Functionally this is equivalent to the
per-ray stack traversal the RT cores perform; the counters it produces
(node visits, box tests, primitive intersection tests, bytes touched) are the
quantities the paper reads from Nsight Compute and that our GPU cost model
converts into simulated milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rtx.bvh import Bvh
from repro.rtx.geometry import PrimitiveBuffer, RayBatch, ray_box_overlap_pairs


@dataclass
class TraversalCounters:
    """Counters accumulated during one or more traced ray batches."""

    rays: int = 0
    node_visits: int = 0
    box_tests: int = 0
    prim_tests: int = 0
    prim_hits: int = 0
    rays_with_hits: int = 0
    rays_without_hits: int = 0
    node_bytes_read: int = 0
    prim_bytes_read: int = 0
    hardware_intersection_tests: int = 0
    software_intersection_calls: int = 0
    max_frontier_size: int = 0
    traversal_rounds: int = 0

    def merge(self, other: "TraversalCounters") -> "TraversalCounters":
        """Accumulate ``other`` into ``self`` and return ``self``."""
        self.rays += other.rays
        self.node_visits += other.node_visits
        self.box_tests += other.box_tests
        self.prim_tests += other.prim_tests
        self.prim_hits += other.prim_hits
        self.rays_with_hits += other.rays_with_hits
        self.rays_without_hits += other.rays_without_hits
        self.node_bytes_read += other.node_bytes_read
        self.prim_bytes_read += other.prim_bytes_read
        self.hardware_intersection_tests += other.hardware_intersection_tests
        self.software_intersection_calls += other.software_intersection_calls
        self.max_frontier_size = max(self.max_frontier_size, other.max_frontier_size)
        self.traversal_rounds += other.traversal_rounds
        return self

    @property
    def total_bytes_read(self) -> int:
        return self.node_bytes_read + self.prim_bytes_read

    @property
    def node_visits_per_ray(self) -> float:
        return self.node_visits / self.rays if self.rays else 0.0

    @property
    def prim_tests_per_ray(self) -> float:
        return self.prim_tests / self.rays if self.rays else 0.0

    def as_dict(self) -> dict:
        return {
            "rays": self.rays,
            "node_visits": self.node_visits,
            "box_tests": self.box_tests,
            "prim_tests": self.prim_tests,
            "prim_hits": self.prim_hits,
            "rays_with_hits": self.rays_with_hits,
            "rays_without_hits": self.rays_without_hits,
            "node_bytes_read": self.node_bytes_read,
            "prim_bytes_read": self.prim_bytes_read,
            "hardware_intersection_tests": self.hardware_intersection_tests,
            "software_intersection_calls": self.software_intersection_calls,
            "max_frontier_size": self.max_frontier_size,
            "traversal_rounds": self.traversal_rounds,
        }


@dataclass
class HitRecords:
    """All (ray, primitive) hits of a traced batch, in structure-of-arrays form.

    ``ray_indices[i]`` is the index of the ray *within the traced batch* and
    ``prim_indices[i]`` the primitive it hit.  ``lookup_ids[i]`` maps the hit
    back to the originating lookup (several rays can serve one lookup in 3D
    Mode range queries).
    """

    ray_indices: np.ndarray
    prim_indices: np.ndarray
    lookup_ids: np.ndarray
    num_rays: int

    @property
    def count(self) -> int:
        return int(self.ray_indices.shape[0])

    def hits_per_ray(self) -> np.ndarray:
        """Number of hits of each ray in the batch."""
        return np.bincount(self.ray_indices, minlength=self.num_rays)


@dataclass
class TraversalEngine:
    """Traces ray batches against a BVH over a primitive buffer."""

    bvh: Bvh
    primitives: PrimitiveBuffer
    #: bytes charged per primitive intersection test (triangle data embedded
    #: in the accel); derived from the primitive buffer when left at None.
    prim_test_bytes: int | None = None
    #: The RTX hardware culls BVH nodes against the ray's *far* limit (tmax)
    #: but applies the *near* limit (tmin) only when testing primitives — the
    #: paper's Figure 6 / Table 3 measurements (rays "from zero" being far
    #: slower than offset rays despite identical geometric segments) are only
    #: explainable this way.  Set to True to model an idealised traversal
    #: that culls against the full [tmin, tmax] interval.
    node_cull_respects_tmin: bool = False
    counters: TraversalCounters = field(default_factory=TraversalCounters)

    def reset_counters(self) -> None:
        self.counters = TraversalCounters()

    def trace(self, rays: RayBatch, any_hit=None) -> HitRecords:
        """Trace all rays and return every (ray, primitive) intersection.

        ``any_hit`` optionally mimics the OptiX any-hit program: it receives
        ``(ray_indices, prim_indices, lookup_ids)`` and returns a boolean mask
        selecting the hits to keep (e.g. software filtering for AABB
        primitives).
        """
        counters = TraversalCounters()
        counters.rays = len(rays)
        bvh = self.bvh
        node_bytes = bvh.node_bytes()
        per_prim_bytes = (
            self.prim_test_bytes
            if self.prim_test_bytes is not None
            else max(self.primitives.primitive_bytes() // max(len(self.primitives), 1), 1)
        )

        n_rays = len(rays)
        hit_rays: list[np.ndarray] = []
        hit_prims: list[np.ndarray] = []

        if n_rays > 0 and bvh.node_count > 0:
            if self.node_cull_respects_tmin:
                node_tmin = rays.tmin
            else:
                # Nodes in front of the origin but before tmin are still
                # visited; only their primitive hits are rejected later.
                node_tmin = np.minimum(rays.tmin, np.float32(0.0))
            frontier_rays = np.arange(n_rays, dtype=np.int64)
            frontier_nodes = np.zeros(n_rays, dtype=np.int64)
            while frontier_rays.size:
                counters.traversal_rounds += 1
                counters.max_frontier_size = max(
                    counters.max_frontier_size, int(frontier_rays.size)
                )
                counters.node_visits += int(frontier_rays.size)
                counters.box_tests += int(frontier_rays.size)
                counters.node_bytes_read += int(frontier_rays.size) * node_bytes

                overlap = ray_box_overlap_pairs(
                    rays.origins[frontier_rays],
                    rays.directions[frontier_rays],
                    node_tmin[frontier_rays],
                    rays.tmax[frontier_rays],
                    bvh.node_mins[frontier_nodes],
                    bvh.node_maxs[frontier_nodes],
                )
                frontier_rays = frontier_rays[overlap]
                frontier_nodes = frontier_nodes[overlap]
                if frontier_rays.size == 0:
                    break

                is_leaf = bvh.left[frontier_nodes] < 0
                leaf_rays = frontier_rays[is_leaf]
                leaf_nodes = frontier_nodes[is_leaf]
                if leaf_rays.size:
                    pair_rays, pair_prims = self._expand_leaf_pairs(leaf_rays, leaf_nodes)
                    counters.prim_tests += int(pair_prims.size)
                    counters.prim_bytes_read += int(pair_prims.size) * per_prim_bytes
                    if self.primitives.hardware_intersection:
                        counters.hardware_intersection_tests += int(pair_prims.size)
                    else:
                        counters.software_intersection_calls += int(pair_prims.size)
                    mask = self.primitives.intersect_pairs(
                        rays.origins[pair_rays],
                        rays.directions[pair_rays],
                        rays.tmin[pair_rays],
                        rays.tmax[pair_rays],
                        pair_prims,
                    )
                    hit_rays.append(pair_rays[mask])
                    hit_prims.append(pair_prims[mask])

                inner_rays = frontier_rays[~is_leaf]
                inner_nodes = frontier_nodes[~is_leaf]
                if inner_rays.size:
                    frontier_rays = np.concatenate([inner_rays, inner_rays])
                    frontier_nodes = np.concatenate(
                        [bvh.left[inner_nodes], bvh.right[inner_nodes]]
                    )
                else:
                    frontier_rays = np.zeros(0, dtype=np.int64)
                    frontier_nodes = np.zeros(0, dtype=np.int64)

        if hit_rays:
            ray_indices = np.concatenate(hit_rays)
            prim_indices = np.concatenate(hit_prims)
        else:
            ray_indices = np.zeros(0, dtype=np.int64)
            prim_indices = np.zeros(0, dtype=np.int64)

        lookup_ids = rays.lookup_ids[ray_indices] if ray_indices.size else ray_indices
        if any_hit is not None and ray_indices.size:
            keep = np.asarray(any_hit(ray_indices, prim_indices, lookup_ids), dtype=bool)
            ray_indices = ray_indices[keep]
            prim_indices = prim_indices[keep]
            lookup_ids = lookup_ids[keep]

        counters.prim_hits = int(ray_indices.size)
        rays_hit = np.unique(ray_indices).size
        counters.rays_with_hits = int(rays_hit)
        counters.rays_without_hits = int(n_rays - rays_hit)

        self.counters.merge(counters)
        return HitRecords(
            ray_indices=ray_indices,
            prim_indices=prim_indices,
            lookup_ids=lookup_ids,
            num_rays=n_rays,
        )

    def _expand_leaf_pairs(self, leaf_rays: np.ndarray, leaf_nodes: np.ndarray):
        """Expand (ray, leaf) pairs into element-wise (ray, primitive) pairs."""
        bvh = self.bvh
        counts = bvh.prim_count[leaf_nodes]
        firsts = bvh.first_prim[leaf_nodes]
        total = int(counts.sum())
        if total == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        pair_rays = np.repeat(leaf_rays, counts)
        # Position of each expanded pair within its leaf's primitive range.
        offsets = np.repeat(np.cumsum(counts) - counts, counts)
        within = np.arange(total, dtype=np.int64) - offsets
        slot = np.repeat(firsts, counts) + within
        pair_prims = bvh.prim_indices[slot]
        return pair_rays, pair_prims
