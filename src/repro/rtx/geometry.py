"""Geometric primitives, ray batches, and intersection tests.

All coordinates are stored as float32, matching the OptiX restriction the
paper has to work around.  Three primitive types are supported, mirroring
Section 3.5 of the paper:

* **triangles** — nine float32 per primitive (three 3D vertices); the
  intersection test is "hardware accelerated" (flagged as such so the cost
  model can price it on the RT cores),
* **spheres** — three float32 per primitive plus a shared radius,
* **AABBs** — six float32 per primitive with a user-provided (software)
  intersection program.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

FLOAT_BYTES = 4

#: Sentinel used in hit records when a ray does not intersect anything.
NO_HIT = np.uint32(0xFFFFFFFF)


@dataclass
class RayBatch:
    """A batch of rays, stored as structure-of-arrays.

    Attributes
    ----------
    origins:
        ``(n, 3)`` float32 array of ray origins ``o``.
    directions:
        ``(n, 3)`` float32 array of ray directions ``d`` (not necessarily
        normalised; the intersection parameter ``t`` is measured in units of
        ``d`` exactly as in OptiX).
    tmin, tmax:
        ``(n,)`` float32 arrays restricting reported intersections to
        ``tmin < t < tmax``.
    lookup_ids:
        ``(n,)`` int64 array mapping each ray back to the lookup that spawned
        it.  A single range lookup in 3D Mode may fan out into several rays.
    """

    origins: np.ndarray
    directions: np.ndarray
    tmin: np.ndarray
    tmax: np.ndarray
    lookup_ids: np.ndarray = field(default=None)

    def __post_init__(self) -> None:
        self.origins = np.asarray(self.origins, dtype=np.float32).reshape(-1, 3)
        self.directions = np.asarray(self.directions, dtype=np.float32).reshape(-1, 3)
        n = self.origins.shape[0]
        self.tmin = np.broadcast_to(
            np.asarray(self.tmin, dtype=np.float32), (n,)
        ).copy()
        self.tmax = np.broadcast_to(
            np.asarray(self.tmax, dtype=np.float32), (n,)
        ).copy()
        if self.lookup_ids is None:
            self.lookup_ids = np.arange(n, dtype=np.int64)
        else:
            self.lookup_ids = np.asarray(self.lookup_ids, dtype=np.int64).reshape(-1)
        if self.directions.shape[0] != n or self.lookup_ids.shape[0] != n:
            raise ValueError("all ray component arrays must have the same length")

    def __len__(self) -> int:
        return int(self.origins.shape[0])

    @property
    def count(self) -> int:
        return len(self)

    def slice(self, start: int, stop: int) -> "RayBatch":
        """Return the sub-batch of rays in ``[start, stop)``."""
        return RayBatch(
            origins=self.origins[start:stop],
            directions=self.directions[start:stop],
            tmin=self.tmin[start:stop],
            tmax=self.tmax[start:stop],
            lookup_ids=self.lookup_ids[start:stop],
        )

    @staticmethod
    def concatenate(batches: list["RayBatch"]) -> "RayBatch":
        """Concatenate several ray batches into one."""
        if not batches:
            return RayBatch(
                origins=np.zeros((0, 3), dtype=np.float32),
                directions=np.zeros((0, 3), dtype=np.float32),
                tmin=np.zeros(0, dtype=np.float32),
                tmax=np.zeros(0, dtype=np.float32),
                lookup_ids=np.zeros(0, dtype=np.int64),
            )
        return RayBatch(
            origins=np.concatenate([b.origins for b in batches]),
            directions=np.concatenate([b.directions for b in batches]),
            tmin=np.concatenate([b.tmin for b in batches]),
            tmax=np.concatenate([b.tmax for b in batches]),
            lookup_ids=np.concatenate([b.lookup_ids for b in batches]),
        )


class PrimitiveBuffer:
    """Base class for primitive buffers (the OptiX "vertex buffer" analogue).

    The position of a primitive within the buffer is its unique identifier;
    the paper stores each key's triangle at the offset equal to its rowID so
    that a reported hit directly yields the rowID.
    """

    #: human-readable primitive kind ("triangle", "sphere", "aabb")
    kind: str = "abstract"
    #: True when the per-primitive intersection test runs on the RT cores.
    hardware_intersection: bool = False

    def __len__(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def count(self) -> int:
        return len(self)

    def primitive_bytes(self) -> int:
        """Bytes of primitive storage handed to the acceleration build."""
        raise NotImplementedError

    def compute_aabbs(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-primitive axis-aligned bounds as ``(mins, maxs)`` arrays."""
        raise NotImplementedError

    def intersect(self, origin, direction, tmin, tmax, prim_indices) -> np.ndarray:
        """Return the subset of ``prim_indices`` whose primitive the ray hits."""
        prim_indices = np.asarray(prim_indices, dtype=np.int64)
        m = prim_indices.shape[0]
        if m == 0:
            return prim_indices
        origins = np.broadcast_to(np.asarray(origin, dtype=np.float64), (m, 3))
        directions = np.broadcast_to(np.asarray(direction, dtype=np.float64), (m, 3))
        tmins = np.full(m, float(tmin))
        tmaxs = np.full(m, float(tmax))
        mask = self.intersect_pairs(origins, directions, tmins, tmaxs, prim_indices)
        return prim_indices[mask]

    def intersect_pairs(
        self, origins, directions, tmins, tmaxs, prim_indices
    ) -> np.ndarray:
        """Element-wise test of ray ``i`` against primitive ``prim_indices[i]``.

        All arguments are arrays of the same length ``m``; returns a boolean
        mask of length ``m``.  This is the work-horse of the wavefront
        traversal in :mod:`repro.rtx.traversal`.
        """
        raise NotImplementedError


def _cross_rows(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise 3D cross product.

    Same component expressions (and therefore bit-identical results) as
    ``np.cross`` on ``(m, 3)`` inputs, without its axis-shuffling overhead —
    this sits on the per-pair intersection hot path.
    """
    out = np.empty_like(a)
    out[:, 0] = a[:, 1] * b[:, 2] - a[:, 2] * b[:, 1]
    out[:, 1] = a[:, 2] * b[:, 0] - a[:, 0] * b[:, 2]
    out[:, 2] = a[:, 0] * b[:, 1] - a[:, 1] * b[:, 0]
    return out


class TriangleBuffer(PrimitiveBuffer):
    """Triangles stored as an ``(n, 3, 3)`` float32 vertex array."""

    kind = "triangle"
    hardware_intersection = True

    def __init__(self, vertices: np.ndarray):
        vertices = np.asarray(vertices, dtype=np.float32)
        if vertices.ndim != 3 or vertices.shape[1:] != (3, 3):
            raise ValueError("triangle vertices must have shape (n, 3, 3)")
        self.vertices = vertices
        self._vertices64: np.ndarray | None = None

    def _vertices_f64(self) -> np.ndarray:
        """Float64 copy of the vertices, converted once and cached.

        Gather-then-convert and convert-then-gather commute elementwise, so
        intersection results are unchanged; the cache just keeps the
        conversion off the per-trace-round hot path.  It is invalidated by
        :meth:`compute_aabbs`, which every build/refit path calls, so
        callers that move primitives in place and rebuild or refit never
        intersect against stale geometry.
        """
        if self._vertices64 is None:
            self._vertices64 = self.vertices.astype(np.float64)
        return self._vertices64

    def __len__(self) -> int:
        return int(self.vertices.shape[0])

    def primitive_bytes(self) -> int:
        # nine float32 per triangle, exactly as the paper counts them
        return len(self) * 9 * FLOAT_BYTES

    def compute_aabbs(self) -> tuple[np.ndarray, np.ndarray]:
        # Bounds are recomputed exactly when the vertices may have moved
        # (accel build or refit), so drop the cached float64 conversion.
        self._vertices64 = None
        mins = self.vertices.min(axis=1)
        maxs = self.vertices.max(axis=1)
        return mins, maxs

    def intersect_pairs(
        self, origins, directions, tmins, tmaxs, prim_indices
    ) -> np.ndarray:
        """Möller–Trumbore ray/triangle test, element-wise over (ray, triangle) pairs."""
        prim_indices = np.asarray(prim_indices, dtype=np.int64)
        if prim_indices.size == 0:
            return np.zeros(0, dtype=bool)
        tri = self._vertices_f64()[prim_indices]
        o = np.asarray(origins, dtype=np.float64)
        d = np.asarray(directions, dtype=np.float64)
        tmins = np.asarray(tmins, dtype=np.float64)
        tmaxs = np.asarray(tmaxs, dtype=np.float64)
        v0 = tri[:, 0]
        e1 = tri[:, 1] - v0
        e2 = tri[:, 2] - v0
        pvec = _cross_rows(d, e2)
        det = np.einsum("ij,ij->i", e1, pvec)
        eps = 1e-12
        parallel = np.abs(det) < eps
        safe_det = np.where(parallel, 1.0, det)
        inv_det = 1.0 / safe_det
        tvec = o - v0
        u = np.einsum("ij,ij->i", tvec, pvec) * inv_det
        qvec = _cross_rows(tvec, e1)
        v = np.einsum("ij,ij->i", d, qvec) * inv_det
        t = np.einsum("ij,ij->i", e2, qvec) * inv_det
        return (
            ~parallel
            & (u >= -1e-9)
            & (v >= -1e-9)
            & (u + v <= 1.0 + 1e-9)
            & (t > tmins)
            & (t < tmaxs)
        )


class SphereBuffer(PrimitiveBuffer):
    """Spheres stored as ``(n, 3)`` float32 centres plus a shared radius.

    The paper uses a uniform radius of 0.25 so that rays can always start and
    end in the gaps between adjacent spheres.
    """

    kind = "sphere"
    hardware_intersection = False

    def __init__(self, centers: np.ndarray, radius: float = 0.25):
        centers = np.asarray(centers, dtype=np.float32)
        if centers.ndim != 2 or centers.shape[1] != 3:
            raise ValueError("sphere centers must have shape (n, 3)")
        if radius <= 0:
            raise ValueError("sphere radius must be positive")
        self.centers = centers
        self.radius = np.float32(radius)

    def __len__(self) -> int:
        return int(self.centers.shape[0])

    def primitive_bytes(self) -> int:
        # three float32 per sphere; the shared radius is a single extra float
        return len(self) * 3 * FLOAT_BYTES + FLOAT_BYTES

    def compute_aabbs(self) -> tuple[np.ndarray, np.ndarray]:
        r = np.float32(self.radius)
        return self.centers - r, self.centers + r

    def intersect_pairs(
        self, origins, directions, tmins, tmaxs, prim_indices
    ) -> np.ndarray:
        """Analytic ray/sphere test; a hit is an entry or exit of the volume."""
        prim_indices = np.asarray(prim_indices, dtype=np.int64)
        if prim_indices.size == 0:
            return np.zeros(0, dtype=bool)
        c = self.centers[prim_indices].astype(np.float64)
        o = np.asarray(origins, dtype=np.float64)
        d = np.asarray(directions, dtype=np.float64)
        tmins = np.asarray(tmins, dtype=np.float64)
        tmaxs = np.asarray(tmaxs, dtype=np.float64)
        r = float(self.radius)
        oc = o - c
        a = np.einsum("ij,ij->i", d, d)
        b = 2.0 * np.einsum("ij,ij->i", oc, d)
        cterm = np.einsum("ij,ij->i", oc, oc) - r * r
        disc = b * b - 4.0 * a * cterm
        valid = (disc >= 0.0) & (a > 0.0)
        sqrt_disc = np.sqrt(np.where(valid, disc, 0.0))
        safe_a = np.where(a > 0.0, a, 1.0)
        t0 = (-b - sqrt_disc) / (2.0 * safe_a)
        t1 = (-b + sqrt_disc) / (2.0 * safe_a)
        hit0 = valid & (t0 > tmins) & (t0 < tmaxs)
        hit1 = valid & (t1 > tmins) & (t1 < tmaxs)
        return hit0 | hit1


class AabbBuffer(PrimitiveBuffer):
    """Axis-aligned bounding boxes with a software intersection program.

    Each AABB encloses the key's notional primitive; as in the paper, the
    user-supplied intersection program simply reports the hit (the any-hit
    logic is folded into it), so the functional behaviour is a plain slab
    test.
    """

    kind = "aabb"
    hardware_intersection = False

    def __init__(self, mins: np.ndarray, maxs: np.ndarray):
        mins = np.asarray(mins, dtype=np.float32)
        maxs = np.asarray(maxs, dtype=np.float32)
        if mins.shape != maxs.shape or mins.ndim != 2 or mins.shape[1] != 3:
            raise ValueError("AABB mins/maxs must both have shape (n, 3)")
        if np.any(maxs < mins):
            raise ValueError("AABB max corner must not be below min corner")
        self.mins = mins
        self.maxs = maxs

    def __len__(self) -> int:
        return int(self.mins.shape[0])

    def primitive_bytes(self) -> int:
        # two corners of three float32 each
        return len(self) * 6 * FLOAT_BYTES

    def compute_aabbs(self) -> tuple[np.ndarray, np.ndarray]:
        return self.mins.copy(), self.maxs.copy()

    def intersect_pairs(
        self, origins, directions, tmins, tmaxs, prim_indices
    ) -> np.ndarray:
        prim_indices = np.asarray(prim_indices, dtype=np.int64)
        if prim_indices.size == 0:
            return np.zeros(0, dtype=bool)
        mins = self.mins[prim_indices].astype(np.float64)
        maxs = self.maxs[prim_indices].astype(np.float64)
        return ray_box_overlap_pairs(origins, directions, tmins, tmaxs, mins, maxs)


def ray_box_overlap_pairs(
    origins, directions, tmins, tmaxs, box_mins, box_maxs
) -> np.ndarray:
    """Element-wise slab test: does ray ``i`` overlap box ``i``?

    All arguments are arrays over the same pair index; returns a boolean mask.
    The test is performed in float64 for numerical robustness and treats
    rays that are parallel to a slab as hitting only when the origin lies
    inside that slab.
    """
    o = np.asarray(origins, dtype=np.float64).reshape(-1, 3)
    d = np.asarray(directions, dtype=np.float64).reshape(-1, 3)
    mins = np.asarray(box_mins, dtype=np.float64).reshape(-1, 3)
    maxs = np.asarray(box_maxs, dtype=np.float64).reshape(-1, 3)
    lo = np.asarray(tmins, dtype=np.float64).copy()
    hi = np.asarray(tmaxs, dtype=np.float64).copy()
    ok = np.ones(o.shape[0], dtype=bool)
    for axis in range(3):
        da = d[:, axis]
        oa = o[:, axis]
        parallel = np.abs(da) < 1e-300
        with np.errstate(divide="ignore", invalid="ignore"):
            inv = np.where(parallel, np.inf, 1.0 / np.where(parallel, 1.0, da))
            t0 = (mins[:, axis] - oa) * inv
            t1 = (maxs[:, axis] - oa) * inv
        near = np.minimum(t0, t1)
        far = np.maximum(t0, t1)
        lo = np.where(parallel, lo, np.maximum(lo, near))
        hi = np.where(parallel, hi, np.minimum(hi, far))
        ok &= np.where(
            parallel, (oa >= mins[:, axis]) & (oa <= maxs[:, axis]), True
        )
    return ok & (lo <= hi)


def ray_box_overlap(origin, direction, tmin, tmax, box_mins, box_maxs) -> np.ndarray:
    """Slab test of a single ray against many boxes (convenience wrapper)."""
    mins = np.asarray(box_mins, dtype=np.float64).reshape(-1, 3)
    m = mins.shape[0]
    origins = np.broadcast_to(np.asarray(origin, dtype=np.float64), (m, 3))
    directions = np.broadcast_to(np.asarray(direction, dtype=np.float64), (m, 3))
    tmins = np.full(m, float(tmin))
    tmaxs = np.full(m, float(tmax))
    return ray_box_overlap_pairs(origins, directions, tmins, tmaxs, mins, box_maxs)


#: Unit corner offsets for key triangles, expressed as fractions of the
#: half-extent.  They sum to zero per component, so the anchor point is the
#: centroid of the triangle (and therefore strictly inside it), and the
#: triangle's plane is transversal to both the x-parallel range rays and the
#: z-perpendicular point rays used by the paper.  The paper's own corner
#: offsets place the anchor exactly on a triangle edge, which only works with
#: OptiX's watertight hardware test; the centroid layout preserves the same
#: gaps and hit semantics while being robust for a software intersector.
_TRIANGLE_UNIT_OFFSETS = np.array(
    [
        [-0.9, -0.5, -0.6],
        [0.9, -0.4, 0.2],
        [0.0, 0.9, 0.4],
    ],
    dtype=np.float64,
)


def make_triangle_vertices(
    points: np.ndarray,
    half_extent: float = 0.5,
    x_half_extent: np.ndarray | None = None,
) -> np.ndarray:
    """Build one triangle per anchor point.

    For a key mapped to the point ``(x, y, z)`` a triangle is created whose
    centroid is exactly that point and whose corners stay within
    ``half_extent`` of it, so adjacent keys (spaced one unit apart) keep a gap
    for rays to start and end in.

    ``x_half_extent`` optionally overrides the extent along the x axis per
    primitive.  Extended Mode needs this: there, adjacent keys are only two
    representable floats apart, so the x extent must shrink to one ULP while
    the y/z extents keep their usual size.
    """
    pts = np.asarray(points, dtype=np.float64).reshape(-1, 3)
    n = pts.shape[0]
    he = float(half_extent)
    if x_half_extent is None:
        hx = np.full(n, he, dtype=np.float64)
    else:
        hx = np.broadcast_to(np.asarray(x_half_extent, dtype=np.float64), (n,))
    vertices = np.empty((n, 3, 3), dtype=np.float64)
    for corner in range(3):
        ox, oy, oz = _TRIANGLE_UNIT_OFFSETS[corner]
        vertices[:, corner, 0] = pts[:, 0] + ox * hx
        vertices[:, corner, 1] = pts[:, 1] + oy * he
        vertices[:, corner, 2] = pts[:, 2] + oz * he
    return vertices.astype(np.float32)


def make_aabbs_from_points(
    points: np.ndarray,
    half_extent: float = 0.25,
    x_half_extent: np.ndarray | None = None,
):
    """Build one small AABB per anchor point (used for the AABB primitive)."""
    pts = np.asarray(points, dtype=np.float64).reshape(-1, 3)
    n = pts.shape[0]
    he = float(half_extent)
    if x_half_extent is None:
        hx = np.full(n, he, dtype=np.float64)
    else:
        hx = np.broadcast_to(np.asarray(x_half_extent, dtype=np.float64), (n,))
    offsets = np.column_stack([hx, np.full(n, he), np.full(n, he)])
    mins = (pts - offsets).astype(np.float32)
    maxs = (pts + offsets).astype(np.float32)
    return mins, maxs


def make_sphere_centers(points: np.ndarray) -> np.ndarray:
    """Sphere centres are simply the anchor points (radius handled separately)."""
    return np.asarray(points, dtype=np.float32).reshape(-1, 3)
