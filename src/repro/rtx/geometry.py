"""Geometric primitives, ray batches, and intersection tests.

All coordinates are stored as float32, matching the OptiX restriction the
paper has to work around.  Three primitive types are supported, mirroring
Section 3.5 of the paper:

* **triangles** — nine float32 per primitive (three 3D vertices); the
  intersection test is "hardware accelerated" (flagged as such so the cost
  model can price it on the RT cores),
* **spheres** — three float32 per primitive plus a shared radius,
* **AABBs** — six float32 per primitive with a user-provided (software)
  intersection program.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

FLOAT_BYTES = 4

#: Sentinel used in hit records when a ray does not intersect anything.
NO_HIT = np.uint32(0xFFFFFFFF)

#: Per-pair intersection tests are evaluated in blocks of this many pairs so
#: the dozens of pair-sized float64 temporaries stay cache-resident.  A pure
#: execution-schedule knob: the tests are elementwise, so the masks are
#: bit-identical for any block size.
PAIR_BLOCK = 1 << 15


@dataclass
class RayBatch:
    """A batch of rays, stored as structure-of-arrays.

    Attributes
    ----------
    origins:
        ``(n, 3)`` float32 array of ray origins ``o``.
    directions:
        ``(n, 3)`` float32 array of ray directions ``d`` (not necessarily
        normalised; the intersection parameter ``t`` is measured in units of
        ``d`` exactly as in OptiX).
    tmin, tmax:
        ``(n,)`` float32 arrays restricting reported intersections to
        ``tmin < t < tmax``.
    lookup_ids:
        ``(n,)`` int64 array mapping each ray back to the lookup that spawned
        it.  A single range lookup in 3D Mode may fan out into several rays.
    """

    origins: np.ndarray
    directions: np.ndarray
    tmin: np.ndarray
    tmax: np.ndarray
    lookup_ids: np.ndarray = field(default=None)

    def __post_init__(self) -> None:
        self.origins = np.asarray(self.origins, dtype=np.float32).reshape(-1, 3)
        self.directions = np.asarray(self.directions, dtype=np.float32).reshape(-1, 3)
        n = self.origins.shape[0]
        self.tmin = np.broadcast_to(
            np.asarray(self.tmin, dtype=np.float32), (n,)
        ).copy()
        self.tmax = np.broadcast_to(
            np.asarray(self.tmax, dtype=np.float32), (n,)
        ).copy()
        if self.lookup_ids is None:
            self.lookup_ids = np.arange(n, dtype=np.int64)
        else:
            self.lookup_ids = np.asarray(self.lookup_ids, dtype=np.int64).reshape(-1)
        if self.directions.shape[0] != n or self.lookup_ids.shape[0] != n:
            raise ValueError("all ray component arrays must have the same length")

    def __len__(self) -> int:
        return int(self.origins.shape[0])

    @property
    def count(self) -> int:
        return len(self)

    def slice(self, start: int, stop: int) -> "RayBatch":
        """Return the sub-batch of rays in ``[start, stop)``."""
        return RayBatch(
            origins=self.origins[start:stop],
            directions=self.directions[start:stop],
            tmin=self.tmin[start:stop],
            tmax=self.tmax[start:stop],
            lookup_ids=self.lookup_ids[start:stop],
        )

    @staticmethod
    def concatenate(batches: list["RayBatch"]) -> "RayBatch":
        """Concatenate several ray batches into one."""
        if not batches:
            return RayBatch(
                origins=np.zeros((0, 3), dtype=np.float32),
                directions=np.zeros((0, 3), dtype=np.float32),
                tmin=np.zeros(0, dtype=np.float32),
                tmax=np.zeros(0, dtype=np.float32),
                lookup_ids=np.zeros(0, dtype=np.int64),
            )
        return RayBatch(
            origins=np.concatenate([b.origins for b in batches]),
            directions=np.concatenate([b.directions for b in batches]),
            tmin=np.concatenate([b.tmin for b in batches]),
            tmax=np.concatenate([b.tmax for b in batches]),
            lookup_ids=np.concatenate([b.lookup_ids for b in batches]),
        )


class PrimitiveBuffer:
    """Base class for primitive buffers (the OptiX "vertex buffer" analogue).

    The position of a primitive within the buffer is its unique identifier;
    the paper stores each key's triangle at the offset equal to its rowID so
    that a reported hit directly yields the rowID.
    """

    #: human-readable primitive kind ("triangle", "sphere", "aabb")
    kind: str = "abstract"
    #: True when the per-primitive intersection test runs on the RT cores.
    hardware_intersection: bool = False

    @property
    def intersection_pack_warm(self) -> bool:
        """Whether the SoA intersection-pack cache is currently built."""
        return getattr(self, "_pack", None) is not None

    def __len__(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def count(self) -> int:
        return len(self)

    def primitive_bytes(self) -> int:
        """Bytes of primitive storage handed to the acceleration build."""
        raise NotImplementedError

    def compute_aabbs(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-primitive axis-aligned bounds as ``(mins, maxs)`` arrays."""
        raise NotImplementedError

    def intersect(self, origin, direction, tmin, tmax, prim_indices) -> np.ndarray:
        """Return the subset of ``prim_indices`` whose primitive the ray hits."""
        prim_indices = np.asarray(prim_indices, dtype=np.int64)
        m = prim_indices.shape[0]
        if m == 0:
            return prim_indices
        origins = np.broadcast_to(np.asarray(origin, dtype=np.float64), (m, 3))
        directions = np.broadcast_to(np.asarray(direction, dtype=np.float64), (m, 3))
        tmins = np.full(m, float(tmin))
        tmaxs = np.full(m, float(tmax))
        mask = self.intersect_pairs(origins, directions, tmins, tmaxs, prim_indices)
        return prim_indices[mask]

    def intersect_pairs(
        self, origins, directions, tmins, tmaxs, prim_indices
    ) -> np.ndarray:
        """Element-wise test of ray ``i`` against primitive ``prim_indices[i]``.

        All arguments are arrays of the same length ``m``; returns a boolean
        mask of length ``m``.  This is the work-horse of the wavefront
        traversal in :mod:`repro.rtx.traversal`.  Large pair streams are
        evaluated in :data:`PAIR_BLOCK`-sized blocks (see there).
        """
        prim_indices = np.asarray(prim_indices, dtype=np.int64)
        m = prim_indices.shape[0]
        if m == 0:
            return np.zeros(0, dtype=bool)
        if m <= PAIR_BLOCK:
            return self._intersect_pairs_block(
                origins, directions, tmins, tmaxs, prim_indices
            )
        origins = np.asarray(origins)
        directions = np.asarray(directions)
        tmins = np.asarray(tmins)
        tmaxs = np.asarray(tmaxs)
        out = np.empty(m, dtype=bool)
        for lo in range(0, m, PAIR_BLOCK):
            hi = min(lo + PAIR_BLOCK, m)
            out[lo:hi] = self._intersect_pairs_block(
                origins[lo:hi],
                directions[lo:hi],
                tmins[lo:hi],
                tmaxs[lo:hi],
                prim_indices[lo:hi],
            )
        return out

    def _intersect_pairs_block(
        self, origins, directions, tmins, tmaxs, prim_indices
    ) -> np.ndarray:
        """One block of element-wise pair tests (``prim_indices`` already int64)."""
        raise NotImplementedError

    def hit_t_pairs(
        self, origins, directions, tmins, tmaxs, prim_indices
    ) -> np.ndarray:
        """Ray parameter ``t`` of each (ray, primitive) hit pair.

        Only meaningful for pairs that :meth:`intersect_pairs` reported as
        hits; the returned float64 ``t`` is the parameter of the reported
        intersection (the *first* valid root for spheres, the slab entry for
        AABBs).  The ordered top-k trace mode sorts candidate hits by this
        value, and both the vectorised engine and the golden reference loop
        call this one implementation, so their ordering keys are bit-identical
        by construction.
        """
        raise NotImplementedError


class TriangleBuffer(PrimitiveBuffer):
    """Triangles stored as an ``(n, 3, 3)`` float32 vertex array."""

    kind = "triangle"
    hardware_intersection = True

    def __init__(self, vertices: np.ndarray):
        vertices = np.asarray(vertices, dtype=np.float32)
        if vertices.ndim != 3 or vertices.shape[1:] != (3, 3):
            raise ValueError("triangle vertices must have shape (n, 3, 3)")
        self.vertices = vertices
        self._pack: tuple[np.ndarray, ...] | None = None

    def intersection_pack(self) -> tuple[np.ndarray, ...]:
        """SoA intersection data: nine contiguous ``(n,)`` float64 arrays.

        ``(v0x, v0y, v0z, e1x, e1y, e1z, e2x, e2y, e2z)`` — the base vertex
        and the two precomputed edge vectors of every triangle, one array per
        component.  Computed once and cached so :meth:`intersect_pairs` is
        pure 1D gathers plus fused arithmetic: no ``(m, 3, 3)`` row gather
        and no per-call edge recomputation.  Gather-then-subtract and
        subtract-then-gather commute elementwise, so intersection results
        are bit-identical to the per-call formulation.  The cache is
        invalidated by :meth:`compute_aabbs`, which every build/refit path
        calls, so callers that move primitives in place and rebuild or refit
        never intersect against stale geometry.
        """
        if self._pack is None:
            v64 = self.vertices.astype(np.float64)
            v0 = v64[:, 0]
            e1 = v64[:, 1] - v0
            e2 = v64[:, 2] - v0
            self._pack = tuple(
                np.ascontiguousarray(arr[:, axis])
                for arr in (v0, e1, e2)
                for axis in range(3)
            )
        return self._pack

    def __len__(self) -> int:
        return int(self.vertices.shape[0])

    def primitive_bytes(self) -> int:
        # nine float32 per triangle, exactly as the paper counts them
        return len(self) * 9 * FLOAT_BYTES

    def compute_aabbs(self) -> tuple[np.ndarray, np.ndarray]:
        # Bounds are recomputed exactly when the vertices may have moved
        # (accel build or refit), so drop the cached intersection pack.
        self._pack = None
        # Pairwise min/max over the three corner rows: the same sequential
        # reduction order as .min(axis=1) (bit-identical) without the generic
        # axis-reduce machinery — this pass is on the build hot path.
        v = self.vertices
        mins = np.minimum(np.minimum(v[:, 0], v[:, 1]), v[:, 2])
        maxs = np.maximum(np.maximum(v[:, 0], v[:, 1]), v[:, 2])
        return mins, maxs

    def _intersect_pairs_block(
        self, origins, directions, tmins, tmaxs, prim_indices
    ) -> np.ndarray:
        """Möller–Trumbore ray/triangle test, element-wise over (ray, triangle) pairs.

        Same component expressions as the classic per-call formulation (kept
        as ``reference_triangle_intersect_pairs`` in
        :mod:`repro.rtx._reference`), evaluated on the precomputed SoA pack —
        masks are bit-identical.
        """
        v0x, v0y, v0z, e1x, e1y, e1z, e2x, e2y, e2z = self.intersection_pack()
        o = np.asarray(origins, dtype=np.float64)
        d = np.asarray(directions, dtype=np.float64)
        tmins = np.asarray(tmins, dtype=np.float64)
        tmaxs = np.asarray(tmaxs, dtype=np.float64)
        g = prim_indices
        ox, oy, oz = o[:, 0], o[:, 1], o[:, 2]
        dx, dy, dz = d[:, 0], d[:, 1], d[:, 2]
        e1xg, e1yg, e1zg = e1x[g], e1y[g], e1z[g]
        e2xg, e2yg, e2zg = e2x[g], e2y[g], e2z[g]
        # pvec = d × e2
        px = dy * e2zg - dz * e2yg
        py = dz * e2xg - dx * e2zg
        pz = dx * e2yg - dy * e2xg
        det = e1xg * px + e1yg * py + e1zg * pz
        eps = 1e-12
        parallel = np.abs(det) < eps
        safe_det = np.where(parallel, 1.0, det)
        inv_det = 1.0 / safe_det
        tvx = ox - v0x[g]
        tvy = oy - v0y[g]
        tvz = oz - v0z[g]
        u = (tvx * px + tvy * py + tvz * pz) * inv_det
        # qvec = tvec × e1
        qx = tvy * e1zg - tvz * e1yg
        qy = tvz * e1xg - tvx * e1zg
        qz = tvx * e1yg - tvy * e1xg
        v = (dx * qx + dy * qy + dz * qz) * inv_det
        t = (e2xg * qx + e2yg * qy + e2zg * qz) * inv_det
        return (
            ~parallel
            & (u >= -1e-9)
            & (v >= -1e-9)
            & (u + v <= 1.0 + 1e-9)
            & (t > tmins)
            & (t < tmaxs)
        )

    def hit_t_pairs(
        self, origins, directions, tmins, tmaxs, prim_indices
    ) -> np.ndarray:
        """Möller–Trumbore ``t`` of each hit pair — the same component
        expressions (and evaluation order) as the mask computation in
        :meth:`_intersect_pairs_block`, so the ``t`` that made a hit pass
        ``t > tmin`` is exactly the ``t`` reported here."""
        v0x, v0y, v0z, e1x, e1y, e1z, e2x, e2y, e2z = self.intersection_pack()
        o = np.asarray(origins, dtype=np.float64)
        d = np.asarray(directions, dtype=np.float64)
        g = np.asarray(prim_indices, dtype=np.int64)
        if g.size == 0:
            return np.zeros(0, dtype=np.float64)
        ox, oy, oz = o[:, 0], o[:, 1], o[:, 2]
        dx, dy, dz = d[:, 0], d[:, 1], d[:, 2]
        e1xg, e1yg, e1zg = e1x[g], e1y[g], e1z[g]
        e2xg, e2yg, e2zg = e2x[g], e2y[g], e2z[g]
        px = dy * e2zg - dz * e2yg
        py = dz * e2xg - dx * e2zg
        pz = dx * e2yg - dy * e2xg
        det = e1xg * px + e1yg * py + e1zg * pz
        eps = 1e-12
        parallel = np.abs(det) < eps
        safe_det = np.where(parallel, 1.0, det)
        inv_det = 1.0 / safe_det
        tvx = ox - v0x[g]
        tvy = oy - v0y[g]
        tvz = oz - v0z[g]
        qx = tvy * e1zg - tvz * e1yg
        qy = tvz * e1xg - tvx * e1zg
        qz = tvx * e1yg - tvy * e1xg
        return (e2xg * qx + e2yg * qy + e2zg * qz) * inv_det


class SphereBuffer(PrimitiveBuffer):
    """Spheres stored as ``(n, 3)`` float32 centres plus a shared radius.

    The paper uses a uniform radius of 0.25 so that rays can always start and
    end in the gaps between adjacent spheres.
    """

    kind = "sphere"
    hardware_intersection = False

    def __init__(self, centers: np.ndarray, radius: float = 0.25):
        centers = np.asarray(centers, dtype=np.float32)
        if centers.ndim != 2 or centers.shape[1] != 3:
            raise ValueError("sphere centers must have shape (n, 3)")
        if radius <= 0:
            raise ValueError("sphere radius must be positive")
        self.centers = centers
        self.radius = np.float32(radius)
        self._pack: tuple[np.ndarray, ...] | None = None

    def intersection_pack(self) -> tuple[np.ndarray, ...]:
        """SoA intersection data: ``(cx, cy, cz)`` contiguous float64 arrays.

        Convert-then-gather commutes with the per-call gather-then-convert,
        so intersection results are bit-identical.  Invalidated by
        :meth:`compute_aabbs` exactly like the triangle pack.
        """
        if self._pack is None:
            c64 = self.centers.astype(np.float64)
            self._pack = tuple(
                np.ascontiguousarray(c64[:, axis]) for axis in range(3)
            )
        return self._pack

    def __len__(self) -> int:
        return int(self.centers.shape[0])

    def primitive_bytes(self) -> int:
        # three float32 per sphere; the shared radius is a single extra float
        return len(self) * 3 * FLOAT_BYTES + FLOAT_BYTES

    def compute_aabbs(self) -> tuple[np.ndarray, np.ndarray]:
        self._pack = None
        r = np.float32(self.radius)
        return self.centers - r, self.centers + r

    def _intersect_pairs_block(
        self, origins, directions, tmins, tmaxs, prim_indices
    ) -> np.ndarray:
        """Analytic ray/sphere test; a hit is an entry or exit of the volume.

        Mirrors ``_frontier_box_overlap``'s all-parallel-axis specialisation:
        an axis along which *every* ray of the block has a zero direction
        component contributes exactly ``±0.0`` to the quadratic's ``a`` and
        ``b`` terms, so those products are skipped entirely (the paper's
        workloads trace axis-aligned rays, leaving only one active axis).
        Adding or omitting a signed zero never changes a comparison result,
        so the returned mask is bit-identical to the full evaluation kept as
        ``reference_sphere_intersect_pairs`` in :mod:`repro.rtx._reference`.
        """
        pack = self.intersection_pack()
        o = np.asarray(origins, dtype=np.float64)
        d = np.asarray(directions, dtype=np.float64)
        tmins = np.asarray(tmins, dtype=np.float64)
        tmaxs = np.asarray(tmaxs, dtype=np.float64)
        g = prim_indices
        r = float(self.radius)
        a = None
        b = None
        cterm = None
        for axis in range(3):
            oc = o[:, axis] - pack[axis][g]
            c_axis = oc * oc
            cterm = c_axis if cterm is None else cterm + c_axis
            da = d[:, axis]
            if not da.any():  # whole block parallel to this axis
                continue
            a_axis = da * da
            b_axis = oc * da
            a = a_axis if a is None else a + a_axis
            b = b_axis if b is None else b + b_axis
        m = g.shape[0]
        if a is None:
            a = np.zeros(m)
            b = np.zeros(m)
        cterm = cterm - r * r
        b = 2.0 * b
        disc = b * b - 4.0 * a * cterm
        valid = (disc >= 0.0) & (a > 0.0)
        sqrt_disc = np.sqrt(np.where(valid, disc, 0.0))
        safe_a = np.where(a > 0.0, a, 1.0)
        t0 = (-b - sqrt_disc) / (2.0 * safe_a)
        t1 = (-b + sqrt_disc) / (2.0 * safe_a)
        hit0 = valid & (t0 > tmins) & (t0 < tmaxs)
        hit1 = valid & (t1 > tmins) & (t1 < tmaxs)
        return hit0 | hit1

    def hit_t_pairs(
        self, origins, directions, tmins, tmaxs, prim_indices
    ) -> np.ndarray:
        """The ``t`` the sphere test reported: the near root when it lies in
        ``(tmin, tmax)``, otherwise the far root (the ray starts inside the
        sphere).  Full three-axis evaluation — the per-axis skip in
        :meth:`_intersect_pairs_block` only ever adds signed zeros, so the
        roots agree bitwise."""
        pack = self.intersection_pack()
        o = np.asarray(origins, dtype=np.float64)
        d = np.asarray(directions, dtype=np.float64)
        tmins = np.asarray(tmins, dtype=np.float64)
        tmaxs = np.asarray(tmaxs, dtype=np.float64)
        g = np.asarray(prim_indices, dtype=np.int64)
        if g.size == 0:
            return np.zeros(0, dtype=np.float64)
        r = float(self.radius)
        a = np.zeros(g.shape[0])
        b = np.zeros(g.shape[0])
        cterm = np.zeros(g.shape[0])
        for axis in range(3):
            oc = o[:, axis] - pack[axis][g]
            da = d[:, axis]
            a += da * da
            b += oc * da
            cterm += oc * oc
        cterm = cterm - r * r
        b = 2.0 * b
        disc = b * b - 4.0 * a * cterm
        valid = (disc >= 0.0) & (a > 0.0)
        sqrt_disc = np.sqrt(np.where(valid, disc, 0.0))
        safe_a = np.where(a > 0.0, a, 1.0)
        t0 = (-b - sqrt_disc) / (2.0 * safe_a)
        t1 = (-b + sqrt_disc) / (2.0 * safe_a)
        hit0 = valid & (t0 > tmins) & (t0 < tmaxs)
        return np.where(hit0, t0, t1)


class AabbBuffer(PrimitiveBuffer):
    """Axis-aligned bounding boxes with a software intersection program.

    Each AABB encloses the key's notional primitive; as in the paper, the
    user-supplied intersection program simply reports the hit (the any-hit
    logic is folded into it), so the functional behaviour is a plain slab
    test.
    """

    kind = "aabb"
    hardware_intersection = False

    def __init__(self, mins: np.ndarray, maxs: np.ndarray):
        mins = np.asarray(mins, dtype=np.float32)
        maxs = np.asarray(maxs, dtype=np.float32)
        if mins.shape != maxs.shape or mins.ndim != 2 or mins.shape[1] != 3:
            raise ValueError("AABB mins/maxs must both have shape (n, 3)")
        if np.any(maxs < mins):
            raise ValueError("AABB max corner must not be below min corner")
        self.mins = mins
        self.maxs = maxs
        self._pack: tuple[np.ndarray, ...] | None = None

    def intersection_pack(self) -> tuple[np.ndarray, ...]:
        """SoA intersection data: six contiguous ``(n,)`` float64 arrays.

        ``(min_x, min_y, min_z, max_x, max_y, max_z)`` — the transposed box
        corners, converted to float64 once.  Invalidated by
        :meth:`compute_aabbs` exactly like the triangle pack.
        """
        if self._pack is None:
            mins64 = self.mins.astype(np.float64)
            maxs64 = self.maxs.astype(np.float64)
            self._pack = tuple(
                np.ascontiguousarray(arr[:, axis])
                for arr in (mins64, maxs64)
                for axis in range(3)
            )
        return self._pack

    def __len__(self) -> int:
        return int(self.mins.shape[0])

    def primitive_bytes(self) -> int:
        # two corners of three float32 each
        return len(self) * 6 * FLOAT_BYTES

    def compute_aabbs(self) -> tuple[np.ndarray, np.ndarray]:
        self._pack = None
        return self.mins.copy(), self.maxs.copy()

    def _intersect_pairs_block(
        self, origins, directions, tmins, tmaxs, prim_indices
    ) -> np.ndarray:
        """Slab test on the SoA pack: per-axis box corners are gathered with
        contiguous 1D takes and fed through the same :func:`_slab_test_axis`
        core as :func:`ray_box_overlap_pairs`, so masks are bit-identical."""
        pack = self.intersection_pack()
        o = np.asarray(origins, dtype=np.float64)
        d = np.asarray(directions, dtype=np.float64)
        lo = np.asarray(tmins, dtype=np.float64).copy()
        hi = np.asarray(tmaxs, dtype=np.float64).copy()
        g = prim_indices
        ok = np.ones(g.shape[0], dtype=bool)
        for axis in range(3):
            lo, hi, ok = _slab_test_axis(
                d[:, axis], o[:, axis], pack[axis][g], pack[axis + 3][g], lo, hi, ok
            )
        return ok & (lo <= hi)

    def hit_t_pairs(
        self, origins, directions, tmins, tmaxs, prim_indices
    ) -> np.ndarray:
        """The slab-entry ``t`` of each hit pair: ``lo`` after the three-axis
        slab test, which is ``tmin`` when the ray starts inside the box."""
        pack = self.intersection_pack()
        o = np.asarray(origins, dtype=np.float64)
        d = np.asarray(directions, dtype=np.float64)
        lo = np.asarray(tmins, dtype=np.float64).copy()
        hi = np.asarray(tmaxs, dtype=np.float64).copy()
        g = np.asarray(prim_indices, dtype=np.int64)
        if g.size == 0:
            return np.zeros(0, dtype=np.float64)
        ok = np.ones(g.shape[0], dtype=bool)
        for axis in range(3):
            lo, hi, ok = _slab_test_axis(
                d[:, axis], o[:, axis], pack[axis][g], pack[axis + 3][g], lo, hi, ok
            )
        return lo


def _slab_test_axis(da, oa, bmin, bmax, lo, hi, ok):
    """One axis of the element-wise slab test; returns updated (lo, hi, ok).

    The single home of the per-axis slab expressions (parallel epsilon,
    inf-blend, inside-slab rule): :func:`ray_box_overlap_pairs` and
    :meth:`AabbBuffer._intersect_pairs_block` both call it, and
    ``_frontier_box_overlap`` in :mod:`repro.rtx.traversal` specialises the
    same expressions per frontier — masks must stay bit-identical across all
    three.  Rays parallel to the slab hit only when the origin lies inside
    it.
    """
    parallel = np.abs(da) < 1e-300
    with np.errstate(divide="ignore", invalid="ignore"):
        inv = np.where(parallel, np.inf, 1.0 / np.where(parallel, 1.0, da))
        t0 = (bmin - oa) * inv
        t1 = (bmax - oa) * inv
    near = np.minimum(t0, t1)
    far = np.maximum(t0, t1)
    lo = np.where(parallel, lo, np.maximum(lo, near))
    hi = np.where(parallel, hi, np.minimum(hi, far))
    ok &= np.where(parallel, (oa >= bmin) & (oa <= bmax), True)
    return lo, hi, ok


def ray_box_overlap_pairs_with_entry(
    origins, directions, tmins, tmaxs, box_mins, box_maxs
) -> tuple[np.ndarray, np.ndarray]:
    """Element-wise slab test returning ``(overlap_mask, entry_t)``.

    ``entry_t`` is the per-pair ``lo`` after all three axes: the parameter at
    which the ray enters the box (``tmin`` when the origin is already
    inside).  Only meaningful where the mask is True.  The ordered top-k
    trace uses it to cull nodes whose earliest possible hit already sorts
    after a lookup's current k-th best candidate.
    """
    o = np.asarray(origins, dtype=np.float64).reshape(-1, 3)
    d = np.asarray(directions, dtype=np.float64).reshape(-1, 3)
    mins = np.asarray(box_mins, dtype=np.float64).reshape(-1, 3)
    maxs = np.asarray(box_maxs, dtype=np.float64).reshape(-1, 3)
    lo = np.asarray(tmins, dtype=np.float64).copy()
    hi = np.asarray(tmaxs, dtype=np.float64).copy()
    ok = np.ones(o.shape[0], dtype=bool)
    for axis in range(3):
        lo, hi, ok = _slab_test_axis(
            d[:, axis], o[:, axis], mins[:, axis], maxs[:, axis], lo, hi, ok
        )
    return ok & (lo <= hi), lo


def ray_box_overlap_pairs(
    origins, directions, tmins, tmaxs, box_mins, box_maxs
) -> np.ndarray:
    """Element-wise slab test: does ray ``i`` overlap box ``i``?

    All arguments are arrays over the same pair index; returns a boolean mask.
    The test is performed in float64 for numerical robustness (see
    :func:`_slab_test_axis` for the per-axis rules).
    """
    return ray_box_overlap_pairs_with_entry(
        origins, directions, tmins, tmaxs, box_mins, box_maxs
    )[0]


def ray_box_overlap(origin, direction, tmin, tmax, box_mins, box_maxs) -> np.ndarray:
    """Slab test of a single ray against many boxes (convenience wrapper)."""
    mins = np.asarray(box_mins, dtype=np.float64).reshape(-1, 3)
    m = mins.shape[0]
    origins = np.broadcast_to(np.asarray(origin, dtype=np.float64), (m, 3))
    directions = np.broadcast_to(np.asarray(direction, dtype=np.float64), (m, 3))
    tmins = np.full(m, float(tmin))
    tmaxs = np.full(m, float(tmax))
    return ray_box_overlap_pairs(origins, directions, tmins, tmaxs, mins, box_maxs)


#: Unit corner offsets for key triangles, expressed as fractions of the
#: half-extent.  They sum to zero per component, so the anchor point is the
#: centroid of the triangle (and therefore strictly inside it), and the
#: triangle's plane is transversal to both the x-parallel range rays and the
#: z-perpendicular point rays used by the paper.  The paper's own corner
#: offsets place the anchor exactly on a triangle edge, which only works with
#: OptiX's watertight hardware test; the centroid layout preserves the same
#: gaps and hit semantics while being robust for a software intersector.
_TRIANGLE_UNIT_OFFSETS = np.array(
    [
        [-0.9, -0.5, -0.6],
        [0.9, -0.4, 0.2],
        [0.0, 0.9, 0.4],
    ],
    dtype=np.float64,
)


def make_triangle_vertices(
    points: np.ndarray,
    half_extent: float = 0.5,
    x_half_extent: np.ndarray | None = None,
) -> np.ndarray:
    """Build one triangle per anchor point.

    For a key mapped to the point ``(x, y, z)`` a triangle is created whose
    centroid is exactly that point and whose corners stay within
    ``half_extent`` of it, so adjacent keys (spaced one unit apart) keep a gap
    for rays to start and end in.

    ``x_half_extent`` optionally overrides the extent along the x axis per
    primitive.  Extended Mode needs this: there, adjacent keys are only two
    representable floats apart, so the x extent must shrink to one ULP while
    the y/z extents keep their usual size.
    """
    pts = np.asarray(points, dtype=np.float64).reshape(-1, 3)
    n = pts.shape[0]
    he = float(half_extent)
    if x_half_extent is None:
        hx = np.full(n, he, dtype=np.float64)
    else:
        hx = np.broadcast_to(np.asarray(x_half_extent, dtype=np.float64), (n,))
    vertices = np.empty((n, 3, 3), dtype=np.float64)
    for corner in range(3):
        ox, oy, oz = _TRIANGLE_UNIT_OFFSETS[corner]
        vertices[:, corner, 0] = pts[:, 0] + ox * hx
        vertices[:, corner, 1] = pts[:, 1] + oy * he
        vertices[:, corner, 2] = pts[:, 2] + oz * he
    return vertices.astype(np.float32)


def make_aabbs_from_points(
    points: np.ndarray,
    half_extent: float = 0.25,
    x_half_extent: np.ndarray | None = None,
):
    """Build one small AABB per anchor point (used for the AABB primitive)."""
    pts = np.asarray(points, dtype=np.float64).reshape(-1, 3)
    n = pts.shape[0]
    he = float(half_extent)
    if x_half_extent is None:
        hx = np.full(n, he, dtype=np.float64)
    else:
        hx = np.broadcast_to(np.asarray(x_half_extent, dtype=np.float64), (n,))
    offsets = np.column_stack([hx, np.full(n, he), np.full(n, he)])
    mins = (pts - offsets).astype(np.float32)
    maxs = (pts + offsets).astype(np.float32)
    return mins, maxs


def make_sphere_centers(points: np.ndarray) -> np.ndarray:
    """Sphere centres are simply the anchor points (radius handled separately)."""
    return np.asarray(points, dtype=np.float32).reshape(-1, 3)
