"""Bounding volume hierarchy construction.

The BVH is the index structure at the heart of the paper: OptiX builds one
over the primitives that encode the keys, and the RT cores traverse it to
answer lookups.  NVIDIA does not document the internal builder, so this
module provides three openly-described builders that bracket the plausible
design space:

* ``"lbvh"`` (default) — a Karras-style linear BVH: primitive centroids are
  quantised onto a Morton grid spanning the scene bounds, sorted, and split
  top-down at the highest differing Morton bit.  This mirrors what GPU
  builders (including, by all public accounts, OptiX's fast build path) do,
  and it naturally reproduces the Extended-Mode pathology of Section 3.2: a
  hugely skewed coordinate range collapses many primitives into the same
  Morton cell, which yields heavily overlapping sibling nodes and a traversal
  blow-up.
* ``"sah"`` — a binned surface-area-heuristic top-down builder (higher
  quality, slower build).
* ``"median"`` — object-median split along the widest axis (cheapest).

The build itself is *level-synchronous*: instead of popping one node at a
time off a Python work stack, every tree level is processed as one batch of
NumPy passes — segment reductions compute all node bounds of a level at
once, and each splitter computes every split of the level in vectorised
form.  This is how GPU builders are actually organised, and it removes the
interpreter from the per-node hot path entirely.  The emitted node numbering
is renumbered to the depth-first order the original stack-based builder
produced, so trees are bit-identical with the golden reference in
:mod:`repro.rtx._reference` (checked by ``tests/test_engine_equivalence.py``).

The BVH is stored as a structure of arrays so traversal can read node bounds
without per-node Python objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rtx.geometry import PrimitiveBuffer
from repro.rtx.morton import morton_encode_3d

#: Modelled allocation size of one BVH node before/after compaction (bytes).
#: Compaction removes allocation slack but does not shrink what a traversal
#: step has to fetch, which is why compacted and uncompacted accels perform
#: almost identically (Figure 7a).
NODE_BYTES_UNCOMPACTED = 80
NODE_BYTES_COMPACTED = 40
#: Bytes fetched per node visit during traversal (independent of compaction).
NODE_FETCH_BYTES = 64


@dataclass
class BvhBuildOptions:
    """Tunable knobs of the software BVH builder.

    Attributes
    ----------
    builder:
        ``"lbvh"``, ``"sah"`` or ``"median"``.
    max_leaf_size:
        Maximum number of primitives per leaf.
    sah_bins:
        Number of bins per axis for the binned SAH builder.
    morton_bits:
        Bits per axis used to quantise centroids for the LBVH builder.
    allow_update:
        Mirrors ``OPTIX_BUILD_FLAG_ALLOW_UPDATE``; required for refitting and
        disables the effect of compaction.
    allow_compaction:
        Mirrors ``OPTIX_BUILD_FLAG_ALLOW_COMPACTION``.
    shard_bits:
        When positive, the build partitions primitives by the top
        ``shard_bits`` bits of their Morton codes into ``2**shard_bits``
        shards and assembles the tree as a forest of independently built
        sub-BVHs stitched under a top-level split table
        (:mod:`repro.rtx.forest`).  The stitched tree is bit-identical to the
        ``shard_bits=0`` single-tree build; only the build schedule changes.
        Requires the ``"lbvh"`` builder (the prefix partition *is* the top of
        the LBVH split hierarchy; SAH/median splits do not decompose along
        Morton prefixes).
    workers:
        Worker processes used to build the shards of a sharded build.  ``1``
        (the default) builds every shard serially in-process; any value is
        bit-identical per shard, so results never depend on the pool size.
    backend:
        Executor of a sharded build.  ``"fork"`` (the default) hands each
        shard to a fork pool and pickles rows and sub-trees through the pool
        channel; ``"shm"`` stages inputs and outputs in
        ``multiprocessing.shared_memory`` blocks so workers read and write
        zero-copy views in place and only O(1) job descriptors are pickled
        (:mod:`repro.rtx.forest`).  Like ``workers``, this is purely an
        execution-schedule knob: every backend emits bit-identical trees.
    """

    builder: str = "lbvh"
    max_leaf_size: int = 4
    sah_bins: int = 16
    morton_bits: int = 21
    allow_update: bool = False
    allow_compaction: bool = True
    shard_bits: int = 0
    workers: int = 1
    backend: str = "fork"

    def validate(self) -> None:
        if self.builder not in ("lbvh", "sah", "median"):
            raise ValueError(f"unknown BVH builder {self.builder!r}")
        if self.max_leaf_size < 1:
            raise ValueError("max_leaf_size must be >= 1")
        if not 1 <= self.morton_bits <= 21:
            raise ValueError("morton_bits must be in [1, 21]")
        if self.sah_bins < 2:
            raise ValueError("sah_bins must be >= 2")
        if not 0 <= self.shard_bits <= 16:
            raise ValueError("shard_bits must be in [0, 16]")
        if self.shard_bits and self.builder != "lbvh":
            raise ValueError(
                "sharded (forest) builds require the 'lbvh' builder: the "
                "Morton-prefix partition is only a prefix of lbvh's split "
                "hierarchy"
            )
        if self.shard_bits > 3 * self.morton_bits:
            raise ValueError("shard_bits cannot exceed the Morton code width")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.backend not in ("fork", "shm"):
            raise ValueError(f"unknown build backend {self.backend!r}")
        if self.backend == "shm" and self.shard_bits < 1:
            raise ValueError(
                "the shm build backend operates on the sharded forest "
                "pipeline; it requires shard_bits >= 1"
            )


@dataclass
class BvhStatistics:
    """Summary statistics of a built BVH (quality diagnostics)."""

    node_count: int
    leaf_count: int
    max_depth: int
    max_leaf_size: int
    mean_leaf_size: float
    sah_cost: float
    total_overlap_area: float


@dataclass
class Bvh:
    """A binary BVH stored as a structure of arrays.

    ``left[i] == -1`` marks node ``i`` as a leaf; its primitives are
    ``prim_indices[first_prim[i] : first_prim[i] + prim_count[i]]``.
    The root is node 0.
    """

    node_mins: np.ndarray
    node_maxs: np.ndarray
    left: np.ndarray
    right: np.ndarray
    first_prim: np.ndarray
    prim_count: np.ndarray
    prim_indices: np.ndarray
    num_primitives: int
    options: BvhBuildOptions
    compacted: bool = False
    #: filled by refits so lookup-quality degradation can be inspected
    refit_generation: int = 0
    build_stats: dict = field(default_factory=dict)
    #: lazily computed list of per-level node-id arrays (root level first);
    #: shared by ``depth()``, ``statistics()`` and the vectorised refit, and
    #: carried over by compaction since the topology is unchanged.
    _levels: list[np.ndarray] | None = field(default=None, repr=False, compare=False)

    @property
    def node_count(self) -> int:
        return int(self.left.shape[0])

    @property
    def leaf_count(self) -> int:
        return int(np.count_nonzero(self.left < 0))

    def is_leaf(self, node: int) -> bool:
        return self.left[node] < 0

    def node_bytes(self) -> int:
        """Bytes fetched per node visit (identical for compacted accels)."""
        return NODE_FETCH_BYTES

    def level_ranges(self) -> list[np.ndarray]:
        """Node ids grouped by depth (index 0 = root level), cached.

        The grouping only depends on the topology, which neither refits nor
        compaction change, so it is computed once per tree with one
        vectorised gather per level.
        """
        if self._levels is None:
            levels: list[np.ndarray] = []
            if self.node_count:
                frontier = np.zeros(1, dtype=np.int64)
                while frontier.size:
                    levels.append(frontier)
                    inner = frontier[self.left[frontier] >= 0]
                    if inner.size == 0:
                        break
                    frontier = np.concatenate([self.left[inner], self.right[inner]])
            self._levels = levels
        return self._levels

    def depth(self) -> int:
        """Maximum depth of the tree (root at depth 0)."""
        levels = self.level_ranges()
        return max(len(levels) - 1, 0)

    def surface_areas(self) -> np.ndarray:
        """Surface area of every node's bounding box."""
        extents = np.maximum(self.node_maxs - self.node_mins, 0.0)
        ex, ey, ez = extents[:, 0], extents[:, 1], extents[:, 2]
        return 2.0 * (ex * ey + ey * ez + ez * ex)

    def sah_cost(self, traversal_cost: float = 1.0, intersect_cost: float = 1.0) -> float:
        """Classic SAH cost of the tree relative to the root's surface area."""
        if self.node_count == 0:
            return 0.0
        areas = self.surface_areas().astype(np.float64)
        root_area = max(float(areas[0]), 1e-30)
        leaves = self.left < 0
        inner = ~leaves
        cost = traversal_cost * float(areas[inner].sum()) / root_area
        cost += intersect_cost * float(
            (areas[leaves] * self.prim_count[leaves]).sum()
        ) / root_area
        return cost

    def statistics(self) -> BvhStatistics:
        leaves = self.left < 0
        leaf_sizes = self.prim_count[leaves]
        # Sibling overlap: shared surface between the two children of each
        # inner node, a cheap proxy for BVH quality degradation after refits.
        # Computed in float64 with a vectorised reduction; low-order bits may
        # differ from a sequential float32 per-node accumulation (this is a
        # diagnostic, not part of the golden-pinned engine surface).
        inner = np.flatnonzero(~leaves)
        overlap = 0.0
        if inner.size:
            l, r = self.left[inner], self.right[inner]
            o_min = np.maximum(
                self.node_mins[l].astype(np.float64), self.node_mins[r].astype(np.float64)
            )
            o_max = np.minimum(
                self.node_maxs[l].astype(np.float64), self.node_maxs[r].astype(np.float64)
            )
            ext = np.maximum(o_max - o_min, 0.0)
            overlap = float(
                (2.0 * (ext[:, 0] * ext[:, 1] + ext[:, 1] * ext[:, 2] + ext[:, 2] * ext[:, 0])).sum()
            )
        return BvhStatistics(
            node_count=self.node_count,
            leaf_count=int(leaves.sum()),
            max_depth=self.depth(),
            max_leaf_size=int(leaf_sizes.max()) if leaf_sizes.size else 0,
            mean_leaf_size=float(leaf_sizes.mean()) if leaf_sizes.size else 0.0,
            sah_cost=self.sah_cost(),
            total_overlap_area=overlap,
        )

    def structure_bytes(self) -> int:
        """Modelled device memory consumed by the node structure alone."""
        return self.node_count * self.node_bytes()


def build_bvh(
    primitive_buffer: PrimitiveBuffer,
    options: BvhBuildOptions | None = None,
) -> Bvh:
    """Build a BVH over all primitives of ``primitive_buffer``.

    This is the software analogue of ``optixAccelBuild`` with
    ``OPTIX_BUILD_OPERATION_BUILD``.

    With ``options.shard_bits > 0`` the build routes through the sharded
    forest pipeline (:func:`repro.rtx.forest.build_forest`) and returns its
    stitched tree — bit-identical to the single-tree build, but constructed
    shard by shard (optionally across a worker pool).
    """
    options = options or BvhBuildOptions()
    options.validate()
    if options.shard_bits:
        from repro.rtx.forest import build_forest

        return build_forest(primitive_buffer, options).bvh
    prim_mins, prim_maxs = primitive_buffer.compute_aabbs()
    prim_mins = prim_mins.astype(np.float64)
    prim_maxs = prim_maxs.astype(np.float64)
    n = prim_mins.shape[0]
    if n == 0:
        raise ValueError("cannot build a BVH over zero primitives")

    centroids = 0.5 * (prim_mins + prim_maxs)

    if options.builder == "lbvh":
        codes = morton_encode_3d(centroids, options.morton_bits)
        order = np.argsort(codes, kind="stable")
        splitter = _LbvhSplitter(codes[order], options)
    elif options.builder == "sah":
        order = np.arange(n, dtype=np.int64)
        splitter = _SahSplitter(centroids, prim_mins, prim_maxs, options)
    else:
        order = np.arange(n, dtype=np.int64)
        splitter = _MedianSplitter(centroids, options)

    builder = _LevelSynchronousBuilder(prim_mins, prim_maxs, options, splitter)
    bvh = builder.build(order)
    bvh.num_primitives = n
    bvh.build_stats = {
        "builder": options.builder,
        "num_primitives": n,
        "node_count": bvh.node_count,
        "leaf_count": bvh.leaf_count,
    }
    return bvh


#: The arrays that define a BVH's observable behaviour.  Everything the
#: traversal engine reads lives here, so two trees agreeing on all of them
#: are interchangeable — the invariant the sharded forest build rests on.
BVH_ARRAY_FIELDS = (
    "left",
    "right",
    "first_prim",
    "prim_count",
    "prim_indices",
    "node_mins",
    "node_maxs",
)


def bvh_arrays_diff(a: Bvh, b: Bvh) -> str | None:
    """Name of the first defining array where ``a`` and ``b`` differ, or None.

    The single home of the bit-identicality check used by the forest
    stitcher's verification sites (bench, experiments, tests).
    """
    for attr in BVH_ARRAY_FIELDS:
        if not np.array_equal(getattr(a, attr), getattr(b, attr)):
            return attr
    return None


def bvh_state_arrays(bvh: Bvh) -> dict[str, np.ndarray]:
    """The defining arrays of ``bvh`` as a name→array dict — the persisted
    form of a single tree (one segment of the epoch store)."""
    return {attr: getattr(bvh, attr) for attr in BVH_ARRAY_FIELDS}


def bvh_from_arrays(
    arrays: dict[str, np.ndarray],
    num_primitives: int,
    options: BvhBuildOptions,
    compacted: bool = False,
    refit_generation: int = 0,
) -> Bvh:
    """Rehydrate a :class:`Bvh` from persisted defining arrays.

    The arrays are adopted as-is (read-only memory-mapped views included —
    traversal never writes them), so a load is zero-copy; everything the
    engine reads is in :data:`BVH_ARRAY_FIELDS`, which makes the rebuilt
    tree observably identical to the one that was saved.
    """
    missing = [attr for attr in BVH_ARRAY_FIELDS if attr not in arrays]
    if missing:
        raise ValueError(f"persisted BVH arrays are missing fields {missing}")
    return Bvh(
        node_mins=arrays["node_mins"],
        node_maxs=arrays["node_maxs"],
        left=arrays["left"],
        right=arrays["right"],
        first_prim=arrays["first_prim"],
        prim_count=arrays["prim_count"],
        prim_indices=arrays["prim_indices"],
        num_primitives=int(num_primitives),
        options=options,
        compacted=bool(compacted),
        refit_generation=int(refit_generation),
    )


def build_lbvh_over_sorted(
    sorted_codes: np.ndarray,
    prim_mins: np.ndarray,
    prim_maxs: np.ndarray,
    options: BvhBuildOptions,
    out: dict[str, np.ndarray] | None = None,
) -> Bvh:
    """Build an LBVH over primitives *already sorted* by Morton code.

    The reusable sub-range builder of the BVH forest: ``prim_mins`` /
    ``prim_maxs`` are float64 per-primitive bounds in sorted-code order, so
    the emitted ``prim_indices`` are simply ``0..m-1`` and the caller rebases
    them into its global primitive stream.  Runs the same level-synchronous
    machinery as :func:`build_bvh`, which makes a shard's subtree
    bit-identical to the corresponding subtree of the single-tree build.

    ``out`` optionally provides the destination node arrays (keys ``left``,
    ``right``, ``first_prim``, ``prim_count``, ``node_mins``, ``node_maxs``,
    each with capacity for ``2 * m - 1`` nodes) — the shm backend passes
    shared-memory views here so workers emit their sub-trees in place.
    """
    splitter = _LbvhSplitter(np.asarray(sorted_codes, dtype=np.uint64), options)
    builder = _LevelSynchronousBuilder(prim_mins, prim_maxs, options, splitter)
    bvh = builder.build(np.arange(sorted_codes.shape[0], dtype=np.int64), out=out)
    bvh.num_primitives = int(sorted_codes.shape[0])
    return bvh


# --------------------------------------------------------------------------- #
# level-synchronous machinery
# --------------------------------------------------------------------------- #


def _concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``[starts[i], starts[i] + counts[i])`` into one index array."""
    total = int(counts.sum())
    offsets = np.cumsum(counts) - counts
    return np.repeat(starts - offsets, counts) + np.arange(total, dtype=np.int64)


def fit_bounds_bottom_up(
    left: np.ndarray,
    right: np.ndarray,
    first_prim: np.ndarray,
    prim_count: np.ndarray,
    prim_indices: np.ndarray,
    prim_mins: np.ndarray,
    prim_maxs: np.ndarray,
    levels: list[np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Fit every node's bounds bottom-up, one vectorised pass per level.

    Leaf bounds are one segment reduction over the concatenated leaf ranges;
    inner bounds are the element-wise min/max of the two children, applied
    level by level from the deepest level upwards.  Because min/max are
    associative this yields bit-identical results to fitting each node
    directly from its primitive range.  Shared by the builder and the refit
    pass in :mod:`repro.rtx.refit`.
    """
    num_nodes = left.shape[0]
    node_mins = np.empty((num_nodes, 3), dtype=prim_mins.dtype)
    node_maxs = np.empty((num_nodes, 3), dtype=prim_maxs.dtype)

    leaves = np.flatnonzero(left < 0)
    if leaves.size:
        counts = prim_count[leaves]
        offsets = np.cumsum(counts) - counts
        gather = prim_indices[_concat_ranges(first_prim[leaves], counts)]
        node_mins[leaves] = np.minimum.reduceat(prim_mins[gather], offsets, axis=0)
        node_maxs[leaves] = np.maximum.reduceat(prim_maxs[gather], offsets, axis=0)

    for level in reversed(levels):
        inner = level[left[level] >= 0]
        if inner.size:
            l, r = left[inner], right[inner]
            node_mins[inner] = np.minimum(node_mins[l], node_mins[r])
            node_maxs[inner] = np.maximum(node_maxs[l], node_maxs[r])
    return node_mins, node_maxs


def _high_bit(values: np.ndarray) -> np.ndarray:
    """Index of the most significant set bit of each uint64 (0 for zero)."""
    x = np.asarray(values, dtype=np.uint64).copy()
    out = np.zeros(x.shape, dtype=np.int64)
    for shift in (32, 16, 8, 4, 2, 1):
        big = x >= (np.uint64(1) << np.uint64(shift))
        out[big] += shift
        x[big] >>= np.uint64(shift)
    return out


class _LevelSynchronousBuilder:
    """Top-down build where each tree level is one batch of array passes.

    Node ids are allocated breadth-first during the build (children of a
    level occupy one contiguous block), then renumbered to the depth-first
    order of the original stack-based builder so the emitted arrays stay
    bit-identical with the golden reference.
    """

    def __init__(self, prim_mins, prim_maxs, options, splitter):
        self.prim_mins = prim_mins
        self.prim_maxs = prim_maxs
        self.options = options
        self.splitter = splitter

    def build(self, order: np.ndarray, out: dict[str, np.ndarray] | None = None) -> Bvh:
        prim_indices = np.array(order, dtype=np.int64, copy=True)
        n = prim_indices.shape[0]
        cap = max(2 * n - 1, 1)
        left = np.full(cap, -1, dtype=np.int64)
        right = np.full(cap, -1, dtype=np.int64)
        first_prim = np.zeros(cap, dtype=np.int64)
        prim_count = np.zeros(cap, dtype=np.int64)

        max_leaf = self.options.max_leaf_size
        # Current level: node ids with their [start, end) ranges over
        # prim_indices, kept sorted by start (ids are then contiguous too).
        # The loop only derives the topology; bounds are fitted afterwards in
        # one bottom-up pass, which touches every primitive once instead of
        # once per level.
        ids = np.zeros(1, dtype=np.int64)
        starts = np.zeros(1, dtype=np.int64)
        ends = np.full(1, n, dtype=np.int64)
        num_nodes = 1
        level_bounds: list[tuple[int, int]] = [(0, 1)]

        while ids.size:
            counts = ends - starts
            leaf_mask = counts <= max_leaf
            leaf_ids = ids[leaf_mask]
            first_prim[leaf_ids] = starts[leaf_mask]
            prim_count[leaf_ids] = counts[leaf_mask]

            split_mask = ~leaf_mask
            s_ids = ids[split_mask]
            if s_ids.size == 0:
                break
            s_starts = starts[split_mask]
            s_ends = ends[split_mask]
            splits = self.splitter.split_level(prim_indices, s_starts, s_ends)
            # Ranges the splitter could not separate (identical Morton codes
            # or identical centroids) fall back to a median split by index,
            # as GPU builders do.
            fallback = (splits <= s_starts) | (splits >= s_ends)
            splits = np.where(
                fallback, s_starts + (s_ends - s_starts) // 2, splits
            )

            k = s_ids.shape[0]
            child_base = num_nodes
            left_ids = child_base + 2 * np.arange(k, dtype=np.int64)
            right_ids = left_ids + 1
            left[s_ids] = left_ids
            right[s_ids] = right_ids

            # Next level, interleaved (left0, right0, left1, right1, ...) so
            # ranges stay sorted by start and ids stay contiguous.
            ids = child_base + np.arange(2 * k, dtype=np.int64)
            new_starts = np.empty(2 * k, dtype=np.int64)
            new_ends = np.empty(2 * k, dtype=np.int64)
            new_starts[0::2] = s_starts
            new_ends[0::2] = splits
            new_starts[1::2] = splits
            new_ends[1::2] = s_ends
            starts, ends = new_starts, new_ends
            num_nodes += 2 * k
            level_bounds.append((child_base, num_nodes))

        left = left[:num_nodes]
        right = right[:num_nodes]
        first_prim = first_prim[:num_nodes]
        prim_count = prim_count[:num_nodes]
        bfs_levels = [
            np.arange(ls, le, dtype=np.int64) for ls, le in level_bounds
        ]
        node_mins, node_maxs = fit_bounds_bottom_up(
            left, right, first_prim, prim_count,
            prim_indices, self.prim_mins, self.prim_maxs, bfs_levels,
        )

        perm = _dfs_renumbering(left, right, bfs_levels)
        if out is None:
            out_mins = np.empty((num_nodes, 3), dtype=np.float32)
            out_maxs = np.empty((num_nodes, 3), dtype=np.float32)
            out_left = np.empty(num_nodes, dtype=np.int64)
            out_right = np.empty(num_nodes, dtype=np.int64)
            out_first = np.empty(num_nodes, dtype=np.int64)
            out_count = np.empty(num_nodes, dtype=np.int64)
        else:
            # Caller-provided destination views (shared-memory blocks for the
            # shm backend): the DFS-ordered scatter below writes the final
            # layout directly into them, so the emitted Bvh aliases the
            # caller's storage with no copy-out pass.
            out_mins = out["node_mins"][:num_nodes]
            out_maxs = out["node_maxs"][:num_nodes]
            out_left = out["left"][:num_nodes]
            out_right = out["right"][:num_nodes]
            out_first = out["first_prim"][:num_nodes]
            out_count = out["prim_count"][:num_nodes]
        out_mins[perm] = node_mins.astype(np.float32)
        out_maxs[perm] = node_maxs.astype(np.float32)
        safe_left = np.maximum(left, 0)
        safe_right = np.maximum(right, 0)
        out_left[perm] = np.where(left >= 0, perm[safe_left], -1)
        out_right[perm] = np.where(right >= 0, perm[safe_right], -1)
        out_first[perm] = first_prim
        out_count[perm] = prim_count
        return Bvh(
            node_mins=out_mins,
            node_maxs=out_maxs,
            left=out_left,
            right=out_right,
            first_prim=out_first,
            prim_count=out_count,
            prim_indices=prim_indices,
            num_primitives=n,
            options=self.options,
        )


def _dfs_renumbering(
    left: np.ndarray, right: np.ndarray, levels: list[np.ndarray]
) -> np.ndarray:
    """Map working node ids to the stack-based builder's numbering.

    The original builder popped ``(node, range)`` tuples off a Python list
    (right child first) and allocated both children consecutively when a node
    was popped.  That numbering is reconstructed without any per-node loop:
    subtree sizes (bottom-up) give each node's position in the right-first
    depth-first preorder (top-down), and the k-th inner node in that order
    allocated ids ``2k + 1`` / ``2k + 2`` for its children.

    ``levels`` groups the working node ids by depth (root level first) —
    breadth-first blocks during a plain build, arbitrary id layouts when the
    forest stitches shard subtrees together.
    """
    num_nodes = left.shape[0]
    size = np.ones(num_nodes, dtype=np.int64)
    for nodes in reversed(levels):
        inner = nodes[left[nodes] >= 0]
        if inner.size:
            size[inner] += size[left[inner]] + size[right[inner]]

    pos = np.zeros(num_nodes, dtype=np.int64)
    for nodes in levels:
        inner = nodes[left[nodes] >= 0]
        if inner.size:
            pos[right[inner]] = pos[inner] + 1
            pos[left[inner]] = pos[inner] + 1 + size[right[inner]]

    perm = np.empty(num_nodes, dtype=np.int64)
    perm[0] = 0
    inner_all = np.flatnonzero(left >= 0)
    if inner_all.size:
        ordered = inner_all[np.argsort(pos[inner_all], kind="stable")]
        child_ids = 1 + 2 * np.arange(ordered.size, dtype=np.int64)
        perm[left[ordered]] = child_ids
        perm[right[ordered]] = child_ids + 1
    return perm


class _MedianSplitter:
    """Split at the object median along the widest centroid axis."""

    def __init__(self, centroids, options):
        self.centroids = centroids
        self.options = options

    def split_level(self, prim_indices, starts, ends):
        counts = ends - starts
        offsets = np.cumsum(counts) - counts
        gather = _concat_ranges(starts, counts)
        prims = prim_indices[gather]
        cents = self.centroids[prims]
        cmin = np.minimum.reduceat(cents, offsets, axis=0)
        cmax = np.maximum.reduceat(cents, offsets, axis=0)
        ext = cmax - cmin
        axis = np.argmax(ext, axis=1)
        rows = np.arange(starts.shape[0])
        splittable = ext[rows, axis] > 0.0

        # One stable lexsort keyed by (segment, coordinate on the segment's
        # widest axis) reorders every range of the level at once.  Ranges
        # whose widest extent is zero have all-equal keys, so the stable sort
        # leaves them untouched — exactly the reference behaviour.
        seg_ids = np.repeat(rows, counts)
        keys = cents[np.arange(gather.shape[0]), axis[seg_ids]]
        order = np.lexsort((keys, seg_ids))
        prim_indices[gather] = prims[order]
        return np.where(splittable, starts + counts // 2, np.int64(-1))


class _LbvhSplitter:
    """Split sorted Morton ranges at the highest differing bit.

    Primitives arrive already sorted by Morton code, so a split is simply the
    first index whose code differs from the range's first code in the most
    significant differing bit.  All splits of a level are found with one
    vectorised binary search over the shared sorted-code array.  Ranges with
    identical codes fall back to an index-median split (handled by the
    caller), which reproduces the fully-overlapping sibling nodes that
    degrade traversal for pathological coordinate distributions.
    """

    def __init__(self, sorted_codes, options):
        self.sorted_codes = sorted_codes
        self.options = options

    def split_level(self, prim_indices, starts, ends):
        codes = self.sorted_codes
        first = codes[starts]
        last = codes[ends - 1]
        diff = first ^ last
        splittable = diff != np.uint64(0)
        shift = _high_bit(diff).astype(np.uint64)
        prefix = first >> shift

        # Batched binary search: per range, the first position whose code has
        # a prefix above the split bit greater than the range's first code.
        lo = starts.copy()
        hi = ends.copy()
        last = np.int64(codes.shape[0] - 1)
        while True:
            active = lo < hi
            if not active.any():
                break
            # Inactive lanes have lo == hi, which may sit one past the end of
            # the code array; clamping keeps the (discarded) gather in bounds.
            mid = np.minimum((lo + hi) >> 1, last)
            below = (codes[mid] >> shift) <= prefix
            lo = np.where(active & below, mid + 1, lo)
            hi = np.where(active & ~below, mid, hi)
        return np.where(splittable, lo, np.int64(-1))


class _SahSplitter:
    """Binned surface-area-heuristic splitter, one level per batch."""

    def __init__(self, centroids, prim_mins, prim_maxs, options):
        self.centroids = centroids
        self.prim_mins = prim_mins
        self.prim_maxs = prim_maxs
        self.bins = options.sah_bins

    @staticmethod
    def _areas(mins: np.ndarray, maxs: np.ndarray) -> np.ndarray:
        """Surface areas over a trailing xyz axis (any leading shape)."""
        ext = np.maximum(maxs - mins, 0.0)
        return 2.0 * (
            ext[..., 0] * ext[..., 1]
            + ext[..., 1] * ext[..., 2]
            + ext[..., 2] * ext[..., 0]
        )

    def split_level(self, prim_indices, starts, ends):
        nbins = self.bins
        num_ranges = starts.shape[0]
        counts = ends - starts
        offsets = np.cumsum(counts) - counts
        gather = _concat_ranges(starts, counts)
        prims = prim_indices[gather]
        cents = self.centroids[prims]
        cmin = np.minimum.reduceat(cents, offsets, axis=0)
        cmax = np.maximum.reduceat(cents, offsets, axis=0)
        ext = cmax - cmin
        axis = np.argmax(ext, axis=1)
        rows = np.arange(num_ranges)
        axis_ext = ext[rows, axis]
        splittable = axis_ext > 0.0

        seg_ids = np.repeat(rows, counts)
        scale = np.where(splittable, nbins / np.where(splittable, axis_ext, 1.0), 0.0)
        values = cents[np.arange(gather.shape[0]), axis[seg_ids]]
        rel = (values - cmin[seg_ids, axis[seg_ids]]) * scale[seg_ids]
        bin_ids = np.minimum(rel.astype(np.int64), nbins - 1)

        # Per-(range, bin) primitive counts and bounds via one stable sort.
        flat = seg_ids * nbins + bin_ids
        bin_counts = np.bincount(flat, minlength=num_ranges * nbins).reshape(
            num_ranges, nbins
        )
        sort = np.argsort(flat, kind="stable")
        sorted_flat = flat[sort]
        group_starts = np.flatnonzero(
            np.r_[True, sorted_flat[1:] != sorted_flat[:-1]]
        )
        bin_mins = np.full((num_ranges * nbins, 3), np.inf)
        bin_maxs = np.full((num_ranges * nbins, 3), -np.inf)
        sorted_prims = prims[sort]
        bin_mins[sorted_flat[group_starts]] = np.minimum.reduceat(
            self.prim_mins[sorted_prims], group_starts, axis=0
        )
        bin_maxs[sorted_flat[group_starts]] = np.maximum.reduceat(
            self.prim_maxs[sorted_prims], group_starts, axis=0
        )
        bin_mins = bin_mins.reshape(num_ranges, nbins, 3)
        bin_maxs = bin_maxs.reshape(num_ranges, nbins, 3)

        # Sweep all candidate partitions of every range at once: prefix
        # bounds from the left, suffix bounds from the right.  Empty bins are
        # inf-padded and never affect a non-empty side's min/max.
        prefix_min = np.minimum.accumulate(bin_mins, axis=1)
        prefix_max = np.maximum.accumulate(bin_maxs, axis=1)
        suffix_min = np.minimum.accumulate(bin_mins[:, ::-1], axis=1)[:, ::-1]
        suffix_max = np.maximum.accumulate(bin_maxs[:, ::-1], axis=1)[:, ::-1]
        prefix_counts = np.cumsum(bin_counts, axis=1)

        left_counts = prefix_counts[:, :-1]
        right_counts = counts[:, None] - left_counts
        with np.errstate(invalid="ignore"):
            left_area = self._areas(prefix_min[:, :-1], prefix_max[:, :-1])
            right_area = self._areas(suffix_min[:, 1:], suffix_max[:, 1:])
            cost = left_area * left_counts + right_area * right_counts
        cost = np.where((left_counts == 0) | (right_counts == 0), np.inf, cost)
        best = np.argmin(cost, axis=1)
        valid = splittable & np.isfinite(cost[rows, best])
        best_bin = best + 1

        # Stable partition of every valid range: left-group primitives first,
        # original order preserved within both groups.  Invalid ranges get an
        # all-equal key and therefore stay untouched.
        go_right = (bin_ids >= best_bin[seg_ids]) & valid[seg_ids]
        order = np.lexsort((go_right, seg_ids))
        prim_indices[gather] = prims[order]

        splits = starts + left_counts[rows, best]
        return np.where(valid, splits, np.int64(-1))
