"""Bounding volume hierarchy construction.

The BVH is the index structure at the heart of the paper: OptiX builds one
over the primitives that encode the keys, and the RT cores traverse it to
answer lookups.  NVIDIA does not document the internal builder, so this
module provides three openly-described builders that bracket the plausible
design space:

* ``"lbvh"`` (default) — a Karras-style linear BVH: primitive centroids are
  quantised onto a Morton grid spanning the scene bounds, sorted, and split
  top-down at the highest differing Morton bit.  This mirrors what GPU
  builders (including, by all public accounts, OptiX's fast build path) do,
  and it naturally reproduces the Extended-Mode pathology of Section 3.2: a
  hugely skewed coordinate range collapses many primitives into the same
  Morton cell, which yields heavily overlapping sibling nodes and a traversal
  blow-up.
* ``"sah"`` — a binned surface-area-heuristic top-down builder (higher
  quality, slower build).
* ``"median"`` — object-median split along the widest axis (cheapest).

The BVH is stored as a structure of arrays so traversal can read node bounds
without per-node Python objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rtx.geometry import PrimitiveBuffer
from repro.rtx.morton import morton_encode_3d

#: Modelled allocation size of one BVH node before/after compaction (bytes).
#: Compaction removes allocation slack but does not shrink what a traversal
#: step has to fetch, which is why compacted and uncompacted accels perform
#: almost identically (Figure 7a).
NODE_BYTES_UNCOMPACTED = 80
NODE_BYTES_COMPACTED = 40
#: Bytes fetched per node visit during traversal (independent of compaction).
NODE_FETCH_BYTES = 64


@dataclass
class BvhBuildOptions:
    """Tunable knobs of the software BVH builder.

    Attributes
    ----------
    builder:
        ``"lbvh"``, ``"sah"`` or ``"median"``.
    max_leaf_size:
        Maximum number of primitives per leaf.
    sah_bins:
        Number of bins per axis for the binned SAH builder.
    morton_bits:
        Bits per axis used to quantise centroids for the LBVH builder.
    allow_update:
        Mirrors ``OPTIX_BUILD_FLAG_ALLOW_UPDATE``; required for refitting and
        disables the effect of compaction.
    allow_compaction:
        Mirrors ``OPTIX_BUILD_FLAG_ALLOW_COMPACTION``.
    """

    builder: str = "lbvh"
    max_leaf_size: int = 4
    sah_bins: int = 16
    morton_bits: int = 21
    allow_update: bool = False
    allow_compaction: bool = True

    def validate(self) -> None:
        if self.builder not in ("lbvh", "sah", "median"):
            raise ValueError(f"unknown BVH builder {self.builder!r}")
        if self.max_leaf_size < 1:
            raise ValueError("max_leaf_size must be >= 1")
        if not 1 <= self.morton_bits <= 21:
            raise ValueError("morton_bits must be in [1, 21]")
        if self.sah_bins < 2:
            raise ValueError("sah_bins must be >= 2")


@dataclass
class BvhStatistics:
    """Summary statistics of a built BVH (quality diagnostics)."""

    node_count: int
    leaf_count: int
    max_depth: int
    max_leaf_size: int
    mean_leaf_size: float
    sah_cost: float
    total_overlap_area: float


@dataclass
class Bvh:
    """A binary BVH stored as a structure of arrays.

    ``left[i] == -1`` marks node ``i`` as a leaf; its primitives are
    ``prim_indices[first_prim[i] : first_prim[i] + prim_count[i]]``.
    The root is node 0.
    """

    node_mins: np.ndarray
    node_maxs: np.ndarray
    left: np.ndarray
    right: np.ndarray
    first_prim: np.ndarray
    prim_count: np.ndarray
    prim_indices: np.ndarray
    num_primitives: int
    options: BvhBuildOptions
    compacted: bool = False
    #: filled by refits so lookup-quality degradation can be inspected
    refit_generation: int = 0
    build_stats: dict = field(default_factory=dict)

    @property
    def node_count(self) -> int:
        return int(self.left.shape[0])

    @property
    def leaf_count(self) -> int:
        return int(np.count_nonzero(self.left < 0))

    def is_leaf(self, node: int) -> bool:
        return self.left[node] < 0

    def node_bytes(self) -> int:
        """Bytes fetched per node visit (identical for compacted accels)."""
        return NODE_FETCH_BYTES

    def depth(self) -> int:
        """Maximum depth of the tree (root at depth 0), computed iteratively."""
        if self.node_count == 0:
            return 0
        max_depth = 0
        stack = [(0, 0)]
        while stack:
            node, d = stack.pop()
            max_depth = max(max_depth, d)
            if not self.is_leaf(node):
                stack.append((int(self.left[node]), d + 1))
                stack.append((int(self.right[node]), d + 1))
        return max_depth

    def surface_areas(self) -> np.ndarray:
        """Surface area of every node's bounding box."""
        extents = np.maximum(self.node_maxs - self.node_mins, 0.0)
        ex, ey, ez = extents[:, 0], extents[:, 1], extents[:, 2]
        return 2.0 * (ex * ey + ey * ez + ez * ex)

    def sah_cost(self, traversal_cost: float = 1.0, intersect_cost: float = 1.0) -> float:
        """Classic SAH cost of the tree relative to the root's surface area."""
        if self.node_count == 0:
            return 0.0
        areas = self.surface_areas().astype(np.float64)
        root_area = max(float(areas[0]), 1e-30)
        leaves = self.left < 0
        inner = ~leaves
        cost = traversal_cost * float(areas[inner].sum()) / root_area
        cost += intersect_cost * float(
            (areas[leaves] * self.prim_count[leaves]).sum()
        ) / root_area
        return cost

    def statistics(self) -> BvhStatistics:
        leaves = self.left < 0
        leaf_sizes = self.prim_count[leaves]
        areas = self.surface_areas()
        # Sibling overlap: shared surface between the two children of each
        # inner node, a cheap proxy for BVH quality degradation after refits.
        inner = np.flatnonzero(~leaves)
        overlap = 0.0
        for node in inner:
            l, r = int(self.left[node]), int(self.right[node])
            o_min = np.maximum(self.node_mins[l], self.node_mins[r])
            o_max = np.minimum(self.node_maxs[l], self.node_maxs[r])
            ext = np.maximum(o_max - o_min, 0.0)
            overlap += float(2.0 * (ext[0] * ext[1] + ext[1] * ext[2] + ext[2] * ext[0]))
        return BvhStatistics(
            node_count=self.node_count,
            leaf_count=int(leaves.sum()),
            max_depth=self.depth(),
            max_leaf_size=int(leaf_sizes.max()) if leaf_sizes.size else 0,
            mean_leaf_size=float(leaf_sizes.mean()) if leaf_sizes.size else 0.0,
            sah_cost=self.sah_cost(),
            total_overlap_area=overlap,
        )

    def structure_bytes(self) -> int:
        """Modelled device memory consumed by the node structure alone."""
        return self.node_count * self.node_bytes()


def build_bvh(
    primitive_buffer: PrimitiveBuffer,
    options: BvhBuildOptions | None = None,
) -> Bvh:
    """Build a BVH over all primitives of ``primitive_buffer``.

    This is the software analogue of ``optixAccelBuild`` with
    ``OPTIX_BUILD_OPERATION_BUILD``.
    """
    options = options or BvhBuildOptions()
    options.validate()
    prim_mins, prim_maxs = primitive_buffer.compute_aabbs()
    prim_mins = prim_mins.astype(np.float64)
    prim_maxs = prim_maxs.astype(np.float64)
    n = prim_mins.shape[0]
    if n == 0:
        raise ValueError("cannot build a BVH over zero primitives")

    centroids = 0.5 * (prim_mins + prim_maxs)

    if options.builder == "lbvh":
        order = _lbvh_order(centroids, options.morton_bits)
        splitter = _LbvhSplitter(centroids, order, options)
    elif options.builder == "sah":
        order = np.arange(n, dtype=np.int64)
        splitter = _SahSplitter(centroids, prim_mins, prim_maxs, options)
    else:
        order = np.arange(n, dtype=np.int64)
        splitter = _MedianSplitter(centroids, options)

    builder = _TopDownBuilder(prim_mins, prim_maxs, options, splitter)
    bvh = builder.build(order)
    bvh.num_primitives = n
    bvh.build_stats = {
        "builder": options.builder,
        "num_primitives": n,
        "node_count": bvh.node_count,
        "leaf_count": bvh.leaf_count,
    }
    return bvh


def _lbvh_order(centroids: np.ndarray, morton_bits: int) -> np.ndarray:
    """Sort primitives by the Morton code of their quantised centroid."""
    codes = morton_encode_3d(centroids, morton_bits)
    return np.argsort(codes, kind="stable")


class _TopDownBuilder:
    """Shared top-down build loop; the splitter decides how ranges split."""

    def __init__(self, prim_mins, prim_maxs, options, splitter):
        self.prim_mins = prim_mins
        self.prim_maxs = prim_maxs
        self.options = options
        self.splitter = splitter
        self.node_mins: list[np.ndarray] = []
        self.node_maxs: list[np.ndarray] = []
        self.left: list[int] = []
        self.right: list[int] = []
        self.first_prim: list[int] = []
        self.prim_count: list[int] = []

    def _new_node(self) -> int:
        self.node_mins.append(np.zeros(3))
        self.node_maxs.append(np.zeros(3))
        self.left.append(-1)
        self.right.append(-1)
        self.first_prim.append(0)
        self.prim_count.append(0)
        return len(self.left) - 1

    def build(self, order: np.ndarray) -> Bvh:
        prim_indices = np.array(order, dtype=np.int64, copy=True)
        root = self._new_node()
        # Work stack of (node_id, start, end) ranges over prim_indices.
        stack = [(root, 0, len(prim_indices))]
        while stack:
            node, start, end = stack.pop()
            idx = prim_indices[start:end]
            mins = self.prim_mins[idx]
            maxs = self.prim_maxs[idx]
            self.node_mins[node] = mins.min(axis=0)
            self.node_maxs[node] = maxs.max(axis=0)
            count = end - start
            if count <= self.options.max_leaf_size:
                self.first_prim[node] = start
                self.prim_count[node] = count
                continue
            split = self.splitter.split(prim_indices, start, end)
            if split is None or split <= start or split >= end:
                # The splitter could not separate the range (e.g. identical
                # Morton codes or identical centroids): fall back to a median
                # split by index, as GPU builders do.
                split = start + count // 2
            left = self._new_node()
            right = self._new_node()
            self.left[node] = left
            self.right[node] = right
            stack.append((left, start, split))
            stack.append((right, split, end))
        return Bvh(
            node_mins=np.asarray(self.node_mins, dtype=np.float32),
            node_maxs=np.asarray(self.node_maxs, dtype=np.float32),
            left=np.asarray(self.left, dtype=np.int64),
            right=np.asarray(self.right, dtype=np.int64),
            first_prim=np.asarray(self.first_prim, dtype=np.int64),
            prim_count=np.asarray(self.prim_count, dtype=np.int64),
            prim_indices=prim_indices,
            num_primitives=len(prim_indices),
            options=self.options,
        )


class _MedianSplitter:
    """Split at the object median along the widest centroid axis."""

    def __init__(self, centroids, options):
        self.centroids = centroids
        self.options = options

    def split(self, prim_indices, start, end):
        idx = prim_indices[start:end]
        cents = self.centroids[idx]
        extents = cents.max(axis=0) - cents.min(axis=0)
        axis = int(np.argmax(extents))
        if extents[axis] <= 0.0:
            return None
        order = np.argsort(cents[:, axis], kind="stable")
        prim_indices[start:end] = idx[order]
        return start + (end - start) // 2


class _LbvhSplitter:
    """Split sorted Morton ranges at the highest differing bit.

    Primitives arrive already sorted by Morton code, so a split is simply the
    first index whose code differs from the range's first code in the most
    significant differing bit.  Ranges with identical codes fall back to an
    index-median split (handled by the caller), which reproduces the
    fully-overlapping sibling nodes that degrade traversal for pathological
    coordinate distributions.
    """

    def __init__(self, centroids, order, options):
        codes = morton_encode_3d(centroids, options.morton_bits)
        self.sorted_codes = codes[order]
        # Map from primitive id to position so we can recover sorted positions.
        self.options = options

    def split(self, prim_indices, start, end):
        codes = self.sorted_codes[start:end]
        first, last = int(codes[0]), int(codes[-1])
        if first == last:
            return None
        # Highest bit in which first and last differ.
        diff = first ^ last
        split_bit = diff.bit_length() - 1
        prefix = first >> split_bit
        # First position whose code has a different prefix above split_bit.
        boundary = np.searchsorted(codes >> split_bit, prefix, side="right")
        return start + int(boundary)


class _SahSplitter:
    """Binned surface-area-heuristic splitter."""

    def __init__(self, centroids, prim_mins, prim_maxs, options):
        self.centroids = centroids
        self.prim_mins = prim_mins
        self.prim_maxs = prim_maxs
        self.bins = options.sah_bins

    @staticmethod
    def _area(mins, maxs):
        ext = np.maximum(maxs - mins, 0.0)
        return 2.0 * (ext[0] * ext[1] + ext[1] * ext[2] + ext[2] * ext[0])

    def split(self, prim_indices, start, end):
        idx = prim_indices[start:end]
        cents = self.centroids[idx]
        lo = cents.min(axis=0)
        hi = cents.max(axis=0)
        extents = hi - lo
        axis = int(np.argmax(extents))
        if extents[axis] <= 0.0:
            return None

        nbins = self.bins
        scale = nbins / extents[axis]
        bin_ids = np.minimum(((cents[:, axis] - lo[axis]) * scale).astype(np.int64),
                             nbins - 1)

        best_cost = np.inf
        best_bin = -1
        counts = np.bincount(bin_ids, minlength=nbins)
        # Grow bin bounds.
        bin_mins = np.full((nbins, 3), np.inf)
        bin_maxs = np.full((nbins, 3), -np.inf)
        mins = self.prim_mins[idx]
        maxs = self.prim_maxs[idx]
        for b in range(nbins):
            mask = bin_ids == b
            if mask.any():
                bin_mins[b] = mins[mask].min(axis=0)
                bin_maxs[b] = maxs[mask].max(axis=0)
        # Sweep candidate partitions.
        for b in range(1, nbins):
            left_count = counts[:b].sum()
            right_count = counts[b:].sum()
            if left_count == 0 or right_count == 0:
                continue
            lmins = bin_mins[:b][counts[:b] > 0]
            lmaxs = bin_maxs[:b][counts[:b] > 0]
            rmins = bin_mins[b:][counts[b:] > 0]
            rmaxs = bin_maxs[b:][counts[b:] > 0]
            la = self._area(lmins.min(axis=0), lmaxs.max(axis=0))
            ra = self._area(rmins.min(axis=0), rmaxs.max(axis=0))
            cost = la * left_count + ra * right_count
            if cost < best_cost:
                best_cost = cost
                best_bin = b
        if best_bin < 0:
            return None
        mask_left = bin_ids < best_bin
        order = np.argsort(~mask_left, kind="stable")
        prim_indices[start:end] = idx[order]
        return start + int(mask_left.sum())
