"""Acceleration-structure refitting (``optixAccelBuild`` update analogue).

OptiX can *update* an existing BVH in place when the primitives move: the
tree topology is kept and only the bounding volumes are adjusted bottom-up.
This is much cheaper than a rebuild but — as Section 3.6 of the paper
measures — can degrade lookup performance dramatically when primitives move
far from their original position, because the adjusted bounding volumes grow
and overlap.  Our refit reproduces that organically: the new bounds are
computed from the new primitive positions under the *old* tree topology, so a
"swap adjacent buffer positions" workload inflates the boxes exactly as on
real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rtx.bvh import Bvh, fit_bounds_bottom_up
from repro.rtx.geometry import PrimitiveBuffer


@dataclass
class RefitResult:
    """Outcome of a refit pass."""

    bvh: Bvh
    nodes_updated: int
    bytes_read: int
    bytes_written: int
    surface_area_before: float
    surface_area_after: float

    @property
    def surface_area_growth(self) -> float:
        """Total node surface area after / before — a BVH quality indicator."""
        if self.surface_area_before <= 0:
            return 1.0
        return self.surface_area_after / self.surface_area_before


def refit_accel(bvh: Bvh, primitives: PrimitiveBuffer) -> RefitResult:
    """Refit ``bvh`` in place to the (moved) primitives.

    The primitive count must be unchanged — OptiX updates can neither add nor
    remove primitives — and the accel must have been built with the update
    flag.
    """
    if not bvh.options.allow_update:
        raise ValueError(
            "the accel was not built with ALLOW_UPDATE; rebuild instead of refitting"
        )
    if len(primitives) != bvh.num_primitives:
        raise ValueError(
            "updates cannot add or remove primitives: "
            f"expected {bvh.num_primitives}, got {len(primitives)}"
        )

    area_before = float(bvh.surface_areas().sum())
    prim_mins, prim_maxs = primitives.compute_aabbs()
    prim_mins = prim_mins.astype(np.float64)
    prim_maxs = prim_maxs.astype(np.float64)

    # Level-synchronous bottom-up pass: all leaves are refitted with one
    # segment reduction, then each level's inner nodes take the element-wise
    # min/max of their children — the same arithmetic as a per-node reverse
    # sweep, without the per-node interpreter loop.  The level grouping is
    # cached on the Bvh since refits never change the topology.
    node_mins, node_maxs = fit_bounds_bottom_up(
        bvh.left, bvh.right, bvh.first_prim, bvh.prim_count,
        bvh.prim_indices, prim_mins, prim_maxs, bvh.level_ranges(),
    )

    bvh.node_mins = node_mins.astype(np.float32)
    bvh.node_maxs = node_maxs.astype(np.float32)
    bvh.refit_generation += 1

    area_after = float(bvh.surface_areas().sum())
    node_bytes = bvh.node_bytes()
    return RefitResult(
        bvh=bvh,
        nodes_updated=bvh.node_count,
        bytes_read=bvh.num_primitives * max(
            primitives.primitive_bytes() // max(len(primitives), 1), 1
        ) + bvh.node_count * node_bytes,
        bytes_written=bvh.node_count * node_bytes,
        surface_area_before=area_before,
        surface_area_after=area_after,
    )
