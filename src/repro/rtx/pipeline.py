"""The OptiX-shaped front-end: device context, accel build, pipeline launch.

The names follow the OptiX 7 host API so that :class:`repro.core.rx_index.RXIndex`
reads like the CUDA/OptiX code described in the paper:

* :func:`accel_build`   — ``optixAccelBuild`` (build operation)
* :func:`accel_compact` — ``optixAccelCompact``
* :func:`accel_update`  — ``optixAccelBuild`` (update operation / refit)
* :class:`Pipeline` and :meth:`Pipeline.launch` — ``optixPipeline`` + ``optixLaunch``

A launch spawns one logical thread per ray (the paper spawns one per lookup),
runs the ray-generation program, traces the rays against the accel, and feeds
every intersection to the any-hit program.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.rtx.build_input import BuildFlags, BuildInput
from repro.rtx.bvh import Bvh, BvhBuildOptions, build_bvh
from repro.rtx.compaction import CompactionResult, compact_accel
from repro.rtx.forest import BvhForest, DeltaUpdateStats, build_forest, delta_update_forest
from repro.rtx.geometry import RayBatch
from repro.rtx.memory import DeviceMemoryTracker, accel_memory_estimate
from repro.rtx.refit import RefitResult, refit_accel
from repro.rtx.traversal import HitRecords, TraversalCounters, TraversalEngine


@dataclass
class DeviceContext:
    """Holds per-device state: the memory tracker and default build options.

    The OptiX analogue is ``OptixDeviceContext``; ours additionally exposes
    the memory tracker that the paper's Table 6 numbers correspond to.
    """

    memory: DeviceMemoryTracker = field(default_factory=DeviceMemoryTracker)
    default_build_options: BvhBuildOptions = field(default_factory=BvhBuildOptions)


@dataclass
class BuildMetrics:
    """Work performed by an accel build, consumed by the GPU cost model."""

    num_primitives: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    sort_passes: int = 0
    temp_bytes: int = 0


@dataclass
class GeometryAccel:
    """A built geometry acceleration structure (GAS).

    Bundles the functional BVH, the primitive buffer it indexes, the memory
    model numbers, and the metrics of the build that produced it.
    """

    bvh: Bvh
    build_input: BuildInput
    flags: BuildFlags
    memory_handle: int
    memory_info: dict[str, int]
    build_metrics: BuildMetrics
    compacted: bool = False
    #: set for sharded builds: the forest bookkeeping behind ``bvh`` (whose
    #: stitched tree is bit-identical to a single-tree build), enabling
    #: delta-shard updates via :func:`accel_delta_update`
    forest: BvhForest | None = None

    @property
    def num_primitives(self) -> int:
        return self.bvh.num_primitives

    @property
    def primitive_kind(self) -> str:
        return self.build_input.primitive_buffer().kind

    @property
    def size_bytes(self) -> int:
        """Current modelled device footprint of the accel."""
        key = "compacted" if self.compacted else "uncompacted"
        return self.memory_info[key]


def accel_build(
    context: DeviceContext,
    build_input: BuildInput,
    flags: BuildFlags = BuildFlags.ALLOW_COMPACTION,
    build_options: BvhBuildOptions | None = None,
) -> GeometryAccel:
    """Build a geometry acceleration structure over ``build_input``.

    Mirrors ``optixAccelBuild`` with the build operation: temporary memory is
    allocated for the duration of the build (and accounted in the tracker's
    peak), the resulting accel stays resident.
    """
    options = build_options or context.default_build_options
    options = BvhBuildOptions(
        builder=options.builder,
        max_leaf_size=options.max_leaf_size,
        sah_bins=options.sah_bins,
        morton_bits=options.morton_bits,
        allow_update=bool(flags & BuildFlags.ALLOW_UPDATE),
        allow_compaction=bool(flags & BuildFlags.ALLOW_COMPACTION),
        shard_bits=options.shard_bits,
        workers=options.workers,
        backend=options.backend,
    )

    buffer = build_input.primitive_buffer()
    memory_info = accel_memory_estimate(buffer.kind, len(buffer))

    temp_handle = context.memory.alloc(
        "accel_build_temp", memory_info["build_temp"], temporary=True
    )
    accel_handle = context.memory.alloc("accel", memory_info["uncompacted"])

    forest = None
    if options.shard_bits:
        forest = build_forest(buffer, options)
        bvh = forest.bvh
    else:
        bvh = build_bvh(buffer, options)

    context.memory.free(temp_handle)

    metrics = BuildMetrics(
        num_primitives=len(buffer),
        bytes_read=build_input.primitive_bytes,
        bytes_written=memory_info["uncompacted"],
        sort_passes=forest.non_empty_shards if forest else (
            1 if options.builder == "lbvh" else 0
        ),
        temp_bytes=memory_info["build_temp"],
    )
    return GeometryAccel(
        bvh=bvh,
        build_input=build_input,
        flags=flags,
        memory_handle=accel_handle,
        memory_info=memory_info,
        build_metrics=metrics,
        forest=forest,
    )


def accel_compact(context: DeviceContext, accel: GeometryAccel) -> CompactionResult:
    """Compact ``accel`` in place (``optixAccelCompact``).

    The compacted accel replaces the uncompacted one in the memory tracker;
    the temporary co-existence of both copies is reflected in the peak.
    """
    result = compact_accel(accel.bvh)
    if result.bytes_copied == 0:
        return result
    new_handle = context.memory.alloc("accel_compacted", accel.memory_info["compacted"])
    context.memory.free(accel.memory_handle)
    accel.memory_handle = new_handle
    accel.bvh = result.bvh
    accel.compacted = True
    return result


def accel_update(
    context: DeviceContext, accel: GeometryAccel, new_build_input: BuildInput
) -> RefitResult:
    """Refit ``accel`` to moved primitives (``optixAccelBuild`` update op).

    Updates require the accel to have been built with ``ALLOW_UPDATE`` and,
    like OptiX, need temporary memory even though the node structure is
    reused.
    """
    buffer = new_build_input.primitive_buffer()
    temp_handle = context.memory.alloc(
        "accel_update_temp",
        int(accel.memory_info["build_temp"] * 0.5),
        temporary=True,
    )
    try:
        result = refit_accel(accel.bvh, buffer)
    finally:
        context.memory.free(temp_handle)
    accel.build_input = new_build_input
    return result


def accel_delta_update(
    context: DeviceContext, accel: GeometryAccel, new_build_input: BuildInput
) -> DeltaUpdateStats:
    """Delta-shard update: rebuild only the shards the new input dirtied.

    Requires the accel to have been built with ``shard_bits > 0``.  Unlike a
    refit, the dirty subtrees are *rebuilt*, so the updated accel is
    bit-identical to a from-scratch build over ``new_build_input`` (no
    quality degradation), at a sorting/building cost proportional to the
    dirty shards.  Temporary memory scales with the dirty fraction instead
    of the full build scratch.
    """
    if accel.forest is None:
        raise ValueError(
            "delta updates require a sharded accel (build with shard_bits >= 1)"
        )
    new_buffer = new_build_input.primitive_buffer()
    old_buffer = accel.build_input.primitive_buffer()

    updated, stats = delta_update_forest(accel.forest, old_buffer, new_buffer)
    dirty_fraction = stats.dirty_keys / max(stats.total_keys, 1)
    temp_handle = context.memory.alloc(
        "accel_delta_temp",
        int(accel.memory_info["build_temp"] * dirty_fraction),
        temporary=True,
    )
    try:
        if len(new_buffer) != accel.bvh.num_primitives:
            # The key count changed: swap the allocation like a rebuild does.
            memory_info = accel_memory_estimate(new_buffer.kind, len(new_buffer))
            key = "compacted" if accel.compacted else "uncompacted"
            new_handle = context.memory.alloc("accel", memory_info[key])
            context.memory.free(accel.memory_handle)
            accel.memory_handle = new_handle
            accel.memory_info = memory_info
        if not stats.noop:
            bvh = updated.bvh
            # Rebuilt subtrees are recompacted on the way in, mirroring the
            # rebuild path's compaction step.
            bvh.compacted = accel.compacted
            accel.bvh = bvh
        accel.forest = updated
        accel.build_input = new_build_input
    finally:
        context.memory.free(temp_handle)
    return stats


@dataclass
class LaunchResult:
    """Everything a pipeline launch produced."""

    hits: HitRecords
    counters: TraversalCounters
    num_lookups: int
    num_rays: int
    #: per-group counters when the launch was traced with ``ray_groups``
    #: (the serving layer's coalesced launches); None otherwise.  Entry ``g``
    #: is bit-identical to the counters of a solo launch of group ``g``.
    group_counters: list[TraversalCounters] | None = None

    def hits_per_lookup(self) -> np.ndarray:
        """Number of reported hits per originating lookup."""
        counts = np.zeros(self.num_lookups, dtype=np.int64)
        if self.hits.count:
            np.add.at(counts, self.hits.lookup_ids, 1)
        return counts


@dataclass
class Pipeline:
    """A ray-tracing pipeline bound to one accel.

    ``raygen`` converts launch parameters into a :class:`RayBatch` (the paper
    converts each lookup range into ray origin/direction/tmin/tmax there);
    ``any_hit`` optionally filters intersections (used by the AABB primitive,
    whose intersection program re-checks the candidate in software).
    """

    context: DeviceContext
    accel: GeometryAccel
    raygen: Callable[..., RayBatch] | None = None
    any_hit: Callable | None = None
    #: forwarded to :class:`TraversalEngine` — bounds the number of
    #: (ray, node) pairs materialised at once so huge launches stream in
    #: bounded-memory slices; counters and hits are identical either way.
    max_frontier: int | None = None
    #: optional :class:`repro.serve.faults.FaultInjector` seam: when set,
    #: every launch first consults the "launch" site (raising an injected
    #: launch failure) and the "launch_latency" site (stalling the launch by
    #: the injected delay).  The serving layer's epoch manager attaches this
    #: when a service runs under fault injection; plain lookups leave it None.
    fault_injector: object | None = None

    def __post_init__(self) -> None:
        self._engine = TraversalEngine(
            self.accel.bvh,
            self.accel.build_input.primitive_buffer(),
            max_frontier=self.max_frontier,
        )

    @property
    def engine(self) -> TraversalEngine:
        return self._engine

    def refresh(self) -> None:
        """Re-bind the traversal engine after a rebuild/refit of the accel."""
        self._engine = TraversalEngine(
            self.accel.bvh,
            self.accel.build_input.primitive_buffer(),
            max_frontier=self.max_frontier,
        )

    def launch(
        self,
        rays: RayBatch | None = None,
        num_lookups: int | None = None,
        mode: str = "all",
        limit: int | None = None,
        ray_groups: np.ndarray | None = None,
        any_hit: Callable | None = None,
        **raygen_params,
    ) -> LaunchResult:
        """Launch the pipeline for a batch of rays.

        Either pass a prepared :class:`RayBatch`, or rely on the pipeline's
        ray-generation program by passing its parameters as keyword arguments.
        ``mode`` selects the trace semantics (see
        :meth:`repro.rtx.traversal.TraversalEngine.trace`): ``"all"`` reports
        every intersection, ``"any_hit"`` terminates each ray at its first
        surviving hit, ``"first_k"`` stops each lookup after ``limit``
        surviving hits, ``"ordered_k"`` keeps each lookup's ``limit``
        t-smallest hits in key order (``limit`` is required for, and only
        valid with, the two budgeted modes).  ``ray_groups`` (one group id
        per ray) additionally splits the launch's counters per group — see
        :meth:`repro.rtx.traversal.TraversalEngine.trace`.  ``any_hit``
        overrides the pipeline-level any-hit program for this launch only
        (cursor resumes install a per-launch exclusive filter this way).
        """
        if self.fault_injector is not None:
            self.fault_injector.check("launch")
            stall = self.fault_injector.latency("launch_latency")
            if stall > 0.0:
                time.sleep(stall)
        if rays is None:
            if self.raygen is None:
                raise ValueError("no rays given and no ray-generation program bound")
            rays = self.raygen(**raygen_params)
        if num_lookups is None:
            num_lookups = int(rays.lookup_ids.max()) + 1 if len(rays) else 0
        self._engine.reset_counters()
        hits = self._engine.trace(
            rays,
            any_hit=any_hit if any_hit is not None else self.any_hit,
            mode=mode,
            limit=limit,
            ray_groups=ray_groups,
        )
        counters = self._engine.counters
        return LaunchResult(
            hits=hits,
            counters=counters,
            num_lookups=num_lookups,
            num_rays=len(rays),
            group_counters=self._engine.group_counters,
        )
