"""Simulated NVIDIA OptiX / RT-core substrate.

This subpackage re-implements, in pure Python + NumPy, the parts of the
OptiX 7 raytracing stack that the RTIndeX paper relies on:

* float32 coordinate handling (:mod:`repro.rtx.float32`),
* geometric primitives and intersection tests (:mod:`repro.rtx.geometry`),
* OptiX-style acceleration-structure build inputs (:mod:`repro.rtx.build_input`),
* bounding volume hierarchies with SAH and LBVH builders (:mod:`repro.rtx.bvh`,
  :mod:`repro.rtx.morton`) and the Morton-prefix sharded forest build with
  delta-shard updates (:mod:`repro.rtx.forest`),
* compaction and refitting (:mod:`repro.rtx.compaction`, :mod:`repro.rtx.refit`),
* the traversal engine with hardware-style counters (:mod:`repro.rtx.traversal`),
* a programmable pipeline mirroring ``optixLaunch`` (:mod:`repro.rtx.pipeline`),
* device memory accounting (:mod:`repro.rtx.memory`).

The functional behaviour (which primitives a ray hits, within which
``[tmin, tmax]`` interval) is exact; the performance behaviour is exposed as
counters that the :mod:`repro.gpusim` cost model converts into simulated
milliseconds.
"""

from repro.rtx.build_input import (
    AabbBuildInput,
    BuildFlags,
    SphereBuildInput,
    TriangleBuildInput,
)
from repro.rtx.bvh import Bvh, BvhBuildOptions, build_bvh
from repro.rtx.compaction import compact_accel
from repro.rtx.forest import (
    BuildTelemetry,
    BvhForest,
    build_forest,
    delta_update_forest,
)
from repro.rtx.geometry import AabbBuffer, RayBatch, SphereBuffer, TriangleBuffer
from repro.rtx.memory import DeviceMemoryTracker
from repro.rtx.pipeline import (
    DeviceContext,
    GeometryAccel,
    LaunchResult,
    Pipeline,
    accel_build,
    accel_compact,
    accel_delta_update,
    accel_update,
)
from repro.rtx.refit import refit_accel
from repro.rtx.traversal import TraversalCounters, TraversalEngine

__all__ = [
    "AabbBuffer",
    "AabbBuildInput",
    "BuildFlags",
    "BuildTelemetry",
    "Bvh",
    "BvhBuildOptions",
    "BvhForest",
    "DeviceContext",
    "DeviceMemoryTracker",
    "GeometryAccel",
    "LaunchResult",
    "Pipeline",
    "RayBatch",
    "SphereBuffer",
    "SphereBuildInput",
    "TraversalCounters",
    "TraversalEngine",
    "TriangleBuffer",
    "TriangleBuildInput",
    "accel_build",
    "accel_compact",
    "accel_delta_update",
    "accel_update",
    "build_bvh",
    "build_forest",
    "delta_update_forest",
    "compact_accel",
    "refit_accel",
]
