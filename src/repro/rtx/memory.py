"""Device memory accounting.

Tracks allocations the way the paper reports them (Table 6): the *final*
footprint of an index and the *additional overhead during construction*
(temporary buffers, uncompacted acceleration structures, out-of-place sort
buffers).  The tracker is deliberately simple — a named bump allocator with
peak tracking — because only sizes matter, never addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Allocation:
    """A single named device allocation."""

    name: str
    size_bytes: int
    temporary: bool = False


@dataclass
class DeviceMemoryTracker:
    """Tracks live allocations, current usage, and the high-water mark."""

    allocations: dict[int, Allocation] = field(default_factory=dict)
    current_bytes: int = 0
    peak_bytes: int = 0
    _next_handle: int = 0

    def alloc(self, name: str, size_bytes: int, temporary: bool = False) -> int:
        """Allocate ``size_bytes`` and return an opaque handle."""
        if size_bytes < 0:
            raise ValueError("allocation size must be non-negative")
        handle = self._next_handle
        self._next_handle += 1
        self.allocations[handle] = Allocation(name, int(size_bytes), temporary)
        self.current_bytes += int(size_bytes)
        self.peak_bytes = max(self.peak_bytes, self.current_bytes)
        return handle

    def free(self, handle: int) -> None:
        """Release a previous allocation."""
        alloc = self.allocations.pop(handle, None)
        if alloc is None:
            raise KeyError(f"unknown allocation handle {handle}")
        self.current_bytes -= alloc.size_bytes

    def free_temporaries(self) -> int:
        """Release every allocation flagged temporary; returns bytes freed."""
        freed = 0
        for handle in [h for h, a in self.allocations.items() if a.temporary]:
            freed += self.allocations[handle].size_bytes
            self.free(handle)
        return freed

    @property
    def overhead_bytes(self) -> int:
        """Peak usage beyond what is currently resident (build overhead)."""
        return max(self.peak_bytes - self.current_bytes, 0)

    def reset_peak(self) -> None:
        self.peak_bytes = self.current_bytes

    def snapshot(self) -> dict[str, int]:
        """Current usage grouped by allocation name."""
        usage: dict[str, int] = {}
        for alloc in self.allocations.values():
            usage[alloc.name] = usage.get(alloc.name, 0) + alloc.size_bytes
        return usage


#: Modelled per-primitive byte costs of the acceleration structure, before and
#: after compaction, for each primitive type.  The constants are calibrated so
#: the *relationships* of Figure 7c and Table 6 hold: triangles have the
#: largest uncompacted footprint, compaction saves roughly half for triangles
#: and AABBs, and sphere BVHs end up the largest after compaction.
ACCEL_BYTES_PER_PRIMITIVE = {
    "triangle": {"uncompacted": 82.0, "compacted": 41.0},
    "sphere": {"uncompacted": 64.0, "compacted": 48.0},
    "aabb": {"uncompacted": 68.0, "compacted": 34.0},
}

#: Temporary build memory, as a fraction of the uncompacted accel size
#: (scratch space used by the builder, mirroring Table 6's build overhead).
ACCEL_BUILD_TEMP_FRACTION = 0.3


def accel_memory_estimate(primitive_kind: str, num_primitives: int) -> dict[str, int]:
    """Return modelled accel sizes in bytes for ``num_primitives`` primitives.

    Keys of the returned dict: ``uncompacted``, ``compacted``, ``build_temp``,
    ``peak_during_build``.
    """
    if primitive_kind not in ACCEL_BYTES_PER_PRIMITIVE:
        raise ValueError(f"unknown primitive kind {primitive_kind!r}")
    model = ACCEL_BYTES_PER_PRIMITIVE[primitive_kind]
    uncompacted = int(model["uncompacted"] * num_primitives)
    compacted = int(model["compacted"] * num_primitives)
    build_temp = int(ACCEL_BUILD_TEMP_FRACTION * uncompacted)
    return {
        "uncompacted": uncompacted,
        "compacted": compacted,
        "build_temp": build_temp,
        "peak_during_build": uncompacted + build_temp,
    }
