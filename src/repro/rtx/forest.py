"""Morton-prefix sharded BVH forest: parallel builds, delta-shard updates.

The forest partitions primitives by the top ``shard_bits`` bits of their
Morton codes into ``S = 2**shard_bits`` shards.  Because the LBVH splits every
range at its *highest differing* Morton bit, two primitives in different
prefix buckets always separate on one of the top ``shard_bits`` levels —
which means the single tree :func:`repro.rtx.bvh.build_bvh` emits is exactly

* a small **top-level node table** whose splits happen in prefix space
  (computable from per-bucket counts alone, without touching primitives), and
* one **independent sub-BVH per bucket**, each derivable from nothing but the
  bucket's own sorted codes and primitive bounds.

The forest therefore builds the shards independently — optionally across a
``multiprocessing`` pool, with bit-identical per-shard results for any worker
count — and stitches them under the top-level table into a tree whose arrays
(including the stack-order DFS node numbering) equal the single-tree build
bit for bit.  Traversal needs no special dispatch path: advancing the
frontier through the top-level table *is* the shard dispatch (a ray only ever
reaches the sub-BVHs whose shard bounds it overlaps), and because the
stitched tree is the single tree, hits and counters of all three trace modes
come out in exactly the single-tree stream order.

Updates exploit the same decomposition: :func:`delta_update_forest` compares
the new primitive bounds row by row against the previous build, marks only
the shards that gained, lost, or moved a primitive as dirty, re-sorts and
rebuilds those, and re-stitches.  Clean shards reuse their sorted row order
and sub-tree unchanged (their leaf ranges are merely rebased), so the
expensive work scales with the dirty shards instead of the total key count.
An update that dirties nothing is recognised as a no-op and rebuilds nothing.

One top-level subtlety: a range whose total count is at most
``max_leaf_size`` becomes a single leaf in the single tree even when it spans
several buckets.  The top-level planner reproduces this by absorbing such
runs of tiny buckets into *mixed leaves*; absorbed buckets keep their sorted
rows (they still occupy their slice of the global primitive stream) but carry
no sub-tree.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

from repro.rtx.build_input import write_aabbs_into
from repro.rtx.bvh import (
    BVH_ARRAY_FIELDS,
    Bvh,
    BvhBuildOptions,
    _dfs_renumbering,
    build_lbvh_over_sorted,
)
from repro.rtx.geometry import PrimitiveBuffer, ray_box_overlap_pairs
from repro.rtx.morton import (
    morton_interleave_grid,
    morton_prefix_buckets,
    quantize_points_to_grid,
    quantize_to_grid_with_bounds,
)
from repro.rtx.shm import ShmArena

#: Worker-side payload shared with forked pool processes.  Set in the parent
#: immediately before the pool is created so the children inherit it through
#: fork without pickling the (large) grid and bound arrays per task.
_SHARD_PAYLOAD: dict | None = None


@dataclass
class ShardJob:
    """One unit of shard work: sort a bucket's rows and/or build its tree."""

    bucket: int
    rows: np.ndarray
    needs_sort: bool
    build_tree: bool


@dataclass
class DeltaUpdateStats:
    """What a delta-shard update actually did."""

    total_shards: int
    non_empty_shards: int
    dirty_shards: int
    rebuilt_trees: int
    dirty_keys: int
    total_keys: int
    noop: bool = False
    #: True when the global Morton grid moved (scene bounds changed), which
    #: re-quantises every code and forces a full re-sort of all shards.
    rescaled: bool = False


@dataclass
class BuildTelemetry:
    """What a forest build (or delta update) moved and spent.

    ``bytes_shared`` counts shared-memory block bytes the workers access as
    zero-copy views (0 under the fork backend); ``bytes_pickled`` counts
    bytes that crossed the pool's pickle channel — exact task-descriptor
    sizes for the shm backend, an array-size estimate (rows out, rows plus
    sub-tree arrays back) for fork.  Surfaced as ``RXIndex.stats()["build"]``.
    """

    backend: str
    workers_requested: int
    workers_used: int
    shards: int
    delegated_shards: int
    bytes_shared: int
    bytes_pickled: int
    tasks: int
    wall_seconds: float


@dataclass
class BvhForest:
    """A sharded BVH build: the stitched tree plus per-shard bookkeeping.

    ``bvh`` is bit-identical to the single-tree ``build_bvh`` output; the
    remaining fields exist so delta updates can identify and reuse clean
    shards.
    """

    bvh: Bvh
    options: BvhBuildOptions
    num_primitives: int
    #: bounds of the centroid cloud that defined the global Morton grid
    scene_lo: np.ndarray
    scene_hi: np.ndarray
    #: Morton-prefix bucket of every primitive row
    bucket_of_row: np.ndarray
    #: non-empty bucket ids, ascending (their stream slices concatenate into
    #: ``bvh.prim_indices``)
    shard_ids: np.ndarray
    #: per non-empty bucket: global rows in shard-sorted (code) order
    shard_rows: dict[int, np.ndarray]
    #: per *delegated* bucket: its sub-BVH in shard-local numbering
    shard_trees: dict[int, Bvh]
    workers_used: int = 1
    built_shards: int = 0
    _top_node_count: int = 0
    #: telemetry of the build or update that produced this forest
    telemetry: BuildTelemetry | None = None
    #: shm backend bookkeeping (None under fork): the persistent input blocks
    #: reused across delta updates, and this epoch's output blocks (the old
    #: epoch a delta copies clean shards out of)
    _shm_state: object = field(default=None, repr=False, compare=False)
    _shm_epoch: object = field(default=None, repr=False, compare=False)

    @property
    def num_shards(self) -> int:
        return 1 << self.options.shard_bits

    @property
    def non_empty_shards(self) -> int:
        return int(self.shard_ids.shape[0])

    @property
    def delegated_shards(self) -> int:
        return len(self.shard_trees)

    @property
    def top_node_count(self) -> int:
        """Nodes of the top-level table (splits above the shard roots)."""
        return self._top_node_count

    def shard_bounds(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Root bounds of every delegated shard as ``(ids, mins, maxs)``."""
        ids = np.array(sorted(self.shard_trees), dtype=np.int64)
        if ids.size == 0:
            return ids, np.zeros((0, 3), np.float32), np.zeros((0, 3), np.float32)
        mins = np.stack([self.shard_trees[int(b)].node_mins[0] for b in ids])
        maxs = np.stack([self.shard_trees[int(b)].node_maxs[0] for b in ids])
        return ids, mins, maxs

    def dispatch_counts(self, rays) -> dict[int, int]:
        """Rays overlapping each delegated shard's root bounds.

        Diagnostic mirror of what frontier traversal does implicitly: a ray
        only descends into the sub-BVHs returned here.  Uses the engine's
        default node culling (the near limit is clamped to zero, like the
        hardware).
        """
        ids, mins, maxs = self.shard_bounds()
        node_tmin = np.minimum(rays.tmin, np.float32(0.0))
        counts: dict[int, int] = {}
        for i, b in enumerate(ids.tolist()):
            m = len(rays)
            overlap = ray_box_overlap_pairs(
                rays.origins,
                rays.directions,
                node_tmin,
                rays.tmax,
                np.broadcast_to(mins[i].astype(np.float64), (m, 3)),
                np.broadcast_to(maxs[i].astype(np.float64), (m, 3)),
            )
            counts[b] = int(np.count_nonzero(overlap))
        return counts


# --------------------------------------------------------------------------- #
# top-level planning (prefix space)
# --------------------------------------------------------------------------- #


@dataclass
class _TopPlan:
    """The single tree's structure above the shard roots.

    ``entries`` lists the top-level nodes in creation (preorder) order; each
    is ``("leaf", stream_lo, count)`` or ``("inner", left_ref, right_ref)``
    with refs of the form ``("t", entry_index)`` or ``("s", bucket_id)``.
    ``delegated`` holds the buckets that root their own sub-BVH.
    """

    entries: list[tuple] = field(default_factory=list)
    delegated: list[int] = field(default_factory=list)


def plan_top_level(
    shard_vals: np.ndarray, shard_counts: np.ndarray, max_leaf_size: int
) -> _TopPlan:
    """Derive the top-level node table from per-bucket counts alone.

    Mirrors the single-tree recursion exactly: a range whose count fits a
    leaf becomes a (possibly bucket-spanning) leaf, a range inside one bucket
    delegates to that bucket's sub-builder, and every other range splits at
    its highest differing Morton bit — which, for ranges spanning two or more
    prefix buckets, is always a prefix bit and therefore computable from the
    bucket ids.
    """
    plan = _TopPlan()
    if shard_vals.shape[0] == 0:
        return plan
    stream_starts = np.cumsum(shard_counts) - shard_counts

    # (range over bucket indices, parent entry, which child slot); the root
    # gets a placeholder parent.  Children are resolved by patching the
    # parent entry once the child's id (or shard delegation) is known.
    stack: list[tuple[int, int, int, int]] = [(0, int(shard_vals.shape[0]), -1, 0)]
    range_counts = np.cumsum(shard_counts)

    def _emit(parent: int, slot: int, ref: tuple) -> None:
        if parent < 0:
            return
        kind, left_ref, right_ref = plan.entries[parent]
        if slot == 0:
            plan.entries[parent] = (kind, ref, right_ref)
        else:
            plan.entries[parent] = (kind, left_ref, ref)

    while stack:
        a, b, parent, slot = stack.pop()
        count = int(range_counts[b - 1] - (range_counts[a - 1] if a else 0))
        if count <= max_leaf_size:
            plan.entries.append(("leaf", int(stream_starts[a]), count))
            _emit(parent, slot, ("t", len(plan.entries) - 1))
            continue
        if b - a == 1:
            bucket = int(shard_vals[a])
            plan.delegated.append(bucket)
            _emit(parent, slot, ("s", bucket))
            continue
        first = int(shard_vals[a])
        last = int(shard_vals[b - 1])
        # Highest differing Morton bit of the range, expressed in bucket
        # space (different buckets always differ within the prefix).
        h = (first ^ last).bit_length() - 1
        prefix = first >> h
        pos = a + int(np.searchsorted(shard_vals[a:b] >> np.uint64(h), prefix, "right"))
        node = len(plan.entries)
        plan.entries.append(("inner", None, None))
        _emit(parent, slot, ("t", node))
        # Push right first so ids are allocated left-first like the builder
        # (the final numbering is recomputed globally either way).
        stack.append((pos, b, node, 1))
        stack.append((a, pos, node, 0))
    return plan


# --------------------------------------------------------------------------- #
# shard jobs
# --------------------------------------------------------------------------- #


def _run_shard_job(job: ShardJob):
    """Sort one bucket's rows by Morton code and optionally build its tree.

    Reads the large shared inputs from :data:`_SHARD_PAYLOAD` (inherited via
    fork in pooled builds, set directly for serial ones).  Deterministic in
    its inputs, so results are bit-identical for any pool size.
    """
    payload = _SHARD_PAYLOAD
    rows = job.rows
    codes = morton_interleave_grid(payload["grid"][rows], payload["bits"])
    if job.needs_sort:
        order = np.argsort(codes, kind="stable")
        rows = rows[order]
        codes = codes[order]
    tree = None
    if job.build_tree:
        tree = build_lbvh_over_sorted(
            codes,
            payload["prim_mins"][rows],
            payload["prim_maxs"][rows],
            payload["options"],
        )
    return job.bucket, rows, tree


def _execute_jobs(
    jobs: list[ShardJob], payload: dict, workers: int
) -> tuple[list, int]:
    """Run shard jobs serially or across a fork pool; returns (results, pool size)."""
    global _SHARD_PAYLOAD
    _SHARD_PAYLOAD = payload
    try:
        pool_size = min(workers, len(jobs))
        if pool_size > 1:
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:
                pool_size = 1
        if pool_size > 1:
            with ctx.Pool(processes=pool_size) as pool:
                results = pool.map(_run_shard_job, jobs)
        else:
            pool_size = 1
            results = [_run_shard_job(job) for job in jobs]
        return results, pool_size
    finally:
        _SHARD_PAYLOAD = None


def _fork_bytes_pickled(jobs: list[ShardJob], results: list, pool_size: int) -> int:
    """Estimate of bytes that crossed the fork pool's pickle channel.

    Each job ships its row-index array to a worker and receives the rows
    (plus the sub-tree arrays, when one was built) back — the O(n) per-task
    traffic the shm backend eliminates.  Serial execution pickles nothing.
    """
    if pool_size <= 1:
        return 0
    total = sum(int(job.rows.nbytes) for job in jobs)
    for _, rows, tree in results:
        total += int(rows.nbytes)
        if tree is not None:
            total += sum(int(getattr(tree, name).nbytes) for name in BVH_ARRAY_FIELDS)
    return total


# --------------------------------------------------------------------------- #
# stitching
# --------------------------------------------------------------------------- #


def _stitch(
    shard_vals: np.ndarray,
    shard_counts: np.ndarray,
    shard_rows: dict[int, np.ndarray],
    shard_trees: dict[int, Bvh],
    plan: _TopPlan,
    prim_mins: np.ndarray,
    prim_maxs: np.ndarray,
    options: BvhBuildOptions,
) -> Bvh:
    """Assemble the global single tree from the top plan and shard sub-trees.

    Works in an intermediate numbering (top-level nodes first, shard blocks
    after), then renumbers to the stack-order DFS ids the single-tree builder
    emits — the output arrays are bit-identical to ``build_bvh`` with
    ``shard_bits=0``.
    """
    stream_starts = np.cumsum(shard_counts) - shard_counts
    start_of_bucket = {int(b): int(s) for b, s in zip(shard_vals, stream_starts)}
    rows_stream = (
        np.concatenate([shard_rows[int(b)] for b in shard_vals])
        if shard_vals.size
        else np.zeros(0, dtype=np.int64)
    )
    n = int(rows_stream.shape[0])

    num_top = len(plan.entries)
    offsets: dict[int, int] = {}
    next_id = num_top
    for bucket in sorted(shard_trees):
        offsets[bucket] = next_id
        next_id += shard_trees[bucket].node_count
    if next_id == 0:
        # Non-empty inputs always yield at least one plan entry or one
        # delegated shard; both entry points reject zero primitives.
        raise ValueError("cannot stitch an empty forest")
    num_nodes = next_id

    left = np.full(num_nodes, -1, dtype=np.int64)
    right = np.full(num_nodes, -1, dtype=np.int64)
    first_prim = np.zeros(num_nodes, dtype=np.int64)
    prim_count = np.zeros(num_nodes, dtype=np.int64)
    node_mins = np.empty((num_nodes, 3), dtype=np.float32)
    node_maxs = np.empty((num_nodes, 3), dtype=np.float32)

    # Shard blocks: rebase child pointers by the block offset and leaf ranges
    # by the bucket's slice of the global primitive stream.
    for bucket, tree in shard_trees.items():
        off = offsets[bucket]
        sl = slice(off, off + tree.node_count)
        inner = tree.left >= 0
        left[sl] = np.where(inner, tree.left + off, -1)
        right[sl] = np.where(inner, tree.right + off, -1)
        # Only leaves reference the primitive stream; inner nodes keep the
        # builder's zero placeholder.
        first_prim[sl] = np.where(
            inner, tree.first_prim, tree.first_prim + start_of_bucket[bucket]
        )
        prim_count[sl] = tree.prim_count
        node_mins[sl] = tree.node_mins
        node_maxs[sl] = tree.node_maxs

    def _resolve(ref: tuple) -> int:
        return ref[1] if ref[0] == "t" else offsets[ref[1]]

    # Top leaves first (their bounds come straight from the primitives), then
    # inner bounds bottom-up — children always have larger entry ids, so one
    # reverse sweep suffices.
    for i, entry in enumerate(plan.entries):
        if entry[0] == "leaf":
            _, lo, count = entry
            first_prim[i] = lo
            prim_count[i] = count
            gathered = rows_stream[lo : lo + count]
            node_mins[i] = prim_mins[gathered].min(axis=0).astype(np.float32)
            node_maxs[i] = prim_maxs[gathered].max(axis=0).astype(np.float32)
    for i in range(num_top - 1, -1, -1):
        entry = plan.entries[i]
        if entry[0] != "inner":
            continue
        l = _resolve(entry[1])
        r = _resolve(entry[2])
        left[i] = l
        right[i] = r
        node_mins[i] = np.minimum(node_mins[l], node_mins[r])
        node_maxs[i] = np.maximum(node_maxs[l], node_maxs[r])

    levels: list[np.ndarray] = []
    frontier = np.zeros(1, dtype=np.int64)
    while frontier.size:
        levels.append(frontier)
        inner = frontier[left[frontier] >= 0]
        if inner.size == 0:
            break
        frontier = np.concatenate([left[inner], right[inner]])

    perm = _dfs_renumbering(left, right, levels)
    out_mins = np.empty_like(node_mins)
    out_maxs = np.empty_like(node_maxs)
    out_left = np.empty_like(left)
    out_right = np.empty_like(right)
    out_first = np.empty_like(first_prim)
    out_count = np.empty_like(prim_count)
    safe_left = np.maximum(left, 0)
    safe_right = np.maximum(right, 0)
    out_left[perm] = np.where(left >= 0, perm[safe_left], -1)
    out_right[perm] = np.where(right >= 0, perm[safe_right], -1)
    out_first[perm] = first_prim
    out_count[perm] = prim_count
    out_mins[perm] = node_mins
    out_maxs[perm] = node_maxs
    bvh = Bvh(
        node_mins=out_mins,
        node_maxs=out_maxs,
        left=out_left,
        right=out_right,
        first_prim=out_first,
        prim_count=out_count,
        prim_indices=rows_stream,
        num_primitives=n,
        options=options,
    )
    bvh.build_stats = {
        "builder": options.builder,
        "num_primitives": n,
        "node_count": bvh.node_count,
        "leaf_count": bvh.leaf_count,
        "shards": 1 << options.shard_bits,
        "delegated_shards": len(shard_trees),
        "top_nodes": num_top,
    }
    return bvh


# --------------------------------------------------------------------------- #
# build + delta update
# --------------------------------------------------------------------------- #


def build_forest(
    primitive_buffer: PrimitiveBuffer, options: BvhBuildOptions | None = None
) -> BvhForest:
    """Build a sharded BVH forest over all primitives of ``primitive_buffer``.

    Requires ``options.shard_bits >= 1`` and the ``"lbvh"`` builder; the
    stitched ``forest.bvh`` is bit-identical to the single-tree
    :func:`repro.rtx.bvh.build_bvh` with the same options minus sharding.
    """
    options = options or BvhBuildOptions(shard_bits=4)
    options.validate()
    if options.shard_bits < 1:
        raise ValueError("build_forest requires shard_bits >= 1")
    if options.backend == "shm":
        return _build_forest_shm(primitive_buffer, options)
    t0 = time.perf_counter()
    prim_mins, prim_maxs = primitive_buffer.compute_aabbs()
    prim_mins = prim_mins.astype(np.float64)
    prim_maxs = prim_maxs.astype(np.float64)
    n = prim_mins.shape[0]
    if n == 0:
        raise ValueError("cannot build a BVH forest over zero primitives")

    centroids = 0.5 * (prim_mins + prim_maxs)
    grid, lo, hi = quantize_to_grid_with_bounds(centroids, options.morton_bits)
    bucket = morton_prefix_buckets(grid, options.morton_bits, options.shard_bits)

    num_buckets = 1 << options.shard_bits
    counts = np.bincount(bucket, minlength=num_buckets)
    group_order = np.argsort(bucket, kind="stable")
    starts = np.cumsum(counts) - counts
    shard_vals = np.flatnonzero(counts).astype(np.uint64)
    shard_counts = counts[shard_vals.astype(np.int64)]

    plan = plan_top_level(shard_vals, shard_counts, options.max_leaf_size)
    delegated = set(plan.delegated)

    jobs = [
        ShardJob(
            bucket=int(b),
            rows=group_order[starts[int(b)] : starts[int(b)] + counts[int(b)]],
            needs_sort=True,
            build_tree=int(b) in delegated,
        )
        for b in shard_vals
    ]
    payload = {
        "grid": grid,
        "prim_mins": prim_mins,
        "prim_maxs": prim_maxs,
        "bits": options.morton_bits,
        "options": options,
    }
    results, pool_size = _execute_jobs(jobs, payload, options.workers)

    shard_rows: dict[int, np.ndarray] = {}
    shard_trees: dict[int, Bvh] = {}
    for bucket_id, rows, tree in results:
        shard_rows[bucket_id] = rows
        if tree is not None:
            shard_trees[bucket_id] = tree

    bvh = _stitch(
        shard_vals, shard_counts, shard_rows, shard_trees, plan,
        prim_mins, prim_maxs, options,
    )
    return BvhForest(
        bvh=bvh,
        options=options,
        num_primitives=n,
        scene_lo=lo,
        scene_hi=hi,
        bucket_of_row=bucket,
        shard_ids=shard_vals.astype(np.int64),
        shard_rows=shard_rows,
        shard_trees=shard_trees,
        workers_used=pool_size,
        built_shards=len(shard_trees),
        _top_node_count=len(plan.entries),
        telemetry=BuildTelemetry(
            backend="fork",
            workers_requested=options.workers,
            workers_used=pool_size,
            shards=num_buckets,
            delegated_shards=len(shard_trees),
            bytes_shared=0,
            bytes_pickled=_fork_bytes_pickled(jobs, results, pool_size),
            tasks=len(jobs),
            wall_seconds=time.perf_counter() - t0,
        ),
    )


def forest_state_segments(forest: BvhForest):
    """Yield ``(bucket, arrays, meta)`` per non-empty shard — the persisted
    form of a forest.

    Only the per-shard *sort outputs* (global rows in code order) and
    *build outputs* (sub-tree arrays, for delegated buckets) are persisted.
    Everything else a :class:`BvhForest` carries — the Morton grid, the
    bucket partition, the top-level plan and the stitched global tree — is
    a cheap deterministic pass over the key column and is recomputed at
    load time by :func:`forest_from_saved`, which keeps an incremental save
    after a delta update proportional to the dirty shards instead of O(n).
    """
    for bucket in sorted(forest.shard_rows):
        arrays: dict[str, np.ndarray] = {
            "rows": np.ascontiguousarray(forest.shard_rows[bucket], dtype=np.int64)
        }
        tree = forest.shard_trees.get(bucket)
        meta = {"bucket": int(bucket), "delegated": tree is not None}
        if tree is not None:
            for name in BVH_ARRAY_FIELDS:
                arrays[name] = np.ascontiguousarray(getattr(tree, name))
        yield bucket, arrays, meta


def forest_from_saved(
    primitive_buffer: PrimitiveBuffer,
    options: BvhBuildOptions,
    shard_rows: dict[int, np.ndarray],
    shard_tree_arrays: dict[int, dict[str, np.ndarray]],
) -> BvhForest:
    """Rebuild a :class:`BvhForest` from persisted shard state.

    Recomputes the grid, bucket partition and top-level plan from the
    primitive buffer (deterministic, so they match the saved build
    exactly), wraps the persisted sub-tree arrays, and re-stitches — the
    resulting ``forest.bvh`` is bit-identical to the tree that was saved,
    and the forest is delta-updatable like a freshly built one.  The O(n
    log n) per-shard sorts and the per-shard tree builds — the expensive
    parts — are exactly what the persisted state skips.
    """
    options.validate()
    prim_mins, prim_maxs = primitive_buffer.compute_aabbs()
    prim_mins = prim_mins.astype(np.float64)
    prim_maxs = prim_maxs.astype(np.float64)
    n = prim_mins.shape[0]
    if n == 0:
        raise ValueError("cannot restore a BVH forest over zero primitives")

    centroids = 0.5 * (prim_mins + prim_maxs)
    grid, lo, hi = quantize_to_grid_with_bounds(centroids, options.morton_bits)
    bucket = morton_prefix_buckets(grid, options.morton_bits, options.shard_bits)
    num_buckets = 1 << options.shard_bits
    counts = np.bincount(bucket, minlength=num_buckets)
    shard_vals = np.flatnonzero(counts).astype(np.uint64)
    shard_counts = counts[shard_vals.astype(np.int64)]
    plan = plan_top_level(shard_vals, shard_counts, options.max_leaf_size)

    saved = {int(b) for b in shard_rows}
    expected = {int(b) for b in shard_vals.tolist()}
    if saved != expected:
        raise ValueError(
            "persisted shard set does not match the Morton partition recomputed "
            f"from the key column (saved {sorted(saved)[:8]}..., "
            f"expected {sorted(expected)[:8]}...)"
        )
    if {int(b) for b in shard_tree_arrays} != set(plan.delegated):
        raise ValueError(
            "persisted delegated-shard set does not match the recomputed "
            "top-level plan"
        )

    rows: dict[int, np.ndarray] = {int(b): r for b, r in shard_rows.items()}
    trees: dict[int, Bvh] = {}
    for b, arrays in shard_tree_arrays.items():
        count = int(rows[int(b)].shape[0])
        trees[int(b)] = Bvh(
            node_mins=arrays["node_mins"],
            node_maxs=arrays["node_maxs"],
            left=arrays["left"],
            right=arrays["right"],
            first_prim=arrays["first_prim"],
            prim_count=arrays["prim_count"],
            prim_indices=arrays["prim_indices"],
            num_primitives=count,
            options=options,
        )
    bvh = _stitch(
        shard_vals, shard_counts, rows, trees, plan, prim_mins, prim_maxs, options
    )
    return BvhForest(
        bvh=bvh,
        options=options,
        num_primitives=n,
        scene_lo=lo,
        scene_hi=hi,
        bucket_of_row=bucket,
        shard_ids=shard_vals.astype(np.int64),
        shard_rows=rows,
        shard_trees=trees,
        workers_used=1,
        built_shards=len(trees),
        _top_node_count=len(plan.entries),
        telemetry=None,
    )


def delta_update_forest(
    forest: BvhForest,
    old_buffer: PrimitiveBuffer,
    new_buffer: PrimitiveBuffer,
) -> tuple[BvhForest, DeltaUpdateStats]:
    """Bring a forest up to date with moved/added/removed primitives.

    Only shards whose primitive membership or geometry changed are re-sorted
    and rebuilt; clean shards reuse their sorted rows and sub-trees (rebased
    into the new stream during stitching).  Returns the updated forest —
    whose ``bvh`` is bit-identical to a from-scratch build over
    ``new_buffer`` — plus statistics of the work performed.  A no-op update
    (nothing changed) returns the original forest untouched.
    """
    options = forest.options
    if options.backend == "shm":
        return _delta_update_forest_shm(forest, old_buffer, new_buffer)
    t0 = time.perf_counter()
    num_buckets = 1 << options.shard_bits

    new_mins, new_maxs = new_buffer.compute_aabbs()
    new_mins = new_mins.astype(np.float64)
    new_maxs = new_maxs.astype(np.float64)
    n_new = new_mins.shape[0]
    if n_new == 0:
        raise ValueError("cannot delta-update a forest to zero primitives")
    centroids = 0.5 * (new_mins + new_maxs)
    grid, lo, hi = quantize_to_grid_with_bounds(centroids, options.morton_bits)

    def _full_rebuild(rescaled: bool) -> tuple[BvhForest, DeltaUpdateStats]:
        rebuilt = build_forest(new_buffer, options)
        stats = DeltaUpdateStats(
            total_shards=num_buckets,
            non_empty_shards=rebuilt.non_empty_shards,
            dirty_shards=rebuilt.non_empty_shards,
            rebuilt_trees=rebuilt.built_shards,
            dirty_keys=n_new,
            total_keys=n_new,
            rescaled=rescaled,
        )
        return rebuilt, stats

    if not (
        np.array_equal(lo, forest.scene_lo) and np.array_equal(hi, forest.scene_hi)
    ):
        # The global grid moved: every Morton code is re-quantised, so no
        # shard content can be trusted.
        return _full_rebuild(rescaled=True)

    bucket = morton_prefix_buckets(grid, options.morton_bits, options.shard_bits)
    old_mins, old_maxs = old_buffer.compute_aabbs()
    old_mins = old_mins.astype(np.float64)
    old_maxs = old_maxs.astype(np.float64)
    n_old = forest.num_primitives
    common = min(n_old, n_new)

    changed = (new_mins[:common] != old_mins[:common]).any(axis=1)
    changed |= (new_maxs[:common] != old_maxs[:common]).any(axis=1)
    dirty = np.zeros(num_buckets, dtype=bool)
    if changed.any():
        dirty[forest.bucket_of_row[:common][changed]] = True
        dirty[bucket[:common][changed]] = True
    if n_old > common:
        dirty[forest.bucket_of_row[common:]] = True
    if n_new > common:
        dirty[bucket[common:]] = True

    counts = np.bincount(bucket, minlength=num_buckets)
    shard_vals = np.flatnonzero(counts).astype(np.uint64)
    shard_counts = counts[shard_vals.astype(np.int64)]
    dirty_ids = np.flatnonzero(dirty)
    if dirty_ids.size == 0:
        return forest, DeltaUpdateStats(
            total_shards=num_buckets,
            non_empty_shards=forest.non_empty_shards,
            dirty_shards=0,
            rebuilt_trees=0,
            dirty_keys=0,
            total_keys=n_new,
            noop=True,
        )

    plan = plan_top_level(shard_vals, shard_counts, options.max_leaf_size)
    delegated = set(plan.delegated)

    # Group the rows of dirty buckets in one stable pass.
    dirty_row_mask = dirty[bucket]
    dirty_rows = np.flatnonzero(dirty_row_mask)
    grouped = dirty_rows[np.argsort(bucket[dirty_rows], kind="stable")]
    group_counts = np.bincount(bucket[dirty_rows], minlength=num_buckets)
    group_starts = np.cumsum(group_counts) - group_counts

    jobs: list[ShardJob] = []
    for b in dirty_ids.tolist():
        if group_counts[b] == 0:
            continue  # bucket emptied out; nothing to sort or build
        jobs.append(
            ShardJob(
                bucket=b,
                rows=grouped[group_starts[b] : group_starts[b] + group_counts[b]],
                needs_sort=True,
                build_tree=b in delegated,
            )
        )
    # Clean buckets that the new top plan delegates but that previously had
    # no sub-tree (they were absorbed into a mixed leaf): build their tree
    # from the stored, still-sorted rows.
    for b in delegated:
        if not dirty[b] and b not in forest.shard_trees:
            jobs.append(
                ShardJob(
                    bucket=b,
                    rows=forest.shard_rows[b],
                    needs_sort=False,
                    build_tree=True,
                )
            )

    payload = {
        "grid": grid,
        "prim_mins": new_mins,
        "prim_maxs": new_maxs,
        "bits": options.morton_bits,
        "options": options,
    }
    results, pool_size = _execute_jobs(jobs, payload, options.workers)

    shard_rows = {
        b: rows
        for b, rows in forest.shard_rows.items()
        if not dirty[b] and counts[b] > 0
    }
    shard_trees = {
        b: tree
        for b, tree in forest.shard_trees.items()
        if not dirty[b] and b in delegated
    }
    rebuilt_trees = 0
    for bucket_id, rows, tree in results:
        shard_rows[bucket_id] = rows
        if tree is not None:
            shard_trees[bucket_id] = tree
            rebuilt_trees += 1

    bvh = _stitch(
        shard_vals, shard_counts, shard_rows, shard_trees, plan,
        new_mins, new_maxs, options,
    )
    updated = BvhForest(
        bvh=bvh,
        options=options,
        num_primitives=n_new,
        scene_lo=lo,
        scene_hi=hi,
        bucket_of_row=bucket,
        shard_ids=shard_vals.astype(np.int64),
        shard_rows=shard_rows,
        shard_trees=shard_trees,
        workers_used=pool_size,
        built_shards=len(shard_trees),
        _top_node_count=len(plan.entries),
        telemetry=BuildTelemetry(
            backend="fork",
            workers_requested=options.workers,
            workers_used=pool_size,
            shards=num_buckets,
            delegated_shards=len(shard_trees),
            bytes_shared=0,
            bytes_pickled=_fork_bytes_pickled(jobs, results, pool_size),
            tasks=len(jobs),
            wall_seconds=time.perf_counter() - t0,
        ),
    )
    stats = DeltaUpdateStats(
        total_shards=num_buckets,
        non_empty_shards=updated.non_empty_shards,
        dirty_shards=int(dirty_ids.size),
        rebuilt_trees=rebuilt_trees,
        dirty_keys=int(dirty_rows.size),
        total_keys=n_new,
    )
    return updated, stats


# --------------------------------------------------------------------------- #
# shm backend: zero-copy shared-memory build pipeline
# --------------------------------------------------------------------------- #
#
# The fork backend above parallelises only the per-shard sort+build and pays
# O(n) pickling per task (rows out, rows + sub-tree arrays back), plus three
# serial O(n) passes: quantise, bucket grouping, and the stitch scatter.  The
# shm backend removes all four bottlenecks:
#
# * Inputs (primitive bounds, Morton grid, bucket ids) and outputs (the
#   primitive stream, per-shard scratch trees, the final node arrays) live in
#   ``multiprocessing.shared_memory`` blocks.  Workers inherit numpy views of
#   them through fork and read/write in place; only O(1) task descriptors are
#   ever pickled.
# * Quantise and bucket grouping run as chunked worker passes over the same
#   blocks.  Chunk boundaries depend only on ``(n, options.workers)`` — never
#   on the effective pool size — and each pass is exactly equivalent to its
#   serial counterpart: quantisation is row-independent, scene bounds are an
#   associative min/max reduction, and the chunked counting-scatter (ascending
#   chunks, stable within each chunk) reproduces the global stable argsort.
# * The stitch *is* the final layout.  The single tree's DFS numbering
#   (``_dfs_renumbering``: the k-th inner node in right-first preorder
#   allocates ids ``2k+1``/``2k+2``) decomposes per shard: a shard subtree is
#   a contiguous segment of that preorder, so every non-root local node ``l``
#   lands at global id ``l + 2K``, where ``K`` is the number of inner nodes
#   preceding the segment.  ``_walk_top_numbering`` computes all ``K`` in
#   O(shards); workers then rebase-copy their scratch trees straight into the
#   final arrays at those offsets — no global renumbering or scatter pass.
#
# Block lifetimes: the *state* blocks (bounds/grid/bucket) persist across
# delta updates — only changed rows are rewritten, and the cached state is
# exactly what lets a delta skip re-deriving the worker payload per call.
# The *epoch* blocks (stream/scratch/out) are fresh per build so serving-side
# epoch snapshots that pin an old ``Bvh`` stay valid; a delta's workers copy
# clean shards from the old epoch's blocks into the new ones.  Finalizers on
# the state object and the stitched ``Bvh`` unlink the names at GC; error
# paths unlink eagerly (see :mod:`repro.rtx.shm`).

#: Worker-side payload of the shm backend: a dict of shared-memory views plus
#: small constants, set in the parent before pool creation so children
#: inherit it through fork.  Cached per epoch — delta updates reuse the
#: persistent state views instead of re-deriving bounds/grid per call.
_SHM_PAYLOAD: dict | None = None

#: Scratch/out array names; the int64 node arrays, then the float32 bounds.
_NODE_FIELDS_I64 = ("left", "right", "first_prim", "prim_count")
_NODE_FIELDS_F32 = ("node_mins", "node_maxs")


class _ShmState:
    """Persistent shared input blocks, reused in place across delta updates."""

    def __init__(self, n: int):
        self.n = n
        self.arena = ShmArena("inputs")
        self.prim_mins = self.arena.allocate("prim_mins", (n, 3), np.float64)
        self.prim_maxs = self.arena.allocate("prim_maxs", (n, 3), np.float64)
        self.grid = self.arena.allocate("grid", (n, 3), np.uint64)
        self.bucket = self.arena.allocate("bucket", (n,), np.int64)
        self.arena.attach_finalizer(self)


class _ShmEpoch:
    """Per-build shared output blocks plus the layout bookkeeping a later
    delta update needs to copy this epoch's clean shards forward."""

    def __init__(self, n: int):
        self.n = n
        self.arena = ShmArena("epoch")
        cap = max(2 * n - 1, 1)
        #: shard-sorted global row ids — the final ``prim_indices``
        self.stream = self.arena.allocate("stream", (n,), np.int64)
        # Worst-case-offset scratch: bucket b's sub-tree goes at offset
        # 2 * stream_start[b] with capacity 2 * count >= its node count.
        self.scratch = {
            name: self.arena.allocate("scratch_" + name, (2 * n,), np.int64)
            for name in _NODE_FIELDS_I64
        }
        self.scratch |= {
            name: self.arena.allocate("scratch_" + name, (2 * n, 3), np.float32)
            for name in _NODE_FIELDS_F32
        }
        self.out = {
            name: self.arena.allocate("out_" + name, (cap,), np.int64)
            for name in _NODE_FIELDS_I64
        }
        self.out |= {
            name: self.arena.allocate("out_" + name, (cap, 3), np.float32)
            for name in _NODE_FIELDS_F32
        }
        # Per non-empty bucket: stream slice start and scratch offset; per
        # delegated bucket: node count.  Filled during the build.
        self.stream_start: dict[int, int] = {}
        self.scratch_off: dict[int, int] = {}
        self.node_count: dict[int, int] = {}
        #: worker payload assembled once for this epoch (satellite: no
        #: per-call re-derivation); the executor installs it before forking.
        self.payload: dict | None = None


def _shm_payload(
    state: _ShmState, epoch: _ShmEpoch, old_epoch: _ShmEpoch | None,
    options: BvhBuildOptions,
) -> dict:
    if epoch.payload is None:
        epoch.payload = {
            "prim_mins": state.prim_mins,
            "prim_maxs": state.prim_maxs,
            "grid": state.grid,
            "bucket": state.bucket,
            "stream": epoch.stream,
            "scratch": epoch.scratch,
            "out": epoch.out,
            "old_stream": old_epoch.stream if old_epoch is not None else None,
            "old_scratch": old_epoch.scratch if old_epoch is not None else None,
            "bits": options.morton_bits,
            "shard_bits": options.shard_bits,
            "shards": 1 << options.shard_bits,
            "options": options,
        }
    return epoch.payload


class _ShmExecutor:
    """Task runner over the fork-inherited shared payload.

    One pool serves every pass of a build (the payload is inherited at fork;
    writes made by the parent *after* the fork are still visible — the blocks
    are MAP_SHARED).  Falls back to in-process execution when ``workers == 1``
    or fork is unavailable, running the very same task functions, which is
    what makes results bit-identical across worker counts by construction.
    Tracks honest pickle-channel accounting: descriptors are the only traffic.
    """

    def __init__(self, payload: dict, workers: int):
        global _SHM_PAYLOAD
        _SHM_PAYLOAD = payload
        self.workers_requested = workers
        self.pool = None
        self.pool_size = 1
        self.tasks = 0
        self.bytes_pickled = 0
        if workers > 1:
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:
                ctx = None
            if ctx is not None:
                self.pool = ctx.Pool(processes=workers)
                self.pool_size = workers

    def run(self, fn, tasks: list) -> list:
        tasks = list(tasks)
        if not tasks:
            return []
        self.tasks += len(tasks)
        self.bytes_pickled += sum(
            len(pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL))
            for task in tasks
        )
        if self.pool is not None and len(tasks) > 1:
            return self.pool.map(fn, tasks)
        return [fn(task) for task in tasks]

    def close(self) -> None:
        global _SHM_PAYLOAD
        if self.pool is not None:
            # All maps have returned by the time we get here (success or
            # raised), so terminate is safe and never blocks on stuck tasks.
            self.pool.terminate()
            self.pool.join()
            self.pool = None
        _SHM_PAYLOAD = None


def _chunk_ranges(n: int, workers: int) -> list[tuple[int, int]]:
    """Row chunks of the parallel passes.

    A pure function of ``(n, requested workers)`` so chunked results never
    depend on how many processes actually ran.
    """
    chunks = max(1, min(workers, n))
    size = -(-n // chunks)
    return [(lo, min(lo + size, n)) for lo in range(0, n, size)]


def _shm_chunk_centroid_bounds(task: tuple) -> tuple[np.ndarray, np.ndarray]:
    """Min/max of the centroid chunk; exact selection, so chunk-reducible."""
    lo, hi = task
    payload = _SHM_PAYLOAD
    centroids = 0.5 * (payload["prim_mins"][lo:hi] + payload["prim_maxs"][lo:hi])
    return centroids.min(axis=0), centroids.max(axis=0)


def _shm_chunk_quantize(task: tuple) -> np.ndarray:
    """Quantise one row chunk onto the fixed global grid, write its grid and
    bucket rows in place, and return the chunk's per-bucket counts."""
    lo, hi, scene_lo, scene_hi = task
    payload = _SHM_PAYLOAD
    centroids = 0.5 * (payload["prim_mins"][lo:hi] + payload["prim_maxs"][lo:hi])
    grid = quantize_points_to_grid(centroids, scene_lo, scene_hi, payload["bits"])
    payload["grid"][lo:hi] = grid
    bucket = morton_prefix_buckets(grid, payload["bits"], payload["shard_bits"])
    payload["bucket"][lo:hi] = bucket
    return np.bincount(bucket, minlength=payload["shards"])


def _shm_chunk_scatter(task: tuple) -> None:
    """Scatter one chunk's rows into their buckets' stream slices.

    ``offsets[b]`` is where this chunk's first row of bucket ``b`` goes —
    the bucket's global start plus the counts of earlier chunks.  Ascending
    chunks + a stable in-chunk sort reproduce the global stable argsort
    grouping bit for bit.
    """
    lo, hi, offsets = task
    payload = _SHM_PAYLOAD
    bucket = payload["bucket"][lo:hi]
    order = np.argsort(bucket, kind="stable")
    sorted_buckets = bucket[order]
    counts = np.bincount(bucket, minlength=payload["shards"])
    starts = np.cumsum(counts) - counts
    dest = offsets[sorted_buckets] + (
        np.arange(order.shape[0], dtype=np.int64) - starts[sorted_buckets]
    )
    payload["stream"][dest] = lo + order
    return None


class _ShmShardTask(NamedTuple):
    """Round-1 descriptor: everything a worker needs to place one bucket.

    ``old_start >= 0`` copies the rows from the old epoch's stream first
    (clean shard under a delta update); ``old_scratch_off >= 0`` additionally
    copies the old sub-tree instead of rebuilding it.
    """

    bucket: int
    start: int
    count: int
    needs_sort: bool
    build_tree: bool
    scratch_off: int
    old_start: int
    old_scratch_off: int
    old_node_count: int


def _shm_round1(task: _ShmShardTask) -> tuple[int, int]:
    """Sort one bucket's stream slice in place and emit its sub-tree into
    scratch at the precomputed offset; returns ``(bucket, node_count)``."""
    payload = _SHM_PAYLOAD
    rows = payload["stream"][task.start : task.start + task.count]
    if task.old_start >= 0:
        rows[:] = payload["old_stream"][task.old_start : task.old_start + task.count]
    if task.old_scratch_off >= 0:
        src = slice(task.old_scratch_off, task.old_scratch_off + task.old_node_count)
        dst = slice(task.scratch_off, task.scratch_off + task.old_node_count)
        old_scratch = payload["old_scratch"]
        scratch = payload["scratch"]
        for name in scratch:
            scratch[name][dst] = old_scratch[name][src]
        return task.bucket, task.old_node_count
    if not task.needs_sort and not task.build_tree:
        return task.bucket, 0
    codes = morton_interleave_grid(payload["grid"][rows], payload["bits"])
    if task.needs_sort:
        order = np.argsort(codes, kind="stable")
        rows[:] = rows[order]
        codes = codes[order]
    if not task.build_tree:
        return task.bucket, 0
    off = task.scratch_off
    cap = 2 * task.count
    scratch = payload["scratch"]
    out = {name: scratch[name][off : off + cap] for name in scratch}
    tree = build_lbvh_over_sorted(
        codes,
        payload["prim_mins"][rows],
        payload["prim_maxs"][rows],
        payload["options"],
        out=out,
    )
    return task.bucket, tree.node_count


class _ShmStitchTask(NamedTuple):
    """Round-2 descriptor: rebase one shard's scratch tree into the final
    arrays.  Non-root local node ``l`` lands at row ``base + l``; the root
    lands at ``root`` (its id was assigned by the top-level parent)."""

    bucket: int
    scratch_off: int
    node_count: int
    base: int
    root: int
    stream_start: int


def _shm_round2(task: _ShmStitchTask) -> None:
    payload = _SHM_PAYLOAD
    m = task.node_count
    src = slice(task.scratch_off, task.scratch_off + m)
    scratch = payload["scratch"]
    out = payload["out"]
    left = scratch["left"][src]
    right = scratch["right"][src]
    first = scratch["first_prim"][src]
    count = scratch["prim_count"][src]
    inner = left >= 0
    # Child pointers rebase by the same base for every row (the root's
    # children are local 1/2 -> base+1/base+2, matching its global rank);
    # only leaves reference the primitive stream, inner nodes keep the
    # builder's zero placeholder — exactly the fork stitcher's formulas.
    g_left = np.where(inner, left + task.base, -1)
    g_right = np.where(inner, right + task.base, -1)
    g_first = np.where(inner, first, first + task.stream_start)
    dst = slice(task.base + 1, task.base + m)
    out["left"][dst] = g_left[1:]
    out["right"][dst] = g_right[1:]
    out["first_prim"][dst] = g_first[1:]
    out["prim_count"][dst] = count[1:]
    out["node_mins"][dst] = scratch["node_mins"][src][1:]
    out["node_maxs"][dst] = scratch["node_maxs"][src][1:]
    root = task.root
    out["left"][root] = g_left[0]
    out["right"][root] = g_right[0]
    out["first_prim"][root] = g_first[0]
    out["prim_count"][root] = count[0]
    out["node_mins"][root] = scratch["node_mins"][task.scratch_off]
    out["node_maxs"][root] = scratch["node_maxs"][task.scratch_off]
    return None


def _walk_top_numbering(
    plan: _TopPlan, node_counts: dict[int, int]
) -> tuple[list[int], dict[int, int], dict[int, int], int]:
    """Global DFS ids of the stitched tree in O(top entries + shards).

    Walks the top plan in the builder's right-first preorder, counting inner
    nodes: the k-th inner node allocates ids ``2k+1``/``2k+2`` for its
    children (the ``_dfs_renumbering`` rule).  A shard segment advances the
    inner count by its own ``(m - 1) // 2`` inner nodes, and the count at its
    start, doubled, is the rebase offset of all its non-root nodes.  Returns
    ``(entry ids, shard base offsets, shard root ids, total node count)``.
    """
    entries = plan.entries
    entry_gid = [0] * len(entries)
    if not entries:
        # The whole key range lives in one delegated bucket: the shard's
        # local numbering is already the global numbering.
        bucket = plan.delegated[0]
        return entry_gid, {bucket: 0}, {bucket: 0}, node_counts[bucket]
    shard_base: dict[int, int] = {}
    shard_root: dict[int, int] = {}
    inner_rank = 0
    stack: list[tuple[tuple, int]] = [(("t", 0), 0)]
    while stack:
        ref, gid = stack.pop()
        if ref[0] == "s":
            bucket = ref[1]
            shard_root[bucket] = gid
            shard_base[bucket] = 2 * inner_rank
            inner_rank += (node_counts[bucket] - 1) // 2
            continue
        index = ref[1]
        entry_gid[index] = gid
        entry = entries[index]
        if entry[0] == "leaf":
            continue
        k = inner_rank
        inner_rank += 1
        stack.append((entry[1], 2 * k + 1))  # left pushed first ...
        stack.append((entry[2], 2 * k + 2))  # ... so right pops (visits) first
    num_nodes = len(entries) + sum(node_counts[b] for b in plan.delegated)
    return entry_gid, shard_base, shard_root, num_nodes


def _shm_finalize(
    state: _ShmState,
    epoch: _ShmEpoch,
    executor: _ShmExecutor,
    plan: _TopPlan,
    options: BvhBuildOptions,
    n: int,
) -> Bvh:
    """Rounds 2+3: rebase shard sub-trees into the final layout (parallel)
    and fill the O(shards) top-level rows (parent), then wrap the out views
    as the stitched ``Bvh`` — bit-identical to the fork stitcher's output."""
    entry_gid, shard_base, shard_root, num_nodes = _walk_top_numbering(
        plan, epoch.node_count
    )
    executor.run(
        _shm_round2,
        [
            _ShmStitchTask(
                bucket=b,
                scratch_off=epoch.scratch_off[b],
                node_count=epoch.node_count[b],
                base=shard_base[b],
                root=shard_root[b],
                stream_start=epoch.stream_start[b],
            )
            for b in plan.delegated
        ],
    )
    out = {name: array[:num_nodes] for name, array in epoch.out.items()}

    def _resolve(ref: tuple) -> int:
        return entry_gid[ref[1]] if ref[0] == "t" else shard_root[ref[1]]

    # Top leaves first (bounds straight from the primitives), then inner
    # bounds bottom-up — children always have larger entry indices, so one
    # reverse sweep suffices; shard-root rows were written by round 2.
    stream = epoch.stream
    for index, entry in enumerate(plan.entries):
        if entry[0] != "leaf":
            continue
        gid = entry_gid[index]
        _, stream_lo, count = entry
        gathered = stream[stream_lo : stream_lo + count]
        out["left"][gid] = -1
        out["right"][gid] = -1
        out["first_prim"][gid] = stream_lo
        out["prim_count"][gid] = count
        out["node_mins"][gid] = state.prim_mins[gathered].min(axis=0).astype(np.float32)
        out["node_maxs"][gid] = state.prim_maxs[gathered].max(axis=0).astype(np.float32)
    for index in range(len(plan.entries) - 1, -1, -1):
        entry = plan.entries[index]
        if entry[0] != "inner":
            continue
        gid = entry_gid[index]
        left_id = _resolve(entry[1])
        right_id = _resolve(entry[2])
        out["left"][gid] = left_id
        out["right"][gid] = right_id
        out["first_prim"][gid] = 0
        out["prim_count"][gid] = 0
        out["node_mins"][gid] = np.minimum(
            out["node_mins"][left_id], out["node_mins"][right_id]
        )
        out["node_maxs"][gid] = np.maximum(
            out["node_maxs"][left_id], out["node_maxs"][right_id]
        )

    bvh = Bvh(
        node_mins=out["node_mins"],
        node_maxs=out["node_maxs"],
        left=out["left"],
        right=out["right"],
        first_prim=out["first_prim"],
        prim_count=out["prim_count"],
        prim_indices=epoch.stream,
        num_primitives=n,
        options=options,
    )
    # The stitched Bvh is the longest-lived consumer of the epoch blocks
    # (epoch snapshots pin it); unlink their names when it is collected.
    epoch.arena.attach_finalizer(bvh)
    bvh.build_stats = {
        "builder": options.builder,
        "num_primitives": n,
        "node_count": bvh.node_count,
        "leaf_count": bvh.leaf_count,
        "shards": 1 << options.shard_bits,
        "delegated_shards": len(plan.delegated),
        "top_nodes": len(plan.entries),
    }
    return bvh


def _shm_shard_views(
    epoch: _ShmEpoch, plan: _TopPlan, counts: np.ndarray, options: BvhBuildOptions
) -> dict[int, Bvh]:
    """Shard sub-trees as views into the epoch's scratch blocks (no copy)."""
    trees: dict[int, Bvh] = {}
    for bucket in plan.delegated:
        m = epoch.node_count[bucket]
        off = epoch.scratch_off[bucket]
        count = int(counts[bucket])
        trees[bucket] = Bvh(
            node_mins=epoch.scratch["node_mins"][off : off + m],
            node_maxs=epoch.scratch["node_maxs"][off : off + m],
            left=epoch.scratch["left"][off : off + m],
            right=epoch.scratch["right"][off : off + m],
            first_prim=epoch.scratch["first_prim"][off : off + m],
            prim_count=epoch.scratch["prim_count"][off : off + m],
            prim_indices=np.arange(count, dtype=np.int64),
            num_primitives=count,
            options=options,
        )
    return trees


def _shm_shard_rows(epoch: _ShmEpoch, counts: np.ndarray) -> dict[int, np.ndarray]:
    return {
        bucket: epoch.stream[start : start + int(counts[bucket])]
        for bucket, start in epoch.stream_start.items()
    }


def _build_forest_shm(
    primitive_buffer: PrimitiveBuffer, options: BvhBuildOptions
) -> BvhForest:
    """Full forest build on the shm backend; see the section comment above."""
    t0 = time.perf_counter()
    n = len(primitive_buffer)
    if n == 0:
        raise ValueError("cannot build a BVH forest over zero primitives")
    num_buckets = 1 << options.shard_bits
    state = _ShmState(n)
    epoch = _ShmEpoch(n)
    executor = None
    try:
        write_aabbs_into(primitive_buffer, state.prim_mins, state.prim_maxs)
        executor = _ShmExecutor(_shm_payload(state, epoch, None, options), options.workers)

        chunks = _chunk_ranges(n, options.workers)
        parts = executor.run(_shm_chunk_centroid_bounds, chunks)
        lo = np.minimum.reduce([part[0] for part in parts])
        hi = np.maximum.reduce([part[1] for part in parts])
        chunk_counts = np.stack(
            executor.run(_shm_chunk_quantize, [(a, b, lo, hi) for a, b in chunks])
        )
        counts = chunk_counts.sum(axis=0)
        starts = np.cumsum(counts) - counts
        chunk_offsets = starts[None, :] + np.cumsum(chunk_counts, axis=0) - chunk_counts
        executor.run(
            _shm_chunk_scatter,
            [(a, b, chunk_offsets[i]) for i, (a, b) in enumerate(chunks)],
        )

        shard_vals = np.flatnonzero(counts).astype(np.uint64)
        shard_counts = counts[shard_vals.astype(np.int64)]
        plan = plan_top_level(shard_vals, shard_counts, options.max_leaf_size)
        delegated = set(plan.delegated)

        tasks = []
        for bucket in shard_vals.astype(np.int64).tolist():
            start = int(starts[bucket])
            epoch.stream_start[bucket] = start
            epoch.scratch_off[bucket] = 2 * start
            tasks.append(
                _ShmShardTask(
                    bucket=bucket,
                    start=start,
                    count=int(counts[bucket]),
                    needs_sort=True,
                    build_tree=bucket in delegated,
                    scratch_off=2 * start,
                    old_start=-1,
                    old_scratch_off=-1,
                    old_node_count=0,
                )
            )
        for bucket, node_count in executor.run(_shm_round1, tasks):
            if node_count:
                epoch.node_count[bucket] = node_count

        bvh = _shm_finalize(state, epoch, executor, plan, options, n)
        return BvhForest(
            bvh=bvh,
            options=options,
            num_primitives=n,
            scene_lo=lo,
            scene_hi=hi,
            # A live view into the state block: delta updates snapshot the old
            # values of rows they overwrite, so no O(n) copy per epoch.
            bucket_of_row=state.bucket,
            shard_ids=shard_vals.astype(np.int64),
            shard_rows=_shm_shard_rows(epoch, counts),
            shard_trees=_shm_shard_views(epoch, plan, counts, options),
            workers_used=executor.pool_size,
            built_shards=len(delegated),
            _top_node_count=len(plan.entries),
            telemetry=BuildTelemetry(
                backend="shm",
                workers_requested=options.workers,
                workers_used=executor.pool_size,
                shards=num_buckets,
                delegated_shards=len(delegated),
                bytes_shared=state.arena.total_bytes + epoch.arena.total_bytes,
                bytes_pickled=executor.bytes_pickled,
                tasks=executor.tasks,
                wall_seconds=time.perf_counter() - t0,
            ),
            _shm_state=state,
            _shm_epoch=epoch,
        )
    except BaseException:
        # Worker exception (or any mid-build failure): unlink every block
        # created for this call before the views escape.
        epoch.arena.release()
        state.arena.release()
        raise
    finally:
        if executor is not None:
            executor.close()


def _delta_update_forest_shm(
    forest: BvhForest,
    old_buffer: PrimitiveBuffer,
    new_buffer: PrimitiveBuffer,
) -> tuple[BvhForest, DeltaUpdateStats]:
    """Delta update on the shm backend: reuse the persistent input blocks so
    only changed rows rewrite, and copy clean shards (rows and sub-trees)
    from the old epoch's blocks into the new epoch on the worker pool."""
    t0 = time.perf_counter()
    options = forest.options
    num_buckets = 1 << options.shard_bits

    n_new = len(new_buffer)
    if n_new == 0:
        raise ValueError("cannot delta-update a forest to zero primitives")

    def _full_rebuild(rescaled: bool) -> tuple[BvhForest, DeltaUpdateStats]:
        rebuilt = build_forest(new_buffer, options)
        stats = DeltaUpdateStats(
            total_shards=num_buckets,
            non_empty_shards=rebuilt.non_empty_shards,
            dirty_shards=rebuilt.non_empty_shards,
            rebuilt_trees=rebuilt.built_shards,
            dirty_keys=n_new,
            total_keys=n_new,
            rescaled=rescaled,
        )
        return rebuilt, stats

    state: _ShmState | None = forest._shm_state
    old_epoch: _ShmEpoch | None = forest._shm_epoch
    if state is None or old_epoch is None:
        # Recovery path: a previous delta failed and dropped the cached
        # blocks, so nothing incremental can be trusted.
        return _full_rebuild(rescaled=False)

    new_mins, new_maxs = new_buffer.compute_aabbs()
    new_mins = new_mins.astype(np.float64)
    new_maxs = new_maxs.astype(np.float64)
    centroids = 0.5 * (new_mins + new_maxs)
    lo = centroids.min(axis=0)
    hi = centroids.max(axis=0)
    if not (
        np.array_equal(lo, forest.scene_lo) and np.array_equal(hi, forest.scene_hi)
    ):
        return _full_rebuild(rescaled=True)

    n_old = forest.num_primitives
    common = min(n_old, n_new)
    changed = (new_mins[:common] != state.prim_mins[:common]).any(axis=1)
    changed |= (new_maxs[:common] != state.prim_maxs[:common]).any(axis=1)
    changed_idx = np.flatnonzero(changed)
    # Snapshot the old buckets of the rows about to be overwritten (the state
    # block itself holds the previous epoch's values until we write it).
    old_changed_buckets = state.bucket[changed_idx]

    dirty = np.zeros(num_buckets, dtype=bool)
    dirty[old_changed_buckets] = True
    if n_old > common:
        dirty[state.bucket[common:n_old]] = True

    resized = n_new != state.n
    if not resized and changed_idx.size == 0 and not dirty.any():
        return forest, DeltaUpdateStats(
            total_shards=num_buckets,
            non_empty_shards=forest.non_empty_shards,
            dirty_shards=0,
            rebuilt_trees=0,
            dirty_keys=0,
            total_keys=n_new,
            noop=True,
        )

    if resized:
        target = _ShmState(n_new)
        write_aabbs_into(new_buffer, target.prim_mins, target.prim_maxs)
        target.grid[:common] = state.grid[:common]
        target.bucket[:common] = state.bucket[:common]
    else:
        target = state
        if changed_idx.size:
            target.prim_mins[changed_idx] = new_mins[changed_idx]
            target.prim_maxs[changed_idx] = new_maxs[changed_idx]

    appended = np.arange(common, n_new, dtype=np.int64)
    recompute_idx = (
        np.concatenate([changed_idx, appended]) if appended.size else changed_idx
    )
    if recompute_idx.size:
        # The grid is fixed (bounds unchanged), so re-quantising only the
        # changed/appended rows is bit-identical to the full pass.
        grid_rows = quantize_points_to_grid(
            centroids[recompute_idx], lo, hi, options.morton_bits
        )
        bucket_rows = morton_prefix_buckets(
            grid_rows, options.morton_bits, options.shard_bits
        )
        target.grid[recompute_idx] = grid_rows
        target.bucket[recompute_idx] = bucket_rows
        dirty[bucket_rows] = True

    counts = np.bincount(target.bucket, minlength=num_buckets)
    shard_vals = np.flatnonzero(counts).astype(np.uint64)
    shard_counts = counts[shard_vals.astype(np.int64)]
    dirty_ids = np.flatnonzero(dirty)

    plan = plan_top_level(shard_vals, shard_counts, options.max_leaf_size)
    delegated = set(plan.delegated)
    starts = np.cumsum(counts) - counts

    epoch = _ShmEpoch(n_new)
    executor = None
    try:
        executor = _ShmExecutor(
            _shm_payload(target, epoch, old_epoch, options), options.workers
        )

        # Parent scatters the dirty buckets' rows into their new stream
        # slices (O(dirty keys)); clean buckets are copied by the workers.
        dirty_rows = np.flatnonzero(dirty[target.bucket])
        grouped = dirty_rows[np.argsort(target.bucket[dirty_rows], kind="stable")]
        group_counts = np.bincount(target.bucket[dirty_rows], minlength=num_buckets)
        pos = 0
        for bucket in np.flatnonzero(group_counts).tolist():
            count = int(group_counts[bucket])
            start = int(starts[bucket])
            epoch.stream[start : start + count] = grouped[pos : pos + count]
            pos += count

        tasks = []
        rebuilt_trees = 0
        for bucket in shard_vals.astype(np.int64).tolist():
            start = int(starts[bucket])
            count = int(counts[bucket])
            epoch.stream_start[bucket] = start
            epoch.scratch_off[bucket] = 2 * start
            if dirty[bucket]:
                tasks.append(
                    _ShmShardTask(
                        bucket, start, count, True, bucket in delegated,
                        2 * start, -1, -1, 0,
                    )
                )
                if bucket in delegated:
                    rebuilt_trees += 1
                continue
            old_start = old_epoch.stream_start[bucket]
            if bucket in delegated and bucket in old_epoch.node_count:
                # Clean shard with a live sub-tree: copy rows + tree forward
                # so the new epoch is self-contained.
                tasks.append(
                    _ShmShardTask(
                        bucket, start, count, False, False, 2 * start,
                        old_start, old_epoch.scratch_off[bucket],
                        old_epoch.node_count[bucket],
                    )
                )
            elif bucket in delegated:
                # Clean but newly delegated (was absorbed into a mixed leaf):
                # rows are still sorted, only the tree must be built.
                tasks.append(
                    _ShmShardTask(
                        bucket, start, count, False, True, 2 * start,
                        old_start, -1, 0,
                    )
                )
                rebuilt_trees += 1
            else:
                tasks.append(
                    _ShmShardTask(
                        bucket, start, count, False, False, 2 * start,
                        old_start, -1, 0,
                    )
                )
        for bucket, node_count in executor.run(_shm_round1, tasks):
            if node_count:
                epoch.node_count[bucket] = node_count

        bvh = _shm_finalize(target, epoch, executor, plan, options, n_new)
        updated = BvhForest(
            bvh=bvh,
            options=options,
            num_primitives=n_new,
            scene_lo=lo,
            scene_hi=hi,
            bucket_of_row=target.bucket,
            shard_ids=shard_vals.astype(np.int64),
            shard_rows=_shm_shard_rows(epoch, counts),
            shard_trees=_shm_shard_views(epoch, plan, counts, options),
            workers_used=executor.pool_size,
            built_shards=len(delegated),
            _top_node_count=len(plan.entries),
            telemetry=BuildTelemetry(
                backend="shm",
                workers_requested=options.workers,
                workers_used=executor.pool_size,
                shards=num_buckets,
                delegated_shards=len(delegated),
                bytes_shared=target.arena.total_bytes + epoch.arena.total_bytes,
                bytes_pickled=executor.bytes_pickled,
                tasks=executor.tasks,
                wall_seconds=time.perf_counter() - t0,
            ),
            _shm_state=target,
            _shm_epoch=epoch,
        )
        stats = DeltaUpdateStats(
            total_shards=num_buckets,
            non_empty_shards=updated.non_empty_shards,
            dirty_shards=int(dirty_ids.size),
            rebuilt_trees=rebuilt_trees,
            dirty_keys=int(dirty_rows.size),
            total_keys=n_new,
        )
        return updated, stats
    except BaseException:
        epoch.arena.release()
        if resized:
            target.arena.release()
        else:
            # In-place state writes may have landed partially; drop the
            # cached blocks so the next update falls back to a full rebuild.
            forest._shm_state = None
            forest._shm_epoch = None
        raise
    finally:
        if executor is not None:
            executor.close()
