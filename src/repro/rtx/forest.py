"""Morton-prefix sharded BVH forest: parallel builds, delta-shard updates.

The forest partitions primitives by the top ``shard_bits`` bits of their
Morton codes into ``S = 2**shard_bits`` shards.  Because the LBVH splits every
range at its *highest differing* Morton bit, two primitives in different
prefix buckets always separate on one of the top ``shard_bits`` levels —
which means the single tree :func:`repro.rtx.bvh.build_bvh` emits is exactly

* a small **top-level node table** whose splits happen in prefix space
  (computable from per-bucket counts alone, without touching primitives), and
* one **independent sub-BVH per bucket**, each derivable from nothing but the
  bucket's own sorted codes and primitive bounds.

The forest therefore builds the shards independently — optionally across a
``multiprocessing`` pool, with bit-identical per-shard results for any worker
count — and stitches them under the top-level table into a tree whose arrays
(including the stack-order DFS node numbering) equal the single-tree build
bit for bit.  Traversal needs no special dispatch path: advancing the
frontier through the top-level table *is* the shard dispatch (a ray only ever
reaches the sub-BVHs whose shard bounds it overlaps), and because the
stitched tree is the single tree, hits and counters of all three trace modes
come out in exactly the single-tree stream order.

Updates exploit the same decomposition: :func:`delta_update_forest` compares
the new primitive bounds row by row against the previous build, marks only
the shards that gained, lost, or moved a primitive as dirty, re-sorts and
rebuilds those, and re-stitches.  Clean shards reuse their sorted row order
and sub-tree unchanged (their leaf ranges are merely rebased), so the
expensive work scales with the dirty shards instead of the total key count.
An update that dirties nothing is recognised as a no-op and rebuilds nothing.

One top-level subtlety: a range whose total count is at most
``max_leaf_size`` becomes a single leaf in the single tree even when it spans
several buckets.  The top-level planner reproduces this by absorbing such
runs of tiny buckets into *mixed leaves*; absorbed buckets keep their sorted
rows (they still occupy their slice of the global primitive stream) but carry
no sub-tree.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field

import numpy as np

from repro.rtx.bvh import (
    Bvh,
    BvhBuildOptions,
    _dfs_renumbering,
    build_lbvh_over_sorted,
)
from repro.rtx.geometry import PrimitiveBuffer, ray_box_overlap_pairs
from repro.rtx.morton import (
    morton_interleave_grid,
    morton_prefix_buckets,
    quantize_to_grid_with_bounds,
)

#: Worker-side payload shared with forked pool processes.  Set in the parent
#: immediately before the pool is created so the children inherit it through
#: fork without pickling the (large) grid and bound arrays per task.
_SHARD_PAYLOAD: dict | None = None


@dataclass
class ShardJob:
    """One unit of shard work: sort a bucket's rows and/or build its tree."""

    bucket: int
    rows: np.ndarray
    needs_sort: bool
    build_tree: bool


@dataclass
class DeltaUpdateStats:
    """What a delta-shard update actually did."""

    total_shards: int
    non_empty_shards: int
    dirty_shards: int
    rebuilt_trees: int
    dirty_keys: int
    total_keys: int
    noop: bool = False
    #: True when the global Morton grid moved (scene bounds changed), which
    #: re-quantises every code and forces a full re-sort of all shards.
    rescaled: bool = False


@dataclass
class BvhForest:
    """A sharded BVH build: the stitched tree plus per-shard bookkeeping.

    ``bvh`` is bit-identical to the single-tree ``build_bvh`` output; the
    remaining fields exist so delta updates can identify and reuse clean
    shards.
    """

    bvh: Bvh
    options: BvhBuildOptions
    num_primitives: int
    #: bounds of the centroid cloud that defined the global Morton grid
    scene_lo: np.ndarray
    scene_hi: np.ndarray
    #: Morton-prefix bucket of every primitive row
    bucket_of_row: np.ndarray
    #: non-empty bucket ids, ascending (their stream slices concatenate into
    #: ``bvh.prim_indices``)
    shard_ids: np.ndarray
    #: per non-empty bucket: global rows in shard-sorted (code) order
    shard_rows: dict[int, np.ndarray]
    #: per *delegated* bucket: its sub-BVH in shard-local numbering
    shard_trees: dict[int, Bvh]
    workers_used: int = 1
    built_shards: int = 0
    _top_node_count: int = 0

    @property
    def num_shards(self) -> int:
        return 1 << self.options.shard_bits

    @property
    def non_empty_shards(self) -> int:
        return int(self.shard_ids.shape[0])

    @property
    def delegated_shards(self) -> int:
        return len(self.shard_trees)

    @property
    def top_node_count(self) -> int:
        """Nodes of the top-level table (splits above the shard roots)."""
        return self._top_node_count

    def shard_bounds(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Root bounds of every delegated shard as ``(ids, mins, maxs)``."""
        ids = np.array(sorted(self.shard_trees), dtype=np.int64)
        if ids.size == 0:
            return ids, np.zeros((0, 3), np.float32), np.zeros((0, 3), np.float32)
        mins = np.stack([self.shard_trees[int(b)].node_mins[0] for b in ids])
        maxs = np.stack([self.shard_trees[int(b)].node_maxs[0] for b in ids])
        return ids, mins, maxs

    def dispatch_counts(self, rays) -> dict[int, int]:
        """Rays overlapping each delegated shard's root bounds.

        Diagnostic mirror of what frontier traversal does implicitly: a ray
        only descends into the sub-BVHs returned here.  Uses the engine's
        default node culling (the near limit is clamped to zero, like the
        hardware).
        """
        ids, mins, maxs = self.shard_bounds()
        node_tmin = np.minimum(rays.tmin, np.float32(0.0))
        counts: dict[int, int] = {}
        for i, b in enumerate(ids.tolist()):
            m = len(rays)
            overlap = ray_box_overlap_pairs(
                rays.origins,
                rays.directions,
                node_tmin,
                rays.tmax,
                np.broadcast_to(mins[i].astype(np.float64), (m, 3)),
                np.broadcast_to(maxs[i].astype(np.float64), (m, 3)),
            )
            counts[b] = int(np.count_nonzero(overlap))
        return counts


# --------------------------------------------------------------------------- #
# top-level planning (prefix space)
# --------------------------------------------------------------------------- #


@dataclass
class _TopPlan:
    """The single tree's structure above the shard roots.

    ``entries`` lists the top-level nodes in creation (preorder) order; each
    is ``("leaf", stream_lo, count)`` or ``("inner", left_ref, right_ref)``
    with refs of the form ``("t", entry_index)`` or ``("s", bucket_id)``.
    ``delegated`` holds the buckets that root their own sub-BVH.
    """

    entries: list[tuple] = field(default_factory=list)
    delegated: list[int] = field(default_factory=list)


def plan_top_level(
    shard_vals: np.ndarray, shard_counts: np.ndarray, max_leaf_size: int
) -> _TopPlan:
    """Derive the top-level node table from per-bucket counts alone.

    Mirrors the single-tree recursion exactly: a range whose count fits a
    leaf becomes a (possibly bucket-spanning) leaf, a range inside one bucket
    delegates to that bucket's sub-builder, and every other range splits at
    its highest differing Morton bit — which, for ranges spanning two or more
    prefix buckets, is always a prefix bit and therefore computable from the
    bucket ids.
    """
    plan = _TopPlan()
    if shard_vals.shape[0] == 0:
        return plan
    stream_starts = np.cumsum(shard_counts) - shard_counts

    # (range over bucket indices, parent entry, which child slot); the root
    # gets a placeholder parent.  Children are resolved by patching the
    # parent entry once the child's id (or shard delegation) is known.
    stack: list[tuple[int, int, int, int]] = [(0, int(shard_vals.shape[0]), -1, 0)]
    range_counts = np.cumsum(shard_counts)

    def _emit(parent: int, slot: int, ref: tuple) -> None:
        if parent < 0:
            return
        kind, left_ref, right_ref = plan.entries[parent]
        if slot == 0:
            plan.entries[parent] = (kind, ref, right_ref)
        else:
            plan.entries[parent] = (kind, left_ref, ref)

    while stack:
        a, b, parent, slot = stack.pop()
        count = int(range_counts[b - 1] - (range_counts[a - 1] if a else 0))
        if count <= max_leaf_size:
            plan.entries.append(("leaf", int(stream_starts[a]), count))
            _emit(parent, slot, ("t", len(plan.entries) - 1))
            continue
        if b - a == 1:
            bucket = int(shard_vals[a])
            plan.delegated.append(bucket)
            _emit(parent, slot, ("s", bucket))
            continue
        first = int(shard_vals[a])
        last = int(shard_vals[b - 1])
        # Highest differing Morton bit of the range, expressed in bucket
        # space (different buckets always differ within the prefix).
        h = (first ^ last).bit_length() - 1
        prefix = first >> h
        pos = a + int(np.searchsorted(shard_vals[a:b] >> np.uint64(h), prefix, "right"))
        node = len(plan.entries)
        plan.entries.append(("inner", None, None))
        _emit(parent, slot, ("t", node))
        # Push right first so ids are allocated left-first like the builder
        # (the final numbering is recomputed globally either way).
        stack.append((pos, b, node, 1))
        stack.append((a, pos, node, 0))
    return plan


# --------------------------------------------------------------------------- #
# shard jobs
# --------------------------------------------------------------------------- #


def _run_shard_job(job: ShardJob):
    """Sort one bucket's rows by Morton code and optionally build its tree.

    Reads the large shared inputs from :data:`_SHARD_PAYLOAD` (inherited via
    fork in pooled builds, set directly for serial ones).  Deterministic in
    its inputs, so results are bit-identical for any pool size.
    """
    payload = _SHARD_PAYLOAD
    rows = job.rows
    codes = morton_interleave_grid(payload["grid"][rows], payload["bits"])
    if job.needs_sort:
        order = np.argsort(codes, kind="stable")
        rows = rows[order]
        codes = codes[order]
    tree = None
    if job.build_tree:
        tree = build_lbvh_over_sorted(
            codes,
            payload["prim_mins"][rows],
            payload["prim_maxs"][rows],
            payload["options"],
        )
    return job.bucket, rows, tree


def _execute_jobs(
    jobs: list[ShardJob], payload: dict, workers: int
) -> tuple[list, int]:
    """Run shard jobs serially or across a fork pool; returns (results, pool size)."""
    global _SHARD_PAYLOAD
    _SHARD_PAYLOAD = payload
    try:
        pool_size = min(workers, len(jobs))
        if pool_size > 1:
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:
                pool_size = 1
        if pool_size > 1:
            with ctx.Pool(processes=pool_size) as pool:
                results = pool.map(_run_shard_job, jobs)
        else:
            pool_size = 1
            results = [_run_shard_job(job) for job in jobs]
        return results, pool_size
    finally:
        _SHARD_PAYLOAD = None


# --------------------------------------------------------------------------- #
# stitching
# --------------------------------------------------------------------------- #


def _stitch(
    shard_vals: np.ndarray,
    shard_counts: np.ndarray,
    shard_rows: dict[int, np.ndarray],
    shard_trees: dict[int, Bvh],
    plan: _TopPlan,
    prim_mins: np.ndarray,
    prim_maxs: np.ndarray,
    options: BvhBuildOptions,
) -> Bvh:
    """Assemble the global single tree from the top plan and shard sub-trees.

    Works in an intermediate numbering (top-level nodes first, shard blocks
    after), then renumbers to the stack-order DFS ids the single-tree builder
    emits — the output arrays are bit-identical to ``build_bvh`` with
    ``shard_bits=0``.
    """
    stream_starts = np.cumsum(shard_counts) - shard_counts
    start_of_bucket = {int(b): int(s) for b, s in zip(shard_vals, stream_starts)}
    rows_stream = (
        np.concatenate([shard_rows[int(b)] for b in shard_vals])
        if shard_vals.size
        else np.zeros(0, dtype=np.int64)
    )
    n = int(rows_stream.shape[0])

    num_top = len(plan.entries)
    offsets: dict[int, int] = {}
    next_id = num_top
    for bucket in sorted(shard_trees):
        offsets[bucket] = next_id
        next_id += shard_trees[bucket].node_count
    if next_id == 0:
        # Non-empty inputs always yield at least one plan entry or one
        # delegated shard; both entry points reject zero primitives.
        raise ValueError("cannot stitch an empty forest")
    num_nodes = next_id

    left = np.full(num_nodes, -1, dtype=np.int64)
    right = np.full(num_nodes, -1, dtype=np.int64)
    first_prim = np.zeros(num_nodes, dtype=np.int64)
    prim_count = np.zeros(num_nodes, dtype=np.int64)
    node_mins = np.empty((num_nodes, 3), dtype=np.float32)
    node_maxs = np.empty((num_nodes, 3), dtype=np.float32)

    # Shard blocks: rebase child pointers by the block offset and leaf ranges
    # by the bucket's slice of the global primitive stream.
    for bucket, tree in shard_trees.items():
        off = offsets[bucket]
        sl = slice(off, off + tree.node_count)
        inner = tree.left >= 0
        left[sl] = np.where(inner, tree.left + off, -1)
        right[sl] = np.where(inner, tree.right + off, -1)
        # Only leaves reference the primitive stream; inner nodes keep the
        # builder's zero placeholder.
        first_prim[sl] = np.where(
            inner, tree.first_prim, tree.first_prim + start_of_bucket[bucket]
        )
        prim_count[sl] = tree.prim_count
        node_mins[sl] = tree.node_mins
        node_maxs[sl] = tree.node_maxs

    def _resolve(ref: tuple) -> int:
        return ref[1] if ref[0] == "t" else offsets[ref[1]]

    # Top leaves first (their bounds come straight from the primitives), then
    # inner bounds bottom-up — children always have larger entry ids, so one
    # reverse sweep suffices.
    for i, entry in enumerate(plan.entries):
        if entry[0] == "leaf":
            _, lo, count = entry
            first_prim[i] = lo
            prim_count[i] = count
            gathered = rows_stream[lo : lo + count]
            node_mins[i] = prim_mins[gathered].min(axis=0).astype(np.float32)
            node_maxs[i] = prim_maxs[gathered].max(axis=0).astype(np.float32)
    for i in range(num_top - 1, -1, -1):
        entry = plan.entries[i]
        if entry[0] != "inner":
            continue
        l = _resolve(entry[1])
        r = _resolve(entry[2])
        left[i] = l
        right[i] = r
        node_mins[i] = np.minimum(node_mins[l], node_mins[r])
        node_maxs[i] = np.maximum(node_maxs[l], node_maxs[r])

    levels: list[np.ndarray] = []
    frontier = np.zeros(1, dtype=np.int64)
    while frontier.size:
        levels.append(frontier)
        inner = frontier[left[frontier] >= 0]
        if inner.size == 0:
            break
        frontier = np.concatenate([left[inner], right[inner]])

    perm = _dfs_renumbering(left, right, levels)
    out_mins = np.empty_like(node_mins)
    out_maxs = np.empty_like(node_maxs)
    out_left = np.empty_like(left)
    out_right = np.empty_like(right)
    out_first = np.empty_like(first_prim)
    out_count = np.empty_like(prim_count)
    safe_left = np.maximum(left, 0)
    safe_right = np.maximum(right, 0)
    out_left[perm] = np.where(left >= 0, perm[safe_left], -1)
    out_right[perm] = np.where(right >= 0, perm[safe_right], -1)
    out_first[perm] = first_prim
    out_count[perm] = prim_count
    out_mins[perm] = node_mins
    out_maxs[perm] = node_maxs
    bvh = Bvh(
        node_mins=out_mins,
        node_maxs=out_maxs,
        left=out_left,
        right=out_right,
        first_prim=out_first,
        prim_count=out_count,
        prim_indices=rows_stream,
        num_primitives=n,
        options=options,
    )
    bvh.build_stats = {
        "builder": options.builder,
        "num_primitives": n,
        "node_count": bvh.node_count,
        "leaf_count": bvh.leaf_count,
        "shards": 1 << options.shard_bits,
        "delegated_shards": len(shard_trees),
        "top_nodes": num_top,
    }
    return bvh


# --------------------------------------------------------------------------- #
# build + delta update
# --------------------------------------------------------------------------- #


def build_forest(
    primitive_buffer: PrimitiveBuffer, options: BvhBuildOptions | None = None
) -> BvhForest:
    """Build a sharded BVH forest over all primitives of ``primitive_buffer``.

    Requires ``options.shard_bits >= 1`` and the ``"lbvh"`` builder; the
    stitched ``forest.bvh`` is bit-identical to the single-tree
    :func:`repro.rtx.bvh.build_bvh` with the same options minus sharding.
    """
    options = options or BvhBuildOptions(shard_bits=4)
    options.validate()
    if options.shard_bits < 1:
        raise ValueError("build_forest requires shard_bits >= 1")
    prim_mins, prim_maxs = primitive_buffer.compute_aabbs()
    prim_mins = prim_mins.astype(np.float64)
    prim_maxs = prim_maxs.astype(np.float64)
    n = prim_mins.shape[0]
    if n == 0:
        raise ValueError("cannot build a BVH forest over zero primitives")

    centroids = 0.5 * (prim_mins + prim_maxs)
    grid, lo, hi = quantize_to_grid_with_bounds(centroids, options.morton_bits)
    bucket = morton_prefix_buckets(grid, options.morton_bits, options.shard_bits)

    num_buckets = 1 << options.shard_bits
    counts = np.bincount(bucket, minlength=num_buckets)
    group_order = np.argsort(bucket, kind="stable")
    starts = np.cumsum(counts) - counts
    shard_vals = np.flatnonzero(counts).astype(np.uint64)
    shard_counts = counts[shard_vals.astype(np.int64)]

    plan = plan_top_level(shard_vals, shard_counts, options.max_leaf_size)
    delegated = set(plan.delegated)

    jobs = [
        ShardJob(
            bucket=int(b),
            rows=group_order[starts[int(b)] : starts[int(b)] + counts[int(b)]],
            needs_sort=True,
            build_tree=int(b) in delegated,
        )
        for b in shard_vals
    ]
    payload = {
        "grid": grid,
        "prim_mins": prim_mins,
        "prim_maxs": prim_maxs,
        "bits": options.morton_bits,
        "options": options,
    }
    results, pool_size = _execute_jobs(jobs, payload, options.workers)

    shard_rows: dict[int, np.ndarray] = {}
    shard_trees: dict[int, Bvh] = {}
    for bucket_id, rows, tree in results:
        shard_rows[bucket_id] = rows
        if tree is not None:
            shard_trees[bucket_id] = tree

    bvh = _stitch(
        shard_vals, shard_counts, shard_rows, shard_trees, plan,
        prim_mins, prim_maxs, options,
    )
    return BvhForest(
        bvh=bvh,
        options=options,
        num_primitives=n,
        scene_lo=lo,
        scene_hi=hi,
        bucket_of_row=bucket,
        shard_ids=shard_vals.astype(np.int64),
        shard_rows=shard_rows,
        shard_trees=shard_trees,
        workers_used=pool_size,
        built_shards=len(shard_trees),
        _top_node_count=len(plan.entries),
    )


def delta_update_forest(
    forest: BvhForest,
    old_buffer: PrimitiveBuffer,
    new_buffer: PrimitiveBuffer,
) -> tuple[BvhForest, DeltaUpdateStats]:
    """Bring a forest up to date with moved/added/removed primitives.

    Only shards whose primitive membership or geometry changed are re-sorted
    and rebuilt; clean shards reuse their sorted rows and sub-trees (rebased
    into the new stream during stitching).  Returns the updated forest —
    whose ``bvh`` is bit-identical to a from-scratch build over
    ``new_buffer`` — plus statistics of the work performed.  A no-op update
    (nothing changed) returns the original forest untouched.
    """
    options = forest.options
    num_buckets = 1 << options.shard_bits

    new_mins, new_maxs = new_buffer.compute_aabbs()
    new_mins = new_mins.astype(np.float64)
    new_maxs = new_maxs.astype(np.float64)
    n_new = new_mins.shape[0]
    if n_new == 0:
        raise ValueError("cannot delta-update a forest to zero primitives")
    centroids = 0.5 * (new_mins + new_maxs)
    grid, lo, hi = quantize_to_grid_with_bounds(centroids, options.morton_bits)

    def _full_rebuild(rescaled: bool) -> tuple[BvhForest, DeltaUpdateStats]:
        rebuilt = build_forest(new_buffer, options)
        stats = DeltaUpdateStats(
            total_shards=num_buckets,
            non_empty_shards=rebuilt.non_empty_shards,
            dirty_shards=rebuilt.non_empty_shards,
            rebuilt_trees=rebuilt.built_shards,
            dirty_keys=n_new,
            total_keys=n_new,
            rescaled=rescaled,
        )
        return rebuilt, stats

    if not (
        np.array_equal(lo, forest.scene_lo) and np.array_equal(hi, forest.scene_hi)
    ):
        # The global grid moved: every Morton code is re-quantised, so no
        # shard content can be trusted.
        return _full_rebuild(rescaled=True)

    bucket = morton_prefix_buckets(grid, options.morton_bits, options.shard_bits)
    old_mins, old_maxs = old_buffer.compute_aabbs()
    old_mins = old_mins.astype(np.float64)
    old_maxs = old_maxs.astype(np.float64)
    n_old = forest.num_primitives
    common = min(n_old, n_new)

    changed = (new_mins[:common] != old_mins[:common]).any(axis=1)
    changed |= (new_maxs[:common] != old_maxs[:common]).any(axis=1)
    dirty = np.zeros(num_buckets, dtype=bool)
    if changed.any():
        dirty[forest.bucket_of_row[:common][changed]] = True
        dirty[bucket[:common][changed]] = True
    if n_old > common:
        dirty[forest.bucket_of_row[common:]] = True
    if n_new > common:
        dirty[bucket[common:]] = True

    counts = np.bincount(bucket, minlength=num_buckets)
    shard_vals = np.flatnonzero(counts).astype(np.uint64)
    shard_counts = counts[shard_vals.astype(np.int64)]
    dirty_ids = np.flatnonzero(dirty)
    if dirty_ids.size == 0:
        return forest, DeltaUpdateStats(
            total_shards=num_buckets,
            non_empty_shards=forest.non_empty_shards,
            dirty_shards=0,
            rebuilt_trees=0,
            dirty_keys=0,
            total_keys=n_new,
            noop=True,
        )

    plan = plan_top_level(shard_vals, shard_counts, options.max_leaf_size)
    delegated = set(plan.delegated)

    # Group the rows of dirty buckets in one stable pass.
    dirty_row_mask = dirty[bucket]
    dirty_rows = np.flatnonzero(dirty_row_mask)
    grouped = dirty_rows[np.argsort(bucket[dirty_rows], kind="stable")]
    group_counts = np.bincount(bucket[dirty_rows], minlength=num_buckets)
    group_starts = np.cumsum(group_counts) - group_counts

    jobs: list[ShardJob] = []
    for b in dirty_ids.tolist():
        if group_counts[b] == 0:
            continue  # bucket emptied out; nothing to sort or build
        jobs.append(
            ShardJob(
                bucket=b,
                rows=grouped[group_starts[b] : group_starts[b] + group_counts[b]],
                needs_sort=True,
                build_tree=b in delegated,
            )
        )
    # Clean buckets that the new top plan delegates but that previously had
    # no sub-tree (they were absorbed into a mixed leaf): build their tree
    # from the stored, still-sorted rows.
    for b in delegated:
        if not dirty[b] and b not in forest.shard_trees:
            jobs.append(
                ShardJob(
                    bucket=b,
                    rows=forest.shard_rows[b],
                    needs_sort=False,
                    build_tree=True,
                )
            )

    payload = {
        "grid": grid,
        "prim_mins": new_mins,
        "prim_maxs": new_maxs,
        "bits": options.morton_bits,
        "options": options,
    }
    results, pool_size = _execute_jobs(jobs, payload, options.workers)

    shard_rows = {
        b: rows
        for b, rows in forest.shard_rows.items()
        if not dirty[b] and counts[b] > 0
    }
    shard_trees = {
        b: tree
        for b, tree in forest.shard_trees.items()
        if not dirty[b] and b in delegated
    }
    rebuilt_trees = 0
    for bucket_id, rows, tree in results:
        shard_rows[bucket_id] = rows
        if tree is not None:
            shard_trees[bucket_id] = tree
            rebuilt_trees += 1

    bvh = _stitch(
        shard_vals, shard_counts, shard_rows, shard_trees, plan,
        new_mins, new_maxs, options,
    )
    updated = BvhForest(
        bvh=bvh,
        options=options,
        num_primitives=n_new,
        scene_lo=lo,
        scene_hi=hi,
        bucket_of_row=bucket,
        shard_ids=shard_vals.astype(np.int64),
        shard_rows=shard_rows,
        shard_trees=shard_trees,
        workers_used=pool_size,
        built_shards=len(shard_trees),
        _top_node_count=len(plan.entries),
    )
    stats = DeltaUpdateStats(
        total_shards=num_buckets,
        non_empty_shards=updated.non_empty_shards,
        dirty_shards=int(dirty_ids.size),
        rebuilt_trees=rebuilt_trees,
        dirty_keys=int(dirty_rows.size),
        total_keys=n_new,
    )
    return updated, stats
