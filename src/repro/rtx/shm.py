"""Shared-memory block lifecycle for the zero-copy build backend.

The shm build backend (:mod:`repro.rtx.forest` with
``BvhBuildOptions.backend == "shm"``) moves every large build array —
primitive bounds, Morton grid, bucket ids, the primitive stream, the
per-shard scratch trees and the final node arrays — into
``multiprocessing.shared_memory`` blocks.  Worker processes inherit numpy
views of the blocks through fork and read/write them in place, so a task
descriptor is the only thing that ever crosses the pool's pickle channel.

Lifetime rules (the part that is easy to get wrong):

* A block's **name** (its ``/dev/shm`` entry) is removed by ``unlink()``;
  the **mapping** stays valid until every process that mapped it exits or
  drops its references.  Views handed out by an arena therefore survive an
  unlink — which is exactly what epoch snapshots need: the serving layer
  pins a ``Bvh`` whose arrays are shm views long after the forest that
  built them was replaced.
* A numpy view created over ``SharedMemory.buf`` keeps the underlying
  ``mmap`` *object* alive (it becomes the view's base) but holds **no**
  PEP-3118 export on it — so ``SharedMemory.close()`` (including the one
  ``__del__`` runs when the block object is collected) would silently
  ``munmap`` under live views and turn every later array access into a
  segfault.  :meth:`ShmArena.allocate` therefore *detaches* the mapping
  from the block right after creating the view: the mapping's lifetime
  becomes exactly the views' lifetime (the ``mmap`` unmaps itself when
  the last view is collected), and ``close()`` shrinks to a descriptor
  close that is safe at any time.
* Owners attach a :func:`weakref.finalize`-based release to the object
  whose lifetime governs the blocks (the stitched ``Bvh`` for per-epoch
  blocks, the build state for the persistent input blocks), so normal
  garbage collection unlinks everything without explicit calls.  Error
  paths (worker exception mid-build) release eagerly instead, leaving no
  ``/dev/shm`` entry behind — :func:`live_block_names` exposes the
  registry the leak tests probe.
"""

from __future__ import annotations

import weakref
from multiprocessing import shared_memory

import numpy as np

#: Names of every shm block this process created and has not yet unlinked.
#: Purely diagnostic: the lifecycle tests assert it drains back to empty.
_LIVE_NAMES: set[str] = set()


def live_block_names() -> frozenset[str]:
    """Names of the process's still-linked shm blocks (leak probe)."""
    return frozenset(_LIVE_NAMES)


def reclaim_block_names(names) -> int:
    """Unlink leftover ``/dev/shm`` blocks by *name*; returns how many.

    The abnormal-exit recovery path: a build process that is SIGKILLed
    mid-build never runs its finalizers, so the blocks it created stay
    linked in ``/dev/shm`` with no owner left alive.  A supervising parent
    that knows the names (or sweeps a recorded list) reclaims them here.
    Names that are already gone are skipped — the call is idempotent and
    safe to run against a mix of live and dead entries.
    """
    removed = 0
    for name in names:
        try:
            block = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        try:
            block.unlink()
            removed += 1
        except FileNotFoundError:  # pragma: no cover - racing cleanup
            pass
        _LIVE_NAMES.discard(name)
        block.close()
    return removed


def release_blocks(blocks: list[shared_memory.SharedMemory]) -> None:
    """Unlink every block (idempotent) and close its file descriptor.

    Safe to call multiple times and from :mod:`weakref` finalizers.  The
    blocks were detached by :meth:`ShmArena.allocate`, so ``close()`` only
    closes the descriptor — the mapping itself lives exactly as long as
    the numpy views over it and is reclaimed when the last one is
    collected.
    """
    for block in blocks:
        try:
            block.unlink()
        except FileNotFoundError:
            pass
        _LIVE_NAMES.discard(block.name)
        block.close()


class ShmArena:
    """A group of shared-memory numpy arrays with one release point.

    ``allocate`` creates one block per array and returns a zero-copy view;
    the arena keeps the block objects alive so the views stay valid.  Call
    :meth:`release` on error paths, or :meth:`attach_finalizer` to tie the
    group's lifetime to an owner object (release runs when the owner is
    garbage collected, and at interpreter shutdown at the latest).
    """

    def __init__(self, tag: str = "") -> None:
        self.tag = tag
        self.blocks: list[shared_memory.SharedMemory] = []
        self.arrays: dict[str, np.ndarray] = {}
        self.total_bytes = 0

    def allocate(self, name: str, shape, dtype) -> np.ndarray:
        """Create one shm-backed array and return its view."""
        if name in self.arrays:
            raise ValueError(f"arena {self.tag!r} already holds {name!r}")
        shape = tuple(int(s) for s in (shape if np.iterable(shape) else (shape,)))
        nbytes = max(int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize, 1)
        block = shared_memory.SharedMemory(create=True, size=nbytes)
        self.blocks.append(block)
        _LIVE_NAMES.add(block.name)
        array = np.ndarray(shape, dtype=dtype, buffer=block.buf)
        # Detach the mapping from the block object (see the module
        # docstring): the view's base chain holds the mmap object without
        # a buffer export, so any later ``close()`` — explicit or from the
        # block's ``__del__`` — would munmap under the view.  After this,
        # the mmap is owned by the views alone and ``close()`` only closes
        # the descriptor.
        buf, block._buf = block._buf, None
        buf.release()
        block._mmap = None
        self.arrays[name] = array
        self.total_bytes += nbytes
        return array

    def names(self) -> list[str]:
        return [block.name for block in self.blocks]

    def release(self) -> None:
        """Unlink every block now (error paths); idempotent."""
        release_blocks(self.blocks)

    def attach_finalizer(self, owner) -> None:
        """Release the blocks when ``owner`` is garbage collected.

        The finalizer captures only the block list (not the arena, not any
        view), so it neither keeps the arrays alive nor runs early.
        """
        weakref.finalize(owner, release_blocks, self.blocks)
