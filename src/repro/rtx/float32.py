"""float32 helpers mirroring the restrictions of the OptiX coordinate space.

OptiX only accepts single-precision floating-point vertex coordinates and ray
parameters.  The paper's key-encoding schemes (Section 3.2) therefore have to
reason carefully about which integers are exactly representable as float32,
how to move to the next representable float (``nextafter``), and how to
re-interpret integer bit patterns as floats (``bit_cast``).  This module
collects those primitives so the rest of the code never touches raw NumPy
casting rules directly.
"""

from __future__ import annotations

import numpy as np

#: Largest integer N such that every integer in [0, N] is exactly
#: representable as an IEEE-754 float32 (24-bit significand).
MAX_CONSECUTIVE_INT_F32 = 2**24

#: The paper conservatively restricts Naive Mode to 2**23 distinct keys so
#: that ``k + 0.5`` remains exactly representable for every key ``k``.
NAIVE_MODE_KEY_LIMIT = 2**23

#: Extended Mode maps key ``k`` to the float32 whose bit pattern is
#: ``2 * k + EXTENDED_MODE_OFFSET``; the paper found this offset constant to
#: produce correct results for all keys up to 2**29.
EXTENDED_MODE_OFFSET = int(np.float32(0.5).view(np.uint32))
EXTENDED_MODE_KEY_LIMIT = 2**29


def to_f32(value) -> np.float32:
    """Round ``value`` to the nearest float32 (the cast OptiX performs)."""
    return np.float32(value)


def to_f32_array(values) -> np.ndarray:
    """Convert an array-like of numbers to a float32 NumPy array."""
    return np.asarray(values, dtype=np.float32)


def bit_cast_u32_to_f32(bits) -> np.ndarray:
    """Reinterpret unsigned 32-bit integer bit patterns as float32 values.

    Mirrors C++ ``bit_cast<float>(uint32_t)`` used by Extended Mode.
    """
    arr = np.asarray(bits, dtype=np.uint32)
    return arr.view(np.float32)


def bit_cast_f32_to_u32(values) -> np.ndarray:
    """Reinterpret float32 values as their unsigned 32-bit bit patterns."""
    arr = np.asarray(values, dtype=np.float32)
    return arr.view(np.uint32)


def nextafter_f32(values, direction) -> np.ndarray:
    """Return the next representable float32 after ``values`` toward ``direction``.

    Extended Mode uses this (instead of ``k ± 0.5``) to find the gap value
    next to a key, because consecutive keys are mapped to every second
    representable float.
    """
    vals = np.asarray(values, dtype=np.float32)
    toward = np.asarray(direction, dtype=np.float32)
    return np.nextafter(vals, toward, dtype=np.float32)


def ulp_f32(values) -> np.ndarray:
    """Unit-in-the-last-place of each float32 value (distance to next float)."""
    vals = np.asarray(values, dtype=np.float32)
    return np.abs(np.nextafter(vals, np.float32(np.inf), dtype=np.float32) - vals)


def is_exact_int_f32(values) -> np.ndarray:
    """True where the integer ``values`` survive a round-trip through float32."""
    arr = np.asarray(values, dtype=np.uint64)
    as_float = arr.astype(np.float32)
    back = as_float.astype(np.uint64)
    return back == arr


def is_half_offset_exact_f32(values) -> np.ndarray:
    """True where ``value + 0.5`` is exactly representable as float32.

    Naive Mode needs both ``k`` and ``k ± 0.5`` to be representable: the ray
    of a lookup starts and ends half a unit away from the key coordinate.
    """
    arr = np.asarray(values, dtype=np.uint64).astype(np.float64)
    shifted = arr + 0.5
    as_float = shifted.astype(np.float32)
    return as_float.astype(np.float64) == shifted


def value_range_ratio(values) -> float:
    """Ratio ``q`` between the largest and smallest strictly positive value.

    The paper identifies this ratio (not the magnitude of individual keys) as
    the quantity that degrades Extended-Mode BVHs once it exceeds ~2**26.
    """
    arr = np.asarray(values, dtype=np.float64)
    positive = arr[arr > 0]
    if positive.size == 0:
        return 1.0
    return float(positive.max() / positive.min())


def float_span(values) -> tuple[float, float]:
    """Minimum and maximum of ``values`` after conversion to float32."""
    arr = to_f32_array(values)
    if arr.size == 0:
        return (0.0, 0.0)
    return (float(arr.min()), float(arr.max()))
