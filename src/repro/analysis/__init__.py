"""Post-processing analyses used by the evaluation."""

from repro.analysis.nnls import CostDecomposition, decompose_range_lookup_cost

__all__ = ["CostDecomposition", "decompose_range_lookup_cost"]
