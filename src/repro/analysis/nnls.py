"""Non-negative least squares decomposition of range-lookup cost (Section 4.9).

The paper models the cumulative time of a batch of range lookups with
``LookupTime(2^n) = TraversalTime + 2^n * IntersectTime`` — one BVH traversal
per lookup plus one ray/primitive intersection test per qualifying entry —
and solves the overdetermined system over all measured range sizes with
non-negative least squares (Lawson & Hanson).  On the paper's RTX 4090 this
yields ~103 ms of traversal time versus ~36 ms per-hit intersection time,
i.e. the traversal dominates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import nnls


@dataclass
class CostDecomposition:
    """Result of the traversal/intersection split."""

    traversal_time_ms: float
    intersect_time_ms: float
    residual: float

    @property
    def traversal_dominates(self) -> bool:
        return self.traversal_time_ms > self.intersect_time_ms


def decompose_range_lookup_cost(
    qualifying_entries: np.ndarray, cumulative_times_ms: np.ndarray
) -> CostDecomposition:
    """Split cumulative range-lookup times into traversal and intersection cost.

    ``qualifying_entries[i]`` is the number of qualifying entries per lookup
    of measurement ``i`` and ``cumulative_times_ms[i]`` the measured
    cumulative time; both must have at least two entries.
    """
    entries = np.asarray(qualifying_entries, dtype=np.float64)
    times = np.asarray(cumulative_times_ms, dtype=np.float64)
    if entries.shape != times.shape:
        raise ValueError("qualifying_entries and times must have the same shape")
    if entries.shape[0] < 2:
        raise ValueError("at least two measurements are required")
    design = np.column_stack([np.ones_like(entries), entries])
    solution, residual = nnls(design, times)
    return CostDecomposition(
        traversal_time_ms=float(solution[0]),
        intersect_time_ms=float(solution[1]),
        residual=float(residual),
    )
