"""RTIndeX (RX) reproduction: GPU-raytracing database indexing, in Python.

The package re-implements the full system described in *RTIndeX: Exploiting
Hardware-Accelerated GPU Raytracing for Database Indexing* (VLDB 2023) on top
of a software raytracing substrate, together with the paper's three GPU
baselines, workload generators, an analytic GPU cost model, and a benchmark
harness that regenerates every table and figure of the evaluation.

Quickstart::

    import numpy as np
    from repro import RXIndex

    keys = np.random.permutation(np.arange(1_000, dtype=np.uint64))
    index = RXIndex()
    index.build(keys)
    run = index.point_lookup(np.array([42, 7, 999_999], dtype=np.uint64))
    print(run.result_rows)        # rowIDs (or the miss sentinel)
"""

from repro.baselines import (
    GpuBPlusTree,
    GpuIndex,
    GpuLsmTree,
    MISS_SENTINEL,
    SortedArrayIndex,
    WarpCoreHashTable,
)
from repro.core import (
    KeyDecomposition,
    KeyMode,
    PointRayMode,
    PrimitiveType,
    RangeRayMode,
    RXConfig,
    RXIndex,
    UpdatePolicy,
)
from repro.gpusim import CostModel, DeviceSpec, RTX_4090, WorkProfile
from repro.serve import IndexService

__version__ = "1.0.0"

__all__ = [
    "CostModel",
    "DeviceSpec",
    "GpuBPlusTree",
    "GpuIndex",
    "GpuLsmTree",
    "IndexService",
    "KeyDecomposition",
    "KeyMode",
    "MISS_SENTINEL",
    "PointRayMode",
    "PrimitiveType",
    "RangeRayMode",
    "RTX_4090",
    "RXConfig",
    "RXIndex",
    "SortedArrayIndex",
    "UpdatePolicy",
    "WarpCoreHashTable",
    "WorkProfile",
    "__version__",
]
