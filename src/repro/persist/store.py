"""Epoch-store orchestration: durable saves, verified loads, orphan GC.

On-disk layout of one store (``path`` handed to ``RXIndex.save``)::

    path/
      MANIFEST.json            <- the only mutable file; atomic-rename commit
      epoch-00000000/          <- immutable segments written by epoch 0
        columns.seg
        bvh.seg                (single-tree builds)
        shard-00012.seg ...    (forest builds: one segment per shard)
      epoch-00000001/          <- an incremental save writes only dirty
        columns.seg               segments here; its manifest references
        shard-00012.seg           the clean ones from epoch-00000000

Incremental saves are driven by content, not bookkeeping: every segment's
payload digests (CRC32C *and* SHA-256 — CRC alone is a corruption
detector, not an identity) are compared against the previous manifest's
entry, and a matching segment is *referenced* (its immutable file reused,
possibly from an older epoch directory) instead of rewritten.  After a
DELTA_SHARD update only the dirty shards' payloads change, so exactly
those segments (plus the key column) hit the disk.

Crash safety: segments and the manifest are published with write-temp →
fsync → atomic rename (with the containing directories fsynced before the
commit so the renames are durable when the manifest is), and a snapshot
is visible iff the manifest rename landed.  The save epoch is forced past
the committed manifest's epoch whenever anything must be rewritten, so a
save never replaces a file the committed manifest references — even when
a fresh process restarts its in-memory epoch counter at zero.  A save
killed at any boundary therefore leaves the previous committed epoch
fully intact; the next *save* garbage-collects the orphaned ``.tmp.*``
files, and a committed save prunes segment files no longer referenced by
the new manifest.

Concurrency: the store assumes a **single writer** per directory (saves
GC each other's temp files and prune each other's segments), and readers
that hold a loaded snapshot across a concurrent save keep their mapped
segments alive via the open mappings even if a later save unlinks the
files — but a reader must not cache a *manifest* across saves and resolve
its paths later.  Loads never delete anything.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.persist.errors import SnapshotError
from repro.persist.manifest import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    commit_manifest,
    load_manifest,
)
from repro.persist.segments import (
    TMP_PREFIX,
    fsync_dir,
    payload_crc,
    payload_sha256,
    read_segment,
    write_segment,
)


def gc_orphans(root: Path) -> int:
    """Remove ``.tmp.*`` files an interrupted save left behind.

    Called from the save path only (the store is single-writer): a load
    must never unlink another process's in-flight temp file.
    """
    root = Path(root)
    removed = 0
    if not root.is_dir():
        return 0
    for path in sorted(root.rglob(f"{TMP_PREFIX}*")):
        try:
            path.unlink()
            removed += 1
        except OSError:  # pragma: no cover - racing cleanup
            pass
    return removed


def _prune_unreferenced(root: Path, manifest: dict) -> int:
    """Drop committed-but-unreferenced segment files (torn-save leftovers and
    segments the newest manifest no longer references)."""
    referenced = {(root / entry["path"]).resolve() for entry in manifest["segments"].values()}
    removed = 0
    for epoch_dir in sorted(root.glob("epoch-*")):
        if not epoch_dir.is_dir():
            continue
        for path in sorted(epoch_dir.iterdir()):
            if path.is_file() and path.resolve() not in referenced:
                try:
                    path.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - racing cleanup
                    pass
        try:
            epoch_dir.rmdir()  # only succeeds once fully empty
        except OSError:
            pass
    return removed


@dataclass
class SaveResult:
    """Accounting of one committed save (feeds ``stats()["persist"]``)."""

    epoch: int
    manifest_version: int
    save_seconds: float
    bytes_on_disk: int
    segments_total: int
    segments_rewritten: int
    segments_reused: int
    orphans_removed: int

    def as_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "manifest_version": self.manifest_version,
            "save_seconds": self.save_seconds,
            "bytes_on_disk": self.bytes_on_disk,
            "segments_total": self.segments_total,
            "segments_rewritten": self.segments_rewritten,
            "segments_reused": self.segments_reused,
            "orphans_removed": self.orphans_removed,
        }


@dataclass
class LoadedSnapshot:
    """A verified snapshot: manifest metadata plus per-segment array views."""

    epoch: int
    manifest_version: int
    index_meta: dict
    #: segment name -> (arrays, segment meta); arrays are zero-copy views
    #: into the memory-mapped files when the load ran with ``mmap=True``.
    segments: dict[str, tuple[dict[str, np.ndarray], dict]]
    bytes_on_disk: int
    load_seconds: float
    checksum_verify_seconds: float
    segments_total: int = field(init=False)

    def __post_init__(self) -> None:
        self.segments_total = len(self.segments)

    def arrays(self, name: str) -> dict[str, np.ndarray]:
        return self.segments[name][0]

    def meta(self, name: str) -> dict:
        return self.segments[name][1]


def save_snapshot(
    path: Path,
    *,
    epoch: int,
    segments: dict[str, tuple[dict[str, np.ndarray], dict | None]],
    index_meta: dict,
    fault_injector=None,
) -> SaveResult:
    """Write one epoch's segments and commit a new manifest.

    ``segments`` maps segment names to ``(arrays, meta)``.  Segments whose
    payload digests (CRC32C and SHA-256, both) match the previous
    committed manifest are referenced from their existing epoch directory
    instead of rewritten; everything else is published under
    ``epoch-{epoch:08d}/`` with the atomic write protocol.  The manifest
    commit is the single visibility point.

    The caller's ``epoch`` is advisory: whenever any segment must be
    rewritten, the effective epoch is forced past the committed manifest's
    so new files always land in a fresh epoch directory — a caller whose
    in-memory epoch counter restarted at zero (a new process re-saving
    into an existing store) must never ``os.replace`` a file the committed
    manifest references, or a crash between that rename and the manifest
    commit corrupts the last committed snapshot.
    """
    start = time.perf_counter()
    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)
    orphans_removed = gc_orphans(root)

    try:
        prior = load_manifest(root)
    except SnapshotError:
        prior = None
    prior_entries = prior["segments"] if prior else {}

    # Phase 1 — the reuse decision for every segment, before any path is
    # chosen: both payload digests must match the committed entry and the
    # referenced file must still exist.
    plans: dict[str, tuple[str, object]] = {}
    for name, (arrays, _meta) in segments.items():
        prior_entry = prior_entries.get(name)
        digests = (payload_crc(arrays), payload_sha256(arrays))
        if (
            prior_entry is not None
            and int(prior_entry["payload_crc32c"]) == digests[0]
            and prior_entry.get("payload_sha256") == digests[1]
            and (root / prior_entry["path"]).is_file()
        ):
            plans[name] = ("reuse", dict(prior_entry))
        else:
            plans[name] = ("rewrite", digests)
    any_rewrite = any(kind == "rewrite" for kind, _ in plans.values())

    epoch = int(epoch)
    if prior is not None:
        prior_epoch = int(prior["epoch"])
        # Committed manifests only ever reference epoch dirs <= their own
        # epoch, so prior_epoch + 1 is guaranteed collision-free; with
        # nothing to rewrite the epoch merely stays monotone.
        epoch = max(epoch, prior_epoch + 1) if any_rewrite else max(epoch, prior_epoch)
    epoch_dir = f"epoch-{epoch:08d}"
    if any_rewrite:
        (root / epoch_dir).mkdir(exist_ok=True)
        fsync_dir(root)  # the new epoch directory entry, durably

    # Phase 2 — publish the rewrites and assemble the manifest.
    manifest_entries: dict[str, dict] = {}
    rewritten = 0
    reused = 0
    for name, (arrays, meta) in segments.items():
        kind, plan = plans[name]
        if kind == "reuse":
            manifest_entries[name] = plan
            reused += 1
            continue
        rel = f"{epoch_dir}/{name}.seg"
        entry = write_segment(
            root / rel,
            name=name,
            epoch=epoch,
            arrays=arrays,
            meta=meta,
            fault_injector=fault_injector,
            payload_digests=plan,
        )
        entry["path"] = rel
        manifest_entries[name] = entry
        rewritten += 1
    if any_rewrite:
        # Make the segment renames durable before the manifest that
        # references them can commit: a power cut must never preserve the
        # manifest rename while losing the epoch dir's entries.
        fsync_dir(root / epoch_dir)

    manifest = {
        "format_version": FORMAT_VERSION,
        "version": int(prior["version"]) + 1 if prior else 1,
        "epoch": epoch,
        "index": index_meta,
        "segments": manifest_entries,
    }
    commit_manifest(root, manifest, fault_injector)
    _prune_unreferenced(root, manifest)
    return SaveResult(
        epoch=epoch,
        manifest_version=manifest["version"],
        save_seconds=time.perf_counter() - start,
        bytes_on_disk=sum(int(entry["length"]) for entry in manifest_entries.values()),
        segments_total=len(manifest_entries),
        segments_rewritten=rewritten,
        segments_reused=reused,
        orphans_removed=orphans_removed,
    )


def load_snapshot(
    path: Path, *, mmap: bool = True, fault_injector=None
) -> LoadedSnapshot:
    """Open the last committed epoch, verifying every referenced segment.

    Every segment is checked for existence, length, whole-file CRC32C and
    its own epoch tag against the manifest entry before any array view is
    handed out — a failure raises :class:`SnapshotTorn` /
    :class:`SnapshotCorrupt` naming the segment, and no partially-verified
    state escapes.  Loads are strictly read-only: orphaned temp files from
    interrupted saves are left for the next *save* to garbage-collect, so
    a load can never unlink a concurrent writer's in-flight temp file.
    """
    start = time.perf_counter()
    root = Path(path)
    manifest = load_manifest(root)
    segments: dict[str, tuple[dict[str, np.ndarray], dict]] = {}
    verify_seconds = 0.0
    for name in sorted(manifest["segments"]):
        entry = manifest["segments"][name]
        verify_start = time.perf_counter()
        arrays, meta = read_segment(
            root / entry["path"],
            mmap=mmap,
            expected=entry,
            fault_injector=fault_injector,
        )
        verify_seconds += time.perf_counter() - verify_start
        segments[name] = (arrays, meta)
    return LoadedSnapshot(
        epoch=int(manifest["epoch"]),
        manifest_version=int(manifest["version"]),
        index_meta=manifest["index"],
        segments=segments,
        bytes_on_disk=sum(
            int(entry["length"]) for entry in manifest["segments"].values()
        ),
        load_seconds=time.perf_counter() - start,
        checksum_verify_seconds=verify_seconds,
    )
