"""Vectorised CRC32C (Castagnoli) — no third-party dependencies.

Every persisted segment file is checksummed end to end, so the checksum
sits on the cold-restart critical path: a pure-Python per-byte loop is far
too slow for multi-megabyte array segments, and the container may not ship
a native ``crc32c`` wheel.  This module vectorises the computation with
NumPy instead:

* **slicing-by-64** — the input is viewed as 64-byte blocks; one table
  lookup per byte (a ``(64, 256)`` table stack) plus an XOR reduction
  yields every block's *raw* CRC contribution in parallel;
* **GF(2) tree combine** — the raw CRC remainder (init 0, no final xor)
  is linear over GF(2), and advancing a state across ``L`` zero bytes is
  a 32x32 bit-matrix multiply.  Per-block raws are folded pairwise in a
  log-depth tree using cached zero-byte-advance matrices built once by
  matrix squaring.

``_TABLE[0] == 0`` makes leading zero bytes the identity under a zero
state, so blocks can be front-padded to a power-of-two count freely.  The
standard CRC32C conditioning (init ``0xFFFFFFFF``, final xor) is applied
once at digest time through one extra matrix advance over the total
length.  The check value ``crc32c(b"123456789") == 0xE3069283`` and the
canonical per-byte loop (``crc32c_reference``) pin the implementation in
``tests/test_persist_roundtrip.py``.
"""

from __future__ import annotations

import numpy as np

#: Reflected Castagnoli polynomial (the iSCSI/ext4 CRC32C).
_POLY = 0x82F63B78

#: Bytes per independent block of the slicing pass.
_SLICE_WIDTH = 64

#: Chunk size of the streaming fold (bounds the temporary gather arrays).
_CHUNK_BYTES = 1 << 22


def _make_byte_table() -> np.ndarray:
    table = np.empty(256, dtype=np.uint32)
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
        table[byte] = crc
    return table


_TABLE = _make_byte_table()


def _make_slice_tables() -> np.ndarray:
    """``tables[i][b]``: contribution of byte ``b`` sitting ``63 - i`` bytes
    before the end of its 64-byte block (slicing-by-64)."""
    tables = np.empty((_SLICE_WIDTH, 256), dtype=np.uint32)
    tables[_SLICE_WIDTH - 1] = _TABLE
    for i in range(_SLICE_WIDTH - 2, -1, -1):
        later = tables[i + 1]
        tables[i] = (later >> np.uint32(8)) ^ _TABLE[later & np.uint32(0xFF)]
    return tables


_SLICE_TABLES = _make_slice_tables()
_SLICE_IDX = np.arange(_SLICE_WIDTH, dtype=np.intp)[None, :]


# --------------------------------------------------------------------- #
# GF(2) zero-byte-advance matrices
# --------------------------------------------------------------------- #

def _matrix_times_vec(mat: np.ndarray, vec: int) -> int:
    """Apply a 32x32 GF(2) matrix (32 uint32 columns) to one state."""
    res = 0
    j = 0
    while vec:
        if vec & 1:
            res ^= int(mat[j])
        vec >>= 1
        j += 1
    return res


def _matrix_times_vecs(mat: np.ndarray, vecs: np.ndarray) -> np.ndarray:
    """Apply the matrix to a whole uint32 state vector at once."""
    res = np.zeros_like(vecs)
    for j in range(32):
        res ^= mat[j] * ((vecs >> np.uint32(j)) & np.uint32(1))
    return res


def _one_byte_matrix() -> np.ndarray:
    """Matrix advancing a raw CRC state across one zero byte."""
    cols = np.empty(32, dtype=np.uint32)
    for j in range(32):
        state = 1 << j
        cols[j] = (state >> 8) ^ int(_TABLE[state & 0xFF])
    return cols


#: ``_SHIFT[k]`` advances a state across ``2**k`` zero bytes.
_SHIFT: list[np.ndarray] = [_one_byte_matrix()]


def _shift_matrix(k: int) -> np.ndarray:
    while len(_SHIFT) <= k:
        prev = _SHIFT[-1]
        _SHIFT.append(_matrix_times_vecs(prev, prev))
    return _SHIFT[k]


def _advance_state(state: int, nbytes: int) -> int:
    """Advance a raw CRC state across ``nbytes`` zero bytes."""
    k = 0
    while nbytes:
        if nbytes & 1:
            state = _matrix_times_vec(_shift_matrix(k), state)
        nbytes >>= 1
        k += 1
    return state


# --------------------------------------------------------------------- #
# the vectorised kernel
# --------------------------------------------------------------------- #

def _raw_crc_chunk(data: np.ndarray) -> int:
    """Raw (init 0, no final xor) CRC of one contiguous uint8 chunk."""
    n = data.shape[0]
    if n == 0:
        return 0
    nblocks = 1 << max(-(-n // _SLICE_WIDTH) - 1, 0).bit_length()
    padded = np.zeros(nblocks * _SLICE_WIDTH, dtype=np.uint8)
    padded[-n:] = data
    blocks = padded.reshape(nblocks, _SLICE_WIDTH)
    per_block = np.bitwise_xor.reduce(_SLICE_TABLES[_SLICE_IDX, blocks], axis=1)
    level = _SLICE_WIDTH.bit_length() - 1  # each block spans 2**level bytes
    while per_block.shape[0] > 1:
        per_block = (
            _matrix_times_vecs(_shift_matrix(level), per_block[0::2])
            ^ per_block[1::2]
        )
        level += 1
    return int(per_block[0])


def _as_u8(data) -> np.ndarray:
    if isinstance(data, np.ndarray):
        return np.ascontiguousarray(data).reshape(-1).view(np.uint8)
    view = memoryview(data)
    if view.format != "B":
        view = view.cast("B")
    return np.frombuffer(view, dtype=np.uint8)


class Crc32c:
    """Incremental CRC32C over a sequence of buffers (bytes-likes or arrays)."""

    def __init__(self) -> None:
        self._raw = 0
        self._length = 0

    def update(self, data) -> "Crc32c":
        buf = _as_u8(data)
        for lo in range(0, buf.shape[0], _CHUNK_BYTES):
            chunk = buf[lo : lo + _CHUNK_BYTES]
            self._raw = _advance_state(self._raw, chunk.shape[0]) ^ _raw_crc_chunk(chunk)
            self._length += chunk.shape[0]
        return self

    def digest(self) -> int:
        # Conditioning: seed 0xFFFFFFFF advanced across the whole length,
        # xored with the raw remainder, then the final inversion.
        return (self._raw ^ _advance_state(0xFFFFFFFF, self._length) ^ 0xFFFFFFFF) & 0xFFFFFFFF


def crc32c(data) -> int:
    """Standard CRC32C of one buffer (bytes-like or NumPy array)."""
    return Crc32c().update(data).digest()


def crc32c_of_parts(parts) -> int:
    """CRC32C of the concatenation of ``parts`` without concatenating them."""
    acc = Crc32c()
    for part in parts:
        acc.update(part)
    return acc.digest()


def crc32c_reference(data: bytes) -> int:
    """Canonical per-byte CRC32C loop — the test oracle for the kernel."""
    crc = 0xFFFFFFFF
    for byte in bytes(data):
        crc = (crc >> 8) ^ int(_TABLE[(crc ^ byte) & 0xFF])
    return crc ^ 0xFFFFFFFF
