"""The versioned manifest — the epoch store's single commit point.

``MANIFEST.json`` at the store root is the *only* mutable file in the
store.  It records the committed epoch, a monotonically increasing
manifest version, the index metadata needed to reconstruct an
:class:`~repro.core.rx_index.RXIndex` (config, key count, compaction
flag), and one entry per segment: a store-relative path (which may point
into an *older* epoch directory when an incremental save reused a clean
segment), whole-file and payload CRC32Cs, the byte length, and the epoch
that wrote the segment.

Commit protocol: the manifest is serialised, written to a temp file,
fsynced, and atomically renamed over ``MANIFEST.json``, then the store
directory entry is fsynced.  A snapshot is visible **iff** that rename
landed — an interrupted save leaves either the previous manifest (whose
segments are immutable and untouched) or no manifest at all, never a torn
or mixed-epoch view.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.persist.errors import SnapshotCorrupt, SnapshotTorn
from repro.persist.segments import atomic_write, fsync_dir

MANIFEST_NAME = "MANIFEST.json"
FORMAT_VERSION = 1

_REQUIRED_KEYS = ("format_version", "version", "epoch", "index", "segments")
_REQUIRED_ENTRY_KEYS = ("path", "crc32c", "payload_crc32c", "length", "epoch")


def commit_manifest(root: Path, manifest: dict, fault_injector=None) -> Path:
    """Atomically publish ``manifest`` at the store root (the commit point)."""
    root = Path(root)
    blob = (json.dumps(manifest, sort_keys=True, indent=2) + "\n").encode("utf-8")
    path = root / MANIFEST_NAME
    atomic_write(path, blob, fault_injector)
    fsync_dir(root)
    return path


def load_manifest(root: Path) -> dict:
    """Read and structurally validate the committed manifest, if any."""
    root = Path(root)
    path = root / MANIFEST_NAME
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError as exc:
        raise SnapshotTorn(
            f"no committed snapshot at {root} (missing {MANIFEST_NAME})",
            segment=MANIFEST_NAME,
        ) from exc
    try:
        manifest = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SnapshotCorrupt(
            f"manifest at {root} is not valid JSON: {exc}", segment=MANIFEST_NAME
        ) from exc
    if not isinstance(manifest, dict):
        raise SnapshotCorrupt(
            f"manifest at {root} is not a JSON object", segment=MANIFEST_NAME
        )
    missing = [key for key in _REQUIRED_KEYS if key not in manifest]
    if missing:
        raise SnapshotCorrupt(
            f"manifest at {root} is missing required keys {missing}",
            segment=MANIFEST_NAME,
        )
    if manifest["format_version"] != FORMAT_VERSION:
        raise SnapshotCorrupt(
            f"manifest format version {manifest['format_version']!r} is not "
            f"supported (expected {FORMAT_VERSION})",
            segment=MANIFEST_NAME,
        )
    for name, entry in manifest["segments"].items():
        entry_missing = [key for key in _REQUIRED_ENTRY_KEYS if key not in entry]
        if entry_missing:
            raise SnapshotCorrupt(
                f"manifest entry for segment {name} is missing keys {entry_missing}",
                segment=name,
            )
    return manifest
