"""Error taxonomy of the persistent epoch store.

Recovery distinguishes two failure classes, both naming the offending
segment so operators (and the seeded crash harness) can see exactly what
broke:

* :class:`SnapshotTorn` — the on-disk state is *structurally* incomplete:
  a referenced segment file is missing or truncated, its epoch tag does
  not match the manifest entry (a mixed-epoch store), or no manifest was
  ever committed.  Torn states are what interrupted saves leave behind
  when the manifest rename did not land — by construction they are never
  visible through a committed manifest.
* :class:`SnapshotCorrupt` — the structure is intact but the bytes are
  wrong: a segment's CRC32C does not match the manifest, or the manifest
  itself fails to parse.  Corruption is latent (bit rot, torn sector
  writes under a committed manifest) and must surface as an explicit
  error, never as silently wrong query results.
"""

from __future__ import annotations


class SnapshotError(RuntimeError):
    """Base error of the persistent epoch store."""

    def __init__(self, message: str, segment: str | None = None) -> None:
        super().__init__(message)
        #: Name of the offending segment (or manifest), when one is known.
        self.segment = segment


class SnapshotTorn(SnapshotError):
    """The snapshot is structurally incomplete (missing/truncated segment,
    epoch-tag mismatch, or no committed manifest)."""


class SnapshotCorrupt(SnapshotError):
    """A committed segment or manifest holds bytes that fail verification."""
