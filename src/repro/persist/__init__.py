"""Crash-safe persistent epoch store for the RX index.

Immutable, CRC32C-checksummed segment files per epoch plus one atomically
swapped manifest (WAL-flavoured: readers of a committed snapshot never
observe a writer's partial work).  ``RXIndex.save(path)`` /
``RXIndex.load(path, mmap=True)`` are the public entry points; this
package supplies the file formats, the commit protocol, the verification
reads and the recovery error taxonomy underneath them.

Modules
-------
``checksum``   vectorised CRC32C (slicing-by-64 + GF(2) tree combine)
``segments``   immutable segment files, atomic publish, verified reads
``manifest``   the versioned manifest — the single commit/visibility point
``store``      save/load orchestration, incremental reuse, orphan GC
``errors``     ``SnapshotError`` / ``SnapshotTorn`` / ``SnapshotCorrupt``
"""

from repro.persist.checksum import Crc32c, crc32c, crc32c_of_parts, crc32c_reference
from repro.persist.errors import SnapshotCorrupt, SnapshotError, SnapshotTorn
from repro.persist.manifest import MANIFEST_NAME, commit_manifest, load_manifest
from repro.persist.segments import read_segment, write_segment
from repro.persist.store import (
    LoadedSnapshot,
    SaveResult,
    gc_orphans,
    load_snapshot,
    save_snapshot,
)

__all__ = [
    "Crc32c",
    "crc32c",
    "crc32c_of_parts",
    "crc32c_reference",
    "SnapshotCorrupt",
    "SnapshotError",
    "SnapshotTorn",
    "MANIFEST_NAME",
    "commit_manifest",
    "load_manifest",
    "read_segment",
    "write_segment",
    "LoadedSnapshot",
    "SaveResult",
    "gc_orphans",
    "load_snapshot",
    "save_snapshot",
]
