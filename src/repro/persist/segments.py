"""Immutable, checksummed segment files — the unit of the epoch store.

A segment is one self-describing file holding a set of named NumPy arrays
(the persisted form of one accel component: the key column, a single-tree
BVH, or one forest shard).  Layout::

    +------------------+  offset 0
    | magic "RXSEG001" |  8 bytes
    | header length    |  8 bytes, little-endian uint64
    | JSON header      |  name, epoch tag, array table, free-form meta
    +------------------+  payload base = align64(16 + header length)
    | array payloads   |  each 64-byte aligned, offsets relative to base
    +------------------+

Array offsets are relative to the payload base so the header can be
serialised before the offsets are final (no offset/header-length
circularity), and the 64-byte alignment keeps memory-mapped views aligned
for every dtype in use.

Segments are **immutable**: they are assembled fully in memory, then
published with the write-temp → fsync → atomic-rename protocol shared with
the manifest.  The three durability boundaries of that protocol — and the
verification read — are fault-injection sites (``persist_write``,
``persist_fsync``, ``persist_rename``, ``persist_read_corrupt``) so the
crash harness can kill a save at every step and flip bits on the read
path.  Temp files carry a ``.tmp.`` prefix so interrupted saves leave
orphans that :func:`repro.persist.store` can garbage-collect.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from pathlib import Path

import numpy as np

from repro.persist.checksum import Crc32c, crc32c
from repro.persist.errors import SnapshotCorrupt, SnapshotTorn

MAGIC = b"RXSEG001"
_PREFIX_BYTES = len(MAGIC) + 8
_ALIGN = 64

#: Prefix of in-flight temp files (the orphan-GC marker).
TMP_PREFIX = ".tmp."


def _align_up(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def fsync_dir(path: Path) -> None:
    """Flush a directory entry (the rename's durability half) where supported."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform without dir fsync
        pass
    finally:
        os.close(fd)


def atomic_write(path: Path, blob, fault_injector=None) -> None:
    """Publish ``blob`` at ``path`` via write-temp → fsync → atomic rename.

    ``blob`` is any bytes-like (including a uint8 array).  With a fault
    injector attached, the three durability boundaries consult their sites:
    ``persist_write`` fires a *torn* write (half the bytes land, then the
    save dies), ``persist_fsync`` dies before the data reaches the platter,
    ``persist_rename`` dies before the temp file is published — each leaves
    exactly the wreckage a real crash at that boundary would.
    """
    path = Path(path)
    tmp = path.parent / (TMP_PREFIX + path.name)
    view = memoryview(blob)
    with open(tmp, "wb") as handle:
        if fault_injector is not None and fault_injector.fires("persist_write"):
            # Imported lazily: the persist layer only needs the serving
            # stack's exception type when an injector is actually attached,
            # and the deferred import keeps repro.persist importable without
            # dragging in (or cycling with) the serving package.
            from repro.serve.faults import InjectedFault

            handle.write(view[: len(view) // 2])
            handle.flush()
            raise InjectedFault(
                "persist_write", fault_injector.occurrences["persist_write"] - 1
            )
        handle.write(view)
        handle.flush()
        if fault_injector is not None:
            fault_injector.check("persist_fsync")
        os.fsync(handle.fileno())
    if fault_injector is not None:
        fault_injector.check("persist_rename")
    os.replace(tmp, path)


def payload_crc(arrays: dict[str, np.ndarray]) -> int:
    """CRC32C over the concatenated array payloads (order-sensitive).

    Cheap dirty-vs-clean comparison key for incremental saves: equal
    payload CRCs mean the segment's data did not change, so the previous
    epoch's immutable file can be referenced instead of rewritten.
    """
    crc = Crc32c()
    for array in arrays.values():
        crc.update(np.ascontiguousarray(array))
    return crc.digest()


def payload_sha256(arrays: dict[str, np.ndarray]) -> str:
    """SHA-256 over the concatenated array payloads (order-sensitive).

    The second, independent identity digest for incremental reuse: CRC32C
    is a corruption detector, not a content fingerprint (a changed payload
    collides with probability 2^-32 per save), so the reuse decision
    requires *both* digests to match before referencing the previous
    epoch's file instead of rewriting.
    """
    digest = hashlib.sha256()
    for array in arrays.values():
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


def assemble_segment(
    name: str, epoch: int, arrays: dict[str, np.ndarray], meta: dict | None = None
) -> np.ndarray:
    """Serialise one segment into a single uint8 array (the full file image)."""
    table = []
    payloads = []
    offset = 0
    for array_name, array in arrays.items():
        arr = np.ascontiguousarray(array)
        offset = _align_up(offset)
        table.append(
            {
                "name": array_name,
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "offset": offset,
                "nbytes": int(arr.nbytes),
            }
        )
        payloads.append((offset, arr))
        offset += arr.nbytes
    header = {
        "name": name,
        "epoch": int(epoch),
        "arrays": table,
        "meta": meta or {},
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    payload_base = _align_up(_PREFIX_BYTES + len(header_bytes))
    blob = np.zeros(payload_base + offset, dtype=np.uint8)
    blob[: len(MAGIC)] = np.frombuffer(MAGIC, dtype=np.uint8)
    blob[len(MAGIC) : _PREFIX_BYTES] = np.frombuffer(
        struct.pack("<Q", len(header_bytes)), dtype=np.uint8
    )
    blob[_PREFIX_BYTES : _PREFIX_BYTES + len(header_bytes)] = np.frombuffer(
        header_bytes, dtype=np.uint8
    )
    for rel, arr in payloads:
        lo = payload_base + rel
        blob[lo : lo + arr.nbytes] = arr.reshape(-1).view(np.uint8)
    return blob


def write_segment(
    path: Path,
    name: str,
    epoch: int,
    arrays: dict[str, np.ndarray],
    meta: dict | None = None,
    fault_injector=None,
    payload_digests: tuple[int, str] | None = None,
) -> dict:
    """Assemble, checksum and atomically publish one segment.

    Returns the manifest entry for the segment (sans the relative path,
    which the store fills in): whole-file CRC, both payload identity
    digests, length and the segment's own epoch tag.  ``payload_digests``
    (``(crc32c, sha256)``) lets the store pass digests it already computed
    for the reuse decision instead of hashing the payload twice.
    """
    blob = assemble_segment(name, epoch, arrays, meta)
    if payload_digests is None:
        payload_digests = (payload_crc(arrays), payload_sha256(arrays))
    entry = {
        "crc32c": crc32c(blob),
        "payload_crc32c": int(payload_digests[0]),
        "payload_sha256": payload_digests[1],
        "length": int(blob.shape[0]),
        "epoch": int(epoch),
    }
    atomic_write(Path(path), blob, fault_injector)
    return entry


def read_segment(
    path: Path,
    *,
    mmap: bool = True,
    expected: dict | None = None,
    fault_injector=None,
) -> tuple[dict[str, np.ndarray], dict]:
    """Open one segment, optionally verifying it against a manifest entry.

    With ``mmap=True`` the file is memory-mapped read-only and every array
    is a zero-copy view into the mapping.  ``expected`` (a manifest entry)
    drives verification: length and whole-file CRC32C first, then the
    segment's own epoch tag against the manifest's — a reused clean segment
    legitimately carries an *older* epoch than the manifest it appears in,
    so the entry records which epoch wrote it.  Failures raise
    :class:`SnapshotTorn` / :class:`SnapshotCorrupt` naming the segment.

    Returns ``(arrays, meta)``.
    """
    path = Path(path)
    segment = path.name
    try:
        if mmap:
            blob = np.memmap(path, dtype=np.uint8, mode="r")
        else:
            blob = np.fromfile(path, dtype=np.uint8)
    except (OSError, ValueError) as exc:
        raise SnapshotTorn(
            f"segment {segment} is missing or unreadable: {exc}", segment=segment
        ) from exc
    if expected is not None:
        if int(blob.shape[0]) != int(expected["length"]):
            raise SnapshotTorn(
                f"segment {segment} is truncated: {int(blob.shape[0])} bytes on "
                f"disk, manifest records {int(expected['length'])}",
                segment=segment,
            )
        actual = crc32c(blob)
        if fault_injector is not None and fault_injector.fires("persist_read_corrupt"):
            actual ^= 0x1  # a flipped bit on the read path
        if actual != int(expected["crc32c"]):
            raise SnapshotCorrupt(
                f"segment {segment} failed checksum verification "
                f"(crc32c {actual:#010x} != recorded {int(expected['crc32c']):#010x})",
                segment=segment,
            )
    if blob.shape[0] < _PREFIX_BYTES or not np.array_equal(
        blob[: len(MAGIC)], np.frombuffer(MAGIC, dtype=np.uint8)
    ):
        raise SnapshotCorrupt(
            f"segment {segment} does not start with the segment magic",
            segment=segment,
        )
    (header_len,) = struct.unpack("<Q", blob[len(MAGIC) : _PREFIX_BYTES].tobytes())
    if _PREFIX_BYTES + header_len > blob.shape[0]:
        raise SnapshotTorn(
            f"segment {segment} is truncated inside its header", segment=segment
        )
    try:
        header = json.loads(
            blob[_PREFIX_BYTES : _PREFIX_BYTES + header_len].tobytes().decode("utf-8")
        )
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotCorrupt(
            f"segment {segment} holds an unparseable header: {exc}", segment=segment
        ) from exc
    if expected is not None and int(header.get("epoch", -1)) != int(expected["epoch"]):
        raise SnapshotTorn(
            f"segment {segment} carries epoch tag {header.get('epoch')} but the "
            f"manifest entry records epoch {int(expected['epoch'])} — "
            "mixed-epoch snapshot",
            segment=segment,
        )
    payload_base = _align_up(_PREFIX_BYTES + header_len)
    arrays: dict[str, np.ndarray] = {}
    for spec in header["arrays"]:
        lo = payload_base + int(spec["offset"])
        hi = lo + int(spec["nbytes"])
        if hi > blob.shape[0]:
            raise SnapshotTorn(
                f"segment {segment} is truncated inside array {spec['name']!r}",
                segment=segment,
            )
        arrays[spec["name"]] = (
            blob[lo:hi].view(np.dtype(spec["dtype"])).reshape(spec["shape"])
        )
    return arrays, header.get("meta", {})
