"""Key-column generators (Sections 3.1, 4.2, 4.3, 4.7, 4.8).

All generators return unsigned 64-bit key arrays whose position in the array
is the rowID, exactly like the paper's setup: the index is built from a
GPU-resident key array, and looking up a key returns positions into a value
array of the same length.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.zipf import zipf_sample


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def dense_shuffled_keys(
    n: int, start: int = 0, seed: int | np.random.Generator | None = 0
) -> np.ndarray:
    """``n`` consecutive integers starting at ``start``, shuffled arbitrarily.

    This is the paper's default build set: a dense key range guarantees a
    predictable number of hits for uniformly drawn lookups.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    rng = _rng(seed)
    keys = np.arange(start, start + n, dtype=np.uint64)
    rng.shuffle(keys)
    return keys


def strided_keys(
    n: int, stride: int = 1, seed: int | np.random.Generator | None = 0
) -> np.ndarray:
    """Keys ``0, s, 2s, ...`` (shuffled) — the stride experiment of Figure 3b.

    Increasing the stride widens the *value range ratio* of the key set
    without changing its cardinality, which is the quantity that degrades
    Extended Mode.
    """
    if stride < 1:
        raise ValueError("stride must be at least 1")
    rng = _rng(seed)
    keys = (np.arange(n, dtype=np.uint64) * np.uint64(stride)).astype(np.uint64)
    rng.shuffle(keys)
    return keys


def sparse_uniform_keys(
    n: int,
    key_bits: int = 32,
    seed: int | np.random.Generator | None = 0,
    unique: bool = True,
) -> np.ndarray:
    """``n`` keys drawn uniformly from the full ``key_bits``-wide domain.

    Matches the Section 4 setup, which permits the full 32-bit integer range
    (the B+-Tree baseline does not support 64-bit keys).
    """
    if not 1 <= key_bits <= 64:
        raise ValueError("key_bits must be in [1, 64]")
    rng = _rng(seed)
    high = (1 << key_bits) - 1
    if unique:
        if n > high:
            raise ValueError("cannot draw that many unique keys from the domain")
        # Oversample then deduplicate to keep the draw cheap and exact.
        keys = np.empty(0, dtype=np.uint64)
        while keys.shape[0] < n:
            needed = (n - keys.shape[0]) * 2 + 16
            draw = rng.integers(0, high, size=needed, dtype=np.uint64, endpoint=True)
            keys = np.unique(np.concatenate([keys, draw]))
        keys = keys[:n]
        rng.shuffle(keys)
        return keys.astype(np.uint64)
    return rng.integers(0, high, size=n, dtype=np.uint64, endpoint=True)


def keys_with_multiplicity(
    n_distinct: int,
    multiplicity: int,
    key_bits: int = 32,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """``n_distinct`` unique keys, each repeated ``multiplicity`` times (Fig 11)."""
    if multiplicity < 1:
        raise ValueError("multiplicity must be at least 1")
    rng = _rng(seed)
    distinct = sparse_uniform_keys(n_distinct, key_bits=key_bits, seed=rng)
    keys = np.repeat(distinct, multiplicity)
    rng.shuffle(keys)
    return keys


def zipf_keys(
    n: int,
    coefficient: float,
    key_bits: int = 32,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """A key column whose *values* follow a Zipf distribution (Section 4.8).

    The paper also skews the key distribution (while keeping lookups uniform)
    and finds all indexes essentially unaffected; this generator reproduces
    that variant.
    """
    rng = _rng(seed)
    domain = min(1 << key_bits, max(n * 4, 16))
    ranks = zipf_sample(domain, n, coefficient, rng)
    # Scatter the ranks over the key domain order-preservingly so the skew is
    # in the multiplicity/clustering, not in the magnitude alone.
    scale = ((1 << key_bits) - 1) // max(domain, 1)
    return (ranks.astype(np.uint64) * np.uint64(max(scale, 1))).astype(np.uint64)
