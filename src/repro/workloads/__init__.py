"""Workload generators: key columns, lookup batches, update batches.

These reproduce the data and query distributions of the paper's evaluation
setup (Section 3.1 and the per-experiment variations of Section 4): dense
shuffled key sets, strided and sparse key sets, controlled key multiplicity,
point lookups with a configurable hit rate, range lookups with a fixed number
of qualifying entries, Zipf-skewed lookups, sorted/unsorted variants, and the
two update workloads of Table 4.
"""

from repro.workloads.keys import (
    dense_shuffled_keys,
    keys_with_multiplicity,
    sparse_uniform_keys,
    strided_keys,
    zipf_keys,
)
from repro.workloads.lookups import (
    limited_range_lookups,
    paged_scan_lookups,
    point_lookups,
    point_lookups_with_hit_rate,
    range_lookups,
    sort_lookups,
    split_batches,
    zipf_point_lookups,
)
from repro.workloads.streams import (
    QueryStream,
    StreamRequest,
    zipf_point_stream,
    zipf_range_stream,
)
from repro.workloads.table import SecondaryIndexWorkload
from repro.workloads.updates import (
    clustered_key_swaps,
    swap_adjacent_keys,
    swap_adjacent_positions,
)
from repro.workloads.zipf import zipf_sample

__all__ = [
    "QueryStream",
    "SecondaryIndexWorkload",
    "StreamRequest",
    "clustered_key_swaps",
    "dense_shuffled_keys",
    "keys_with_multiplicity",
    "limited_range_lookups",
    "paged_scan_lookups",
    "point_lookups",
    "point_lookups_with_hit_rate",
    "range_lookups",
    "sort_lookups",
    "sparse_uniform_keys",
    "split_batches",
    "strided_keys",
    "swap_adjacent_keys",
    "swap_adjacent_positions",
    "zipf_keys",
    "zipf_point_lookups",
    "zipf_point_stream",
    "zipf_range_stream",
    "zipf_sample",
]
