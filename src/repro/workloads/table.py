"""The secondary-index usage scenario of Section 3.1 as a reusable object.

The paper's evaluation always follows the same pattern: a GPU-resident key
array (the indexed column), a value array of the same length (the projected
column), a batch of lookups, and a final aggregate (the sum of all retrieved
values).  :class:`SecondaryIndexWorkload` bundles those pieces and provides a
NumPy reference answer so every index implementation can be verified against
the same ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.base import MISS_SENTINEL, expand_slices


@dataclass
class SecondaryIndexWorkload:
    """Key column + value column + lookup batch + reference answers."""

    keys: np.ndarray
    values: np.ndarray
    point_queries: np.ndarray | None = None
    range_lowers: np.ndarray | None = None
    range_uppers: np.ndarray | None = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.keys = np.asarray(self.keys, dtype=np.uint64)
        self.values = np.asarray(self.values, dtype=np.uint64)
        if self.keys.shape != self.values.shape:
            raise ValueError("keys and values must have the same shape")

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def from_keys(
        keys: np.ndarray,
        point_queries: np.ndarray | None = None,
        range_lowers: np.ndarray | None = None,
        range_uppers: np.ndarray | None = None,
        value_seed: int = 7,
        **metadata,
    ) -> "SecondaryIndexWorkload":
        """Attach a random value column to ``keys`` and wrap everything up."""
        rng = np.random.default_rng(value_seed)
        values = rng.integers(0, 1 << 20, size=np.asarray(keys).shape[0], dtype=np.uint64)
        return SecondaryIndexWorkload(
            keys=keys,
            values=values,
            point_queries=point_queries,
            range_lowers=range_lowers,
            range_uppers=range_uppers,
            metadata=dict(metadata),
        )

    @property
    def num_keys(self) -> int:
        return int(self.keys.shape[0])

    @property
    def num_point_lookups(self) -> int:
        return 0 if self.point_queries is None else int(self.point_queries.shape[0])

    @property
    def num_range_lookups(self) -> int:
        return 0 if self.range_lowers is None else int(self.range_lowers.shape[0])

    # ------------------------------------------------------------------ #
    # reference answers (plain NumPy, independent of every index)
    # ------------------------------------------------------------------ #

    def reference_point_aggregate(self) -> int:
        """Sum of the values of every key matching any point query."""
        if self.point_queries is None:
            return 0
        order = np.argsort(self.keys, kind="stable")
        sorted_keys = self.keys[order]
        sorted_values = self.values[order]
        start = np.searchsorted(sorted_keys, self.point_queries, side="left")
        stop = np.searchsorted(sorted_keys, self.point_queries, side="right")
        flat = expand_slices(start, stop - start)
        if flat.size == 0:
            return 0
        return int(sorted_values[flat].sum(dtype=np.uint64))

    def reference_point_hits(self) -> np.ndarray:
        """Number of matching rows per point query."""
        if self.point_queries is None:
            return np.zeros(0, dtype=np.int64)
        sorted_keys = np.sort(self.keys)
        start = np.searchsorted(sorted_keys, self.point_queries, side="left")
        stop = np.searchsorted(sorted_keys, self.point_queries, side="right")
        return (stop - start).astype(np.int64)

    def reference_point_rows(self) -> np.ndarray:
        """One matching rowID per point query (or the miss sentinel)."""
        if self.point_queries is None:
            return np.zeros(0, dtype=np.uint64)
        result = np.full(self.point_queries.shape[0], MISS_SENTINEL, dtype=np.uint64)
        order = np.argsort(self.keys, kind="stable")
        sorted_keys = self.keys[order]
        pos = np.searchsorted(sorted_keys, self.point_queries, side="left")
        pos_clamped = np.minimum(pos, self.num_keys - 1)
        found = sorted_keys[pos_clamped] == self.point_queries
        result[found] = order[pos_clamped[found]].astype(np.uint64)
        return result

    def reference_range_aggregate(self) -> int:
        """Sum of the values of every key within any range query."""
        if self.range_lowers is None or self.range_uppers is None:
            return 0
        order = np.argsort(self.keys, kind="stable")
        sorted_keys = self.keys[order]
        sorted_values = self.values[order]
        start = np.searchsorted(sorted_keys, self.range_lowers, side="left")
        stop = np.searchsorted(sorted_keys, self.range_uppers, side="right")
        flat = expand_slices(start, stop - start)
        if flat.size == 0:
            return 0
        return int(sorted_values[flat].sum(dtype=np.uint64))

    def reference_range_hits(self) -> np.ndarray:
        """Number of qualifying rows per range query."""
        if self.range_lowers is None or self.range_uppers is None:
            return np.zeros(0, dtype=np.int64)
        sorted_keys = np.sort(self.keys)
        start = np.searchsorted(sorted_keys, self.range_lowers, side="left")
        stop = np.searchsorted(sorted_keys, self.range_uppers, side="right")
        return (stop - start).astype(np.int64)
