"""Lookup-batch generators (Sections 3.1, 4.2, 4.4–4.9).

Point lookups are drawn from the key column (hits) and, when a hit rate below
1.0 is requested, mixed with keys that are guaranteed absent (misses).  Range
lookups pick a lower bound from the key column and add the desired span.
Helpers for sorting a batch and splitting it into sub-batches mirror the
paper's Sections 4.4 and 4.5.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.zipf import zipf_sample


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def point_lookups(
    keys: np.ndarray,
    num_lookups: int,
    seed: int | np.random.Generator | None = 1,
) -> np.ndarray:
    """Uniformly random point lookups drawn from the key column (all hits)."""
    rng = _rng(seed)
    keys = np.asarray(keys, dtype=np.uint64)
    picks = rng.integers(0, keys.shape[0], size=num_lookups)
    return keys[picks]


def miss_keys(
    keys: np.ndarray,
    num_misses: int,
    key_bits: int = 64,
    seed: int | np.random.Generator | None = 2,
    outside_domain: bool = False,
) -> np.ndarray:
    """Keys guaranteed not to be present in ``keys``.

    ``outside_domain`` reproduces the paper's extreme-miss experiment where
    every missed key lies outside the key column's value range, letting the
    BVH abort at the root.
    """
    rng = _rng(seed)
    keys = np.asarray(keys, dtype=np.uint64)
    present = np.unique(keys)
    if outside_domain:
        start = int(keys.max()) + 1
        return (np.arange(num_misses, dtype=np.uint64) + np.uint64(start)).astype(np.uint64)
    high = (1 << key_bits) - 1
    out = np.empty(num_misses, dtype=np.uint64)
    filled = 0
    while filled < num_misses:
        draw = rng.integers(0, high, size=(num_misses - filled) * 2 + 16, dtype=np.uint64, endpoint=True)
        if present.size:
            # Batched membership test against the sorted key set: a draw is
            # present exactly when the key at its insertion point equals it.
            pos = np.minimum(np.searchsorted(present, draw), present.shape[0] - 1)
            fresh = draw[present[pos] != draw]
        else:
            fresh = draw
        take = min(fresh.shape[0], num_misses - filled)
        out[filled : filled + take] = fresh[:take]
        filled += take
    return out


def point_lookups_with_hit_rate(
    keys: np.ndarray,
    num_lookups: int,
    hit_rate: float,
    key_bits: int = 32,
    seed: int | np.random.Generator | None = 3,
    outside_domain_misses: bool = False,
) -> np.ndarray:
    """Point lookups of which a fraction ``hit_rate`` matches an existing key.

    Mirrors Figure 14: hits are uniform draws from the key column, misses are
    uniform draws from the complement of the key set (or from outside the key
    column's value range when ``outside_domain_misses`` is set).
    """
    if not 0.0 <= hit_rate <= 1.0:
        raise ValueError("hit_rate must be within [0, 1]")
    rng = _rng(seed)
    num_hits = int(round(num_lookups * hit_rate))
    num_misses = num_lookups - num_hits
    hits = point_lookups(keys, num_hits, seed=rng)
    misses = miss_keys(
        keys, num_misses, key_bits=key_bits, seed=rng, outside_domain=outside_domain_misses
    )
    batch = np.concatenate([hits, misses])
    rng.shuffle(batch)
    return batch


def zipf_point_lookups(
    keys: np.ndarray,
    num_lookups: int,
    coefficient: float,
    seed: int | np.random.Generator | None = 4,
) -> np.ndarray:
    """Point lookups whose popularity follows a Zipf law over the key column.

    A coefficient of 0 is the uniform case; 2.0 is the paper's most extreme
    skew (Figure 16).
    """
    rng = _rng(seed)
    keys = np.asarray(keys, dtype=np.uint64)
    ranks = zipf_sample(keys.shape[0], num_lookups, coefficient, rng)
    return keys[ranks]


def range_lookups(
    keys: np.ndarray,
    num_lookups: int,
    span: int,
    seed: int | np.random.Generator | None = 5,
) -> tuple[np.ndarray, np.ndarray]:
    """Range lookups ``[l, l + span - 1]`` with ``l`` drawn from the key column.

    On a dense key column every lookup returns exactly ``span`` qualifying
    entries, the worst case the paper uses to bound range-lookup cost
    (Section 4.9).
    """
    if span < 1:
        raise ValueError("span must be at least 1")
    rng = _rng(seed)
    keys = np.asarray(keys, dtype=np.uint64)
    lowers = keys[rng.integers(0, keys.shape[0], size=num_lookups)]
    # Avoid overflowing the key domain at the very top.
    max_lower = keys.max() - np.uint64(span - 1) if keys.max() >= np.uint64(span - 1) else np.uint64(0)
    lowers = np.minimum(lowers, max_lower)
    uppers = lowers + np.uint64(span - 1)
    return lowers, uppers


def limited_range_lookups(
    keys: np.ndarray,
    num_lookups: int,
    span: int,
    limit: int,
    seed: int | np.random.Generator | None = 5,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Range lookups plus the per-lookup hit budget of a LIMIT-k query.

    The bounded-query workload: the application only consumes the first
    ``limit`` qualifying rows of each range, so the budget is pushed down
    into the index probe (``first_k`` traversal for RX, capped scans for the
    sorted baselines) instead of post-filtering.  ``span`` must be at least
    ``limit`` so that, on a dense key column, the budget actually binds.
    Returns ``(lowers, uppers, limit)``.
    """
    limit = int(limit)
    if limit < 1:
        raise ValueError("limit must be at least 1")
    if span < limit:
        raise ValueError(
            f"span ({span}) must be at least limit ({limit}); a narrower range "
            "could never exhaust the budget"
        )
    lowers, uppers = range_lookups(keys, num_lookups, span, seed=seed)
    return lowers, uppers, limit


def paged_scan_lookups(
    keys: np.ndarray,
    num_scans: int,
    span: int,
    page_size: int,
    seed: int | np.random.Generator | None = 6,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Ordered-scan workloads: ranges consumed page by page via keyset cursors.

    Each scan is a range ``[l, l + span - 1]`` whose qualifying rows the
    client drains in ``(key, rowID)`` order, ``page_size`` rows per request
    (``order="key"`` lookups).  ``span`` must be larger than ``page_size``
    so every scan needs several pages — otherwise the cursor machinery never
    engages.  Returns ``(lowers, uppers, page_size)``.
    """
    page_size = int(page_size)
    if page_size < 1:
        raise ValueError("page_size must be at least 1")
    if span <= page_size:
        raise ValueError(
            f"span ({span}) must exceed page_size ({page_size}); a scan that "
            "fits one page never resumes a cursor"
        )
    lowers, uppers = range_lookups(keys, num_scans, span, seed=seed)
    return lowers, uppers, page_size


def sort_lookups(queries: np.ndarray) -> np.ndarray:
    """Sort a lookup batch by requested key (Section 4.4)."""
    return np.sort(np.asarray(queries))


def split_batches(queries: np.ndarray, num_batches: int) -> list[np.ndarray]:
    """Split a lookup batch into ``num_batches`` consecutive sub-batches (Sec 4.5)."""
    if num_batches < 1:
        raise ValueError("num_batches must be at least 1")
    queries = np.asarray(queries)
    return [chunk for chunk in np.array_split(queries, num_batches) if chunk.size]
