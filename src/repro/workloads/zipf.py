"""Zipf-distributed sampling (Section 4.8).

The paper skews the lookup distribution with a Zipf distribution whose
coefficient ranges from 0.0 (uniform) to 2.0 (extremely skewed).  NumPy's
``random.zipf`` only supports coefficients strictly greater than 1 and has an
unbounded support, so we implement the standard bounded Zipf sampler over the
ranks ``1..n`` via inverse-CDF sampling, which covers the whole coefficient
range the paper uses.
"""

from __future__ import annotations

import numpy as np


def zipf_probabilities(n: int, coefficient: float) -> np.ndarray:
    """Probability of each rank ``1..n`` under a bounded Zipf distribution."""
    if n <= 0:
        raise ValueError("n must be positive")
    if coefficient < 0:
        raise ValueError("the Zipf coefficient must be non-negative")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-coefficient)
    return weights / weights.sum()


def zipf_sample(
    n: int,
    size: int,
    coefficient: float,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Draw ``size`` ranks from ``[0, n)`` following a bounded Zipf law.

    ``coefficient == 0`` degenerates to the uniform distribution, matching
    the leftmost data point of Figure 16.
    """
    rng = rng or np.random.default_rng()
    if coefficient == 0.0:
        return rng.integers(0, n, size=size, dtype=np.int64)
    probabilities = zipf_probabilities(n, coefficient)
    cdf = np.cumsum(probabilities)
    uniforms = rng.random(size)
    return np.searchsorted(cdf, uniforms, side="left").astype(np.int64)
