"""Timestamped query streams for the serving layer (open/closed loop).

The serving benchmarks replay *streams* of independent requests rather than
one preformed batch: every request carries an arrival timestamp (open-loop
replay respects them; closed-loop replay re-times them by client turnaround)
and a small payload — one or a few point keys, or a range.  Query popularity
follows the paper's bounded Zipf distribution (Section 4.8), so a
coefficient of 0 is the uniform stream and 1-2 are the skewed streams where
the serving layer's result cache earns its keep.

Everything is deterministic under a seed, so two replays of one stream (and
the solo-launch reference for every request) see identical queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.workloads.zipf import zipf_sample


@dataclass
class StreamRequest:
    """One request of a replayable stream."""

    arrival: float
    kind: str  #: "point" or "range"
    queries: np.ndarray | None = None
    lowers: np.ndarray | None = None
    uppers: np.ndarray | None = None
    limit: int | None = None
    #: per-request deadline, relative seconds after arrival (None defers to
    #: the serving layer's configured default)
    deadline: float | None = None

    def submit(self, service, arrival: float):
        """Queue this request on ``service`` at stream time ``arrival``."""
        if self.kind == "point":
            return service.submit_point(
                self.queries, arrival=arrival, deadline=self.deadline
            )
        return service.submit_range(
            self.lowers,
            self.uppers,
            limit=self.limit,
            arrival=arrival,
            deadline=self.deadline,
        )


@dataclass
class QueryStream:
    """A finite stream of timestamped requests plus its generation metadata."""

    entries: list[StreamRequest]
    metadata: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def num_queries(self) -> int:
        return sum(
            e.queries.shape[0] if e.kind == "point" else e.lowers.shape[0]
            for e in self.entries
        )

    def requests(self) -> list[tuple[float, callable]]:
        """(arrival, submit) pairs in arrival order, for the replay drivers."""
        return [(e.arrival, e.submit) for e in self.entries]


def _arrival_times(
    n: int, rate: float, rng: np.random.Generator, poisson: bool
) -> np.ndarray:
    """Arrival stamps of an open-loop source: Poisson or fixed-rate."""
    if rate <= 0:
        raise ValueError(f"rate must be positive queries/second, got {rate}")
    if poisson:
        gaps = rng.exponential(1.0 / rate, size=n)
        return np.cumsum(gaps)
    return (np.arange(n, dtype=np.float64) + 1.0) / rate


def zipf_point_stream(
    keys: np.ndarray,
    num_requests: int,
    coefficient: float,
    rate: float,
    queries_per_request: int = 1,
    seed: int | np.random.Generator | None = 7,
    poisson: bool = True,
    deadline: float | None = None,
) -> QueryStream:
    """Open-loop stream of point-lookup requests with Zipf-skewed popularity.

    Popularity ranks map onto the key column in its stored order (the same
    convention as :func:`repro.workloads.lookups.zipf_point_lookups`), and
    requests arrive at ``rate`` requests/second — exponentially spaced when
    ``poisson`` (the memoryless open-loop source), evenly spaced otherwise.
    ``deadline`` stamps every request with a relative deadline (seconds
    after arrival) for the fault-tolerant serving path.
    """
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    keys = np.asarray(keys, dtype=np.uint64)
    if queries_per_request < 1:
        raise ValueError(
            f"queries_per_request must be at least 1, got {queries_per_request}"
        )
    total = num_requests * queries_per_request
    ranks = zipf_sample(keys.shape[0], total, coefficient, rng)
    queries = keys[ranks].reshape(num_requests, queries_per_request)
    arrivals = _arrival_times(num_requests, rate, rng, poisson)
    entries = [
        StreamRequest(
            arrival=float(arrivals[i]),
            kind="point",
            queries=queries[i],
            deadline=deadline,
        )
        for i in range(num_requests)
    ]
    return QueryStream(
        entries=entries,
        metadata={
            "kind": "point",
            "coefficient": coefficient,
            "rate": rate,
            "queries_per_request": queries_per_request,
            "poisson": poisson,
            "deadline": deadline,
        },
    )


def zipf_range_stream(
    keys: np.ndarray,
    num_requests: int,
    coefficient: float,
    span: int,
    rate: float,
    limit: int | None = None,
    seed: int | np.random.Generator | None = 8,
    poisson: bool = True,
    deadline: float | None = None,
) -> QueryStream:
    """Open-loop stream of range-lookup requests ``[l, l + span - 1]``.

    Lower bounds are Zipf-popular keys of the column; ``limit`` optionally
    attaches a LIMIT-k budget to every request (``first_k`` launches).
    """
    if span < 1:
        raise ValueError(f"span must be at least 1, got {span}")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    keys = np.asarray(keys, dtype=np.uint64)
    ranks = zipf_sample(keys.shape[0], num_requests, coefficient, rng)
    lowers = keys[ranks]
    max_lower = (
        keys.max() - np.uint64(span - 1)
        if keys.max() >= np.uint64(span - 1)
        else np.uint64(0)
    )
    lowers = np.minimum(lowers, max_lower)
    uppers = lowers + np.uint64(span - 1)
    arrivals = _arrival_times(num_requests, rate, rng, poisson)
    entries = [
        StreamRequest(
            arrival=float(arrivals[i]),
            kind="range",
            lowers=lowers[i : i + 1],
            uppers=uppers[i : i + 1],
            limit=limit,
            deadline=deadline,
        )
        for i in range(num_requests)
    ]
    return QueryStream(
        entries=entries,
        metadata={
            "kind": "range",
            "coefficient": coefficient,
            "rate": rate,
            "span": span,
            "limit": limit,
            "poisson": poisson,
            "deadline": deadline,
        },
    )
