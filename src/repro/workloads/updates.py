"""Update workloads of Section 3.6 (Table 4).

Both workloads permute the key buffer without changing the key *set*:

* ``swap_adjacent_positions`` swaps pairs of neighbouring buffer positions —
  because the buffer is unsorted, this moves keys to arbitrary far-away
  coordinates and degrades a refitted BVH badly,
* ``swap_adjacent_keys`` swaps pairs of rank-adjacent keys — keys move by ±1
  in a dense key set, so the refitted bounding volumes barely change.
* ``clustered_key_swaps`` confines the rank-adjacent swaps to one contiguous
  window of the key space — the delta-shard workload: only the Morton-prefix
  shards covering the window are dirtied, so a sharded index rebuilds O(dirty)
  instead of O(n).
"""

from __future__ import annotations

import numpy as np


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def swap_adjacent_positions(
    keys: np.ndarray,
    num_swaps: int,
    seed: int | np.random.Generator | None = 11,
) -> np.ndarray:
    """Swap ``num_swaps`` disjoint pairs of adjacent *buffer positions*."""
    keys = np.asarray(keys, dtype=np.uint64).copy()
    n = keys.shape[0]
    max_pairs = n // 2
    if num_swaps > max_pairs:
        raise ValueError(f"cannot perform {num_swaps} disjoint swaps on {n} keys")
    rng = _rng(seed)
    pair_starts = rng.choice(max_pairs, size=num_swaps, replace=False) * 2
    left = pair_starts
    right = pair_starts + 1
    keys[left], keys[right] = keys[right].copy(), keys[left].copy()
    return keys


def swap_adjacent_keys(
    keys: np.ndarray,
    num_swaps: int,
    seed: int | np.random.Generator | None = 12,
) -> np.ndarray:
    """Swap ``num_swaps`` disjoint pairs of *rank-adjacent keys*.

    The buffer positions of the two keys that are adjacent in sorted order
    exchange their contents, which changes every affected key by ±1 on a
    dense key set.
    """
    keys = np.asarray(keys, dtype=np.uint64).copy()
    n = keys.shape[0]
    max_pairs = n // 2
    if num_swaps > max_pairs:
        raise ValueError(f"cannot perform {num_swaps} disjoint swaps on {n} keys")
    rng = _rng(seed)
    rank_order = np.argsort(keys, kind="stable")
    pair_starts = rng.choice(max_pairs, size=num_swaps, replace=False) * 2
    pos_a = rank_order[pair_starts]
    pos_b = rank_order[pair_starts + 1]
    keys[pos_a], keys[pos_b] = keys[pos_b].copy(), keys[pos_a].copy()
    return keys


def clustered_key_swaps(
    keys: np.ndarray,
    num_swaps: int,
    seed: int | np.random.Generator | None = 13,
    window_ranks: int | None = None,
) -> np.ndarray:
    """Swap ``num_swaps`` disjoint rank-adjacent pairs inside one contiguous
    rank window of the key space.

    Like :func:`swap_adjacent_keys` every affected key moves by ±1 on a dense
    key set, but all touched keys live next to each other in *value* space:
    the window covers ``window_ranks`` consecutive ranks (default: exactly the
    ``2 * num_swaps`` ranks being swapped), placed uniformly at random.  An
    index partitioned by key prefix therefore only sees the shards covering
    the window as dirty — the workload behind Table 4's delta-shard rows.
    """
    keys = np.asarray(keys, dtype=np.uint64).copy()
    n = keys.shape[0]
    window = 2 * num_swaps if window_ranks is None else int(window_ranks)
    if window < 2 * num_swaps:
        raise ValueError("window_ranks must cover at least 2 * num_swaps ranks")
    if window > n:
        raise ValueError(f"cannot place a {window}-rank window over {n} keys")
    rng = _rng(seed)
    rank_order = np.argsort(keys, kind="stable")
    win_start = int(rng.integers(0, n - window + 1))
    max_pairs = window // 2
    pair_starts = win_start + rng.choice(max_pairs, size=num_swaps, replace=False) * 2
    pos_a = rank_order[pair_starts]
    pos_b = rank_order[pair_starts + 1]
    keys[pos_a], keys[pos_b] = keys[pos_b].copy(), keys[pos_a].copy()
    return keys
