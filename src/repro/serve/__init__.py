"""Concurrent query-serving layer over the RX index.

Turns streams of small, independent point/range lookups into the large
coalesced launches the engine is fast at, without changing a single result
bit:

* :mod:`repro.serve.scheduler` — micro-batching scheduler: coalesce by
  launch class, demux hits + counters bit-identically to solo launches.
* :mod:`repro.serve.snapshot` — epoch snapshots: every in-flight batch is
  pinned to an immutable accel state, updates swap in atomically.
* :mod:`repro.serve.cache` — epoch-keyed result cache with skew-aware
  (sampled-LFU) eviction, invalidated by epoch advance.
* :mod:`repro.serve.service` — the front end: submission, flushing, update
  coordination, and open/closed-loop replay drivers with latency stats.
* :mod:`repro.serve.faults` — deterministic, seeded fault injection at every
  seam of the stack (launches, cache, updates, snapshot capture).
* :mod:`repro.serve.resilience` — the failure semantics: per-request
  deadlines, admission control, retry/backoff, explicit error results and
  the failure accounting surfaced by ``IndexService.stats()``.
"""

from repro.serve.cache import CacheStats, ResultCache
from repro.serve.faults import FAULT_SITES, FaultInjector, FaultSpec, InjectedFault
from repro.serve.resilience import (
    AdmissionController,
    LaunchExhausted,
    RequestFailure,
    RetryPolicy,
    ServeStats,
    UpdateFailed,
)
from repro.serve.scheduler import (
    LaunchClass,
    MicroBatchScheduler,
    RequestResult,
    SchedulerStats,
    ServeRequest,
)
from repro.serve.service import IndexService, ReplayReport
from repro.serve.snapshot import EpochManager, EpochSnapshot

__all__ = [
    "AdmissionController",
    "CacheStats",
    "EpochManager",
    "EpochSnapshot",
    "FAULT_SITES",
    "FaultInjector",
    "FaultSpec",
    "IndexService",
    "InjectedFault",
    "LaunchClass",
    "LaunchExhausted",
    "MicroBatchScheduler",
    "ReplayReport",
    "RequestFailure",
    "RequestResult",
    "ResultCache",
    "RetryPolicy",
    "SchedulerStats",
    "ServeRequest",
    "ServeStats",
    "UpdateFailed",
]
