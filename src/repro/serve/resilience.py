"""Failure semantics for the serving layer: deadlines, shedding, retries.

The pieces here give :class:`repro.serve.service.IndexService` an explicit
answer for every fault :mod:`repro.serve.faults` can inject:

* :class:`RequestFailure` — the *explicit* error result a client receives
  instead of a :class:`repro.serve.scheduler.RequestResult`.  Every admitted
  or rejected request produces exactly one result object; nothing is ever
  silently dropped or left hanging.
* :class:`RetryPolicy` — exponential backoff with deterministic (seeded)
  jitter for failed coalesced launches.  Retries are idempotent by
  construction: the replay re-launches the *same rays* against the *same
  pinned epoch snapshot*, so a retried result is bit-identical to a solo
  launch against that epoch.
* :class:`AdmissionController` — bounded queue depth.  Over the bound the
  service sheds load with a ``RetryAfter`` hint instead of growing the queue
  (and hence latency) without bound.
* :class:`ServeStats` — the failure accounting surfaced by
  ``IndexService.stats()["resilience"]``; the chaos bench's error-budget
  numbers come from here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


class LaunchExhausted(RuntimeError):
    """A coalesced launch failed every retry attempt."""


@dataclass
class UpdateFailed:
    """Returned by ``IndexService.update`` when the swap faulted.

    The index was rolled back to the previous key column (a fresh epoch with
    the old content), so serving continues from the pre-update state; the
    failure is surfaced here and in :class:`ServeStats`.
    """

    rolled_back: bool = True
    epoch: int = -1


@dataclass
class RequestFailure:
    """One request's explicit error result (never a silent drop)."""

    request_id: int
    kind: str
    #: why it failed: "rejected" (queue full), "rejected_deadline"
    #: (infeasible deadline at submit), "timeout" (deadline expired before
    #: or after service), "launch_failed" (retries exhausted),
    #: "epoch_retired" (a cursor-resumed page pinned an epoch the index has
    #: since moved past — the client must restart the scan)
    reason: str
    arrival: float = 0.0
    completion: float = 0.0
    deadline: float | None = None
    #: back-pressure hint for "rejected" failures: seconds after ``arrival``
    #: at which the client should retry (the next expected flush)
    retry_after: float | None = None
    num_lookups: int = 0
    from_cache: bool = False

    @property
    def failed(self) -> bool:
        return True

    @property
    def latency(self) -> float:
        return self.completion - self.arrival

    @staticmethod
    def from_result(result, reason: str) -> "RequestFailure":
        """Failure wrapper for a result that missed its deadline post-hoc."""
        return RequestFailure(
            request_id=result.request_id,
            kind=result.kind,
            reason=reason,
            arrival=result.arrival,
            completion=result.completion,
            deadline=result.deadline,
            num_lookups=result.num_lookups,
        )


@dataclass
class RetryPolicy:
    """Exponential backoff with deterministic jitter for failed launches."""

    max_retries: int = 3
    backoff_base: float = 1e-3
    backoff_factor: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if math.isnan(self.backoff_base) or self.backoff_base < 0.0:
            raise ValueError(
                f"backoff_base must be non-negative seconds, got {self.backoff_base}"
            )
        if math.isnan(self.backoff_factor) or self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1.0 (exponential, not shrinking), "
                f"got {self.backoff_factor}"
            )
        if math.isnan(self.jitter) or not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be a fraction in [0, 1], got {self.jitter}")
        self._rng = np.random.default_rng([997, int(self.seed)])

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based), jittered upward."""
        base = self.backoff_base * self.backoff_factor**attempt
        if self.jitter == 0.0:
            return base
        return base * (1.0 + self.jitter * float(self._rng.random()))


@dataclass
class AdmissionController:
    """Bounded-queue load shedding: admit or reject-with-RetryAfter.

    ``max_queue`` bounds the *pending queries* (not requests) the scheduler
    may hold; ``None`` keeps the unbounded PR 5 behaviour.
    """

    max_queue: int | None = None

    def admits(self, pending_queries: int, incoming_queries: int) -> bool:
        if self.max_queue is None:
            return True
        return pending_queries + incoming_queries <= self.max_queue


@dataclass
class ServeStats:
    """Failure accounting across one service's lifetime."""

    admitted: int = 0
    rejections: int = 0
    rejections_queue: int = 0
    rejections_deadline: int = 0
    timeouts: int = 0
    #: timeouts detected *before* launch (work shed, not wasted)
    expired_shed: int = 0
    retries: int = 0
    #: requests failed after launch-retry exhaustion
    launch_failures: int = 0
    #: flushes served with the cache bypassed after a cache fault
    degraded_flushes: int = 0
    #: paged requests failed because their pinned epoch was superseded
    rejections_epoch: int = 0
    cache_corruptions_detected: int = 0
    updates_failed: int = 0
    updates_rolled_back: int = 0
    backoff_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "admitted": self.admitted,
            "rejections": self.rejections,
            "rejections_queue": self.rejections_queue,
            "rejections_deadline": self.rejections_deadline,
            "timeouts": self.timeouts,
            "expired_shed": self.expired_shed,
            "retries": self.retries,
            "launch_failures": self.launch_failures,
            "degraded_flushes": self.degraded_flushes,
            "rejections_epoch": self.rejections_epoch,
            "cache_corruptions_detected": self.cache_corruptions_detected,
            "updates_failed": self.updates_failed,
            "updates_rolled_back": self.updates_rolled_back,
            "backoff_seconds": self.backoff_seconds,
        }
