"""Epoch snapshots: pin in-flight batches to an immutable accel state.

``RXIndex.update()`` (rebuild or ``DELTA_SHARD``) swaps in a *new* pipeline
object bound to a *new* stitched tree and value column, leaving the previous
pipeline's engine bound to the old arrays.  The epoch manager exploits that:
every accel state is wrapped in an :class:`EpochSnapshot` capturing the
pipeline, codec, key/value columns and config of one epoch, and the serving
layer pins each batching window to the snapshot that was current when the
window opened.  An update that lands mid-window therefore never leaks into
an in-flight batch — a batch sees entirely-old or entirely-new state, never
a mix — and the swap to the next epoch is atomic from the batch's point of
view (it is one Python reference assignment).

``REFIT`` updates are rejected: a refit rewrites the node bounds of the
*shared* tree in place (exactly like the OptiX update operation), so the
previous epoch's arrays would be silently corrupted under a pinned batch.

Warm restarts ride the same mechanism: ``IndexService.restore()`` makes the
index adopt a loaded snapshot with an epoch strictly greater than the
current one, so the next ``current()`` call captures the restored state
like any other epoch advance — listeners sweep the cache, and cursor pages
pinned to a pre-restore epoch retire with ``"epoch_retired"`` instead of
resuming over a different column state.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.core.config import RXConfig, UpdatePolicy
from repro.core.rx_index import RXIndex
from repro.rtx.pipeline import Pipeline


@dataclass
class EpochSnapshot:
    """One immutable accel state: everything a pinned batch may touch."""

    epoch: int
    pipeline: Pipeline
    codec: object
    config: RXConfig
    keys: np.ndarray
    values: np.ndarray
    #: resolved point-lookup trace mode for this epoch's column ("any_hit"
    #: on duplicate-free columns under the "auto" config, else "all")
    point_mode: str
    pins: int = 0

    @property
    def num_keys(self) -> int:
        return int(self.keys.shape[0])


@dataclass
class EpochManagerStats:
    epochs_seen: int = 0
    advances: int = 0
    retired: int = 0

    def as_dict(self) -> dict:
        return {
            "epochs_seen": self.epochs_seen,
            "advances": self.advances,
            "retired": self.retired,
        }


class EpochManager:
    """Tracks the index's accel epochs and hands out pinned snapshots.

    ``current()`` observes the index: when a build/update bumped
    ``RXIndex.epoch`` since the last observation, a fresh snapshot is
    captured, registered listeners (the result cache) are notified, and the
    previous snapshot is retired — though pinned batches keep it alive until
    they release it.
    """

    def __init__(self, index: RXIndex, fault_injector=None):
        self.index = index
        self.stats = EpochManagerStats()
        self._listeners: list = []
        #: optional :class:`repro.serve.faults.FaultInjector`: captures
        #: consult the "snapshot" site, and every captured pipeline gets the
        #: injector attached so coalesced launches hit the "launch" and
        #: "launch_latency" sites.
        self.faults = fault_injector
        self._snapshot = self._capture()

    def _capture(self) -> EpochSnapshot:
        index = self.index
        if index.config.update_policy is UpdatePolicy.REFIT:
            raise ValueError(
                "epoch snapshots require update_policy REBUILD or DELTA_SHARD: "
                "refits rewrite the shared accel's node bounds in place, so a "
                "pinned snapshot could observe a half-updated tree"
            )
        if self.faults is not None:
            self.faults.check("snapshot")
        pipeline = index.pipeline  # raises if the index is not built yet
        if self.faults is not None:
            pipeline.fault_injector = self.faults
        self.stats.epochs_seen += 1
        return EpochSnapshot(
            epoch=index.epoch,
            pipeline=pipeline,
            codec=index.codec,
            config=index.config,
            keys=index.keys,
            values=index.values,
            point_mode=index.resolved_point_trace_mode(),
        )

    def add_listener(self, on_advance) -> None:
        """Register ``on_advance(new_epoch)`` to run on every epoch swap."""
        self._listeners.append(on_advance)

    def current(self) -> EpochSnapshot:
        """The snapshot of the index's present epoch (auto-advancing)."""
        if self.index.epoch != self._snapshot.epoch:
            self._snapshot = self._capture()
            self.stats.advances += 1
            for listener in self._listeners:
                listener(self._snapshot.epoch)
        return self._snapshot

    def pin(self, snapshot: EpochSnapshot) -> EpochSnapshot:
        """Pin ``snapshot`` for an in-flight batch (release when demuxed)."""
        snapshot.pins += 1
        return snapshot

    def release(self, snapshot: EpochSnapshot) -> None:
        if snapshot.pins < 1:
            raise ValueError(
                f"epoch {snapshot.epoch} released more often than pinned"
            )
        snapshot.pins -= 1
        if snapshot.pins == 0 and snapshot is not self._snapshot:
            # The last batch of a superseded epoch finished: the old accel
            # arrays become collectable the moment this reference drops.
            self.stats.retired += 1

    @contextmanager
    def releasing(self, snapshot: EpochSnapshot):
        """Release ``snapshot`` when the block exits — even by exception.

        This is the flush path's pin discipline: a launch that raises must
        not leave the window's snapshot pinned forever, or a superseded
        epoch's accel arrays stay unreclaimable for the service's lifetime.
        """
        try:
            yield snapshot
        finally:
            self.release(snapshot)
