"""The index-serving front end: clock, epoch pinning, cache, replay drivers.

:class:`IndexService` ties the serving pieces together around one
:class:`repro.core.rx_index.RXIndex`:

* requests are submitted with stream-time arrival stamps and queued in the
  :class:`repro.serve.scheduler.MicroBatchScheduler`;
* the first request of an empty queue *opens a batching window* and pins the
  epoch snapshot that is current at that moment — an ``update()`` landing
  before the flush builds the next epoch on the side, and the in-flight
  window still launches against its pinned, immutable state;
* at flush time each request is first looked up in the epoch-keyed
  :class:`repro.serve.cache.ResultCache`; only the misses are coalesced into
  launches, and their demuxed results are inserted back (current-epoch
  results only, so an invalidation sweep can never be undone).

Two replay drivers turn timestamped query streams into throughput/latency
reports.  Both are event-driven simulations whose *service times* are the
measured wall-clock of the actual coalesced launches and whose *arrival
times* come from the stream — the standard way to replay an open-loop trace
against a real component:

* :meth:`IndexService.replay` — open loop: arrivals are fixed in advance;
  a window closes when it holds ``max_batch`` queries (size) or the oldest
  request has waited ``max_wait`` stream seconds (wait).
* :meth:`IndexService.replay_closed_loop` — closed loop: ``num_clients``
  logical clients each submit their next query the moment their previous
  one completes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from repro.core.rx_index import RXIndex
from repro.serve.cache import ResultCache
from repro.serve.scheduler import MicroBatchScheduler, RequestResult, ServeRequest
from repro.serve.snapshot import EpochManager, EpochSnapshot


@dataclass
class ReplayReport:
    """Throughput/latency summary of one replayed query stream."""

    results: list[RequestResult]
    #: per-request latency in stream seconds (completion - arrival)
    latencies: np.ndarray
    #: end-to-end stream time from first arrival to last completion
    makespan: float
    #: wall-clock seconds the launches themselves consumed
    service_seconds: float
    num_requests: int = 0
    num_queries: int = 0

    def __post_init__(self) -> None:
        self.num_requests = len(self.results)
        self.num_queries = int(sum(r.num_lookups for r in self.results))

    @property
    def throughput_rps(self) -> float:
        """Sustained request throughput over the stream makespan."""
        return self.num_requests / self.makespan if self.makespan > 0 else 0.0

    @property
    def service_throughput_rps(self) -> float:
        """Request throughput of the launch pipeline alone (no idle time)."""
        return (
            self.num_requests / self.service_seconds if self.service_seconds > 0 else 0.0
        )

    def latency_percentiles(self) -> dict:
        if self.latencies.size == 0:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        p50, p95, p99 = np.percentile(self.latencies, [50.0, 95.0, 99.0])
        return {"p50": float(p50), "p95": float(p95), "p99": float(p99)}

    def as_dict(self) -> dict:
        return {
            "num_requests": self.num_requests,
            "num_queries": self.num_queries,
            "makespan_seconds": self.makespan,
            "service_seconds": self.service_seconds,
            "throughput_rps": self.throughput_rps,
            "service_throughput_rps": self.service_throughput_rps,
            "latency_seconds": self.latency_percentiles(),
        }


class IndexService:
    """Concurrent query-serving layer over one built :class:`RXIndex`."""

    def __init__(
        self,
        index: RXIndex,
        max_batch: int | None = None,
        max_wait: float | None = None,
        cache_capacity: int | None = None,
    ):
        config = index.config
        self.index = index
        self.scheduler = MicroBatchScheduler(
            max_batch=max_batch if max_batch is not None else config.serve_max_batch,
            max_wait=max_wait if max_wait is not None else config.serve_max_wait,
        )
        self.cache = ResultCache(
            cache_capacity
            if cache_capacity is not None
            else config.serve_cache_capacity
        )
        self.epochs = EpochManager(index)
        self.epochs.add_listener(self.cache.invalidate_before)
        self._next_request_id = 0
        self._window_snapshot: EpochSnapshot | None = None
        self._service_seconds = 0.0

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #

    def _admit(self, request: ServeRequest) -> ServeRequest:
        if self._window_snapshot is None:
            # First request of a new window: pin the epoch it will run on.
            self._window_snapshot = self.epochs.pin(self.epochs.current())
        self.scheduler.submit(request)
        return request

    def submit_point(self, queries: np.ndarray, arrival: float = 0.0) -> ServeRequest:
        """Queue one point-lookup request (one or a few query keys)."""
        self._next_request_id += 1
        return self._admit(
            ServeRequest(
                request_id=self._next_request_id,
                kind="point",
                queries=np.ascontiguousarray(queries, dtype=np.uint64),
                arrival=float(arrival),
            )
        )

    def submit_range(
        self,
        lowers: np.ndarray,
        uppers: np.ndarray,
        limit="auto",
        arrival: float = 0.0,
    ) -> ServeRequest:
        """Queue one range-lookup request, optionally with LIMIT-k pushdown."""
        if isinstance(limit, str):
            if limit != "auto":
                raise ValueError(
                    f"limit must be an int, None or 'auto', got {limit!r}"
                )
            limit = self.index.config.range_limit
        if limit is not None:
            limit = int(limit)
            if limit < 1:
                raise ValueError(f"limit must be at least 1, got {limit}")
        self._next_request_id += 1
        return self._admit(
            ServeRequest(
                request_id=self._next_request_id,
                kind="range",
                lowers=np.ascontiguousarray(lowers, dtype=np.uint64),
                uppers=np.ascontiguousarray(uppers, dtype=np.uint64),
                limit=limit,
                arrival=float(arrival),
            )
        )

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #

    def update(self, new_keys: np.ndarray, new_values: np.ndarray | None = None):
        """Apply an index update; in-flight windows keep their pinned epoch.

        The new epoch becomes visible to the *next* window (and invalidates
        the cache's older entries); the currently open window still launches
        against the snapshot pinned when it opened.
        """
        outcome = self.index.update(new_keys, new_values)
        self.epochs.current()  # observe the new epoch, sweep the cache
        return outcome

    # ------------------------------------------------------------------ #
    # flushing
    # ------------------------------------------------------------------ #

    def _flush_window(self, reason: str) -> list[RequestResult]:
        snapshot = self._window_snapshot
        if snapshot is None:
            return []
        window = self.scheduler.take_window()
        if not window:
            return []
        self.scheduler.record_window(window, reason)
        # Only current-epoch results may (re-)enter the cache: results of a
        # pinned-but-superseded epoch would outlive their invalidation sweep.
        cache_insert = self.cache.enabled and snapshot.epoch == self.index.epoch
        served: dict[int, RequestResult] = {}
        misses: list[tuple[ServeRequest, tuple | None]] = []
        if self.cache.enabled:
            for request in window:
                key = ResultCache.key_for(
                    snapshot.epoch,
                    self.scheduler.class_of(request, snapshot),
                    request.cache_payload(),
                )
                cached = self.cache.get(key)
                if cached is not None:
                    served[request.request_id] = replace(
                        cached,
                        request_id=request.request_id,
                        arrival=request.arrival,
                        from_cache=True,
                    )
                else:
                    misses.append((request, key))
        else:
            # Disabled cache: skip the key construction entirely — this is
            # the configuration the serving benchmarks time.
            misses = [(request, None) for request in window]
        if misses:
            for result in self.scheduler.launch_window(
                [request for request, _ in misses], snapshot
            ):
                served[result.request_id] = result
            if cache_insert:
                for request, key in misses:
                    self.cache.put(key, served[request.request_id])

        self.epochs.release(snapshot)
        if self.scheduler.pending:
            # Requests beyond the window boundary start the next window now.
            self._window_snapshot = self.epochs.pin(self.epochs.current())
        else:
            self._window_snapshot = None
        return [served[r.request_id] for r in window]

    def pump(self, now: float) -> list[RequestResult]:
        """Flush every window that is due at stream time ``now``."""
        results: list[RequestResult] = []
        while self.scheduler.ready(now):
            reason = (
                "size"
                if self.scheduler.pending_queries >= self.scheduler.max_batch
                else "wait"
            )
            results.extend(self._flush_window(reason))
        return results

    def drain(self) -> list[RequestResult]:
        """Flush everything that is still pending, regardless of deadlines."""
        results: list[RequestResult] = []
        while self.scheduler.pending:
            results.extend(self._flush_window("drain"))
        return results

    # ------------------------------------------------------------------ #
    # replay drivers
    # ------------------------------------------------------------------ #

    def _timed_flush(self, reason: str) -> tuple[list[RequestResult], float]:
        start = time.perf_counter()
        results = self._flush_window(reason)
        elapsed = time.perf_counter() - start
        self._service_seconds += elapsed
        return results, elapsed

    def replay(self, stream) -> ReplayReport:
        """Open-loop replay: serve ``stream`` and report throughput/latency.

        Arrival times come from the stream; service times are the measured
        wall-clock of the coalesced launches.  A window closes by *size*
        (``max_batch`` queries reached, launch at the closing arrival) or by
        *wait* (the oldest request's ``max_wait`` deadline passes before the
        next arrival, launch at the deadline); the launch itself additionally
        queues behind the previous one (single launch server).
        """
        if self.scheduler.pending:
            raise RuntimeError("replay() needs an idle service (pending queue)")
        requests = stream.requests()
        n = len(requests)
        completed: list[RequestResult] = []
        server_free = 0.0
        first_arrival = requests[0][0] if n else 0.0
        service_seconds_before = self._service_seconds

        def launch(close_time: float, reason: str) -> None:
            nonlocal server_free
            start = max(close_time, server_free)
            results, elapsed = self._timed_flush(reason)
            server_free = start + elapsed
            for result in results:
                result.completion = server_free
            completed.extend(results)

        for arrival, submit in requests:
            # Wait deadlines that expire before this arrival fire first.
            while (
                self.scheduler.pending and self.scheduler.deadline() < arrival
            ):
                launch(self.scheduler.deadline(), "wait")
            submit(self, arrival)
            while self.scheduler.pending_queries >= self.scheduler.max_batch:
                launch(arrival, "size")
        while self.scheduler.pending:
            launch(self.scheduler.deadline(), "wait")

        latencies = np.array([r.latency for r in completed], dtype=np.float64)
        makespan = (
            max((r.completion for r in completed), default=0.0) - first_arrival
        )
        return ReplayReport(
            results=completed,
            latencies=latencies,
            makespan=makespan,
            service_seconds=self._service_seconds - service_seconds_before,
        )

    def replay_closed_loop(self, stream, num_clients: int) -> ReplayReport:
        """Closed-loop replay: ``num_clients`` clients, one query in flight each.

        Every client submits its next request the moment its previous one
        completes, so the offered load adapts to the service rate — the
        standard closed-loop harness.  The stream's arrival stamps are
        ignored; its requests are dealt to clients in order.
        """
        if num_clients < 1:
            raise ValueError(f"num_clients must be at least 1, got {num_clients}")
        if self.scheduler.pending:
            raise RuntimeError(
                "replay_closed_loop() needs an idle service (pending queue)"
            )
        requests = stream.requests()
        completed: list[RequestResult] = []
        server_free = 0.0
        service_seconds_before = self._service_seconds
        # Ready times of the idle clients (all start at stream time zero).
        ready = [0.0] * min(num_clients, len(requests))
        next_request = 0

        while next_request < len(requests) or self.scheduler.pending:
            # Every idle client submits its next request (earliest first)
            # until the window fills or the stream runs dry.
            while (
                ready
                and next_request < len(requests)
                and self.scheduler.pending_queries < self.scheduler.max_batch
            ):
                ready.sort()
                now = ready.pop(0)
                _, submit = requests[next_request]
                submit(self, now)
                next_request += 1
            if not self.scheduler.pending:
                break
            reason = (
                "size"
                if self.scheduler.pending_queries >= self.scheduler.max_batch
                else "drain"
            )
            results, elapsed = self._timed_flush(reason)
            # The window closes when its own last request was submitted
            # (requests beyond the window boundary do not hold it open).
            close_time = max((r.arrival for r in results), default=0.0)
            start = max(close_time, server_free)
            server_free = start + elapsed
            for result in results:
                result.completion = server_free
                ready.append(server_free)  # the client turns around
            completed.extend(results)

        latencies = np.array([r.latency for r in completed], dtype=np.float64)
        makespan = max((r.completion for r in completed), default=0.0)
        return ReplayReport(
            results=completed,
            latencies=latencies,
            makespan=makespan,
            service_seconds=self._service_seconds - service_seconds_before,
        )

    # ------------------------------------------------------------------ #
    # stats
    # ------------------------------------------------------------------ #

    def stats(self) -> dict:
        """One dict: index summary + scheduler, cache and epoch counters."""
        return {
            "index": self.index.stats(),
            "scheduler": self.scheduler.stats.as_dict(),
            "cache": self.cache.stats.as_dict(),
            "epochs": self.epochs.stats.as_dict(),
            "serve_knobs": {
                "max_batch": self.scheduler.max_batch,
                "max_wait": self.scheduler.max_wait,
                "cache_capacity": self.cache.capacity,
            },
        }
