"""The index-serving front end: clock, epoch pinning, cache, replay drivers.

:class:`IndexService` ties the serving pieces together around one
:class:`repro.core.rx_index.RXIndex`:

* requests are submitted with stream-time arrival stamps and queued in the
  :class:`repro.serve.scheduler.MicroBatchScheduler`;
* the first request of an empty queue *opens a batching window* and pins the
  epoch snapshot that is current at that moment — an ``update()`` landing
  before the flush builds the next epoch on the side, and the in-flight
  window still launches against its pinned, immutable state;
* at flush time each request is first looked up in the epoch-keyed
  :class:`repro.serve.cache.ResultCache`; only the misses are coalesced into
  launches, and their demuxed results are inserted back (current-epoch
  results only, so an invalidation sweep can never be undone).

Two replay drivers turn timestamped query streams into throughput/latency
reports.  Both are event-driven simulations whose *service times* are the
measured wall-clock of the actual coalesced launches and whose *arrival
times* come from the stream — the standard way to replay an open-loop trace
against a real component:

* :meth:`IndexService.replay` — open loop: arrivals are fixed in advance;
  a window closes when it holds ``max_batch`` queries (size) or the oldest
  request has waited ``max_wait`` stream seconds (wait).
* :meth:`IndexService.replay_closed_loop` — closed loop: ``num_clients``
  logical clients each submit their next query the moment their previous
  one completes.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.cursor import parse_cursor
from repro.core.rx_index import RXIndex
from repro.serve.cache import ResultCache
from repro.serve.faults import InjectedFault
from repro.serve.resilience import (
    AdmissionController,
    RequestFailure,
    RetryPolicy,
    ServeStats,
    UpdateFailed,
)
from repro.serve.scheduler import MicroBatchScheduler, RequestResult, ServeRequest
from repro.serve.snapshot import EpochManager, EpochSnapshot


@dataclass
class ReplayReport:
    """Throughput/latency summary of one replayed query stream.

    ``results`` holds the successful :class:`RequestResult`\\ s; ``errors``
    holds every explicit :class:`RequestFailure` (rejections, timeouts,
    exhausted launches).  Every submitted request lands in exactly one of
    the two lists — a replay can never silently drop a request.
    """

    results: list[RequestResult]
    #: per-request latency in stream seconds (completion - arrival),
    #: successes only
    latencies: np.ndarray
    #: end-to-end stream time from first arrival to last completion
    makespan: float
    #: wall-clock seconds the launches themselves consumed
    service_seconds: float
    #: explicit failures: one RequestFailure per rejected/failed request
    errors: list[RequestFailure] = field(default_factory=list)
    #: index updates applied during the replay: dicts with "time",
    #: "epoch" (after the update) and "failed" (rolled back)
    updates: list[dict] = field(default_factory=list)
    num_requests: int = 0
    num_queries: int = 0

    def __post_init__(self) -> None:
        self.num_requests = len(self.results) + len(self.errors)
        self.num_queries = int(sum(r.num_lookups for r in self.results))

    @property
    def throughput_rps(self) -> float:
        """Sustained request throughput over the stream makespan."""
        return self.num_requests / self.makespan if self.makespan > 0 else 0.0

    @property
    def goodput_rps(self) -> float:
        """Successful-request throughput over the makespan (the chaos metric)."""
        return len(self.results) / self.makespan if self.makespan > 0 else 0.0

    @property
    def error_rate(self) -> float:
        """Fraction of submitted requests that received an error result."""
        return len(self.errors) / self.num_requests if self.num_requests else 0.0

    @property
    def service_throughput_rps(self) -> float:
        """Request throughput of the launch pipeline alone (no idle time)."""
        return (
            self.num_requests / self.service_seconds if self.service_seconds > 0 else 0.0
        )

    def errors_by_reason(self) -> dict:
        return dict(Counter(f.reason for f in self.errors))

    def latency_percentiles(self) -> dict:
        if self.latencies.size == 0:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        p50, p95, p99 = np.percentile(self.latencies, [50.0, 95.0, 99.0])
        return {"p50": float(p50), "p95": float(p95), "p99": float(p99)}

    def as_dict(self) -> dict:
        return {
            "num_requests": self.num_requests,
            "num_queries": self.num_queries,
            "num_errors": len(self.errors),
            "errors_by_reason": self.errors_by_reason(),
            "error_rate": self.error_rate,
            "makespan_seconds": self.makespan,
            "service_seconds": self.service_seconds,
            "throughput_rps": self.throughput_rps,
            "goodput_rps": self.goodput_rps,
            "service_throughput_rps": self.service_throughput_rps,
            "latency_seconds": self.latency_percentiles(),
            "updates": list(self.updates),
        }


class IndexService:
    """Concurrent query-serving layer over one built :class:`RXIndex`."""

    def __init__(
        self,
        index: RXIndex,
        max_batch: int | None = None,
        max_wait: float | None = None,
        cache_capacity: int | None = None,
        deadline: float | None = None,
        max_queue: int | None = None,
        retry: RetryPolicy | None = None,
        fault_injector=None,
    ):
        config = index.config
        self.index = index
        self.faults = fault_injector
        self.serve_stats = ServeStats()
        #: default relative deadline (seconds after arrival) stamped on
        #: requests that do not carry their own; None = no deadline
        self.deadline = deadline if deadline is not None else config.serve_deadline
        self.admission = AdmissionController(
            max_queue if max_queue is not None else config.serve_max_queue
        )
        if retry is None:
            retry = RetryPolicy(
                max_retries=config.serve_retry_max,
                backoff_base=config.serve_retry_backoff,
                backoff_factor=config.serve_retry_factor,
                jitter=config.serve_retry_jitter,
            )
        self.retry = retry
        self.scheduler = MicroBatchScheduler(
            max_batch=max_batch if max_batch is not None else config.serve_max_batch,
            max_wait=max_wait if max_wait is not None else config.serve_max_wait,
            retry=retry,
            serve_stats=self.serve_stats,
        )
        self.cache = ResultCache(
            cache_capacity
            if cache_capacity is not None
            else config.serve_cache_capacity,
            fault_injector=fault_injector,
        )
        self.epochs = EpochManager(index, fault_injector=fault_injector)
        self.epochs.add_listener(self.cache.invalidate_before)
        self._next_request_id = 0
        self._window_snapshot: EpochSnapshot | None = None
        self._service_seconds = 0.0
        #: EWMA of flush service time — the headroom used by deadline-aware
        #: window flushing (flush early enough that service still fits)
        self._flush_ewma = 0.0
        #: rejections produced since the last _take_rejections() drain
        self._rejected: list[RequestFailure] = []

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #

    def _reject(self, request: ServeRequest, reason: str, retry_after=None):
        failure = RequestFailure(
            request_id=request.request_id,
            kind=request.kind,
            reason=reason,
            arrival=request.arrival,
            completion=request.arrival,  # rejected on the spot
            deadline=request.deadline,
            retry_after=retry_after,
            num_lookups=request.num_queries,
        )
        self.serve_stats.rejections += 1
        if reason == "rejected_deadline":
            self.serve_stats.rejections_deadline += 1
        elif reason == "rejected":
            self.serve_stats.rejections_queue += 1
        self._rejected.append(failure)
        return failure

    def _take_rejections(self) -> list[RequestFailure]:
        rejected, self._rejected = self._rejected, []
        return rejected

    def _admit(self, request: ServeRequest) -> ServeRequest | RequestFailure:
        if request.deadline is None and self.deadline is not None:
            request.deadline = request.arrival + self.deadline
        if request.deadline is not None and request.deadline <= request.arrival:
            # The deadline cannot be met even by an instantaneous flush:
            # reject up front instead of doing work that must be discarded.
            return self._reject(request, "rejected_deadline")
        if not self.admission.admits(
            self.scheduler.pending_queries, request.num_queries
        ):
            # Shed load with a hint: the queue drains at the next flush.
            next_flush = self.scheduler.flush_deadline(self._flush_ewma)
            retry_after = (
                max(next_flush - request.arrival, 0.0)
                if next_flush != float("inf")
                else self.scheduler.max_wait
            )
            return self._reject(request, "rejected", retry_after=retry_after)
        if self._window_snapshot is None:
            # First request of a new window: pin the epoch it will run on.
            try:
                self._window_snapshot = self.epochs.pin(self.epochs.current())
            except InjectedFault:
                # Snapshot capture faulted: the service cannot open a window
                # right now, so shed the request as transient.
                return self._reject(
                    request, "rejected", retry_after=self.scheduler.max_wait
                )
        self.scheduler.submit(request)
        self.serve_stats.admitted += 1
        return request

    def submit_point(
        self,
        queries: np.ndarray,
        arrival: float = 0.0,
        deadline: float | None = None,
    ) -> ServeRequest | RequestFailure:
        """Queue one point-lookup request (one or a few query keys).

        ``deadline`` is relative (seconds after ``arrival``); when omitted
        the service's default applies.  Returns the queued request, or an
        explicit :class:`RequestFailure` when the request was rejected
        (infeasible deadline or shed by the admission controller).
        """
        self._next_request_id += 1
        arrival = float(arrival)
        return self._admit(
            ServeRequest(
                request_id=self._next_request_id,
                kind="point",
                queries=np.ascontiguousarray(queries, dtype=np.uint64),
                arrival=arrival,
                deadline=arrival + deadline if deadline is not None else None,
            )
        )

    def submit_range(
        self,
        lowers: np.ndarray,
        uppers: np.ndarray,
        limit="auto",
        arrival: float = 0.0,
        deadline: float | None = None,
        order: str | None = None,
        cursor: str | None = None,
        pin_epoch: int | None = None,
    ) -> ServeRequest | RequestFailure:
        """Queue one range-lookup request, optionally with LIMIT-k pushdown.

        ``order="key"`` makes the request an ordered page (one range, traced
        in ``ordered_k`` mode): its result carries a ``next_cursor`` token
        which, passed back as ``cursor`` together with ``pin_epoch`` set to
        the first page's result epoch, resumes the scan just past the last
        returned ``(key, rowID)``.  A pinned page whose epoch has been
        superseded by an index update fails with ``"epoch_retired"`` rather
        than serving rows of a different column state — the client restarts
        the scan explicitly.
        """
        if isinstance(limit, str):
            if limit != "auto":
                raise ValueError(
                    f"limit must be an int, None or 'auto', got {limit!r}"
                )
            limit = self.index.config.range_limit
        if limit is not None:
            limit = int(limit)
            if limit < 1:
                raise ValueError(f"limit must be at least 1, got {limit}")
        # Validate the client-supplied cursor token up front: a malformed or
        # out-of-range token must fail here with a clean ValueError, not deep
        # inside a coalesced launch.  The original token string still rides
        # on the request (cache keys and demux labels key on it verbatim).
        parse_cursor(cursor, max_key=self.index.codec.max_key())
        self._next_request_id += 1
        arrival = float(arrival)
        return self._admit(
            ServeRequest(
                request_id=self._next_request_id,
                kind="range",
                lowers=np.ascontiguousarray(lowers, dtype=np.uint64),
                uppers=np.ascontiguousarray(uppers, dtype=np.uint64),
                limit=limit,
                arrival=arrival,
                deadline=arrival + deadline if deadline is not None else None,
                order=order,
                cursor=cursor,
                pin_epoch=pin_epoch,
            )
        )

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #

    def update(self, new_keys: np.ndarray, new_values: np.ndarray | None = None):
        """Apply an index update; in-flight windows keep their pinned epoch.

        The new epoch becomes visible to the *next* window (and invalidates
        the cache's older entries); the currently open window still launches
        against the snapshot pinned when it opened.

        When the swap *faults* (injected at the "update" site), the index is
        rolled back to the previous key column — a fresh epoch carrying the
        old content — and an :class:`UpdateFailed` outcome is returned so the
        caller sees the failure instead of the update silently half-landing.
        Serving continues from the pre-update state either way.
        """
        if self.faults is not None:
            old_keys = self.index.keys.copy()
            old_values = (
                self.index.values.copy() if self.index.values is not None else None
            )
            outcome = self.index.update(new_keys, new_values)
            try:
                self.faults.check("update")
            except InjectedFault:
                # Roll the content back.  The epoch still advances (twice:
                # failed swap + rollback) so every pinned snapshot stays
                # immutable; the intermediate epoch never serves a window.
                self.index.update(old_keys, old_values)
                self.serve_stats.updates_failed += 1
                self.serve_stats.updates_rolled_back += 1
                self.epochs.current()  # observe the rollback epoch
                return UpdateFailed(rolled_back=True, epoch=self.index.epoch)
        else:
            outcome = self.index.update(new_keys, new_values)
        self.epochs.current()  # observe the new epoch, sweep the cache
        return outcome

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #

    def checkpoint(self, path) -> dict:
        """Persist the index's current epoch as a crash-safe snapshot.

        Delegates to :meth:`RXIndex.save` with the service's fault injector
        attached, so a chaos run exercises the write-temp → fsync → rename
        boundaries of the epoch store exactly like its other seams.
        In-flight windows are unaffected: a checkpoint only reads the accel
        state, and a save interrupted by an injected fault leaves the last
        committed snapshot intact.
        """
        return self.index.save(path, fault_injector=self.faults)

    def restore(self, path, mmap: bool = True) -> dict:
        """Warm-restart the service from a committed snapshot.

        The index adopts the snapshot's accel state via
        :meth:`RXIndex.restore_from`; the epoch counter advances past both
        the snapshot's tag and the current epoch, so the epoch manager
        observes the change, the cache sweeps its older entries, and
        pinned cursor pages submitted against the pre-restore state fail
        with ``"epoch_retired"`` instead of serving rows of a different
        column state.
        """
        info = self.index.restore_from(
            path, mmap=mmap, fault_injector=self.faults
        )
        self.epochs.current()  # observe the restored epoch, sweep the cache
        return info

    # ------------------------------------------------------------------ #
    # flushing
    # ------------------------------------------------------------------ #

    def _flush_window(
        self, reason: str, now: float | None = None
    ) -> list[RequestResult | RequestFailure]:
        snapshot = self._window_snapshot
        if snapshot is None:
            if not self.scheduler.pending:
                return []
            # Defensive re-pin: a prior flush may have failed between
            # releasing its snapshot and pinning the next window's.
            snapshot = self._window_snapshot = self.epochs.pin(self.epochs.current())
        window = self.scheduler.take_window()
        if not window:
            return []
        # The snapshot must be released exactly once no matter what the
        # serve raises, and the next window (if any) pinned afresh —
        # otherwise a failed flush pins a dead epoch's accel arrays forever.
        self._window_snapshot = None
        try:
            with self.epochs.releasing(snapshot):
                served = self._serve_window(window, snapshot, reason, now)
        finally:
            if self.scheduler.pending:
                # Requests beyond the window boundary start the next window.
                self._window_snapshot = self.epochs.pin(self.epochs.current())
        return served

    def _serve_window(
        self,
        window: list[ServeRequest],
        snapshot: EpochSnapshot,
        reason: str,
        now: float | None,
    ) -> list[RequestResult | RequestFailure]:
        self.scheduler.record_window(window, reason)
        served: dict[int, RequestResult | RequestFailure] = {}
        # Requests whose deadline already passed are shed before the launch:
        # they get an explicit timeout instead of work that must be thrown
        # away, and they stop inflating the coalesced launch.
        live: list[ServeRequest] = []
        for request in window:
            if (
                now is not None
                and request.deadline is not None
                and request.deadline < now
            ):
                self.serve_stats.timeouts += 1
                self.serve_stats.expired_shed += 1
                served[request.request_id] = RequestFailure(
                    request_id=request.request_id,
                    kind=request.kind,
                    reason="timeout",
                    arrival=request.arrival,
                    completion=now,
                    deadline=request.deadline,
                    num_lookups=request.num_queries,
                )
            elif request.pin_epoch is not None and request.pin_epoch != snapshot.epoch:
                # A cursor-resumed page pinned an epoch this window no
                # longer serves (an update landed mid-pagination).  Serving
                # it against the new epoch could skip or duplicate rows —
                # fail explicitly so the client restarts the scan.
                self.serve_stats.rejections_epoch += 1
                served[request.request_id] = RequestFailure(
                    request_id=request.request_id,
                    kind=request.kind,
                    reason="epoch_retired",
                    arrival=request.arrival,
                    completion=now if now is not None else request.arrival,
                    deadline=request.deadline,
                    num_lookups=request.num_queries,
                )
            else:
                live.append(request)
        # Only current-epoch results may (re-)enter the cache: results of a
        # pinned-but-superseded epoch would outlive their invalidation sweep.
        cache_insert = self.cache.enabled and snapshot.epoch == self.index.epoch
        misses: list[tuple[ServeRequest, tuple | None]] = []
        if self.cache.enabled:
            try:
                for request in live:
                    key = ResultCache.key_for(
                        snapshot.epoch,
                        self.scheduler.class_of(request, snapshot),
                        request.cache_payload(),
                    )
                    cached = self.cache.get(key)
                    if cached is not None and cached.epoch != snapshot.epoch:
                        # Corrupt read: the entry's epoch tag cannot belong
                        # to the key it was found under.  Drop it and serve
                        # the request by launching.
                        self.cache.discard(key)
                        self.serve_stats.cache_corruptions_detected += 1
                        cached = None
                    if cached is not None:
                        served[request.request_id] = replace(
                            cached,
                            request_id=request.request_id,
                            arrival=request.arrival,
                            deadline=request.deadline,
                            from_cache=True,
                        )
                    else:
                        misses.append((request, key))
            except InjectedFault:
                # Cache unavailable: degrade to cache-bypass for this flush.
                # Every request launches; nothing is read or written back.
                self.serve_stats.degraded_flushes += 1
                served = {
                    rid: res
                    for rid, res in served.items()
                    if isinstance(res, RequestFailure)
                }
                misses = [(request, None) for request in live]
                cache_insert = False
        else:
            # Disabled cache: skip the key construction entirely — this is
            # the configuration the serving benchmarks time.
            misses = [(request, None) for request in live]
        if misses:
            for result in self.scheduler.launch_window(
                [request for request, _ in misses], snapshot
            ):
                served[result.request_id] = result
            if cache_insert:
                for request, key in misses:
                    result = served[request.request_id]
                    if isinstance(result, RequestResult):
                        self.cache.put(key, result)
        return [served[r.request_id] for r in window]

    def pump(self, now: float) -> list[RequestResult | RequestFailure]:
        """Flush every window that is due at stream time ``now``."""
        results: list[RequestResult | RequestFailure] = []
        while self.scheduler.ready(now, self._flush_ewma):
            if self.scheduler.pending_queries >= self.scheduler.max_batch:
                reason = "size"
            elif now >= self.scheduler.pending[0].arrival + self.scheduler.max_wait:
                reason = "wait"
            else:
                reason = "deadline"
            results.extend(self._flush_window(reason, now))
        return results

    def drain(self) -> list[RequestResult | RequestFailure]:
        """Flush everything that is still pending, regardless of deadlines."""
        results: list[RequestResult | RequestFailure] = []
        while self.scheduler.pending:
            results.extend(self._flush_window("drain"))
        return results

    # ------------------------------------------------------------------ #
    # replay drivers
    # ------------------------------------------------------------------ #

    def _timed_flush(
        self, reason: str, now: float | None = None
    ) -> tuple[list[RequestResult | RequestFailure], float]:
        start = time.perf_counter()
        backoff_before = self.serve_stats.backoff_seconds
        results = self._flush_window(reason, now)
        elapsed = time.perf_counter() - start
        # Simulated retry backoff counts as service time: the launch server
        # is busy waiting out the backoff exactly as a real retry loop is.
        elapsed += self.serve_stats.backoff_seconds - backoff_before
        self._service_seconds += elapsed
        # EWMA of flush service time: the headroom estimate deadline-aware
        # flushing subtracts from the tightest pending deadline.
        if self._flush_ewma == 0.0:
            self._flush_ewma = elapsed
        else:
            self._flush_ewma = 0.7 * self._flush_ewma + 0.3 * elapsed
        return results, elapsed

    def replay(self, stream, updates=None) -> ReplayReport:
        """Open-loop replay: serve ``stream`` and report throughput/latency.

        Arrival times come from the stream; service times are the measured
        wall-clock of the coalesced launches.  A window closes by *size*
        (``max_batch`` queries reached, launch at the closing arrival), by
        *wait* (the oldest request's ``max_wait`` bound passes before the
        next arrival) or by *deadline* (a pending request's deadline minus
        the flush-time EWMA headroom comes first); the launch itself
        additionally queues behind the previous one (single launch server).

        ``updates`` optionally schedules index updates inside the stream:
        an iterable of ``(time, new_keys)`` or ``(time, new_keys,
        new_values)`` tuples applied in stream-time order (due windows flush
        first, so an update never leaks into an already-open window's past).
        The report's ``errors`` list carries every rejected, timed-out or
        launch-failed request — each submitted request appears in exactly
        one of ``results``/``errors``.
        """
        if self.scheduler.pending:
            raise RuntimeError("replay() needs an idle service (pending queue)")
        requests = stream.requests()
        n = len(requests)
        completed: list[RequestResult] = []
        failures: list[RequestFailure] = []
        update_log: list[dict] = []
        server_free = 0.0
        first_arrival = requests[0][0] if n else 0.0
        service_seconds_before = self._service_seconds
        schedule = sorted(updates, key=lambda entry: entry[0]) if updates else []
        next_update = 0

        def finish(result, completion: float) -> None:
            """Deliver one flush result at stream time ``completion``."""
            if isinstance(result, RequestFailure):
                if result.completion == 0.0:
                    result.completion = completion
                failures.append(result)
                return
            if result.deadline is not None and completion > result.deadline:
                # Served, but too late: the client already gave up.
                self.serve_stats.timeouts += 1
                failure = RequestFailure.from_result(result, "timeout")
                failure.completion = completion
                failures.append(failure)
                return
            result.completion = completion
            completed.append(result)

        def launch(close_time: float, reason: str) -> None:
            nonlocal server_free
            start = max(close_time, server_free)
            results, elapsed = self._timed_flush(reason, close_time)
            server_free = start + elapsed
            for result in results:
                finish(result, server_free)

        def flush_due(until: float) -> None:
            """Fire every window whose flush deadline expires before ``until``."""
            while self.scheduler.pending:
                due = self.scheduler.flush_deadline(self._flush_ewma)
                if due >= until:
                    break
                wait_bound = (
                    self.scheduler.pending[0].arrival + self.scheduler.max_wait
                )
                launch(due, "wait" if due >= wait_bound else "deadline")

        def apply_update(entry) -> None:
            at = float(entry[0])
            flush_due(at)
            outcome = self.update(entry[1], entry[2] if len(entry) > 2 else None)
            update_log.append(
                {
                    "time": at,
                    "epoch": int(self.index.epoch),
                    "failed": isinstance(outcome, UpdateFailed),
                }
            )

        for arrival, submit in requests:
            while next_update < len(schedule) and schedule[next_update][0] <= arrival:
                apply_update(schedule[next_update])
                next_update += 1
            # Flush deadlines that expire before this arrival fire first.
            flush_due(arrival)
            submit(self, arrival)
            failures.extend(self._take_rejections())
            while self.scheduler.pending_queries >= self.scheduler.max_batch:
                launch(arrival, "size")
        while next_update < len(schedule):
            apply_update(schedule[next_update])
            next_update += 1
        while self.scheduler.pending:
            due = self.scheduler.flush_deadline(self._flush_ewma)
            wait_bound = self.scheduler.pending[0].arrival + self.scheduler.max_wait
            launch(due, "wait" if due >= wait_bound else "deadline")

        latencies = np.array([r.latency for r in completed], dtype=np.float64)
        last_completion = max(
            max((r.completion for r in completed), default=0.0),
            max((f.completion for f in failures), default=0.0),
        )
        makespan = (
            last_completion - first_arrival if (completed or failures) else 0.0
        )
        return ReplayReport(
            results=completed,
            latencies=latencies,
            makespan=makespan,
            service_seconds=self._service_seconds - service_seconds_before,
            errors=failures,
            updates=update_log,
        )

    def replay_closed_loop(self, stream, num_clients: int) -> ReplayReport:
        """Closed-loop replay: ``num_clients`` clients, one query in flight each.

        Every client submits its next request the moment its previous one
        completes, so the offered load adapts to the service rate — the
        standard closed-loop harness.  The stream's arrival stamps are
        ignored; its requests are dealt to clients in order.
        """
        if num_clients < 1:
            raise ValueError(f"num_clients must be at least 1, got {num_clients}")
        if self.scheduler.pending:
            raise RuntimeError(
                "replay_closed_loop() needs an idle service (pending queue)"
            )
        requests = stream.requests()
        completed: list[RequestResult] = []
        failures: list[RequestFailure] = []
        server_free = 0.0
        service_seconds_before = self._service_seconds
        # Ready times of the idle clients (all start at stream time zero).
        ready = [0.0] * min(num_clients, len(requests))
        next_request = 0

        while next_request < len(requests) or self.scheduler.pending:
            # Every idle client submits its next request (earliest first)
            # until the window fills or the stream runs dry.
            while (
                ready
                and next_request < len(requests)
                and self.scheduler.pending_queries < self.scheduler.max_batch
            ):
                ready.sort()
                now = ready.pop(0)
                _, submit = requests[next_request]
                submit(self, now)
                next_request += 1
                for rejection in self._take_rejections():
                    # A rejected client turns around immediately.
                    failures.append(rejection)
                    ready.append(now)
            if not self.scheduler.pending:
                if next_request < len(requests) and ready:
                    continue  # everything in flight was rejected; resubmit
                break
            reason = (
                "size"
                if self.scheduler.pending_queries >= self.scheduler.max_batch
                else "drain"
            )
            results, elapsed = self._timed_flush(reason)
            # The window closes when its own last request was submitted
            # (requests beyond the window boundary do not hold it open).
            close_time = max((r.arrival for r in results), default=0.0)
            start = max(close_time, server_free)
            server_free = start + elapsed
            for result in results:
                if isinstance(result, RequestFailure):
                    if result.completion == 0.0:
                        result.completion = server_free
                    failures.append(result)
                elif (
                    result.deadline is not None
                    and server_free > result.deadline
                ):
                    self.serve_stats.timeouts += 1
                    failure = RequestFailure.from_result(result, "timeout")
                    failure.completion = server_free
                    failures.append(failure)
                else:
                    result.completion = server_free
                    completed.append(result)
                ready.append(server_free)  # the client turns around

        latencies = np.array([r.latency for r in completed], dtype=np.float64)
        makespan = max(
            max((r.completion for r in completed), default=0.0),
            max((f.completion for f in failures), default=0.0),
        )
        return ReplayReport(
            results=completed,
            latencies=latencies,
            makespan=makespan,
            service_seconds=self._service_seconds - service_seconds_before,
            errors=failures,
        )

    # ------------------------------------------------------------------ #
    # stats
    # ------------------------------------------------------------------ #

    def stats(self) -> dict:
        """One dict: index summary + scheduler, cache and epoch counters."""
        return {
            "index": self.index.stats(),
            "scheduler": self.scheduler.stats.as_dict(),
            "cache": self.cache.stats.as_dict(),
            "epochs": self.epochs.stats.as_dict(),
            "resilience": {
                **self.serve_stats.as_dict(),
                "faults": self.faults.as_dict() if self.faults is not None else {},
            },
            "serve_knobs": {
                "max_batch": self.scheduler.max_batch,
                "max_wait": self.scheduler.max_wait,
                "cache_capacity": self.cache.capacity,
                "deadline": self.deadline,
                "max_queue": self.admission.max_queue,
                "retry_max": self.retry.max_retries,
            },
        }
