"""Micro-batching scheduler: coalesce independent lookups into large launches.

The paper's core premise is that RT-core index probes only pay off when rays
are launched in large batches against the immutable accel — a single point
lookup wastes an entire pipeline launch.  The scheduler accepts many small,
independent requests (one or a few point/range lookups each), coalesces them
into launches bounded by ``max_batch`` queries / ``max_wait`` seconds of
stream time, and demultiplexes the coalesced :class:`LaunchResult` back into
per-request results.

The demux is *bit-identical* to issuing every request as its own solo
launch:

* Ray generation is elementwise per query, and the 3D-mode range fan-out
  orders rays contiguously per lookup, so generating rays for the
  concatenated query array equals concatenating per-request ray batches.
* The wavefront traversal advances every ray independently; early-exit
  budget owners (rays in ``any_hit``, lookups in ``first_k``) never span
  requests, so each ray's per-round frontier pairs — and hence its hits, in
  stream order — equal its solo-launch ones.
* Per-request counters come from the engine's ``ray_groups`` attribution
  (:class:`repro.rtx.traversal.TraversalEngine`), which splits every counter
  (including ``traversal_rounds`` and ``max_frontier_size``) by the group
  that owns each ray.

Requests only coalesce into one launch when they share a *launch class* —
the (kind, trace mode, limit) triple — because a launch has a single trace
mode and hit budget.  A flush may therefore issue several class launches.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.cursor import make_cursor_filter, next_cursor_token, parse_cursor
from repro.core.results import (
    aggregate_values,
    first_row_per_lookup,
    hits_per_lookup,
)
from repro.rtx.traversal import HitRecords, TraversalCounters
from repro.serve.faults import InjectedFault
from repro.serve.resilience import LaunchExhausted, RequestFailure, RetryPolicy


@dataclass(frozen=True)
class LaunchClass:
    """What must match for two requests to share one coalesced launch.

    Cursor-paged requests all land in the ``("range", "ordered_k", k)``
    class regardless of their individual cursors: the resume filter is
    per-lookup, so pages of different scans still coalesce into one launch.
    """

    kind: str  #: "point" or "range"
    mode: str  #: trace mode: "all", "any_hit", "first_k" or "ordered_k"
    limit: int | None = None  #: per-lookup hit budget (budgeted modes only)


@dataclass
class ServeRequest:
    """One client request: a small batch of point or range lookups."""

    request_id: int
    kind: str  #: "point" or "range"
    queries: np.ndarray | None = None  #: point lookup keys
    lowers: np.ndarray | None = None  #: range lower bounds (inclusive)
    uppers: np.ndarray | None = None  #: range upper bounds (inclusive)
    limit: int | None = None  #: resolved LIMIT-k budget (range only)
    arrival: float = 0.0  #: stream-time arrival in seconds
    #: absolute stream time by which the result must be delivered (None =
    #: no deadline); set by the service from the relative deadline knob
    deadline: float | None = None
    #: ``"key"`` for an ordered paged range lookup (one range per request,
    #: traced in ``ordered_k`` mode); ``None`` for plain lookups
    order: str | None = None
    #: keyset resume token (``"key|row_id"``) of the previous page; requires
    #: ``order="key"``
    cursor: str | None = None
    #: accel epoch the paged scan started on: the request fails with
    #: ``"epoch_retired"`` instead of serving against any other epoch
    pin_epoch: int | None = None

    def __post_init__(self) -> None:
        if self.kind == "point":
            if self.queries is None or self.queries.shape[0] == 0:
                raise ValueError("a point request needs at least one query key")
            if self.order is not None:
                raise ValueError("order='key' only applies to range requests")
        elif self.kind == "range":
            if self.lowers is None or self.uppers is None:
                raise ValueError("a range request needs lower and upper bounds")
            if self.lowers.shape != self.uppers.shape or self.lowers.shape[0] == 0:
                raise ValueError(
                    "range bounds must be equal-shaped and non-empty"
                )
            if self.order is not None:
                if self.order != "key":
                    raise ValueError(
                        f"order must be None or 'key', got {self.order!r}"
                    )
                if self.limit is None:
                    raise ValueError("order='key' requires a page size (limit)")
                if self.lowers.shape[0] != 1:
                    raise ValueError(
                        "order='key' pages one range per request"
                    )
        else:
            raise ValueError(f"unknown request kind {self.kind!r}")
        if self.cursor is not None and self.order is None:
            raise ValueError("cursor resume requires order='key'")

    @property
    def num_queries(self) -> int:
        return int(
            self.queries.shape[0] if self.kind == "point" else self.lowers.shape[0]
        )

    def cache_payload(self) -> tuple:
        """Hashable identity of the request's queries (the cache key body).

        Ordered paged requests include their cursor: each page of a scan is
        its own cache entry, keyed by ``(epoch, class, range, cursor)`` —
        so a resumed page can never be answered from another page's entry,
        and an epoch advance orphans every page at once.
        """
        if self.kind == "point":
            return ("point", self.queries.tobytes())
        if self.order is None:
            return ("range", self.lowers.tobytes(), self.uppers.tobytes(), self.limit)
        return (
            "range",
            self.lowers.tobytes(),
            self.uppers.tobytes(),
            self.limit,
            self.order,
            self.cursor,
        )


@dataclass
class RequestResult:
    """One request's demuxed result, bit-identical to a solo launch."""

    request_id: int
    kind: str
    epoch: int  #: accel epoch the result was computed against
    hits: HitRecords  #: request-local hit records (ray/lookup ids rebased)
    counters: TraversalCounters  #: request's exact share of the launch work
    num_lookups: int
    from_cache: bool = False
    arrival: float = 0.0  #: stream time the request arrived
    completion: float = 0.0  #: stream time the result was delivered
    deadline: float | None = None  #: absolute deadline carried from the request
    #: ``"key"`` when the request was an ordered page (hits arrive in
    #: ``(key, rowID)`` order); ``None`` otherwise
    order: str | None = None
    #: resume token for the next page of an ordered scan; ``None`` when the
    #: range is exhausted (or the request was not paged)
    next_cursor: str | None = None

    @property
    def latency(self) -> float:
        return self.completion - self.arrival

    @property
    def failed(self) -> bool:
        return False

    @property
    def num_rays(self) -> int:
        return self.hits.num_rays

    def result_rows(self) -> np.ndarray:
        """RowID of the first match per lookup (miss sentinel elsewhere)."""
        return first_row_per_lookup(self.hits, self.num_lookups)

    def hits_per_lookup(self) -> np.ndarray:
        return hits_per_lookup(self.hits, self.num_lookups)

    def aggregate(self, values: np.ndarray) -> int:
        """Sum of ``values[rowID]`` over the matches (epoch-pinned column)."""
        return aggregate_values(self.hits, values)


@dataclass
class SchedulerStats:
    """Counters describing the scheduler's coalescing behaviour."""

    requests: int = 0
    queries: int = 0
    launches: int = 0
    launched_queries: int = 0
    launched_rays: int = 0
    batches: int = 0
    max_batch_queries: int = 0
    closed_by_size: int = 0
    closed_by_wait: int = 0
    closed_by_drain: int = 0
    closed_by_deadline: int = 0

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "queries": self.queries,
            "launches": self.launches,
            "launched_queries": self.launched_queries,
            "launched_rays": self.launched_rays,
            "batches": self.batches,
            "queries_per_launch": self.launched_queries / max(self.launches, 1),
            "max_batch_queries": self.max_batch_queries,
            "closed_by_size": self.closed_by_size,
            "closed_by_wait": self.closed_by_wait,
            "closed_by_drain": self.closed_by_drain,
            "closed_by_deadline": self.closed_by_deadline,
        }


class MicroBatchScheduler:
    """Groups pending requests into coalesced launches and demuxes results.

    The scheduler holds the batching *policy* (``max_batch`` queries per
    launch window, ``max_wait`` seconds of stream time before a lone request
    is flushed anyway) and the coalescing *mechanics*; the clock and the
    epoch pinning live in :class:`repro.serve.service.IndexService`.
    """

    def __init__(
        self,
        max_batch: int,
        max_wait: float,
        retry: RetryPolicy | None = None,
        serve_stats=None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be at least 1, got {max_batch}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be non-negative, got {max_wait}")
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        #: optional :class:`RetryPolicy` for faulted coalesced launches
        self.retry = retry
        #: optional :class:`repro.serve.resilience.ServeStats` the retry loop
        #: accounts into (retries, launch failures, backoff seconds)
        self.serve_stats = serve_stats
        #: FIFO of queued requests; a deque so the per-window dequeue stays
        #: O(window) even at 4096-query windows inside the timed flush path.
        self.pending: deque[ServeRequest] = deque()
        self.pending_queries = 0
        #: tightest absolute deadline among pending requests (inf if none)
        self._min_deadline = float("inf")
        self.stats = SchedulerStats()

    # ------------------------------------------------------------------ #
    # batching policy
    # ------------------------------------------------------------------ #

    def submit(self, request: ServeRequest) -> None:
        self.pending.append(request)
        self.pending_queries += request.num_queries
        if request.deadline is not None:
            self._min_deadline = min(self._min_deadline, request.deadline)
        self.stats.requests += 1
        self.stats.queries += request.num_queries

    def deadline(self) -> float:
        """Stream time at which the oldest pending request must flush."""
        return self.flush_deadline(0.0)

    def flush_deadline(self, headroom: float = 0.0) -> float:
        """Stream time at which the pending window must flush.

        The baseline is the max-wait bound of the oldest request.  When a
        pending request carries a deadline that would expire sooner, the
        flush moves *early*: to the tightest deadline minus ``headroom``
        (the caller's estimate of flush service time), but never before the
        oldest arrival — a request can't flush before it exists.
        """
        if not self.pending:
            return float("inf")
        oldest = self.pending[0].arrival
        wait_bound = oldest + self.max_wait
        if self._min_deadline == float("inf"):
            return wait_bound
        deadline_bound = max(self._min_deadline - headroom, oldest)
        return min(wait_bound, deadline_bound)

    def ready(self, now: float, headroom: float = 0.0) -> bool:
        """Whether the pending window must flush at stream time ``now``."""
        if not self.pending:
            return False
        return (
            self.pending_queries >= self.max_batch
            or now >= self.flush_deadline(headroom)
        )

    # ------------------------------------------------------------------ #
    # coalescing + demux
    # ------------------------------------------------------------------ #

    def take_window(self) -> list[ServeRequest]:
        """Dequeue whole requests FIFO up to ``max_batch`` queries (>= 1)."""
        taken: list[ServeRequest] = []
        count = 0
        while self.pending:
            nxt = self.pending[0].num_queries
            if taken and count + nxt > self.max_batch:
                break
            taken.append(self.pending.popleft())
            count += nxt
        self.pending_queries -= count
        self._min_deadline = min(
            (r.deadline for r in self.pending if r.deadline is not None),
            default=float("inf"),
        )
        return taken

    def record_window(self, window: list[ServeRequest], reason: str) -> None:
        """Account one closed batching window in the stats."""
        self.stats.batches += 1
        window_queries = sum(r.num_queries for r in window)
        self.stats.max_batch_queries = max(
            self.stats.max_batch_queries, window_queries
        )
        if reason == "size":
            self.stats.closed_by_size += 1
        elif reason == "wait":
            self.stats.closed_by_wait += 1
        elif reason == "deadline":
            self.stats.closed_by_deadline += 1
        else:
            self.stats.closed_by_drain += 1

    def class_of(self, request: ServeRequest, snapshot) -> LaunchClass:
        """Launch class of ``request`` under ``snapshot``'s resolved modes.

        Load-bearing in two places: it decides which requests may share a
        coalesced launch, and it is part of the result-cache key.
        """
        if request.kind == "point":
            return LaunchClass(kind="point", mode=snapshot.point_mode)
        if request.order == "key":
            return LaunchClass(kind="range", mode="ordered_k", limit=request.limit)
        if request.limit is None:
            return LaunchClass(kind="range", mode="all")
        return LaunchClass(kind="range", mode="first_k", limit=request.limit)

    def _launch_class(
        self, klass: LaunchClass, requests: list[ServeRequest], snapshot
    ) -> list[RequestResult]:
        """Coalesce same-class requests into one launch and demux it."""
        counts = np.array([r.num_queries for r in requests], dtype=np.int64)
        starts = np.concatenate([[0], np.cumsum(counts)])
        total = int(starts[-1])

        any_hit = None
        cursors: list = []
        if klass.kind == "point":
            queries = np.concatenate([r.queries for r in requests])
            rays = snapshot.codec.point_ray_batch(
                queries, snapshot.config.point_ray_mode
            )
        else:
            lowers = np.concatenate([r.lowers for r in requests])
            uppers = np.concatenate([r.uppers for r in requests])
            if klass.mode == "ordered_k":
                # One lookup per paged request: resume each scan *at* its
                # cursor key (duplicates may straddle the page boundary) and
                # let the exclusive per-lookup filter drop the rows the
                # previous page already paid out — before they can consume
                # any of this page's budget.
                cursors = [parse_cursor(r.cursor) for r in requests]
                lowers = lowers.copy()
                for i, cur in enumerate(cursors):
                    if cur is not None:
                        lowers[i] = min(max(int(lowers[i]), cur.key), int(uppers[i]))
                any_hit = make_cursor_filter(
                    snapshot.keys, cursors, base_any_hit=snapshot.pipeline.any_hit
                )
            rays = snapshot.codec.range_ray_batch(
                lowers,
                uppers,
                snapshot.config.range_ray_mode,
                max_rays_per_range=snapshot.config.max_rays_per_range,
            )
        # Rays are contiguous per lookup and lookups contiguous per request,
        # so the owning request of every ray is a searchsorted away.
        ray_groups = np.searchsorted(starts, rays.lookup_ids, side="right") - 1
        # Retry loop for injected launch faults.  Re-launching is idempotent:
        # the rays were built once and the snapshot pins the accel state, so
        # a retried launch is bit-identical to the first attempt succeeding.
        attempt = 0
        while True:
            try:
                launch = snapshot.pipeline.launch(
                    rays,
                    num_lookups=total,
                    mode=klass.mode,
                    limit=klass.limit,
                    ray_groups=ray_groups,
                    any_hit=any_hit,
                )
                break
            except InjectedFault as fault:
                if fault.site != "launch":
                    raise
                if self.retry is None or attempt >= self.retry.max_retries:
                    raise LaunchExhausted(
                        f"launch of class {klass} failed after {attempt} "
                        f"retr{'y' if attempt == 1 else 'ies'}"
                    ) from fault
                delay = self.retry.delay(attempt)
                attempt += 1
                if self.serve_stats is not None:
                    self.serve_stats.retries += 1
                    self.serve_stats.backoff_seconds += delay
        self.stats.launches += 1
        self.stats.launched_queries += total
        self.stats.launched_rays += len(rays)

        hits = launch.hits
        # Group the flat hit stream by owning request with one stable sort;
        # within each request the stream order is preserved — exactly the
        # order a solo launch would have reported.
        hit_groups = np.searchsorted(starts, hits.lookup_ids, side="right") - 1
        order = np.argsort(hit_groups, kind="stable")
        sorted_groups = hit_groups[order]
        group_range = np.arange(len(requests), dtype=sorted_groups.dtype)
        lo = np.searchsorted(sorted_groups, group_range, side="left")
        hi = np.searchsorted(sorted_groups, group_range, side="right")
        ray_starts = np.searchsorted(rays.lookup_ids, starts[:-1], side="left")
        ray_ends = np.searchsorted(rays.lookup_ids, starts[1:], side="left")

        results = []
        for i, request in enumerate(requests):
            sel = order[lo[i] : hi[i]]
            sel.sort()  # back to stream order within the request
            local = HitRecords(
                ray_indices=hits.ray_indices[sel] - ray_starts[i],
                prim_indices=hits.prim_indices[sel],
                lookup_ids=hits.lookup_ids[sel] - starts[i],
                num_rays=int(ray_ends[i] - ray_starts[i]),
            )
            next_cursor = None
            if klass.mode == "ordered_k":
                # The ordered pool reports hits in (key, rowID) order, and
                # the demux preserves stream order within a request, so the
                # page's last primitive is the keyset resume point.
                next_cursor = next_cursor_token(
                    snapshot.keys, local.prim_indices, klass.limit
                )
            results.append(
                RequestResult(
                    request_id=request.request_id,
                    kind=request.kind,
                    epoch=snapshot.epoch,
                    hits=local,
                    counters=launch.group_counters[i],
                    num_lookups=request.num_queries,
                    arrival=request.arrival,
                    deadline=request.deadline,
                    order=request.order,
                    next_cursor=next_cursor,
                )
            )
        return results

    def launch_window(
        self, window: list[ServeRequest], snapshot
    ) -> list[RequestResult | RequestFailure]:
        """Coalesce ``window`` into per-class launches and demux the results.

        Results come back in request order.  Requests of different launch
        classes cannot share a launch (one trace mode / hit budget per
        launch), so a mixed window issues one launch per class.  A class
        whose launch exhausts its retries fails *only its own requests* —
        each gets an explicit :class:`RequestFailure` — while the other
        classes of the window still serve normally.
        """
        by_class: dict[LaunchClass, list[ServeRequest]] = {}
        for request in window:
            by_class.setdefault(self.class_of(request, snapshot), []).append(request)

        results: dict[int, RequestResult | RequestFailure] = {}
        for klass, requests in by_class.items():
            try:
                for result in self._launch_class(klass, requests, snapshot):
                    results[result.request_id] = result
            except LaunchExhausted:
                if self.serve_stats is not None:
                    self.serve_stats.launch_failures += len(requests)
                for request in requests:
                    results[request.request_id] = RequestFailure(
                        request_id=request.request_id,
                        kind=request.kind,
                        reason="launch_failed",
                        arrival=request.arrival,
                        deadline=request.deadline,
                        num_lookups=request.num_queries,
                    )
        return [results[r.request_id] for r in window]

    def flush(self, snapshot, reason: str = "size") -> list[RequestResult]:
        """Take one batching window, launch it against ``snapshot``, demux.

        ``reason`` records why the window closed (``"size"``, ``"wait"`` or
        ``"drain"``).  The cache-aware path lives in
        :class:`repro.serve.service.IndexService`, which takes the window
        itself and only launches the cache misses.
        """
        window = self.take_window()
        if not window:
            return []
        self.record_window(window, reason)
        return self.launch_window(window, snapshot)
