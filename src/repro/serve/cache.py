"""Epoch-keyed result cache for the serving layer.

Trace results are deterministic given an accel epoch: the same (mode, query)
pair against the same epoch always reports the same hits and counters.  That
makes them cacheable with a key of ``(epoch, launch class, query bytes)`` —
and trivially invalidatable: advancing the epoch orphans every older entry,
which :meth:`ResultCache.invalidate_before` drops in one sweep (the epoch
manager calls it on every advance).

Eviction is *skew-aware*: the serving workloads are Zipf-distributed, so a
small set of hot queries accounts for most of the traffic.  A plain LRU
would let one burst of cold queries wash the hot set out; instead the cache
keeps a per-entry hit-frequency and, when full, samples the ``sample_size``
least-recently-used entries and evicts the one with the *lowest frequency*
(ties fall to the least recently used).  Hot entries accumulate frequency
and survive cold scans — the approximated-LFU ("Redis LFU"/TinyLFU) design
— while everything stays deterministic: no randomness, insertion order
breaks ties.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


class _Entry:
    __slots__ = ("value", "frequency")

    def __init__(self, value):
        self.value = value
        self.frequency = 1


class ResultCache:
    """Bounded (epoch, class, query) -> result cache with LFU-sampled LRU."""

    def __init__(self, capacity: int, sample_size: int = 8, fault_injector=None):
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        if sample_size < 1:
            raise ValueError(f"sample_size must be at least 1, got {sample_size}")
        self.capacity = int(capacity)
        self.sample_size = int(sample_size)
        self.stats = CacheStats()
        #: optional :class:`repro.serve.faults.FaultInjector`: reads consult
        #: the "cache" site (unavailability — the get raises) and the
        #: "cache_corrupt" site (the returned entry's epoch tag is poisoned,
        #: which the service detects and treats as a miss).
        self.faults = fault_injector
        #: insertion/recency order: oldest first (OrderedDict is the LRU list)
        self._entries: OrderedDict[tuple, _Entry] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    @staticmethod
    def key_for(epoch: int, klass, payload: tuple) -> tuple:
        """Cache key of a request: its epoch, launch class and query bytes."""
        return (epoch, klass, payload)

    def get(self, key: tuple):
        """Return the cached value or None; a hit refreshes recency+frequency.

        Under fault injection a read may raise :class:`InjectedFault` (cache
        unavailable) or return a *corrupted* copy whose epoch tag no longer
        matches its key — the detection (and the cache-bypass degradation)
        is the caller's job.
        """
        if not self.enabled:
            return None
        if self.faults is not None:
            self.faults.check("cache")
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        entry.frequency += 1
        self._entries.move_to_end(key)
        self.stats.hits += 1
        if self.faults is not None and self.faults.fires("cache_corrupt"):
            # Bit-flip analogue: the entry comes back tagged with an epoch
            # that cannot match any live snapshot.
            return replace(entry.value, epoch=-1 - entry.value.epoch)
        return entry.value

    def discard(self, key: tuple) -> bool:
        """Drop one entry (used when the service detects a corrupt read)."""
        if self._entries.pop(key, None) is None:
            return False
        self.stats.evictions += 1
        return True

    def put(self, key: tuple, value) -> None:
        if not self.enabled:
            return
        if key in self._entries:
            # Refresh in place (the value is identical by determinism).
            self._entries.move_to_end(key)
            return
        if len(self._entries) >= self.capacity:
            self._evict_one()
        self._entries[key] = _Entry(value)
        self.stats.insertions += 1

    def _evict_one(self) -> None:
        """Evict the lowest-frequency entry among the LRU-most ``sample_size``."""
        victim = None
        victim_freq = None
        for i, (key, entry) in enumerate(self._entries.items()):
            if i >= self.sample_size:
                break
            if victim is None or entry.frequency < victim_freq:
                victim = key
                victim_freq = entry.frequency
        if victim is not None:
            del self._entries[victim]
            self.stats.evictions += 1

    def invalidate_before(self, epoch: int) -> int:
        """Drop every entry computed against an epoch older than ``epoch``."""
        stale = [key for key in self._entries if key[0] < epoch]
        for key in stale:
            del self._entries[key]
        self.stats.invalidations += len(stale)
        return len(stale)
