"""Deterministic, seeded fault injection for the serving stack.

A :class:`FaultInjector` is threaded through the serving components
(:class:`repro.serve.service.IndexService`, the scheduler's launch path via
:class:`repro.rtx.pipeline.Pipeline`, the result cache and the epoch
manager) and decides, per *site*, whether each operation fails.  Decisions
are deterministic twice over:

* every site draws from its own child RNG seeded by ``(site, seed)``, so the
  fire pattern of one site never shifts when another site is added, removed,
  or consulted in a different order;
* a site can additionally carry an explicit *schedule* — the set of
  occurrence indices at which it always fires — which is what the chaos
  bench uses to guarantee that every fault type is exercised in a recorded
  run regardless of the probability draw.

Fault sites:

========================  ====================================================
site                      effect when fired
========================  ====================================================
``launch``                :meth:`Pipeline.launch` raises :class:`InjectedFault`
``launch_latency``        :meth:`Pipeline.launch` stalls ``spec.latency`` s
``cache``                 :meth:`ResultCache.get` raises (cache unavailable)
``cache_corrupt``         :meth:`ResultCache.get` returns an entry whose
                          epoch tag was poisoned (detected by the service)
``update``                :meth:`IndexService.update` fails after the swap
                          (rolled back to the previous column)
``snapshot``              :meth:`EpochManager.current` raises at capture
``persist_write``         a segment/manifest write tears mid-stream: half the
                          bytes land in the temp file, then the save dies
``persist_fsync``         the save dies after the write but before ``fsync``
``persist_rename``        the save dies before the atomic rename publishes
                          the temp file (the orphan the GC later collects)
``persist_read_corrupt``  a load's checksum verification observes a flipped
                          bit and raises ``SnapshotCorrupt``
========================  ====================================================

The four ``persist_*`` sites cover the durability boundaries of the epoch
store's write-temp → fsync → atomic-rename protocol
(:mod:`repro.persist.segments`); the crash harness in
``tests/test_persist_recovery.py`` schedules each of them at every
occurrence index and proves the last committed epoch always survives.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

#: Known fault sites, with a stable per-site RNG stream id.  The ids are part
#: of the determinism contract: a given (seed, site) pair always produces the
#: same fire pattern, independent of what other sites exist.
FAULT_SITES = {
    "launch": 1,
    "launch_latency": 2,
    "cache": 3,
    "cache_corrupt": 4,
    "update": 5,
    "snapshot": 6,
    "persist_write": 7,
    "persist_fsync": 8,
    "persist_rename": 9,
    "persist_read_corrupt": 10,
}


class InjectedFault(RuntimeError):
    """A fault raised on purpose by the :class:`FaultInjector`."""

    def __init__(self, site: str, occurrence: int):
        super().__init__(f"injected fault at site {site!r} (occurrence {occurrence})")
        self.site = site
        self.occurrence = occurrence


@dataclass(frozen=True)
class FaultSpec:
    """Failure behaviour of one site: probability, schedule, latency."""

    #: per-occurrence fire probability in [0, 1]
    probability: float = 0.0
    #: occurrence indices (0-based) at which the site always fires
    at: frozenset = frozenset()
    #: seconds of stall injected when a latency site fires
    latency: float = 0.0

    def __post_init__(self) -> None:
        if math.isnan(self.probability) or not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if math.isnan(self.latency) or self.latency < 0.0:
            raise ValueError(
                f"fault latency must be non-negative seconds, got {self.latency}"
            )
        object.__setattr__(self, "at", frozenset(int(i) for i in self.at))


class FaultInjector:
    """Seeded per-site fault source for the serving stack.

    Components call :meth:`check` (raise-on-fire), :meth:`fires`
    (bool-on-fire) or :meth:`latency` (seconds-on-fire) at their injection
    points; sites without a spec never fire but still count occurrences, so
    the accounting shows how often each seam *could* have failed.
    """

    def __init__(self, seed: int = 0, specs: dict[str, FaultSpec] | None = None):
        specs = dict(specs or {})
        for site in specs:
            if site not in FAULT_SITES:
                raise ValueError(
                    f"unknown fault site {site!r}; known sites: "
                    f"{sorted(FAULT_SITES)}"
                )
        self.seed = int(seed)
        self.specs = specs
        self._rngs = {
            site: np.random.default_rng([FAULT_SITES[site], self.seed])
            for site in FAULT_SITES
        }
        self.occurrences = {site: 0 for site in FAULT_SITES}
        self.fired = {site: 0 for site in FAULT_SITES}
        self.injected_latency_seconds = 0.0

    def fires(self, site: str) -> bool:
        """Whether the current occurrence of ``site`` fails (and count it)."""
        occurrence = self.occurrences[site]
        self.occurrences[site] = occurrence + 1
        spec = self.specs.get(site)
        if spec is None:
            return False
        fired = occurrence in spec.at
        if not fired and spec.probability > 0.0:
            fired = bool(self._rngs[site].random() < spec.probability)
        if fired:
            self.fired[site] += 1
        return fired

    def check(self, site: str) -> None:
        """Raise :class:`InjectedFault` when the site fires."""
        if self.fires(site):
            raise InjectedFault(site, self.occurrences[site] - 1)

    def latency(self, site: str = "launch_latency") -> float:
        """Injected stall (seconds) for this occurrence; 0.0 when not fired."""
        if not self.fires(site):
            return 0.0
        delay = self.specs[site].latency
        self.injected_latency_seconds += delay
        return delay

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "occurrences": dict(self.occurrences),
            "fired": dict(self.fired),
            "injected_latency_seconds": self.injected_latency_seconds,
        }
