"""Figure 10 — Scaling behaviour of all indexing methods.

Three panels:

* (a) throughput while the number of point lookups grows from 2^13 to 2^27
  (2^26 indexed keys) — all methods saturate around 2^21 lookups; HT leads,
  RX stays competitive with the order-based indexes,
* (b) throughput while the number of indexed keys grows from 2^15 to 2^26
  (2^27 lookups) — RX is the fastest method for small key sets (everything is
  L2-resident and RX executes the fewest instructions) and falls behind HT
  and B+ once the structures spill out of the cache,
* (c) build time for 2^25 and 2^26 keys, for unsorted and pre-sorted inserts —
  the BVH construction makes RX the most expensive index to build.
"""

from __future__ import annotations

from repro.bench.harness import (
    ExperimentResult,
    ExperimentSeries,
    resolve_scale,
    simulate_build,
    simulate_lookups,
    throughput_lookups_per_second,
)
from repro.bench.experiments.common import (
    log2_label,
    make_standard_indexes,
    standard_point_workload,
)
from repro.gpusim.device import RTX_4090

LOOKUP_COUNTS = [2**n for n in range(13, 28, 2)]
KEY_COUNTS = [2**n for n in range(15, 27)]
BUILD_KEY_COUNTS = [2**25, 2**26]


def run(scale: str = "small", device=RTX_4090) -> ExperimentResult:
    """Figure 10a: throughput while varying the number of lookups."""
    scale = resolve_scale(scale)
    workload = standard_point_workload(scale, seed=71)
    indexes = make_standard_indexes()
    for index in indexes.values():
        index.build(workload.keys, workload.values)

    series = []
    for name, index in indexes.items():
        ys = []
        for num_lookups in LOOKUP_COUNTS:
            local = scale.with_targets(target_lookups=num_lookups)
            cost = simulate_lookups(index, workload, local, device=device)
            ys.append(throughput_lookups_per_second(cost.time_ms, num_lookups))
        series.append(
            ExperimentSeries(
                label=name,
                x=[log2_label(m) for m in LOOKUP_COUNTS],
                y=ys,
                unit="lookups/s",
            )
        )
    return ExperimentResult(
        experiment_id="fig10a",
        title="Throughput while varying the number of point lookups (2^26 keys)",
        x_label="number of lookups",
        series=series,
        notes="Throughput saturates once enough warps are resident per SM (Table 5).",
        scale=scale.name,
        device=device.name,
    )


def run_fig10b(scale: str = "small", device=RTX_4090) -> ExperimentResult:
    """Figure 10b: throughput while varying the number of indexed keys."""
    scale = resolve_scale(scale)
    workload = standard_point_workload(scale, seed=72)
    indexes = make_standard_indexes()
    for index in indexes.values():
        index.build(workload.keys, workload.values)

    series = []
    for name, index in indexes.items():
        ys = []
        for num_keys in KEY_COUNTS:
            local = scale.with_targets(target_keys=num_keys)
            cost = simulate_lookups(index, workload, local, device=device)
            ys.append(throughput_lookups_per_second(cost.time_ms, scale.target_lookups))
        series.append(
            ExperimentSeries(
                label=name,
                x=[log2_label(n) for n in KEY_COUNTS],
                y=ys,
                unit="lookups/s",
            )
        )
    return ExperimentResult(
        experiment_id="fig10b",
        title="Throughput while varying the number of indexed keys (2^27 lookups)",
        x_label="number of indexed keys",
        series=series,
        notes="RX leads for L2-resident key sets; HT and B+ take over once the structures spill.",
        scale=scale.name,
        device=device.name,
    )


def run_fig10c(scale: str = "small", device=RTX_4090) -> ExperimentResult:
    """Figure 10c: build time for sorted and unsorted key sets."""
    scale = resolve_scale(scale)
    workload = standard_point_workload(scale, seed=73)
    indexes = make_standard_indexes()
    for index in indexes.values():
        index.build(workload.keys, workload.values)

    series = []
    for presorted in (False, True):
        suffix = "sorted inserts" if presorted else "unsorted inserts"
        for name, index in indexes.items():
            ys = []
            for num_keys in BUILD_KEY_COUNTS:
                local = scale.with_targets(target_keys=num_keys)
                build_ms, _ = simulate_build(index, local, device=device, presorted=presorted)
                ys.append(build_ms)
            series.append(
                ExperimentSeries(
                    label=f"{name} ({suffix})",
                    x=[log2_label(n) for n in BUILD_KEY_COUNTS],
                    y=ys,
                    unit="ms",
                )
            )
    return ExperimentResult(
        experiment_id="fig10c",
        title="Build time for 2^25 and 2^26 keys",
        x_label="number of indexed keys",
        series=series,
        notes="The BVH construction makes RX the most expensive index to build.",
        scale=scale.name,
        device=device.name,
    )
