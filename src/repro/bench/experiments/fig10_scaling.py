"""Figure 10 — Scaling behaviour of all indexing methods.

Three panels:

* (a) throughput while the number of point lookups grows from 2^13 to 2^27
  (2^26 indexed keys) — all methods saturate around 2^21 lookups; HT leads,
  RX stays competitive with the order-based indexes,
* (b) throughput while the number of indexed keys grows from 2^15 to 2^26
  (2^27 lookups) — RX is the fastest method for small key sets (everything is
  L2-resident and RX executes the fewest instructions) and falls behind HT
  and B+ once the structures spill out of the cache,
* (c) build time for 2^25 and 2^26 keys, for unsorted and pre-sorted inserts —
  the BVH construction makes RX the most expensive index to build.

``run_fig10d`` is a companion panel without a counterpart in the paper: the
*measured host wall-clock* of the RX accel build, single tree versus the
Morton-prefix sharded forest at one and several workers.  It reports real
seconds (not simulated milliseconds) because the worker-pool speedup lives on
the host side of the reproduction, which the GPU cost model does not cover.
"""

from __future__ import annotations

import os
import time

from repro.bench.harness import (
    ExperimentResult,
    ExperimentSeries,
    resolve_scale,
    simulate_build,
    simulate_lookups,
    throughput_lookups_per_second,
)
from repro.bench.experiments.common import (
    log2_label,
    make_standard_indexes,
    standard_point_workload,
)
from repro.gpusim.device import RTX_4090

LOOKUP_COUNTS = [2**n for n in range(13, 28, 2)]
KEY_COUNTS = [2**n for n in range(15, 27)]
BUILD_KEY_COUNTS = [2**25, 2**26]

#: Sharding of the measured forest builds in ``run_fig10d`` (64 shards).
FOREST_SHARD_BITS = 6


def run(scale: str = "small", device=RTX_4090) -> ExperimentResult:
    """Figure 10a: throughput while varying the number of lookups."""
    scale = resolve_scale(scale)
    workload = standard_point_workload(scale, seed=71)
    indexes = make_standard_indexes()
    for index in indexes.values():
        index.build(workload.keys, workload.values)

    series = []
    for name, index in indexes.items():
        ys = []
        for num_lookups in LOOKUP_COUNTS:
            local = scale.with_targets(target_lookups=num_lookups)
            cost = simulate_lookups(index, workload, local, device=device)
            ys.append(throughput_lookups_per_second(cost.time_ms, num_lookups))
        series.append(
            ExperimentSeries(
                label=name,
                x=[log2_label(m) for m in LOOKUP_COUNTS],
                y=ys,
                unit="lookups/s",
            )
        )
    return ExperimentResult(
        experiment_id="fig10a",
        title="Throughput while varying the number of point lookups (2^26 keys)",
        x_label="number of lookups",
        series=series,
        notes="Throughput saturates once enough warps are resident per SM (Table 5).",
        scale=scale.name,
        device=device.name,
    )


def run_fig10b(scale: str = "small", device=RTX_4090) -> ExperimentResult:
    """Figure 10b: throughput while varying the number of indexed keys."""
    scale = resolve_scale(scale)
    workload = standard_point_workload(scale, seed=72)
    indexes = make_standard_indexes()
    for index in indexes.values():
        index.build(workload.keys, workload.values)

    series = []
    for name, index in indexes.items():
        ys = []
        for num_keys in KEY_COUNTS:
            local = scale.with_targets(target_keys=num_keys)
            cost = simulate_lookups(index, workload, local, device=device)
            ys.append(throughput_lookups_per_second(cost.time_ms, scale.target_lookups))
        series.append(
            ExperimentSeries(
                label=name,
                x=[log2_label(n) for n in KEY_COUNTS],
                y=ys,
                unit="lookups/s",
            )
        )
    return ExperimentResult(
        experiment_id="fig10b",
        title="Throughput while varying the number of indexed keys (2^27 lookups)",
        x_label="number of indexed keys",
        series=series,
        notes="RX leads for L2-resident key sets; HT and B+ take over once the structures spill.",
        scale=scale.name,
        device=device.name,
    )


def run_fig10c(scale: str = "small", device=RTX_4090) -> ExperimentResult:
    """Figure 10c: build time for sorted and unsorted key sets."""
    scale = resolve_scale(scale)
    workload = standard_point_workload(scale, seed=73)
    indexes = make_standard_indexes()
    for index in indexes.values():
        index.build(workload.keys, workload.values)

    series = []
    for presorted in (False, True):
        suffix = "sorted inserts" if presorted else "unsorted inserts"
        for name, index in indexes.items():
            ys = []
            for num_keys in BUILD_KEY_COUNTS:
                local = scale.with_targets(target_keys=num_keys)
                build_ms, _ = simulate_build(index, local, device=device, presorted=presorted)
                ys.append(build_ms)
            series.append(
                ExperimentSeries(
                    label=f"{name} ({suffix})",
                    x=[log2_label(n) for n in BUILD_KEY_COUNTS],
                    y=ys,
                    unit="ms",
                )
            )
    return ExperimentResult(
        experiment_id="fig10c",
        title="Build time for 2^25 and 2^26 keys",
        x_label="number of indexed keys",
        series=series,
        notes="The BVH construction makes RX the most expensive index to build.",
        scale=scale.name,
        device=device.name,
    )


def run_fig10d(scale: str = "small", device=RTX_4090, workers: int | None = None) -> ExperimentResult:
    """Measured RX build wall-clock: single tree vs sharded forest.

    Builds real accels at multiples of the simulation size and times them on
    the host: the serial single-tree path, the forest with one worker (same
    work, sharded schedule), and the forest with a worker pool.  The stitched
    forest trees are verified bit-identical to the single-tree builds.
    """
    import numpy as np

    from repro.rtx.bvh import BvhBuildOptions, build_bvh, bvh_arrays_diff
    from repro.rtx.forest import build_forest
    from repro.rtx.geometry import TriangleBuffer, make_triangle_vertices

    scale = resolve_scale(scale)
    if workers is None:
        workers = min(4, os.cpu_count() or 1)
    key_counts = [scale.sim_keys * 4, scale.sim_keys * 16]
    configs = [("single tree", None, 1), ("forest (1 worker)", FOREST_SHARD_BITS, 1)]
    if workers > 1:
        configs.append((f"forest ({workers} workers)", FOREST_SHARD_BITS, workers))

    series = []
    results: dict[str, list[float]] = {label: [] for label, _, _ in configs}
    for num_keys in key_counts:
        rng = np.random.default_rng(num_keys)
        points = rng.uniform(0, 1e6, size=(num_keys, 3))
        buffer = TriangleBuffer(make_triangle_vertices(points))
        single = None
        for label, shard_bits, nworkers in configs:
            if shard_bits is None:
                start = time.perf_counter()
                single = build_bvh(buffer, BvhBuildOptions())
                results[label].append(time.perf_counter() - start)
            else:
                options = BvhBuildOptions(shard_bits=shard_bits, workers=nworkers)
                start = time.perf_counter()
                forest = build_forest(buffer, options)
                results[label].append(time.perf_counter() - start)
                diff = bvh_arrays_diff(forest.bvh, single)
                if diff is not None:
                    raise RuntimeError(
                        f"sharded build diverged from the single tree on "
                        f"{diff!r} ({label}, {num_keys} keys)"
                    )

    for label, _, _ in configs:
        series.append(
            ExperimentSeries(
                label=label,
                x=[log2_label(n) for n in key_counts],
                y=results[label],
                unit="s (measured)",
            )
        )
    return ExperimentResult(
        experiment_id="fig10d",
        title="Measured RX accel build wall-clock: single tree vs sharded forest",
        x_label="number of indexed keys",
        series=series,
        notes=(
            f"Host wall-clock of the reproduction's build path ({os.cpu_count()} "
            "CPUs visible).  The stitched forest trees are bit-identical to the "
            "single-tree builds; sharding changes only the schedule, and the "
            "worker pool parallelises the per-shard sort+emit passes."
        ),
        scale=scale.name,
        device=device.name,
    )
