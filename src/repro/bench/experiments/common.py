"""Shared helpers for the experiment modules."""

from __future__ import annotations

import numpy as np

from repro.baselines import (
    GpuBPlusTree,
    GpuIndex,
    SortedArrayIndex,
    WarpCoreHashTable,
)
from repro.bench.harness import Scale, resolve_scale
from repro.core import RXConfig, RXIndex
from repro.workloads import (
    dense_shuffled_keys,
    point_lookups,
    range_lookups,
    sparse_uniform_keys,
)
from repro.workloads.table import SecondaryIndexWorkload

#: Index classes of the paper's main comparison, in the order of its legends.
STANDARD_INDEX_CLASSES: dict[str, type[GpuIndex]] = {
    "HT": WarpCoreHashTable,
    "B+": GpuBPlusTree,
    "SA": SortedArrayIndex,
    "RX": RXIndex,
}


def make_standard_indexes(
    include: tuple[str, ...] = ("HT", "B+", "SA", "RX"),
    rx_config: RXConfig | None = None,
    key_bytes: int = 4,
) -> dict[str, GpuIndex]:
    """Instantiate the requested subset of the standard indexes."""
    indexes: dict[str, GpuIndex] = {}
    for name in include:
        if name == "RX":
            indexes[name] = RXIndex(rx_config or RXConfig.paper_default())
        elif name == "B+":
            indexes[name] = GpuBPlusTree()
        elif name == "HT":
            indexes[name] = WarpCoreHashTable(key_bytes=key_bytes)
        elif name == "SA":
            indexes[name] = SortedArrayIndex(key_bytes=key_bytes)
        else:
            raise KeyError(f"unknown index {name!r}")
    return indexes


def standard_point_workload(
    scale: str | Scale,
    key_bits: int = 32,
    dense: bool = False,
    seed: int = 0,
) -> SecondaryIndexWorkload:
    """Section 4 setup: sparse 32-bit keys + uniform all-hit point lookups."""
    scale = resolve_scale(scale)
    if dense:
        keys = dense_shuffled_keys(scale.sim_keys, seed=seed)
    else:
        keys = sparse_uniform_keys(scale.sim_keys, key_bits=key_bits, seed=seed)
    queries = point_lookups(keys, scale.sim_lookups, seed=seed + 1)
    return SecondaryIndexWorkload.from_keys(keys, point_queries=queries)


def dense_range_workload(
    scale: str | Scale,
    span: int,
    num_lookups: int | None = None,
    seed: int = 0,
) -> SecondaryIndexWorkload:
    """Section 4.9 setup: dense key set so a span of ``s`` returns ``s`` rows."""
    scale = resolve_scale(scale)
    keys = dense_shuffled_keys(scale.sim_keys, seed=seed)
    lookups = num_lookups if num_lookups is not None else max(scale.sim_lookups // 4, 16)
    lowers, uppers = range_lookups(keys, lookups, span=span, seed=seed + 1)
    return SecondaryIndexWorkload.from_keys(
        keys, range_lowers=lowers, range_uppers=uppers
    )


def log2_label(value: int) -> str:
    """Format a power of two as ``2^n`` (used for x axis labels)."""
    exponent = int(np.log2(value))
    if 2**exponent == value:
        return f"2^{exponent}"
    return str(value)
