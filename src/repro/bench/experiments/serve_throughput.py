"""Serving-layer throughput: micro-batched launches vs one query per launch.

The paper's batching argument (Section 4.2 / Figure 13) says RT-core index
probes only pay off in large launches.  This experiment makes that argument
end to end for the *serving* path: a Zipf-skewed open-loop stream of
single-query point requests is replayed through
:class:`repro.serve.service.IndexService` at several ``max_batch`` settings
— ``max_batch=1`` being the one-query-per-launch strawman — and the
measured request throughput and p95 latency are reported, with and without
the epoch-keyed result cache.

Unlike the fig/table experiments this one reports *measured wall-clock* of
the functional engine (the quantity the scheduler actually optimises), not
cost-model extrapolations; the ``device`` parameter is accepted for harness
uniformity only.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import ExperimentResult, ExperimentSeries, resolve_scale
from repro.core import RXConfig, RXIndex
from repro.gpusim.device import RTX_4090
from repro.serve import IndexService
from repro.workloads import dense_shuffled_keys, zipf_point_stream

#: coalescing windows swept by the experiment (1 = solo-launch serving)
BATCH_SIZES = [1, 16, 256, 1024]
#: offered load far above the solo-serving capacity, so the scheduler is
#: size-limited and the batching effect is isolated
ARRIVAL_RATE = 1e6
ZIPF_COEFFICIENT = 1.0


def run(
    scale: str = "small",
    device=RTX_4090,
    coefficient: float = ZIPF_COEFFICIENT,
    cache_capacity: int | None = None,
) -> ExperimentResult:
    scale = resolve_scale(scale)
    keys = dense_shuffled_keys(scale.sim_keys, seed=191)
    num_requests = scale.sim_lookups
    batch_sizes = [b for b in BATCH_SIZES if b <= num_requests]
    if cache_capacity is None:
        cache_capacity = max(num_requests // 8, 16)

    # Replays never mutate the index, so one build serves the whole sweep.
    index = RXIndex(RXConfig.paper_default())
    index.build(keys)
    throughput: dict[str, list[float]] = {}
    p95_ms: dict[str, list[float]] = {}
    for cached, label in ((0, "cache off"), (cache_capacity, "cache on")):
        for max_batch in batch_sizes:
            service = IndexService(
                index,
                max_batch=max_batch,
                max_wait=1e-3,
                cache_capacity=cached,
            )
            stream = zipf_point_stream(
                keys, num_requests, coefficient, rate=ARRIVAL_RATE, seed=192
            )
            report = service.replay(stream)
            name = f"throughput {label}"
            throughput.setdefault(name, []).append(report.service_throughput_rps)
            p95_ms.setdefault(f"p95 latency {label}", []).append(
                report.latency_percentiles()["p95"] * 1e3
            )

    series = [
        ExperimentSeries(label=name, x=batch_sizes, y=values, unit="req/s")
        for name, values in throughput.items()
    ] + [
        ExperimentSeries(label=name, x=batch_sizes, y=values, unit="ms")
        for name, values in p95_ms.items()
    ]
    solo = throughput["throughput cache off"][0]
    best = max(throughput["throughput cache off"])
    return ExperimentResult(
        experiment_id="serve",
        title=f"Serving throughput vs launch batch size (Zipf {coefficient})",
        x_label="max_batch (queries per coalesced launch)",
        series=series,
        notes=(
            "Measured wall-clock of the functional engine (no cost-model "
            f"extrapolation). Micro-batching alone buys {best / max(solo, 1e-12):.1f}x "
            "over one-query-per-launch serving; the epoch-keyed cache adds "
            "its hit rate on top under skew."
        ),
        scale=scale.name,
        device=device.name,
    )
