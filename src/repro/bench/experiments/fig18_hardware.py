"""Figure 18 / Table 8 — Three RTX generations, four GPUs.

Runs the standard point-lookup comparison on the four test systems of the
paper (RTX 2080 Ti, RTX 3090, RTX A6000, RTX 4090), for unsorted and sorted
lookups.  Performance improves across generations for every index; RX
improves the most under sorted lookups because the RT-core intersection
throughput doubles with every generation, while the bandwidth-bound unsorted
case improves roughly in line with the baselines.
"""

from __future__ import annotations

from repro.bench.harness import (
    ExperimentResult,
    ExperimentSeries,
    resolve_scale,
    simulate_lookups,
)
from repro.bench.experiments.common import make_standard_indexes, standard_point_workload
from repro.gpusim.device import DEVICE_PRESETS, RTX_4090

#: Display order of the paper's figure.
SYSTEMS = ["2080ti", "3090", "4090", "a6000"]


def run(scale: str = "small", device=RTX_4090) -> ExperimentResult:
    """``device`` is ignored: this experiment sweeps all four presets."""
    scale = resolve_scale(scale)
    workload = standard_point_workload(scale, seed=181)
    indexes = make_standard_indexes()
    for index in indexes.values():
        index.build(workload.keys, workload.values)

    series = []
    for sorted_lookups in (False, True):
        suffix = "sorted" if sorted_lookups else "unsorted"
        for name, index in indexes.items():
            ys = []
            for system in SYSTEMS:
                spec = DEVICE_PRESETS[system]
                cost = simulate_lookups(
                    index, workload, scale, device=spec, sorted_lookups=sorted_lookups
                )
                ys.append(cost.time_ms)
            series.append(
                ExperimentSeries(
                    label=f"{name} ({suffix})",
                    x=[DEVICE_PRESETS[s].name for s in SYSTEMS],
                    y=ys,
                    unit="ms",
                )
            )
    return ExperimentResult(
        experiment_id="fig18",
        title="Impact of the hardware architecture on lookup times",
        x_label="GPU",
        series=series,
        notes="RT-core throughput doubles per generation, so RX gains the most from new hardware.",
        scale=scale.name,
        device="all presets",
    )


def improvement_factors(result: ExperimentResult) -> dict[str, float]:
    """Speed-up of each series from the oldest (2080 Ti) to the newest (4090) GPU."""
    factors = {}
    for entry in result.series:
        by_name = dict(zip(entry.x, entry.y))
        old = by_name.get("RTX 2080 Ti")
        new = by_name.get("RTX 4090")
        if old and new and new > 0:
            factors[entry.label] = old / new
    return factors
