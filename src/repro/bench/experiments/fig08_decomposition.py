"""Figures 8 and 9 — How should the key bits be decomposed onto x, y and z?

Figure 8 sweeps decompositions for point lookups: pushing bits into the z
component stacks primitives along the axis the point rays travel and slows
lookups down.  Figure 9 sweeps decompositions for range lookups with 256 and
1024 qualifying entries: the more bits the x component receives, the fewer
rays a range needs and the faster it completes.
"""

from __future__ import annotations

from repro.bench.harness import (
    ExperimentResult,
    ExperimentSeries,
    resolve_scale,
    simulate_lookups,
)
from repro.core import KeyDecomposition, RXConfig, RXIndex
from repro.gpusim.device import RTX_4090
from repro.workloads import dense_shuffled_keys, point_lookups, range_lookups
from repro.workloads.table import SecondaryIndexWorkload

#: Decompositions of Figure 8 (x+y+z bit counts), left-to-right.
POINT_DECOMPOSITIONS = [
    "23+3+0", "22+4+0", "21+5+0", "20+6+0", "19+7+0", "18+8+0", "17+9+0", "16+10+0",
    "23+0+3", "22+0+4", "21+0+5", "20+0+6", "19+0+7", "18+0+8", "17+0+9", "16+0+10",
]

#: Decompositions of Figure 9.
RANGE_DECOMPOSITIONS = [
    "16+10+0", "17+9+0", "18+8+0", "19+7+0", "20+6+0", "21+5+0", "22+4+0", "23+3+0",
]


def run(scale: str = "small", device=RTX_4090) -> ExperimentResult:
    """Figure 8: point lookups under varying key decompositions."""
    scale = resolve_scale(scale)
    keys = dense_shuffled_keys(scale.sim_keys, seed=51)
    queries = point_lookups(keys, scale.sim_lookups, seed=52)
    workload = SecondaryIndexWorkload.from_keys(keys, point_queries=queries)

    ys = []
    for label in POINT_DECOMPOSITIONS:
        config = RXConfig(decomposition=KeyDecomposition.from_label(label))
        index = RXIndex(config)
        index.build(workload.keys, workload.values)
        ys.append(simulate_lookups(index, workload, scale, device=device).time_ms)

    return ExperimentResult(
        experiment_id="fig8",
        title="Point lookups under varying key decompositions",
        x_label="key decomposition (x+y+z)",
        series=[ExperimentSeries(label="RX", x=POINT_DECOMPOSITIONS, y=ys, unit="ms")],
        notes="Bits assigned to z stack primitives along the point-ray direction.",
        scale=scale.name,
        device=device.name,
    )


def run_fig9(scale: str = "small", device=RTX_4090) -> ExperimentResult:
    """Figure 9: range lookups under varying key decompositions."""
    scale = resolve_scale(scale)
    keys = dense_shuffled_keys(scale.sim_keys, seed=53)
    series = []
    for hits in (256, 1024):
        lowers, uppers = range_lookups(keys, max(scale.sim_lookups // 8, 16), span=hits, seed=54)
        workload = SecondaryIndexWorkload.from_keys(
            keys, range_lowers=lowers, range_uppers=uppers
        )
        ys = []
        for label in RANGE_DECOMPOSITIONS:
            config = RXConfig(
                decomposition=KeyDecomposition.from_label(label),
                max_rays_per_range=4096,
            )
            index = RXIndex(config)
            index.build(workload.keys, workload.values)
            ys.append(
                simulate_lookups(index, workload, scale, device=device, kind="range").time_ms
            )
        series.append(
            ExperimentSeries(label=f"{hits} hits per ray", x=RANGE_DECOMPOSITIONS, y=ys, unit="ms")
        )
    return ExperimentResult(
        experiment_id="fig9",
        title="Range lookups under varying key decompositions",
        x_label="key decomposition (x+y+z)",
        series=series,
        notes="More x bits reduce the number of rays a wide range lookup fans out into.",
        scale=scale.name,
        device=device.name,
    )
