"""Figure 7 — Which primitive type is ideal?

Three panels over the number of indexed keys, for triangles, spheres and
AABBs, each with and without BVH compaction:

* (a) cumulative point-lookup time — triangles win because their intersection
  test runs on the RT cores, whereas spheres and AABBs call a software
  intersection program,
* (b) build time — AABBs build fastest, spheres slowest; compaction is cheap,
* (c) memory footprint — uncompacted triangles are the largest, compaction
  roughly halves triangles and AABBs, compacted sphere BVHs end up largest.
"""

from __future__ import annotations

from repro.bench.harness import (
    ExperimentResult,
    ExperimentSeries,
    resolve_scale,
    simulate_build,
    simulate_lookups,
)
from repro.bench.experiments.common import log2_label
from repro.core import PrimitiveType, RXConfig, RXIndex
from repro.gpusim.device import RTX_4090
from repro.workloads import dense_shuffled_keys, point_lookups
from repro.workloads.table import SecondaryIndexWorkload

BUILD_SIZES = [2**21, 2**22, 2**23, 2**24, 2**25, 2**26]

_PRIMITIVES = {
    "triangle": PrimitiveType.TRIANGLE,
    "sphere": PrimitiveType.SPHERE,
    "aabb": PrimitiveType.AABB,
}


def run(scale: str = "small", device=RTX_4090, panel: str = "lookup") -> ExperimentResult:
    """``panel`` selects the figure panel: ``"lookup"``, ``"build"`` or ``"memory"``."""
    if panel not in ("lookup", "build", "memory"):
        raise ValueError("panel must be 'lookup', 'build' or 'memory'")
    scale = resolve_scale(scale)
    keys = dense_shuffled_keys(scale.sim_keys, seed=41)
    queries = point_lookups(keys, scale.sim_lookups, seed=42)
    workload = SecondaryIndexWorkload.from_keys(keys, point_queries=queries)

    series = []
    for prim_label, primitive in _PRIMITIVES.items():
        for compaction in (False, True):
            config = RXConfig(primitive=primitive, compaction=compaction)
            index = RXIndex(config)
            index.build(workload.keys, workload.values)
            ys = []
            for num_keys in BUILD_SIZES:
                local = scale.with_targets(target_keys=num_keys)
                if panel == "lookup":
                    ys.append(simulate_lookups(index, workload, local, device=device).time_ms)
                elif panel == "build":
                    build_ms, _ = simulate_build(index, local, device=device)
                    ys.append(build_ms)
                else:
                    ys.append(index.memory_footprint(target_keys=num_keys).final_bytes / 1e9)
            label = f"{prim_label} ({'compacted' if compaction else 'uncompacted'})"
            series.append(
                ExperimentSeries(
                    label=label,
                    x=[log2_label(n) for n in BUILD_SIZES],
                    y=ys,
                    unit="ms" if panel != "memory" else "GB",
                )
            )
    titles = {
        "lookup": "Figure 7a: lookup performance per primitive type",
        "build": "Figure 7b: build performance per primitive type",
        "memory": "Figure 7c: memory footprint per primitive type",
    }
    return ExperimentResult(
        experiment_id=f"fig7-{panel}",
        title=titles[panel],
        x_label="indexed keys",
        series=series,
        notes="Triangles use the hardware intersection test; spheres and AABBs fall back to software.",
        scale=scale.name,
        device=device.name,
    )
