"""Serving goodput under injected faults: error budget vs fault intensity.

The serving-layer experiments so far measure the happy path.  This one
sweeps a per-site fault probability across every injection seam of the
stack — launch failures (retried with backoff), launch latency spikes
(long enough to blow the request deadline), cache unavailability and
cache corruption — and replays the same deadline-annotated Zipf stream
through :class:`repro.serve.service.IndexService` at each intensity.

Reported per intensity: goodput (successful requests per second of
makespan), error rate against the request deadline, p99 latency of the
successes, and how many launch retries the fault schedule forced.  The
``0.0`` point is the clean baseline; everything is deterministic given
the injector seed (up to host wall-clock jitter in the measured flush
times).

Like ``serve_throughput`` this reports *measured wall-clock* of the
functional engine, not cost-model extrapolations; ``device`` is accepted
for harness uniformity only.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, ExperimentSeries, resolve_scale
from repro.core import RXConfig, RXIndex
from repro.gpusim.device import RTX_4090
from repro.serve import FaultInjector, FaultSpec, IndexService, RetryPolicy
from repro.workloads import dense_shuffled_keys, zipf_point_stream

#: per-site fault probabilities swept by the experiment (0 = clean run)
INTENSITIES = [0.0, 0.01, 0.05, 0.1]
ZIPF_COEFFICIENT = 1.0
#: per-request deadline; the injected latency spike equals it, so a
#: stalled window (and the backlog behind it) reliably times out
DEADLINE_SECONDS = 0.05


def run(
    scale: str = "small",
    device=RTX_4090,
    coefficient: float = ZIPF_COEFFICIENT,
    intensities: list[float] | None = None,
) -> ExperimentResult:
    scale = resolve_scale(scale)
    if intensities is None:
        intensities = INTENSITIES
    keys = dense_shuffled_keys(scale.sim_keys, seed=193)
    num_requests = scale.sim_lookups
    rate = 4.0 * num_requests  # ~0.25 s of stream time per intensity

    goodput: list[float] = []
    error_pct: list[float] = []
    p99_ms: list[float] = []
    retries: list[float] = []
    for intensity in intensities:
        injector = None
        if intensity > 0.0:
            injector = FaultInjector(
                seed=194,
                specs={
                    "launch": FaultSpec(probability=intensity),
                    "launch_latency": FaultSpec(
                        probability=intensity, latency=DEADLINE_SECONDS
                    ),
                    "cache": FaultSpec(probability=intensity),
                    "cache_corrupt": FaultSpec(probability=intensity),
                },
            )
        index = RXIndex(RXConfig.paper_default())
        index.build(keys)
        service = IndexService(
            index,
            max_batch=64,
            max_wait=2e-3,
            cache_capacity=max(num_requests // 8, 16),
            deadline=DEADLINE_SECONDS,
            retry=RetryPolicy(max_retries=3, jitter=0.0),
            fault_injector=injector,
        )
        stream = zipf_point_stream(
            keys, num_requests, coefficient, rate=rate, seed=195
        )
        report = service.replay(stream)
        goodput.append(report.goodput_rps)
        error_pct.append(100.0 * report.error_rate)
        p99_ms.append(report.latency_percentiles()["p99"] * 1e3)
        retries.append(float(service.stats()["resilience"]["retries"]))

    series = [
        ExperimentSeries(label="goodput", x=intensities, y=goodput, unit="req/s"),
        ExperimentSeries(label="error rate", x=intensities, y=error_pct, unit="%"),
        ExperimentSeries(label="p99 latency", x=intensities, y=p99_ms, unit="ms"),
        ExperimentSeries(label="launch retries", x=intensities, y=retries, unit=""),
    ]
    return ExperimentResult(
        experiment_id="chaos",
        title=f"Serving goodput vs fault intensity (Zipf {coefficient})",
        x_label="per-site fault probability",
        series=series,
        notes=(
            "Measured wall-clock of the functional engine under seeded fault "
            f"injection with a {DEADLINE_SECONDS * 1e3:.0f} ms request "
            "deadline. Launch failures are retried with exponential backoff; "
            "latency spikes equal to the deadline time out the stalled window "
            "and the backlog behind it, so goodput degrades smoothly while "
            "every served result stays bit-identical to the clean run "
            f"(clean goodput {goodput[0]:.0f} req/s, at intensity "
            f"{intensities[-1]} it is {goodput[-1]:.0f} req/s with "
            f"{error_pct[-1]:.1f}% explicit errors)."
        ),
        scale=scale.name,
        device=device.name,
    )
