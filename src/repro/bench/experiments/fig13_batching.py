"""Figure 13 — Splitting the lookups into smaller batches.

The 2^27 lookups are submitted as 2^0 .. 2^20 consecutive batches.  Up to
~2^12 batches the cumulative time stays flat; beyond that the batches become
too small to saturate the GPU and the per-launch overhead accumulates.
Sorting small batches stops paying off because the radix sort has a fixed
lower bound per invocation.
"""

from __future__ import annotations

from repro.bench.harness import (
    ExperimentResult,
    ExperimentSeries,
    resolve_scale,
    simulate_lookups,
)
from repro.bench.experiments.common import log2_label, make_standard_indexes, standard_point_workload
from repro.gpusim.device import RTX_4090

NUM_BATCHES = [2**0, 2**4, 2**8, 2**12, 2**16, 2**20]


def run(scale: str = "small", device=RTX_4090) -> ExperimentResult:
    scale = resolve_scale(scale)
    workload = standard_point_workload(scale, seed=121)
    # The point workload is duplicate-free, so RX point lookups resolve to
    # the early-exit any-hit trace mode (exactly one reported hit per ray)
    # through the default "auto" point_trace_mode.
    indexes = make_standard_indexes()
    for index in indexes.values():
        index.build(workload.keys, workload.values)

    series = []
    for sorted_lookups in (False, True):
        suffix = "sorted" if sorted_lookups else "unsorted"
        for name, index in indexes.items():
            ys = []
            for batches in NUM_BATCHES:
                cost = simulate_lookups(
                    index,
                    workload,
                    scale,
                    device=device,
                    sorted_lookups=sorted_lookups,
                    num_batches=batches,
                )
                ys.append(cost.time_ms)
            series.append(
                ExperimentSeries(
                    label=f"{name} ({suffix})",
                    x=[log2_label(b) for b in NUM_BATCHES],
                    y=ys,
                    unit="ms",
                )
            )
    return ExperimentResult(
        experiment_id="fig13",
        title="Impact of splitting the lookups into batches",
        x_label="number of batches",
        series=series,
        notes="Small batches under-utilise the GPU and pay one kernel launch each.",
        scale=scale.name,
        device=device.name,
    )
