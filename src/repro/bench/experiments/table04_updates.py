"""Table 4 — Updating the index: refit in place, rebuild, or delta-shard?

Two update workloads permute the key buffer of an RX index built with the
OptiX update flag: swapping adjacent *buffer positions* moves keys to far-away
coordinates, swapping rank-adjacent *keys* changes every affected key by ±1.
The refit time is independent of the number of swaps (the whole buffer is
passed to the update), rebuilding is ~3x more expensive, and — crucially —
refitting after many position swaps ruins the BVH and the subsequent lookups,
whereas key swaps leave lookups unaffected.

The delta-shard rows extend the table beyond the paper's refit/rebuild
dichotomy: a Morton-prefix sharded forest re-sorts and rebuilds only the
shards a (clustered) update touched, so its update cost scales with the
dirty shards while lookups keep full rebuild quality for any update shape.
"""

from __future__ import annotations

from dataclasses import replace

from repro.bench.harness import (
    ExperimentResult,
    ExperimentSeries,
    resolve_scale,
    simulate_lookups,
)
from repro.core import RXConfig, RXIndex
from repro.gpusim.costmodel import CostModel
from repro.gpusim.device import RTX_4090
from repro.workloads import (
    clustered_key_swaps,
    dense_shuffled_keys,
    point_lookups,
    swap_adjacent_keys,
    swap_adjacent_positions,
)
from repro.workloads.table import SecondaryIndexWorkload

#: Number of swapped pairs, expressed as a fraction of the key count so the
#: experiment scales with the simulation size (the paper uses 2^4 .. 2^24
#: swaps on 2^26 keys, i.e. up to a quarter of all keys).
SWAP_FRACTIONS = [2**-16, 2**-12, 2**-8, 2**-2]

#: Morton-prefix sharding of the delta-shard rows.  On the 23+23+18 key
#: decomposition only the x axis varies for a dense column, and x contributes
#: every third prefix bit, so 12 prefix bits yield 2^4 = 16 populated shards.
DELTA_SHARD_BITS = 12


def run(scale: str = "small", device=RTX_4090) -> ExperimentResult:
    scale = resolve_scale(scale)
    cost_model = CostModel(device)
    keys = dense_shuffled_keys(scale.sim_keys, seed=61)
    queries = point_lookups(keys, scale.sim_lookups, seed=62)

    series = []
    rebuild_lookup_ms = None
    for workload_name, swapper in (
        ("swap adjacent positions", swap_adjacent_positions),
        ("swap adjacent keys", swap_adjacent_keys),
    ):
        update_times, lookup_times, totals, xs = [], [], [], []
        for fraction in SWAP_FRACTIONS:
            num_swaps = max(int(scale.sim_keys * fraction), 1)
            config = RXConfig.paper_default().with_updates_enabled()
            index = RXIndex(config)
            workload = SecondaryIndexWorkload.from_keys(keys, point_queries=queries)
            index.build(workload.keys, workload.values)

            updated_keys = swapper(keys, num_swaps, seed=63)
            outcome = index.update(updated_keys)
            # Refit work is linear in the number of primitives, so the
            # sim-scale profile extrapolates to the target key count (the
            # refit is still a single launch, so launches do not scale).
            key_factor = scale.target_keys / scale.sim_keys
            update_ms = 0.0
            for profile in outcome.profiles:
                scaled = replace(profile.scaled(key_factor), kernel_launches=profile.kernel_launches)
                update_ms += cost_model.kernel_cost(scaled).time_ms

            updated_workload = SecondaryIndexWorkload(
                keys=updated_keys, values=workload.values, point_queries=queries
            )
            lookup_ms = simulate_lookups(index, updated_workload, scale, device=device).time_ms
            xs.append(f"{fraction:.6f}·n")
            update_times.append(update_ms)
            lookup_times.append(lookup_ms)
            totals.append(update_ms + lookup_ms)

        series.append(ExperimentSeries(label=f"{workload_name}: update", x=xs, y=update_times))
        series.append(ExperimentSeries(label=f"{workload_name}: lookups", x=xs, y=lookup_times))
        series.append(ExperimentSeries(label=f"{workload_name}: total", x=xs, y=totals))

    # Delta-shard policy: the same ±1 key swaps, but clustered into one rank
    # window so only the shards covering it get dirty.  The forest re-sorts
    # and rebuilds just those shards (lookups keep rebuild quality), so the
    # update cost scales with the dirty-shard count instead of the key count.
    update_times, lookup_times, totals, dirty_shards, xs = [], [], [], [], []
    key_factor = scale.target_keys / scale.sim_keys
    for fraction in SWAP_FRACTIONS:
        num_swaps = max(int(scale.sim_keys * fraction), 1)
        config = RXConfig.paper_default().with_delta_updates(shard_bits=DELTA_SHARD_BITS)
        index = RXIndex(config)
        workload = SecondaryIndexWorkload.from_keys(keys, point_queries=queries)
        index.build(workload.keys, workload.values)

        updated_keys = clustered_key_swaps(keys, num_swaps, seed=64)
        outcome = index.update(updated_keys)
        update_ms = 0.0
        for profile in outcome.profiles:
            scaled = replace(profile.scaled(key_factor), kernel_launches=profile.kernel_launches)
            update_ms += cost_model.kernel_cost(scaled).time_ms

        updated_workload = SecondaryIndexWorkload(
            keys=updated_keys, values=workload.values, point_queries=queries
        )
        lookup_ms = simulate_lookups(index, updated_workload, scale, device=device).time_ms
        xs.append(f"{fraction:.6f}·n")
        update_times.append(update_ms)
        lookup_times.append(lookup_ms)
        totals.append(update_ms + lookup_ms)
        dirty_shards.append(outcome.stats["dirty_shards"])

    extra = {"dirty_shards": dirty_shards, "shard_bits": DELTA_SHARD_BITS}
    series.append(
        ExperimentSeries(
            label="clustered key swaps (delta-shard): update", x=xs, y=update_times, extra=extra
        )
    )
    series.append(
        ExperimentSeries(label="clustered key swaps (delta-shard): lookups", x=xs, y=lookup_times)
    )
    series.append(
        ExperimentSeries(label="clustered key swaps (delta-shard): total", x=xs, y=totals)
    )

    # Reference column: rebuilding from scratch instead of refitting.
    rebuild_config = RXConfig.paper_default()
    rebuild_index = RXIndex(rebuild_config)
    workload = SecondaryIndexWorkload.from_keys(keys, point_queries=queries)
    rebuild_index.build(workload.keys, workload.values)
    rebuild_ms = sum(
        cost_model.kernel_cost(p).time_ms
        for p in rebuild_index.build_profiles(target_keys=scale.target_keys)
    )
    rebuild_lookup_ms = simulate_lookups(rebuild_index, workload, scale, device=device).time_ms
    series.append(
        ExperimentSeries(
            label="full rebuild (update / lookups / total)",
            x=["rebuild"],
            y=[rebuild_ms],
            extra={"lookups_ms": rebuild_lookup_ms, "total_ms": rebuild_ms + rebuild_lookup_ms},
        )
    )

    return ExperimentResult(
        experiment_id="table4",
        title="Update and lookup time when refitting vs rebuilding",
        x_label="swapped pairs",
        series=series,
        notes=(
            "Refit time is independent of the number of swaps; refitting after many "
            "position swaps inflates the bounding volumes and ruins lookups, so RX "
            "should prefer full rebuilds.  The delta-shard rows rebuild only the "
            "Morton-prefix shards a clustered update dirtied: update cost scales "
            "with the dirty shards, lookups keep full rebuild quality."
        ),
        scale=scale.name,
        device=device.name,
    )
