"""Figure 3 — How can we express keys? (Naive vs Extended vs 3D Mode).

Figure 3a sweeps the number of indexed keys (a dense key set) and reports the
cumulative point-lookup time per key-conversion mode; Naive Mode cannot go
beyond 2^23 keys (marked N/A), and Extended Mode degrades sharply once the
key-range ratio approaches 2^26.  Figure 3b repeats the sweep for Extended
and 3D Mode with key strides of 1, 2 and 4, which shifts the degradation
onset to correspondingly smaller key counts.

The functional simulation uses a strided subsample of the target key range so
the *value range* (the quantity that matters for the pathology) matches the
paper's x axis exactly while the primitive count stays tractable.
"""

from __future__ import annotations

from repro.bench.harness import (
    ExperimentResult,
    ExperimentSeries,
    resolve_scale,
    simulate_lookups,
)
from repro.bench.experiments.common import log2_label
from repro.core import KeyMode, PointRayMode, RangeRayMode, RXConfig, RXIndex
from repro.gpusim.device import RTX_4090
from repro.rtx.float32 import NAIVE_MODE_KEY_LIMIT
from repro.workloads import point_lookups, strided_keys
from repro.workloads.table import SecondaryIndexWorkload

#: Build sizes of Figure 3 (number of indexed keys).  The paper sweeps up to
#: 2^26; we add one more doubling because the Extended-Mode degradation onset
#: of our software LBVH sits at a slightly larger key-range ratio than the
#: proprietary OptiX builder's (see EXPERIMENTS.md).
BUILD_SIZES = [2**21, 2**22, 2**23, 2**24, 2**25, 2**26, 2**27]

_MODE_CONFIGS = {
    "naive": lambda: RXConfig(key_mode=KeyMode.NAIVE),
    "ext": lambda: RXConfig(
        key_mode=KeyMode.EXTENDED,
        point_ray_mode=PointRayMode.PERPENDICULAR,
        range_ray_mode=RangeRayMode.PARALLEL_FROM_ZERO,
    ),
    "3d": lambda: RXConfig(key_mode=KeyMode.THREE_D),
}


def _lookup_time_for(
    mode: str, num_keys: int, stride: int, scale, device
) -> float | None:
    """Simulated cumulative lookup time for one (mode, build size, stride) cell."""
    total_span = num_keys * stride
    if mode == "naive" and total_span > NAIVE_MODE_KEY_LIMIT:
        return None
    sim_keys = min(scale.sim_keys, num_keys)
    sim_stride = max(total_span // sim_keys, 1)
    keys = strided_keys(sim_keys, stride=sim_stride, seed=17)
    queries = point_lookups(keys, scale.sim_lookups, seed=18)
    workload = SecondaryIndexWorkload.from_keys(keys, point_queries=queries)

    index = RXIndex(_MODE_CONFIGS[mode]())
    index.build(workload.keys, workload.values)
    local_scale = scale.with_targets(target_keys=num_keys)
    cost = simulate_lookups(index, workload, local_scale, device=device)
    return cost.time_ms


def run(scale: str = "small", device=RTX_4090, strides: tuple[int, ...] = (1,)) -> ExperimentResult:
    """Figure 3a (``strides=(1,)``) or Figure 3b (``strides=(1, 2, 4)``)."""
    scale = resolve_scale(scale)
    series = []
    modes = ("naive", "ext", "3d") if strides == (1,) else ("ext", "3d")
    for mode in modes:
        for stride in strides:
            label = mode if len(strides) == 1 else f"{mode} stride {stride}"
            ys = []
            for num_keys in BUILD_SIZES:
                ys.append(_lookup_time_for(mode, num_keys, stride, scale, device))
            series.append(
                ExperimentSeries(
                    label=label,
                    x=[log2_label(n) for n in BUILD_SIZES],
                    y=ys,
                    unit="ms",
                )
            )
    figure = "fig3a" if strides == (1,) else "fig3b"
    return ExperimentResult(
        experiment_id=figure,
        title="Effects of key representations on lookup time",
        x_label="indexed keys",
        series=series,
        notes=(
            "N/A entries: Naive Mode only supports 2^23 distinct keys. "
            "Extended Mode degrades once the key-range ratio approaches 2^26."
        ),
        scale=scale.name,
        device=device.name,
    )


def run_fig3b(scale: str = "small", device=RTX_4090) -> ExperimentResult:
    """Convenience wrapper for the stride variant (Figure 3b)."""
    return run(scale=scale, device=device, strides=(1, 2, 4))
