"""One module per table/figure of the paper's evaluation.

========================  =====================================================
module                    paper result
========================  =====================================================
``fig03_key_modes``       Fig 3a/b — key representations and key stride
``fig06_ray_modes``       Fig 6 — parallel vs perpendicular point rays
``table03_range_origin``  Table 3 — offset vs from-zero range rays
``fig07_primitives``      Fig 7a/b/c — triangle vs sphere vs AABB primitives
``fig08_decomposition``   Fig 8/9 — key decompositions (point + range lookups)
``table04_updates``       Table 4 — refit vs rebuild updates
``fig10_scaling``         Fig 10a/b/c — lookup/build scaling of all indexes
``table05_warps``         Table 5 — warp occupancy and bandwidth utilisation
``table06_memory``        Table 6 — memory footprints
``fig11_multiplicity``    Fig 11 — duplicate keys
``fig12_sorting``         Fig 12 — sorted inserts / sorted lookups
``fig13_batching``        Fig 13 — lookup batch sizes
``fig14_hitrate``         Fig 14 — hit rate sweep
``fig15_keysize``         Fig 15a/b — 32-bit vs 64-bit keys
``fig16_skew``            Fig 16 — Zipf-skewed lookups
``table07_skew_profile``  Table 7 — profiling under skew
``fig17_range``           Fig 17 — range lookups + NNLS cost split
``fig18_hardware``        Fig 18 / Table 8 — GPU generations
``ablation_builders``     extra — software-BVH builder / leaf size ablation
``serve_throughput``      extra — serving layer: micro-batched vs solo launches
``chaos_serve``           extra — serving goodput under injected faults
``paging_scan``           extra — keyset-cursor resume vs prefix rescan
``restart``               extra — cold snapshot load vs full rebuild
========================  =====================================================
"""

from repro.bench.experiments import (  # noqa: F401
    ablation_builders,
    chaos_serve,
    fig03_key_modes,
    fig06_ray_modes,
    fig07_primitives,
    fig08_decomposition,
    fig10_scaling,
    fig11_multiplicity,
    fig12_sorting,
    fig13_batching,
    fig14_hitrate,
    fig15_keysize,
    fig16_skew,
    fig17_range,
    fig18_hardware,
    paging_scan,
    restart,
    serve_throughput,
    table03_range_origin,
    table04_updates,
    table05_warps,
    table06_memory,
    table07_skew_profile,
)

ALL_EXPERIMENTS = {
    "fig03": fig03_key_modes,
    "fig06": fig06_ray_modes,
    "table03": table03_range_origin,
    "fig07": fig07_primitives,
    "fig08": fig08_decomposition,
    "table04": table04_updates,
    "fig10": fig10_scaling,
    "table05": table05_warps,
    "table06": table06_memory,
    "fig11": fig11_multiplicity,
    "fig12": fig12_sorting,
    "fig13": fig13_batching,
    "fig14": fig14_hitrate,
    "fig15": fig15_keysize,
    "fig16": fig16_skew,
    "table07": table07_skew_profile,
    "fig17": fig17_range,
    "fig18": fig18_hardware,
    "ablation": ablation_builders,
    "serve": serve_throughput,
    "chaos": chaos_serve,
    "paging": paging_scan,
    "restart": restart,
}

__all__ = ["ALL_EXPERIMENTS"]
