"""Table 5 — Warp occupancy and memory-bandwidth utilisation vs batch size.

For growing lookup batches the paper reports the average number of active
warps per SM and the fraction of the peak memory bandwidth RX achieves; both
saturate together around 2^21 lookups, which explains where the throughput of
Figure 10a flattens.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, ExperimentSeries, resolve_scale, simulate_lookups
from repro.bench.experiments.common import log2_label, standard_point_workload
from repro.core import RXIndex
from repro.gpusim.device import RTX_4090
from repro.gpusim.kernel import OccupancyModel

LOOKUP_COUNTS = [2**13, 2**15, 2**17, 2**19, 2**21]


def run(scale: str = "small", device=RTX_4090) -> ExperimentResult:
    scale = resolve_scale(scale)
    workload = standard_point_workload(scale, seed=81)
    index = RXIndex()
    index.build(workload.keys, workload.values)
    occupancy = OccupancyModel(device)

    warps, bandwidth = [], []
    for num_lookups in LOOKUP_COUNTS:
        local = scale.with_targets(target_lookups=num_lookups)
        cost = simulate_lookups(index, workload, local, device=device)
        warps.append(cost.lookup_cost.active_warps_per_sm)
        bandwidth.append(occupancy.bandwidth_fraction(num_lookups) * 100.0)

    xs = [log2_label(m) for m in LOOKUP_COUNTS]
    return ExperimentResult(
        experiment_id="table5",
        title="Active warps per SM and memory-bandwidth utilisation (RX)",
        x_label="number of lookups",
        series=[
            ExperimentSeries(label="active warps per SM", x=xs, y=warps, unit="warps"),
            ExperimentSeries(label="memory BW", x=xs, y=bandwidth, unit="% of peak"),
        ],
        notes="Both quantities saturate together around 2^21 lookups per batch.",
        scale=scale.name,
        device=device.name,
    )
