"""Figure 16 — Zipf-skewed point lookups on uniformly distributed keys.

Lookup keys follow a Zipf distribution whose coefficient grows from 0.0
(uniform) to 2.0.  Skew improves every index thanks to cache locality, and it
benefits RX the most: once the hot keys fit into the L2, all methods become
compute-bound and RX wins because the BVH traversal runs on the RT cores
instead of executing instructions.
"""

from __future__ import annotations

from repro.bench.harness import (
    ExperimentResult,
    ExperimentSeries,
    resolve_scale,
    simulate_lookups,
    zipf_locality,
)
from repro.bench.experiments.common import make_standard_indexes
from repro.gpusim.device import RTX_4090
from repro.workloads import sparse_uniform_keys, zipf_point_lookups
from repro.workloads.table import SecondaryIndexWorkload

ZIPF_COEFFICIENTS = [0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0]


def run(scale: str = "small", device=RTX_4090, sorted_lookups: bool = False) -> ExperimentResult:
    scale = resolve_scale(scale)
    keys = sparse_uniform_keys(scale.sim_keys, key_bits=32, seed=151)

    results: dict[str, list[float]] = {}
    for coefficient in ZIPF_COEFFICIENTS:
        queries = zipf_point_lookups(keys, scale.sim_lookups, coefficient, seed=152)
        workload = SecondaryIndexWorkload.from_keys(keys, point_queries=queries)
        for name, index in make_standard_indexes().items():
            index.build(workload.keys, workload.values)
            cost = simulate_lookups(
                index,
                workload,
                scale,
                device=device,
                sorted_lookups=sorted_lookups,
                locality=max(zipf_locality(coefficient), 0.85 if sorted_lookups else 0.0),
            )
            results.setdefault(name, []).append(cost.lookup_time_ms)

    series = [
        ExperimentSeries(label=name, x=ZIPF_COEFFICIENTS, y=values, unit="ms")
        for name, values in results.items()
    ]
    suffix = "sorted" if sorted_lookups else "unsorted"
    return ExperimentResult(
        experiment_id="fig16",
        title=f"Varying the skew of point lookups ({suffix})",
        x_label="Zipf coefficient",
        series=series,
        notes="High skew makes all methods compute-bound, where RX's hardware traversal wins.",
        scale=scale.name,
        device=device.name,
    )
