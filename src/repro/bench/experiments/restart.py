"""Restart — cold snapshot load vs full rebuild (robustness companion).

A server that restarts has two ways back to its first answered query:
**load** the last committed epoch from the crash-safe store
(:mod:`repro.persist` — checksum-verified, optionally memory-mapped
zero-copy), or **rebuild** the accel from the raw key column, paying the
full Morton/LBVH pipeline again.  This experiment sweeps the key count and
wall-clocks save, cold load (both the mmap and the heap path) and rebuild,
verifying before every timed point that the loaded index is bit-identical
to the one that was saved — same BVH arrays, same point-lookup answers.
Unlike the figure experiments this measures host wall-clock, not the GPU
cost model: persistence cost lives on the host side of the serving stack.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.bench.harness import ExperimentResult, ExperimentSeries, resolve_scale
from repro.core.config import RXConfig
from repro.core.rx_index import RXIndex
from repro.gpusim.device import RTX_4090
from repro.rtx.bvh import bvh_arrays_diff
from repro.workloads import dense_shuffled_keys

#: Doublings of the scale's base key count swept per run.
SWEEP_STEPS = 4


def _wall_ms(fn) -> float:
    start = time.perf_counter()
    fn()
    return (time.perf_counter() - start) * 1e3


def run(scale: str = "small", device=RTX_4090) -> ExperimentResult:
    scale = resolve_scale(scale)
    base_log2 = int(np.log2(scale.sim_keys))
    sweep = [base_log2 + step for step in range(SWEEP_STEPS)]

    save_ms: list[float] = []
    load_mmap_ms: list[float] = []
    load_heap_ms: list[float] = []
    rebuild_ms: list[float] = []
    bytes_on_disk: list[int] = []

    for log2_keys in sweep:
        keys = dense_shuffled_keys(2**log2_keys, seed=log2_keys + 91)
        rng = np.random.default_rng(log2_keys)
        queries = rng.choice(keys, size=64)

        index = RXIndex(RXConfig.paper_default())
        index.build(keys)
        golden = index.point_lookup(queries)

        snapdir = Path(tempfile.mkdtemp(prefix="rx-restart-exp-"))
        try:
            save_info = {}
            save_ms.append(_wall_ms(lambda: save_info.update(index.save(snapdir))))
            bytes_on_disk.append(save_info["bytes_on_disk"])

            for mmap, bucket in ((True, load_mmap_ms), (False, load_heap_ms)):
                loaded = RXIndex.load(snapdir, mmap=mmap)
                if bvh_arrays_diff(index.accel.bvh, loaded.accel.bvh) is not None:
                    raise AssertionError(
                        f"loaded accel (mmap={mmap}) diverged at 2^{log2_keys} keys"
                    )
                replay = loaded.point_lookup(queries)
                if not np.array_equal(golden.result_rows, replay.result_rows):
                    raise AssertionError(
                        f"loaded index (mmap={mmap}) answered differently at "
                        f"2^{log2_keys} keys"
                    )
                bucket.append(
                    _wall_ms(
                        lambda m=mmap: RXIndex.load(snapdir, mmap=m).point_lookup(
                            queries
                        )
                    )
                )
            def rebuild_and_query():
                fresh = RXIndex(RXConfig.paper_default())
                fresh.build(keys)
                fresh.point_lookup(queries)

            rebuild_ms.append(_wall_ms(rebuild_and_query))
        finally:
            shutil.rmtree(snapdir, ignore_errors=True)

    series = [
        ExperimentSeries(label="full rebuild", x=sweep, y=rebuild_ms, unit="ms"),
        ExperimentSeries(
            label="cold load (mmap)",
            x=sweep,
            y=load_mmap_ms,
            unit="ms",
            extra={"bytes_on_disk": bytes_on_disk},
        ),
        ExperimentSeries(label="cold load (heap)", x=sweep, y=load_heap_ms, unit="ms"),
        ExperimentSeries(label="save", x=sweep, y=save_ms, unit="ms"),
    ]
    ratio = rebuild_ms[-1] / load_mmap_ms[-1] if load_mmap_ms[-1] else float("inf")
    notes = (
        "Cold restart to first answered 64-query batch, host wall-clock.  At "
        f"2^{sweep[-1]} keys the rebuild costs {ratio:.1f}x the "
        "checksum-verified mmap load.  The load carries a fixed per-restart "
        "overhead (manifest parse, per-segment checksum verify), so at "
        "simulation scales the rebuild can still win; the rebuild side grows "
        "with the full Morton/LBVH pipeline while the load side is I/O-bound, "
        "and by the 2^20-key bench gate (make bench-restart) the load is "
        "required to lead by 1.5x.  Every timed point is gated on "
        "bit-identical BVH arrays and lookup answers between the saved and "
        "the loaded index."
    )
    return ExperimentResult(
        experiment_id="restart",
        title="Warm restart: cold snapshot load vs full rebuild",
        x_label="log2 keys",
        series=series,
        notes=notes,
        scale=scale.name,
        device=device.name,
    )
