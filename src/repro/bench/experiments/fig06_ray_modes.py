"""Figure 6 — Should point lookups use parallel or perpendicular rays?

For each key mode the paper compares point lookups expressed as parallel rays
that start at the scene origin against perpendicular rays fired straight at
the key's primitive.  Perpendicular rays win consistently because a parallel
ray geometrically overlaps the bounding volumes of *every* key below the
searched one and must rely on the intersection interval to reject them.
"""

from __future__ import annotations

from repro.bench.harness import (
    ExperimentResult,
    ExperimentSeries,
    resolve_scale,
    simulate_lookups,
)
from repro.bench.experiments.common import log2_label
from repro.core import KeyMode, PointRayMode, RangeRayMode, RXConfig, RXIndex
from repro.gpusim.device import RTX_4090
from repro.rtx.float32 import NAIVE_MODE_KEY_LIMIT
from repro.workloads import dense_shuffled_keys, point_lookups
from repro.workloads.table import SecondaryIndexWorkload

#: Build sizes of Figure 6.
BUILD_SIZES = [2**21, 2**22, 2**23, 2**24]

_RAY_MODES = {
    "parallel from zero": PointRayMode.PARALLEL_FROM_ZERO,
    "perpendicular": PointRayMode.PERPENDICULAR,
}


def _config(mode: str, ray_mode: PointRayMode) -> RXConfig:
    key_mode = {"naive": KeyMode.NAIVE, "ext": KeyMode.EXTENDED, "3d": KeyMode.THREE_D}[mode]
    range_mode = (
        RangeRayMode.PARALLEL_FROM_ZERO
        if key_mode is KeyMode.EXTENDED
        else RangeRayMode.PARALLEL_FROM_OFFSET
    )
    # Point lookups ride the early-exit any-hit traversal: the workload's
    # keys are duplicate-free, so the default "auto" point_trace_mode
    # resolves to any_hit — terminating each ray at its first hit is exactly
    # the hardware behaviour the paper measures for from-zero rays (and
    # "auto" falls back safely if the workload ever gains duplicates).
    return RXConfig(
        key_mode=key_mode, point_ray_mode=ray_mode, range_ray_mode=range_mode
    )


def run(scale: str = "small", device=RTX_4090) -> ExperimentResult:
    scale = resolve_scale(scale)
    keys = dense_shuffled_keys(scale.sim_keys, seed=23)
    queries = point_lookups(keys, scale.sim_lookups, seed=24)
    workload = SecondaryIndexWorkload.from_keys(keys, point_queries=queries)

    series = []
    for mode in ("naive", "ext", "3d"):
        for ray_label, ray_mode in _RAY_MODES.items():
            index = RXIndex(_config(mode, ray_mode))
            index.build(workload.keys, workload.values)
            ys = []
            for num_keys in BUILD_SIZES:
                if mode == "naive" and num_keys > NAIVE_MODE_KEY_LIMIT:
                    ys.append(None)
                    continue
                cost = simulate_lookups(
                    index, workload, scale.with_targets(target_keys=num_keys), device=device
                )
                ys.append(cost.time_ms)
            series.append(
                ExperimentSeries(
                    label=f"{mode} / {ray_label}",
                    x=[log2_label(n) for n in BUILD_SIZES],
                    y=ys,
                    unit="ms",
                )
            )
    return ExperimentResult(
        experiment_id="fig6",
        title="Lookup time for parallel and perpendicular point rays",
        x_label="indexed keys",
        series=series,
        notes="Perpendicular rays avoid traversing the bounding volumes of all preceding keys.",
        scale=scale.name,
        device=device.name,
    )
