"""Table 3 — Where should range-lookup rays originate?

Compares the two range-ray options of Section 3.3 in 3D Mode while varying
the number of qualifying entries per range: rays whose origin is offset to
just before the range's lower bound, and rays that always start at zero and
carve the range out with ``tmin``/``tmax``.  Offsetting the origin wins in
every case because the from-zero ray still traverses the bounding volumes of
every key below the range.
"""

from __future__ import annotations

from repro.bench.harness import (
    ExperimentResult,
    ExperimentSeries,
    resolve_scale,
    simulate_lookups,
)
from repro.bench.experiments.common import dense_range_workload
from repro.core import RangeRayMode, RXConfig, RXIndex
from repro.gpusim.device import RTX_4090

#: Number of qualifying entries per range lookup, as in Table 3.
HIT_COUNTS = [1, 4, 16, 64, 256]


def run(scale: str = "small", device=RTX_4090) -> ExperimentResult:
    scale = resolve_scale(scale)
    rows: dict[str, list[float]] = {"parallel from offset": [], "parallel from zero": []}

    for hits in HIT_COUNTS:
        workload = dense_range_workload(scale, span=hits, seed=31)
        for label, mode in (
            ("parallel from offset", RangeRayMode.PARALLEL_FROM_OFFSET),
            ("parallel from zero", RangeRayMode.PARALLEL_FROM_ZERO),
        ):
            index = RXIndex(RXConfig(range_ray_mode=mode))
            index.build(workload.keys, workload.values)
            cost = simulate_lookups(index, workload, scale, device=device, kind="range")
            rows[label].append(cost.time_ms)

    series = [
        ExperimentSeries(label=label, x=HIT_COUNTS, y=values, unit="ms")
        for label, values in rows.items()
    ]
    return ExperimentResult(
        experiment_id="table3",
        title="Range-lookup time for the two ray-origin choices (3D Mode)",
        x_label="qualifying entries per lookup",
        series=series,
        notes="Offsetting the ray origin to the lower bound avoids traversing all preceding keys.",
        scale=scale.name,
        device=device.name,
    )
