"""Paging — keyset-cursor resume vs prefix rescan (fig 17 companion).

A client draining a big ordered range scan page by page has two options per
page: **resume** from a keyset cursor (the page becomes a fresh range lookup
whose lower bound starts just past the cursor's ``(key, rowID)``), or
**rescan** the prefix (re-run the ordered lookup from the range's start with
``limit = consumed + k`` and discard everything before the page — the OFFSET
pattern).  The resume pays O(page): its cost is flat in the page index.  The
rescan pays O(prefix): its cost grows linearly with how deep into the scan
the client already is.  This experiment sweeps the page index and reports
both strategies for every order-preserving index (RX via ``ordered_k``
traces, B+/SA via capped leaf scans), verifying each resumed page
bit-for-bit against the reference order before costing it.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import ExperimentResult, ExperimentSeries, resolve_scale
from repro.bench.experiments.common import dense_range_workload, make_standard_indexes
from repro.core.cursor import encode_cursor
from repro.gpusim.costmodel import CostModel
from repro.gpusim.device import RTX_4090

#: Rows per page (the paper-style "LIMIT 16" with a cursor).
PAGE_SIZE = 16

#: Page indexes swept (0 = first page, no cursor; the rest resume).
PAGE_INDEXES = [0, 1, 4, 16, 48]

#: Qualifying rows per scan — enough that the deepest page still exists.
SCAN_SPAN = (PAGE_INDEXES[-1] + 2) * PAGE_SIZE


def _reference_page_order(keys: np.ndarray, lower: int, upper: int) -> np.ndarray:
    """RowIDs of ``[lower, upper]`` in ``(key, rowID)`` order (the golden scan)."""
    sel = (keys >= np.uint64(lower)) & (keys <= np.uint64(upper))
    rows = np.nonzero(sel)[0].astype(np.uint64)
    return rows[np.lexsort((rows, keys[sel]))]


def run(
    scale: str = "small", device=RTX_4090, page_size: int = PAGE_SIZE
) -> ExperimentResult:
    scale = resolve_scale(scale)
    cost_model = CostModel(device)
    workload = dense_range_workload(scale, span=SCAN_SPAN, num_lookups=4, seed=178)
    lower = int(workload.range_lowers[0])
    upper = int(workload.range_uppers[0])
    golden = _reference_page_order(workload.keys, lower, upper)

    results: dict[str, list[float]] = {}
    indexes = make_standard_indexes(include=("B+", "SA", "RX"))
    for name, index in indexes.items():
        index.build(workload.keys, workload.values)

    lowers = np.array([lower], dtype=np.uint64)
    uppers = np.array([upper], dtype=np.uint64)
    for page in PAGE_INDEXES:
        consumed = page * page_size
        expected = golden[consumed : consumed + page_size]
        # The cursor a client would hold after draining `page` pages.
        cursor = None
        if page:
            last_row = int(golden[consumed - 1])
            cursor = encode_cursor(int(workload.keys[last_row]), last_row)
        for name, index in indexes.items():
            run_page, _ = index.range_lookup(
                lowers, uppers, limit=page_size, order="key", cursor=cursor
            )
            if not np.array_equal(run_page.row_ids, expected):
                raise AssertionError(
                    f"{name} resumed page {page} does not match the reference order"
                )
            profile = index.lookup_profile(
                run_page,
                target_keys=scale.target_keys,
                target_lookups=scale.target_lookups,
            )
            results.setdefault(f"{name} (cursor resume)", []).append(
                cost_model.kernel_cost(profile).time_ms
            )
            # OFFSET pattern: rescan the prefix and keep only the last page.
            run_prefix, _ = index.range_lookup(
                lowers, uppers, limit=consumed + page_size, order="key"
            )
            if not np.array_equal(
                run_prefix.row_ids[consumed:], expected
            ):
                raise AssertionError(
                    f"{name} prefix rescan of page {page} does not match"
                )
            profile = index.lookup_profile(
                run_prefix,
                target_keys=scale.target_keys,
                target_lookups=scale.target_lookups,
            )
            results.setdefault(f"{name} (prefix rescan)", []).append(
                cost_model.kernel_cost(profile).time_ms
            )

    series = [
        ExperimentSeries(label=name, x=PAGE_INDEXES, y=values, unit="ms per page")
        for name, values in results.items()
    ]
    resume = results["RX (cursor resume)"]
    rescan = results["RX (prefix rescan)"]
    speedup = rescan[-1] / resume[-1] if resume[-1] else float("inf")
    notes = (
        f"Pages of {page_size} rows over a {SCAN_SPAN}-row scan.  Cursor "
        "resume costs O(page) — flat across the sweep — while the OFFSET "
        "prefix rescan costs O(prefix) and grows with the page index: at "
        f"page {PAGE_INDEXES[-1]} the rescan is {speedup:.1f}x the resumed "
        "page for RX.  Every page is verified bit-for-bit against the "
        "reference (key, rowID) order before costing."
    )
    return ExperimentResult(
        experiment_id="paging",
        title="Ordered-scan pagination: cursor resume vs prefix rescan",
        x_label="page index within the scan",
        series=series,
        notes=notes,
        scale=scale.name,
        device=device.name,
    )
