"""Table 7 — Profiling RX and B+ under skewed lookups.

For increasing Zipf coefficients the paper reports the L2 hit rate, the GPU
main-memory traffic and the executed instructions of RX and B+ (unordered
lookups).  The instruction counts stay constant while the memory traffic
collapses under skew, which is why the bottleneck shifts from bandwidth to
compute — and why RX, with roughly an order of magnitude fewer instructions,
overtakes B+ once the cache absorbs the traffic.
"""

from __future__ import annotations

from repro.bench.harness import (
    ExperimentResult,
    ExperimentSeries,
    resolve_scale,
    simulate_lookups,
    zipf_locality,
)
from repro.bench.experiments.common import make_standard_indexes
from repro.gpusim.device import RTX_4090
from repro.workloads import sparse_uniform_keys, zipf_point_lookups
from repro.workloads.table import SecondaryIndexWorkload

ZIPF_COEFFICIENTS = [0.0, 0.5, 1.0, 1.5]


def run(scale: str = "small", device=RTX_4090) -> ExperimentResult:
    scale = resolve_scale(scale)
    keys = sparse_uniform_keys(scale.sim_keys, key_bits=32, seed=161)

    hit_rates: dict[str, list[float]] = {"RX": [], "B+": []}
    memory_read: dict[str, list[float]] = {"RX": [], "B+": []}
    instructions: dict[str, list[float]] = {"RX": [], "B+": []}

    for coefficient in ZIPF_COEFFICIENTS:
        queries = zipf_point_lookups(keys, scale.sim_lookups, coefficient, seed=162)
        workload = SecondaryIndexWorkload.from_keys(keys, point_queries=queries)
        for name, index in make_standard_indexes(include=("B+", "RX")).items():
            index.build(workload.keys, workload.values)
            cost = simulate_lookups(
                index, workload, scale, device=device, locality=zipf_locality(coefficient)
            )
            hit_rates[name].append(cost.lookup_cost.l2_hit_rate * 100.0)
            memory_read[name].append(cost.lookup_cost.dram_bytes / 1e9)
            run_obj = cost.run
            profile = index.lookup_profile(
                run_obj, target_keys=scale.target_keys, target_lookups=scale.target_lookups
            )
            instructions[name].append(profile.instructions)

    series = []
    for name in ("RX", "B+"):
        series.append(
            ExperimentSeries(label=f"{name} L2 hit rate", x=ZIPF_COEFFICIENTS, y=hit_rates[name], unit="%")
        )
        series.append(
            ExperimentSeries(label=f"{name} memory read", x=ZIPF_COEFFICIENTS, y=memory_read[name], unit="GB")
        )
        series.append(
            ExperimentSeries(label=f"{name} instructions", x=ZIPF_COEFFICIENTS, y=instructions[name], unit="#")
        )
    return ExperimentResult(
        experiment_id="table7",
        title="Impact of skew on data transfers and instruction counts (RX vs B+)",
        x_label="Zipf coefficient",
        series=series,
        notes="Instructions stay constant; memory traffic collapses under skew, shifting the bottleneck.",
        scale=scale.name,
        device=device.name,
    )
