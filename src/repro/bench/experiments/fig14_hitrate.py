"""Figure 14 — Varying the hit rate of point lookups.

As the fraction of lookups that find a key drops from 1.0 to 0.0, RX speeds
up disproportionately (up to ~3x): the BVH traversal of a missed key aborts
as soon as no bounding volume covers it, whereas the software trees always
descend to a leaf and the hash table probes even longer on misses.  Under
unordered lookups RX overtakes B+ and SA at hit rates below ~0.5 and even HT
below ~0.1.
"""

from __future__ import annotations

from repro.bench.harness import (
    ExperimentResult,
    ExperimentSeries,
    resolve_scale,
    simulate_lookups,
)
from repro.bench.experiments.common import make_standard_indexes
from repro.gpusim.device import RTX_4090
from repro.workloads import point_lookups_with_hit_rate, sparse_uniform_keys
from repro.workloads.table import SecondaryIndexWorkload

HIT_RATES = [1.0, 0.99, 0.9, 0.7, 0.5, 0.3, 0.1, 0.01, 0.0]


def run(
    scale: str = "small",
    device=RTX_4090,
    sorted_lookups: bool = False,
    outside_domain_misses: bool = False,
) -> ExperimentResult:
    scale = resolve_scale(scale)
    keys = sparse_uniform_keys(scale.sim_keys, key_bits=32, seed=131)

    results: dict[str, list[float]] = {}
    for hit_rate in HIT_RATES:
        queries = point_lookups_with_hit_rate(
            keys,
            scale.sim_lookups,
            hit_rate,
            key_bits=32,
            seed=132,
            outside_domain_misses=outside_domain_misses,
        )
        workload = SecondaryIndexWorkload.from_keys(keys, point_queries=queries)
        for name, index in make_standard_indexes().items():
            index.build(workload.keys, workload.values)
            cost = simulate_lookups(
                index, workload, scale, device=device, sorted_lookups=sorted_lookups
            )
            results.setdefault(name, []).append(cost.lookup_time_ms)

    series = [
        ExperimentSeries(label=name, x=HIT_RATES, y=values, unit="ms")
        for name, values in results.items()
    ]
    suffix = "sorted" if sorted_lookups else "unsorted"
    return ExperimentResult(
        experiment_id="fig14",
        title=f"Varying the hit rate ({suffix} lookups)",
        x_label="hit rate",
        series=series,
        notes="Misses let the BVH abort early; HT probes longer on misses.",
        scale=scale.name,
        device=device.name,
    )
