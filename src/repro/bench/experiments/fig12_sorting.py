"""Figure 12 — Impact of sorted keys and sorted point lookups.

All four combinations of (unsorted / sorted inserts) × (unsorted / sorted
lookups).  Sorting the *inserts* has no effect (every index reorders keys
during its build anyway); sorting the *lookups* speeds everything up thanks
to improved access locality, at the price of one radix sort over the lookup
batch, which is cheap compared to the lookups themselves.
"""

from __future__ import annotations

from repro.bench.harness import (
    ExperimentResult,
    ExperimentSeries,
    resolve_scale,
    simulate_lookups,
)
from repro.bench.experiments.common import make_standard_indexes, standard_point_workload
from repro.gpusim.device import RTX_4090
from repro.workloads.table import SecondaryIndexWorkload

import numpy as np

COMBINATIONS = ["both unsorted", "sorted inserts", "sorted lookups", "both sorted"]


def run(scale: str = "small", device=RTX_4090) -> ExperimentResult:
    scale = resolve_scale(scale)
    base = standard_point_workload(scale, seed=111)

    results: dict[str, list[float]] = {}
    sort_times: list[float] = []
    for combo in COMBINATIONS:
        sorted_inserts = "inserts" in combo or combo == "both sorted"
        sorted_lookups = "lookups" in combo or combo == "both sorted"
        if sorted_inserts:
            order = np.argsort(base.keys, kind="stable")
            workload = SecondaryIndexWorkload(
                keys=base.keys[order], values=base.values[order], point_queries=base.point_queries
            )
        else:
            workload = base
        combo_sort_ms = 0.0
        for name, index in make_standard_indexes().items():
            index.build(workload.keys, workload.values)
            cost = simulate_lookups(
                index, workload, scale, device=device, sorted_lookups=sorted_lookups
            )
            results.setdefault(name, []).append(cost.lookup_time_ms)
            combo_sort_ms = max(combo_sort_ms, cost.sort_time_ms)
        sort_times.append(combo_sort_ms)

    series = [
        ExperimentSeries(label=name, x=COMBINATIONS, y=values, unit="ms")
        for name, values in results.items()
    ]
    series.append(ExperimentSeries(label="sort", x=COMBINATIONS, y=sort_times, unit="ms"))
    return ExperimentResult(
        experiment_id="fig12",
        title="Impact of sorted keys and sorted point lookups",
        x_label="combination",
        series=series,
        notes="Sorting the build keys changes nothing; sorting the lookups helps every index.",
        scale=scale.name,
        device=device.name,
    )
