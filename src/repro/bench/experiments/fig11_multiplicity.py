"""Figure 11 — Impact of key multiplicity (duplicates) on point lookups.

The key multiplicity grows from 1 to 256 while the number of point lookups
stays fixed; the cumulative lookup time is normalised by the multiplicity
(every lookup returns that many rowIDs).  Duplicates favour all indexes; RX
handles them particularly well because duplicate keys map to primitives at
identical coordinates, adding intersection tests but no BVH complexity.  B+
cannot participate (it does not support duplicate keys).
"""

from __future__ import annotations

from repro.bench.harness import (
    ExperimentResult,
    ExperimentSeries,
    resolve_scale,
    simulate_lookups,
)
from repro.bench.experiments.common import make_standard_indexes
from repro.gpusim.device import RTX_4090
from repro.workloads import keys_with_multiplicity, point_lookups
from repro.workloads.table import SecondaryIndexWorkload

MULTIPLICITIES = [2**n for n in range(0, 9, 2)]


def run(scale: str = "small", device=RTX_4090) -> ExperimentResult:
    scale = resolve_scale(scale)
    indexes = ("HT", "SA", "RX")
    results: dict[str, list[float]] = {name: [] for name in indexes}

    for multiplicity in MULTIPLICITIES:
        n_distinct = max(scale.sim_keys // multiplicity, 64)
        keys = keys_with_multiplicity(n_distinct, multiplicity, seed=101)
        queries = point_lookups(keys, scale.sim_lookups, seed=102)
        workload = SecondaryIndexWorkload.from_keys(keys, point_queries=queries)
        for name, index in make_standard_indexes(include=indexes).items():
            index.build(workload.keys, workload.values)
            cost = simulate_lookups(index, workload, scale, device=device)
            results[name].append(cost.time_ms / multiplicity)

    series = [
        ExperimentSeries(label=name, x=MULTIPLICITIES, y=values, unit="ms (normalised)")
        for name, values in results.items()
    ]
    return ExperimentResult(
        experiment_id="fig11",
        title="Impact of key multiplicity on point lookups (normalised)",
        x_label="key multiplicity",
        series=series,
        notes="B+ is omitted: the GPU B+-Tree does not support duplicate keys.",
        scale=scale.name,
        device=device.name,
    )
