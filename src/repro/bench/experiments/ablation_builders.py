"""Ablation — software-BVH builder quality and leaf size.

The paper cannot look inside OptiX's proprietary builder, so our substrate
exposes three builders (LBVH, binned SAH, object median) plus the maximum
leaf size.  This ablation quantifies how much the reproduction's conclusions
depend on that choice: lookup cost per builder/leaf size for the standard
point-lookup workload, plus the resulting BVH quality statistics.
"""

from __future__ import annotations

from repro.bench.harness import (
    ExperimentResult,
    ExperimentSeries,
    resolve_scale,
    simulate_lookups,
)
from repro.bench.experiments.common import standard_point_workload
from repro.core import RXConfig, RXIndex
from repro.gpusim.device import RTX_4090

BUILDERS = ["lbvh", "sah", "median"]
LEAF_SIZES = [1, 2, 4, 8, 16]


def run(scale: str = "small", device=RTX_4090) -> ExperimentResult:
    scale = resolve_scale(scale)
    workload = standard_point_workload(scale, seed=191)

    builder_times, builder_depths, builder_nodes = [], [], []
    for builder in BUILDERS:
        index = RXIndex(RXConfig(bvh_builder=builder))
        build_result = index.build(workload.keys, workload.values)
        cost = simulate_lookups(index, workload, scale, device=device)
        builder_times.append(cost.time_ms)
        builder_depths.append(build_result.stats["bvh_depth"])
        builder_nodes.append(build_result.stats["bvh_nodes"])

    leaf_times = []
    for leaf_size in LEAF_SIZES:
        index = RXIndex(RXConfig(max_leaf_size=leaf_size))
        index.build(workload.keys, workload.values)
        leaf_times.append(simulate_lookups(index, workload, scale, device=device).time_ms)

    series = [
        ExperimentSeries(label="lookup time per builder", x=BUILDERS, y=builder_times, unit="ms"),
        ExperimentSeries(label="BVH depth per builder", x=BUILDERS, y=builder_depths, unit="levels"),
        ExperimentSeries(label="BVH nodes per builder", x=BUILDERS, y=builder_nodes, unit="#"),
        ExperimentSeries(label="lookup time per leaf size", x=LEAF_SIZES, y=leaf_times, unit="ms"),
    ]
    return ExperimentResult(
        experiment_id="ablation-builders",
        title="Sensitivity of RX to the software-BVH builder and leaf size",
        x_label="configuration",
        series=series,
        notes="The paper's conclusions should hold for any reasonable builder choice.",
        scale=scale.name,
        device=device.name,
    )
