"""Table 6 — Memory footprint of every index for 2^26 keys.

Reports the final resident size and the additional overhead needed only
during construction.  RX pays for representing each key as a triangle: its
BVH is roughly twice the size of the B+-Tree and needs by far the most
scratch space while building.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, ExperimentSeries, resolve_scale
from repro.bench.experiments.common import make_standard_indexes, standard_point_workload
from repro.gpusim.device import RTX_4090


def run(scale: str = "small", device=RTX_4090) -> ExperimentResult:
    scale = resolve_scale(scale)
    workload = standard_point_workload(scale, seed=91)
    indexes = make_standard_indexes()

    labels, finals, overheads = [], [], []
    for name, index in indexes.items():
        index.build(workload.keys, workload.values)
        footprint = index.memory_footprint(target_keys=scale.target_keys)
        labels.append(name)
        finals.append(footprint.final_bytes / 1e9)
        overheads.append(footprint.build_overhead_bytes / 1e9)

    return ExperimentResult(
        experiment_id="table6",
        title=f"Memory footprint for {scale.target_keys} keys",
        x_label="index",
        series=[
            ExperimentSeries(label="final size", x=labels, y=finals, unit="GB"),
            ExperimentSeries(label="overhead during build", x=labels, y=overheads, unit="GB"),
        ],
        notes="RX stores each key as a triangle, roughly doubling the footprint of B+.",
        scale=scale.name,
        device=device.name,
    )
