"""Figure 15 — 32-bit vs 64-bit keys.

RX converts 32-bit keys into the same triangles as 64-bit keys, so neither
its lookup time nor its footprint changes.  HT and SA must widen their key
storage: 64-bit comparisons and the larger structures slow them down and
increase their memory consumption.  B+ only supports 32-bit keys and serves
as the reference point.
"""

from __future__ import annotations

from repro.bench.harness import (
    ExperimentResult,
    ExperimentSeries,
    resolve_scale,
    simulate_lookups,
)
from repro.bench.experiments.common import make_standard_indexes
from repro.gpusim.device import RTX_4090
from repro.workloads import point_lookups, sparse_uniform_keys
from repro.workloads.table import SecondaryIndexWorkload

KEY_SIZES = [32, 64]


def run(scale: str = "small", device=RTX_4090, panel: str = "lookup") -> ExperimentResult:
    """``panel`` is ``"lookup"`` (Figure 15a) or ``"memory"`` (Figure 15b)."""
    if panel not in ("lookup", "memory"):
        raise ValueError("panel must be 'lookup' or 'memory'")
    scale = resolve_scale(scale)

    results: dict[str, list[float | None]] = {}
    for key_bits in KEY_SIZES:
        keys = sparse_uniform_keys(scale.sim_keys, key_bits=key_bits, seed=141)
        queries = point_lookups(keys, scale.sim_lookups, seed=142)
        workload = SecondaryIndexWorkload.from_keys(keys, point_queries=queries)
        key_bytes = key_bits // 8
        names = ("HT", "B+", "SA", "RX") if key_bits == 32 else ("HT", "SA", "RX")
        indexes = make_standard_indexes(include=names, key_bytes=key_bytes)
        for name in ("HT", "B+", "SA", "RX"):
            if name not in indexes:
                results.setdefault(name, []).append(None)
                continue
            index = indexes[name]
            index.build(workload.keys, workload.values)
            if panel == "lookup":
                value = simulate_lookups(index, workload, scale, device=device).time_ms
            else:
                value = index.memory_footprint(target_keys=scale.target_keys).final_bytes / 1e9
            results.setdefault(name, []).append(value)

    unit = "ms" if panel == "lookup" else "GB"
    series = [
        ExperimentSeries(label=name, x=[f"{b}-bit" for b in KEY_SIZES], y=values, unit=unit)
        for name, values in results.items()
    ]
    return ExperimentResult(
        experiment_id=f"fig15-{panel}",
        title="Impact of the key size (32-bit vs 64-bit)",
        x_label="key size",
        series=series,
        notes="RX treats both key sizes identically; B+ only supports 32-bit keys (N/A).",
        scale=scale.name,
        device=device.name,
    )
