"""Figure 17 — Range lookups with a growing number of qualifying entries.

The order-based indexes (B+, SA, RX) answer range lookups over a dense key
set whose spans grow from 1 to 1024 qualifying entries; the cumulative time
is normalised by the span.  B+ wins across the board thanks to its linked
leaves and warp-level aggregation; RX beats SA for small ranges but has to
pay one intersection test per qualifying entry.  The experiment also solves
the paper's non-negative least-squares system to split RX's cost into a
traversal and a per-hit intersection component (Section 4.9).

``run_limited`` is the LIMIT-k variant: the same sweep with a per-lookup hit
budget pushed down into every index probe — ``first_k`` traversal for RX,
capped scans for the sorted baselines — so bounded queries stop paying for
qualifying entries nobody asked for.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.nnls import decompose_range_lookup_cost
from repro.bench.harness import (
    ExperimentResult,
    ExperimentSeries,
    resolve_scale,
    simulate_lookups,
)
from repro.bench.experiments.common import dense_range_workload, make_standard_indexes
from repro.gpusim.costmodel import CostModel
from repro.gpusim.device import RTX_4090

QUALIFYING_ENTRIES = [2**n for n in range(0, 11, 2)]

#: Per-lookup hit budget of the limited variant (the paper-style "LIMIT 8").
DEFAULT_RANGE_LIMIT = 8


def run(scale: str = "small", device=RTX_4090) -> ExperimentResult:
    scale = resolve_scale(scale)
    results: dict[str, list[float]] = {}
    rx_cumulative: list[float] = []

    for span in QUALIFYING_ENTRIES:
        workload = dense_range_workload(scale, span=span, seed=171)
        for name, index in make_standard_indexes(include=("B+", "SA", "RX")).items():
            index.build(workload.keys, workload.values)
            cost = simulate_lookups(index, workload, scale, device=device, kind="range")
            results.setdefault(name, []).append(cost.time_ms / span)
            if name == "RX":
                rx_cumulative.append(cost.time_ms)

    decomposition = decompose_range_lookup_cost(
        np.array(QUALIFYING_ENTRIES, dtype=float), np.array(rx_cumulative)
    )

    series = [
        ExperimentSeries(label=name, x=QUALIFYING_ENTRIES, y=values, unit="ms (normalised)")
        for name, values in results.items()
    ]
    notes = (
        "HT cannot answer range lookups. NNLS split of RX's cumulative time: "
        f"traversal {decomposition.traversal_time_ms:.1f} ms, "
        f"per-hit intersection {decomposition.intersect_time_ms:.1f} ms "
        f"({'traversal' if decomposition.traversal_dominates else 'intersection'} dominates)."
    )
    return ExperimentResult(
        experiment_id="fig17",
        title="Cumulative range-lookup time per qualifying entry",
        x_label="qualifying entries per lookup",
        series=series,
        notes=notes,
        scale=scale.name,
        device=device.name,
    )


def run_limited(
    scale: str = "small", device=RTX_4090, limit: int = DEFAULT_RANGE_LIMIT
) -> ExperimentResult:
    """LIMIT-k range lookups: every index probe stops after ``limit`` rows.

    Every index must return exactly ``min(span, limit)`` rows per lookup
    (checked against the NumPy reference), so the comparison stays fair:
    nobody post-filters an unbounded result.  The cumulative time is
    normalised by the number of *returned* rows.  The extra ``RX (no
    limit)`` series repeats RX without pushdown, isolating what the
    ``first_k`` cut saves.
    """
    scale = resolve_scale(scale)
    cost_model = CostModel(device)
    results: dict[str, list[float]] = {}

    for span in QUALIFYING_ENTRIES:
        workload = dense_range_workload(scale, span=span, seed=171)
        returned = min(span, limit)
        expected = np.minimum(workload.reference_range_hits(), limit)
        for name, index in make_standard_indexes(include=("B+", "SA", "RX")).items():
            index.build(workload.keys, workload.values)
            run = index.range_lookup(
                workload.range_lowers, workload.range_uppers, limit=limit
            )
            if not np.array_equal(run.hits_per_lookup, expected):
                raise AssertionError(
                    f"{name} returned the wrong number of rows under limit={limit}"
                )
            profile = index.lookup_profile(
                run,
                target_keys=scale.target_keys,
                target_lookups=scale.target_lookups,
            )
            results.setdefault(name, []).append(
                cost_model.kernel_cost(profile).time_ms / returned
            )
            if name == "RX":
                unlimited = index.range_lookup(
                    workload.range_lowers, workload.range_uppers, limit=None
                )
                profile = index.lookup_profile(
                    unlimited,
                    target_keys=scale.target_keys,
                    target_lookups=scale.target_lookups,
                )
                results.setdefault("RX (no limit)", []).append(
                    cost_model.kernel_cost(profile).time_ms / returned
                )

    series = [
        ExperimentSeries(label=name, x=QUALIFYING_ENTRIES, y=values, unit="ms (normalised)")
        for name, values in results.items()
    ]
    notes = (
        f"Per-lookup budget of {limit} rows pushed down into every probe: "
        "RX traces in first_k mode (rays terminate once the budget is "
        "spent), B+/SA cap their leaf scans.  Times are normalised by the "
        "rows actually returned."
    )
    return ExperimentResult(
        experiment_id="fig17_limited",
        title=f"Range lookups with LIMIT {limit} pushdown",
        x_label="qualifying entries per lookup",
        series=series,
        notes=notes,
        scale=scale.name,
        device=device.name,
    )
