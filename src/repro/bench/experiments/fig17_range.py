"""Figure 17 — Range lookups with a growing number of qualifying entries.

The order-based indexes (B+, SA, RX) answer range lookups over a dense key
set whose spans grow from 1 to 1024 qualifying entries; the cumulative time
is normalised by the span.  B+ wins across the board thanks to its linked
leaves and warp-level aggregation; RX beats SA for small ranges but has to
pay one intersection test per qualifying entry.  The experiment also solves
the paper's non-negative least-squares system to split RX's cost into a
traversal and a per-hit intersection component (Section 4.9).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.nnls import decompose_range_lookup_cost
from repro.bench.harness import (
    ExperimentResult,
    ExperimentSeries,
    resolve_scale,
    simulate_lookups,
)
from repro.bench.experiments.common import dense_range_workload, make_standard_indexes
from repro.gpusim.device import RTX_4090

QUALIFYING_ENTRIES = [2**n for n in range(0, 11, 2)]


def run(scale: str = "small", device=RTX_4090) -> ExperimentResult:
    scale = resolve_scale(scale)
    results: dict[str, list[float]] = {}
    rx_cumulative: list[float] = []

    for span in QUALIFYING_ENTRIES:
        workload = dense_range_workload(scale, span=span, seed=171)
        for name, index in make_standard_indexes(include=("B+", "SA", "RX")).items():
            index.build(workload.keys, workload.values)
            cost = simulate_lookups(index, workload, scale, device=device, kind="range")
            results.setdefault(name, []).append(cost.time_ms / span)
            if name == "RX":
                rx_cumulative.append(cost.time_ms)

    decomposition = decompose_range_lookup_cost(
        np.array(QUALIFYING_ENTRIES, dtype=float), np.array(rx_cumulative)
    )

    series = [
        ExperimentSeries(label=name, x=QUALIFYING_ENTRIES, y=values, unit="ms (normalised)")
        for name, values in results.items()
    ]
    notes = (
        "HT cannot answer range lookups. NNLS split of RX's cumulative time: "
        f"traversal {decomposition.traversal_time_ms:.1f} ms, "
        f"per-hit intersection {decomposition.intersect_time_ms:.1f} ms "
        f"({'traversal' if decomposition.traversal_dominates else 'intersection'} dominates)."
    )
    return ExperimentResult(
        experiment_id="fig17",
        title="Cumulative range-lookup time per qualifying entry",
        x_label="qualifying entries per lookup",
        series=series,
        notes=notes,
        scale=scale.name,
        device=device.name,
    )
