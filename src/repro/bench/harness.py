"""Shared plumbing for the per-figure experiment modules.

The harness separates the two halves of every experiment:

* the **functional half** runs an index at a small simulation scale
  (``Scale.sim_keys`` keys, ``Scale.sim_lookups`` lookups), verifies the
  results against the NumPy reference, and collects structural statistics;
* the **costing half** extrapolates those statistics to the paper's scale
  (``Scale.target_keys`` keys, ``Scale.target_lookups`` lookups) and converts
  them into simulated milliseconds with the GPU cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.base import GpuIndex, LookupRun
from repro.gpusim.costmodel import CostModel, KernelCost
from repro.gpusim.device import RTX_4090, DeviceSpec
from repro.gpusim.sorting import DeviceRadixSort
from repro.workloads.table import SecondaryIndexWorkload

#: Locality bonus granted by sorting a lookup batch (Section 4.4: sorted
#: lookups cut GPU main-memory accesses by 45–92%).
SORTED_LOOKUP_LOCALITY = 0.85


@dataclass(frozen=True)
class Scale:
    """Pairs a functional simulation size with the paper-scale targets."""

    name: str
    sim_keys: int
    sim_lookups: int
    target_keys: int = 2**26
    target_lookups: int = 2**27

    def with_targets(self, target_keys: int | None = None, target_lookups: int | None = None) -> "Scale":
        return Scale(
            name=self.name,
            sim_keys=self.sim_keys,
            sim_lookups=self.sim_lookups,
            target_keys=target_keys if target_keys is not None else self.target_keys,
            target_lookups=target_lookups if target_lookups is not None else self.target_lookups,
        )


#: Preset simulation scales.  ``tiny`` keeps the full suite fast enough for
#: CI; ``small`` is the default for benchmarks; ``medium`` tightens the
#: extrapolation at the cost of longer runs.
SCALES: dict[str, Scale] = {
    "tiny": Scale("tiny", sim_keys=2**10, sim_lookups=2**9),
    "small": Scale("small", sim_keys=2**12, sim_lookups=2**10),
    "medium": Scale("medium", sim_keys=2**14, sim_lookups=2**12),
}


def resolve_scale(scale: str | Scale) -> Scale:
    if isinstance(scale, Scale):
        return scale
    if scale not in SCALES:
        raise KeyError(f"unknown scale {scale!r}; choose from {sorted(SCALES)}")
    return SCALES[scale]


@dataclass
class LookupCost:
    """Simulated cost of one lookup batch (plus optional sorting phase)."""

    run: LookupRun
    lookup_cost: KernelCost
    sort_cost: KernelCost | None = None

    @property
    def time_ms(self) -> float:
        return self.lookup_cost.time_ms + (self.sort_cost.time_ms if self.sort_cost else 0.0)

    @property
    def lookup_time_ms(self) -> float:
        return self.lookup_cost.time_ms

    @property
    def sort_time_ms(self) -> float:
        return self.sort_cost.time_ms if self.sort_cost else 0.0


@dataclass
class ExperimentSeries:
    """One line of a figure / one row group of a table."""

    label: str
    x: list
    y: list
    unit: str = "ms"
    extra: dict = field(default_factory=dict)


@dataclass
class ExperimentResult:
    """Everything one experiment produced."""

    experiment_id: str
    title: str
    x_label: str
    series: list[ExperimentSeries]
    notes: str = ""
    scale: str = "small"
    device: str = "RTX 4090"

    def series_by_label(self, label: str) -> ExperimentSeries:
        for entry in self.series:
            if entry.label == label:
                return entry
        raise KeyError(f"no series labelled {label!r} in {self.experiment_id}")

    def to_text(self) -> str:
        from repro.bench.report import format_table, series_to_rows

        header, rows = series_to_rows(self.x_label, self.series)
        body = format_table(header, rows)
        title = f"{self.experiment_id}: {self.title} [{self.device}, scale={self.scale}]"
        parts = [title, body]
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)


def _measured_locality(queries: np.ndarray, sorted_lookups: bool) -> float:
    """Estimate the access locality of a lookup batch.

    Only the submission order is considered here: sorted batches let
    neighbouring threads walk the same index regions.  Skew-induced locality
    depends on the target-scale key popularity and is therefore passed in
    explicitly by the experiments that control it (``locality=...``), rather
    than being estimated from the small functional sample.
    """
    queries = np.asarray(queries)
    if queries.size == 0:
        return 0.0
    return SORTED_LOOKUP_LOCALITY if sorted_lookups else 0.0


def zipf_locality(coefficient: float) -> float:
    """Cache locality produced by a Zipf-skewed lookup distribution.

    Calibrated against Table 7 of the paper: no benefit for uniform lookups,
    a moderate benefit around a coefficient of 1.0, and almost perfect
    locality at 2.0.
    """
    if coefficient <= 0:
        return 0.0
    return float(min(0.99, (coefficient / 2.0) ** 1.2))


def simulate_lookups(
    index: GpuIndex,
    workload: SecondaryIndexWorkload,
    scale: Scale,
    device: DeviceSpec = RTX_4090,
    kind: str = "point",
    sorted_lookups: bool = False,
    num_batches: int = 1,
    locality: float | None = None,
    verify: bool = True,
    value_bytes: int = 4,
) -> LookupCost:
    """Run a lookup batch functionally and convert it into simulated cost.

    ``num_batches`` models splitting the target-scale batch into several
    consecutive kernel launches (Section 4.5); sorting, when requested, adds
    one radix-sort invocation per batch.
    """
    cost_model = CostModel(device)

    if kind == "point":
        queries = workload.point_queries
        if sorted_lookups:
            queries = np.sort(queries)
        run = index.point_lookup(queries)
        if verify:
            expected = workload.reference_point_aggregate()
            if run.aggregate != expected:
                raise AssertionError(
                    f"{index.name} returned aggregate {run.aggregate}, expected {expected}"
                )
    elif kind == "range":
        lowers, uppers = workload.range_lowers, workload.range_uppers
        if sorted_lookups:
            order = np.argsort(lowers)
            lowers, uppers = lowers[order], uppers[order]
        run = index.range_lookup(lowers, uppers)
        if verify:
            expected = workload.reference_range_aggregate()
            if run.aggregate != expected:
                raise AssertionError(
                    f"{index.name} returned aggregate {run.aggregate}, expected {expected}"
                )
        queries = lowers
    else:
        raise ValueError(f"unknown lookup kind {kind!r}")

    loc = locality if locality is not None else _measured_locality(queries, sorted_lookups)
    profile = index.lookup_profile(
        run,
        target_keys=scale.target_keys,
        target_lookups=scale.target_lookups,
        locality=loc,
        value_bytes=value_bytes,
    )

    if num_batches > 1:
        batch_profile = profile.scaled(1.0 / num_batches)
        batch_cost = cost_model.kernel_cost(batch_profile)
        total_ms = batch_cost.time_ms * num_batches
        lookup_cost = KernelCost(
            profile_name=profile.name,
            time_ms=total_ms,
            compute_ms=batch_cost.compute_ms * num_batches,
            memory_ms=batch_cost.memory_ms * num_batches,
            rt_ms=batch_cost.rt_ms * num_batches,
            latency_ms=batch_cost.latency_ms * num_batches,
            launch_overhead_ms=batch_cost.launch_overhead_ms * num_batches,
            dram_bytes=batch_cost.dram_bytes * num_batches,
            l2_hit_rate=batch_cost.l2_hit_rate,
            active_warps_per_sm=batch_cost.active_warps_per_sm,
            bandwidth_utilization=batch_cost.bandwidth_utilization,
            bottleneck=batch_cost.bottleneck,
        )
    else:
        lookup_cost = cost_model.kernel_cost(profile)

    sort_cost = None
    if sorted_lookups:
        sorter = DeviceRadixSort(key_bytes=4, value_bytes=0)
        per_batch_items = max(scale.target_lookups // num_batches, 1)
        sort_profile = sorter.work_profile(per_batch_items, num_invocations=num_batches)
        sort_cost = cost_model.kernel_cost(sort_profile)

    return LookupCost(run=run, lookup_cost=lookup_cost, sort_cost=sort_cost)


def simulate_build(
    index: GpuIndex,
    scale: Scale,
    device: DeviceSpec = RTX_4090,
    presorted: bool = False,
) -> tuple[float, list[KernelCost]]:
    """Simulated build time (ms) of an already-built index at target scale."""
    cost_model = CostModel(device)
    costs = [
        cost_model.kernel_cost(profile)
        for profile in index.build_profiles(target_keys=scale.target_keys, presorted=presorted)
    ]
    return sum(c.time_ms for c in costs), costs


def throughput_lookups_per_second(time_ms: float, num_lookups: int) -> float:
    """Convert a cumulative batch time into a lookup throughput."""
    if time_ms <= 0:
        return 0.0
    return num_lookups / (time_ms / 1e3)
