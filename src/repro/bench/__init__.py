"""Benchmark harness: regenerates every table and figure of the paper.

Each module under :mod:`repro.bench.experiments` reproduces one table or
figure.  All of them expose a ``run(scale=..., device=...)`` function that
returns an :class:`repro.bench.harness.ExperimentResult`, which can be
printed as a text table (``result.to_text()``) or consumed programmatically.

The ``scale`` argument controls the size of the *functional* simulation
(``"tiny"``, ``"small"``, ``"medium"``); the reported numbers are always
extrapolated to the paper's workload sizes (2^26 keys, 2^27 lookups on an
RTX 4090) through the GPU cost model, so the series keep the paper's shape
regardless of the simulation size.
"""

from repro.bench.harness import (
    ExperimentResult,
    ExperimentSeries,
    LookupCost,
    Scale,
    SCALES,
    simulate_build,
    simulate_lookups,
    zipf_locality,
)
from repro.bench.report import format_table, series_to_rows

__all__ = [
    "ExperimentResult",
    "ExperimentSeries",
    "LookupCost",
    "SCALES",
    "Scale",
    "format_table",
    "series_to_rows",
    "simulate_build",
    "simulate_lookups",
    "zipf_locality",
]
