"""Plain-text reporting of experiment results.

The paper presents its results as figures; since this reproduction runs in a
terminal, every experiment renders as an aligned text table with one column
per series (one per index / configuration) and one row per x value.
"""

from __future__ import annotations

from typing import Iterable


def _format_value(value) -> str:
    if value is None:
        return "N/A"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-2:
            return f"{value:.3e}"
        return f"{value:,.2f}"
    return str(value)


def series_to_rows(x_label: str, series: list) -> tuple[list[str], list[list[str]]]:
    """Convert a list of ExperimentSeries into a header and aligned rows.

    Series may have different x supports; missing combinations render as
    ``N/A`` (the paper uses the same marker, e.g. Naive Mode beyond 2^23).
    """
    header = [x_label] + [f"{s.label} [{s.unit}]" if s.unit else s.label for s in series]
    all_x: list = []
    for entry in series:
        for x in entry.x:
            if x not in all_x:
                all_x.append(x)
    rows = []
    for x in all_x:
        row = [_format_value(x)]
        for entry in series:
            try:
                idx = entry.x.index(x)
                row.append(_format_value(entry.y[idx]))
            except ValueError:
                row.append("N/A")
        rows.append(row)
    return header, rows


def format_table(header: list[str], rows: Iterable[list[str]]) -> str:
    """Render an aligned, pipe-separated text table."""
    rows = [list(r) for r in rows]
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    lines.append(" | ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_key_value_block(title: str, entries: dict) -> str:
    """Render a small key/value block (used for table-style experiments)."""
    width = max((len(str(k)) for k in entries), default=0)
    lines = [title]
    for key, value in entries.items():
        lines.append(f"  {str(key).ljust(width)} : {_format_value(value)}")
    return "\n".join(lines)
