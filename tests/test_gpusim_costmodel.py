"""Tests for the roofline cost model."""

import pytest

from repro.gpusim.costmodel import CostModel
from repro.gpusim.counters import WorkProfile
from repro.gpusim.device import RTX_2080TI, RTX_4090


def _profile(**overrides) -> WorkProfile:
    base = dict(
        name="test",
        threads=2**22,
        instructions=1e9,
        bytes_accessed=10e9,
        working_set_bytes=2e9,
        serial_depth=4.0,
        rt_tests=0.0,
        kernel_launches=1,
    )
    base.update(overrides)
    return WorkProfile(**base)


class TestKernelCost:
    def setup_method(self):
        self.model = CostModel(RTX_4090)

    def test_time_positive(self):
        assert self.model.time_ms(_profile()) > 0

    def test_bottleneck_identified(self):
        memory_bound = self.model.kernel_cost(_profile(bytes_accessed=100e9, instructions=1e6))
        compute_bound = self.model.kernel_cost(
            _profile(bytes_accessed=1e6, working_set_bytes=1e6, instructions=1e12, serial_depth=0)
        )
        assert memory_bound.bottleneck == "memory"
        assert compute_bound.bottleneck == "compute"

    def test_rt_bound_profile(self):
        cost = self.model.kernel_cost(
            _profile(bytes_accessed=1e6, working_set_bytes=1e6, instructions=1e6, rt_tests=1e11, serial_depth=0)
        )
        assert cost.bottleneck == "rt"

    def test_latency_bound_profile(self):
        cost = self.model.kernel_cost(
            _profile(bytes_accessed=1e6, working_set_bytes=1e6, instructions=1e6, serial_depth=30)
        )
        assert cost.bottleneck == "latency"

    def test_more_bytes_cost_more(self):
        cheap = self.model.time_ms(_profile(bytes_accessed=5e9, working_set_bytes=5e9))
        costly = self.model.time_ms(_profile(bytes_accessed=50e9, working_set_bytes=50e9))
        assert costly > cheap

    def test_locality_reduces_memory_time(self):
        cold = self.model.time_ms(_profile(working_set_bytes=10e9, locality=0.0))
        hot = self.model.time_ms(_profile(working_set_bytes=10e9, locality=0.95))
        assert hot < cold

    def test_launch_overhead_added(self):
        one = self.model.kernel_cost(_profile(kernel_launches=1))
        many = self.model.kernel_cost(_profile(kernel_launches=10_000))
        assert many.launch_overhead_ms > one.launch_overhead_ms
        assert many.time_ms > one.time_ms

    def test_small_batches_run_less_efficiently(self):
        # Same total work split over few threads is slower per byte.
        big = self.model.time_ms(_profile(threads=2**27))
        small = self.model.time_ms(_profile(threads=2**10))
        assert small > big * 0.9

    def test_older_gpu_is_slower(self):
        new = CostModel(RTX_4090).time_ms(_profile())
        old = CostModel(RTX_2080TI).time_ms(_profile())
        assert old > new

    def test_total_time_sums_phases(self):
        profiles = [_profile(), _profile()]
        assert self.model.total_time_ms(profiles) == pytest.approx(
            2 * self.model.time_ms(_profile()), rel=1e-6
        )

    def test_cost_as_dict(self):
        cost = self.model.kernel_cost(_profile())
        as_dict = cost.as_dict()
        assert set(as_dict) >= {"time_ms", "bottleneck", "dram_bytes", "l2_hit_rate"}


class TestWorkProfileHelpers:
    def test_scaled_multiplies_extensive_quantities(self):
        profile = _profile()
        half = profile.scaled(0.5)
        assert half.threads == profile.threads // 2
        assert half.instructions == pytest.approx(profile.instructions / 2)
        assert half.working_set_bytes == profile.working_set_bytes  # intensive

    def test_merged_with_accumulates(self):
        merged = _profile(name="a").merged_with(_profile(name="b"))
        assert merged.instructions == pytest.approx(2e9)
        assert merged.kernel_launches == 2
        assert "a" in merged.name and "b" in merged.name
