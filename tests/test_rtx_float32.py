"""Tests for the float32 helpers (OptiX coordinate restrictions)."""

import numpy as np
import pytest

from repro.rtx import float32 as f32


class TestBitCast:
    def test_round_trip_scalar(self):
        bits = f32.bit_cast_f32_to_u32(np.float32(0.5))
        assert f32.bit_cast_u32_to_f32(bits) == np.float32(0.5)

    def test_round_trip_array(self):
        values = np.array([0.0, 1.0, -2.5, 3.1415], dtype=np.float32)
        assert np.array_equal(f32.bit_cast_u32_to_f32(f32.bit_cast_f32_to_u32(values)), values)

    def test_half_bit_pattern_is_extended_mode_offset(self):
        assert f32.EXTENDED_MODE_OFFSET == int(np.float32(0.5).view(np.uint32))

    def test_bit_cast_is_monotonic_for_positive_floats(self):
        # Consecutive bit patterns of positive floats are ordered, which is
        # the property Extended Mode relies on.
        bits = np.arange(f32.EXTENDED_MODE_OFFSET, f32.EXTENDED_MODE_OFFSET + 1000, dtype=np.uint32)
        values = f32.bit_cast_u32_to_f32(bits)
        assert np.all(np.diff(values) > 0)


class TestNextAfter:
    def test_nextafter_moves_up(self):
        value = np.float32(1.0)
        up = f32.nextafter_f32(value, np.float32(np.inf))
        assert up > value

    def test_nextafter_moves_down(self):
        value = np.float32(1.0)
        down = f32.nextafter_f32(value, np.float32(-np.inf))
        assert down < value

    def test_nextafter_is_adjacent_bit_pattern(self):
        value = np.float32(123.0)
        up = f32.nextafter_f32(value, np.float32(np.inf))
        assert int(np.float32(up).view(np.uint32)) == int(value.view(np.uint32)) + 1

    def test_ulp_positive(self):
        assert f32.ulp_f32(np.float32(1.0)) > 0
        assert f32.ulp_f32(np.float32(2.0**20)) > f32.ulp_f32(np.float32(1.0))


class TestExactness:
    def test_all_ints_below_2_24_exact(self):
        samples = np.array([0, 1, 2**23, 2**24 - 1, 2**24], dtype=np.uint64)
        assert f32.is_exact_int_f32(samples).all()

    def test_2_24_plus_one_not_exact(self):
        assert not f32.is_exact_int_f32(np.array([2**24 + 1], dtype=np.uint64))[0]

    def test_half_offset_exact_below_naive_limit(self):
        keys = np.array([0, 1, 2**23 - 1], dtype=np.uint64)
        assert f32.is_half_offset_exact_f32(keys).all()

    def test_half_offset_not_exact_at_2_24(self):
        # The paper's argument for restricting Naive Mode to 2^23 keys:
        # 2^24 - 1 + 0.5 cannot be represented.
        assert not f32.is_half_offset_exact_f32(np.array([2**24 - 1], dtype=np.uint64))[0]

    def test_naive_limit_constant(self):
        assert f32.NAIVE_MODE_KEY_LIMIT == 2**23
        assert f32.EXTENDED_MODE_KEY_LIMIT == 2**29


class TestValueRange:
    def test_value_range_ratio_uniform(self):
        assert f32.value_range_ratio([1.0, 2.0, 4.0]) == pytest.approx(4.0)

    def test_value_range_ratio_ignores_zero(self):
        assert f32.value_range_ratio([0.0, 1.0, 8.0]) == pytest.approx(8.0)

    def test_value_range_ratio_empty(self):
        assert f32.value_range_ratio([]) == 1.0

    def test_float_span(self):
        lo, hi = f32.float_span([3, 1, 2])
        assert (lo, hi) == (1.0, 3.0)

    def test_float_span_empty(self):
        assert f32.float_span([]) == (0.0, 0.0)

    def test_to_f32_array_dtype(self):
        assert f32.to_f32_array([1, 2, 3]).dtype == np.float32
