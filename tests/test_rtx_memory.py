"""Tests for device memory accounting and the accel memory model."""

import pytest

from repro.rtx.memory import (
    ACCEL_BYTES_PER_PRIMITIVE,
    DeviceMemoryTracker,
    accel_memory_estimate,
)


class TestDeviceMemoryTracker:
    def test_alloc_and_free(self):
        tracker = DeviceMemoryTracker()
        handle = tracker.alloc("buffer", 1000)
        assert tracker.current_bytes == 1000
        tracker.free(handle)
        assert tracker.current_bytes == 0

    def test_peak_tracks_high_water_mark(self):
        tracker = DeviceMemoryTracker()
        a = tracker.alloc("a", 500)
        b = tracker.alloc("b", 700)
        tracker.free(a)
        tracker.free(b)
        assert tracker.peak_bytes == 1200
        assert tracker.current_bytes == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            DeviceMemoryTracker().alloc("bad", -1)

    def test_double_free_rejected(self):
        tracker = DeviceMemoryTracker()
        handle = tracker.alloc("x", 10)
        tracker.free(handle)
        with pytest.raises(KeyError):
            tracker.free(handle)

    def test_free_temporaries(self):
        tracker = DeviceMemoryTracker()
        tracker.alloc("persistent", 100)
        tracker.alloc("scratch", 50, temporary=True)
        freed = tracker.free_temporaries()
        assert freed == 50
        assert tracker.current_bytes == 100

    def test_snapshot_groups_by_name(self):
        tracker = DeviceMemoryTracker()
        tracker.alloc("accel", 10)
        tracker.alloc("accel", 20)
        tracker.alloc("values", 5)
        assert tracker.snapshot() == {"accel": 30, "values": 5}

    def test_overhead_and_reset_peak(self):
        tracker = DeviceMemoryTracker()
        keep = tracker.alloc("keep", 100)
        temp = tracker.alloc("temp", 400)
        tracker.free(temp)
        assert tracker.overhead_bytes == 400
        tracker.reset_peak()
        assert tracker.overhead_bytes == 0
        tracker.free(keep)


class TestAccelMemoryModel:
    def test_unknown_primitive_rejected(self):
        with pytest.raises(ValueError):
            accel_memory_estimate("torus", 10)

    @pytest.mark.parametrize("kind", ["triangle", "sphere", "aabb"])
    def test_compaction_never_grows(self, kind):
        estimate = accel_memory_estimate(kind, 1_000)
        assert estimate["compacted"] <= estimate["uncompacted"]
        assert estimate["peak_during_build"] >= estimate["uncompacted"]

    def test_triangles_have_largest_uncompacted_footprint(self):
        # Figure 7c relationship.
        tri = accel_memory_estimate("triangle", 1_000)["uncompacted"]
        sph = accel_memory_estimate("sphere", 1_000)["uncompacted"]
        box = accel_memory_estimate("aabb", 1_000)["uncompacted"]
        assert tri > sph and tri > box

    def test_spheres_have_largest_compacted_footprint(self):
        tri = accel_memory_estimate("triangle", 1_000)["compacted"]
        sph = accel_memory_estimate("sphere", 1_000)["compacted"]
        box = accel_memory_estimate("aabb", 1_000)["compacted"]
        assert sph > tri and sph > box

    def test_estimate_scales_linearly(self):
        small = accel_memory_estimate("triangle", 1_000)["compacted"]
        large = accel_memory_estimate("triangle", 2_000)["compacted"]
        assert large == pytest.approx(2 * small, rel=0.01)

    def test_table6_rx_footprint_close_to_paper(self):
        # The paper reports 2.78 GB for 2^26 keys (compacted triangles).
        estimate = accel_memory_estimate("triangle", 2**26)
        assert estimate["compacted"] / 1e9 == pytest.approx(2.78, rel=0.05)

    def test_model_constants_cover_all_primitives(self):
        assert set(ACCEL_BYTES_PER_PRIMITIVE) == {"triangle", "sphere", "aabb"}
