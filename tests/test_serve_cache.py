"""Result-cache behaviour: counters, skew-aware eviction, epoch invalidation."""

import numpy as np
import pytest

from repro.core.config import RXConfig
from repro.core.rx_index import RXIndex
from repro.serve import IndexService, ResultCache
from repro.workloads import dense_shuffled_keys


class TestResultCacheUnit:
    def test_hit_miss_counters(self):
        cache = ResultCache(capacity=4)
        key = ResultCache.key_for(0, "k", ("point", b"q"))
        assert cache.get(key) is None
        cache.put(key, "value")
        assert cache.get(key) == "value"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.insertions == 1
        assert cache.stats.hit_rate == 0.5

    def test_capacity_bound_and_eviction(self):
        cache = ResultCache(capacity=3, sample_size=3)
        for i in range(5):
            cache.put((0, "k", i), i)
        assert len(cache) == 3
        assert cache.stats.evictions == 2

    def test_skew_aware_eviction_keeps_hot_entries(self):
        """A frequently-hit entry survives a scan of cold insertions that
        would evict it under plain LRU."""
        cache = ResultCache(capacity=4, sample_size=4)
        hot = (0, "k", "hot")
        cache.put(hot, "hot-value")
        for _ in range(10):
            assert cache.get(hot) == "hot-value"
        for i in range(20):  # cold scan: 20 one-shot entries
            cache.put((0, "k", f"cold-{i}"), i)
        assert cache.get(hot) == "hot-value", "hot entry was washed out"

    def test_eviction_is_deterministic(self):
        def run():
            cache = ResultCache(capacity=3, sample_size=2)
            cache.put((0, "k", "a"), 1)
            cache.put((0, "k", "b"), 2)
            cache.get((0, "k", "a"))
            cache.put((0, "k", "c"), 3)
            cache.put((0, "k", "d"), 4)  # evicts the sampled-LFU victim
            return sorted(k[2] for k in cache._entries)

        assert run() == run() == ["a", "c", "d"]  # "b" (freq 1, oldest) evicted

    def test_invalidate_before_drops_older_epochs(self):
        cache = ResultCache(capacity=8)
        for epoch in (0, 0, 1, 2):
            cache.put((epoch, "k", f"q{epoch}-{len(cache)}"), epoch)
        dropped = cache.invalidate_before(2)
        assert dropped == 3
        assert cache.stats.invalidations == 3
        assert all(k[0] >= 2 for k in cache._entries)

    def test_capacity_zero_disables(self):
        cache = ResultCache(capacity=0)
        cache.put((0, "k", "q"), 1)
        assert cache.get((0, "k", "q")) is None
        assert len(cache) == 0
        assert not cache.enabled

    def test_invalid_parameters(self):
        with pytest.raises(ValueError, match="capacity"):
            ResultCache(capacity=-1)
        with pytest.raises(ValueError, match="sample_size"):
            ResultCache(capacity=1, sample_size=0)


class TestServiceCaching:
    def make_service(self, cache_capacity=256):
        keys = dense_shuffled_keys(1024, seed=31)
        index = RXIndex(RXConfig.paper_default().with_delta_updates(shard_bits=4))
        index.build(keys)
        return keys, index, IndexService(
            index, max_batch=64, max_wait=10.0, cache_capacity=cache_capacity
        )

    def test_cached_result_is_bit_identical(self):
        keys, index, service = self.make_service()
        queries = keys[:5]
        service.submit_point(queries, arrival=0.0)
        (fresh,) = service.drain()
        assert not fresh.from_cache
        service.submit_point(queries, arrival=1.0)
        (cached,) = service.drain()
        assert cached.from_cache
        assert cached.epoch == fresh.epoch
        assert np.array_equal(cached.result_rows(), fresh.result_rows())
        assert np.array_equal(
            cached.hits_per_lookup(), fresh.hits_per_lookup()
        )
        assert cached.counters.as_dict() == fresh.counters.as_dict()
        stats = service.stats()
        assert stats["cache"]["hits"] == 1
        # The cached request reached no launch at all.
        assert stats["scheduler"]["launches"] == 1

    def test_epoch_advance_invalidates(self):
        keys, index, service = self.make_service()
        queries = keys[:5]
        service.submit_point(queries, arrival=0.0)
        (fresh,) = service.drain()
        new_keys = keys.copy()
        new_keys[:256] = new_keys[:256][::-1]
        service.update(new_keys)
        service.submit_point(queries, arrival=1.0)
        (after,) = service.drain()
        assert not after.from_cache, "stale epoch served from cache"
        assert after.epoch == fresh.epoch + 1
        assert service.stats()["cache"]["invalidations"] >= 1
        # The fresh epoch's result must match a reference against new_keys.
        reference = RXIndex(index.config)
        reference.build(new_keys)
        assert np.array_equal(
            after.result_rows(), reference.point_lookup(queries).result_rows
        )

    def test_superseded_epoch_results_never_enter_cache(self):
        """Results computed for a pinned old epoch stay out of the cache,
        so an invalidation sweep cannot be undone."""
        keys, index, service = self.make_service()
        queries = keys[:5]
        service.submit_point(queries, arrival=0.0)  # pins epoch 0
        new_keys = keys.copy()
        new_keys[:128] = new_keys[:128][::-1]
        service.update(new_keys)  # epoch 1
        (old_result,) = service.drain()  # computed against epoch 0
        assert old_result.epoch == 0
        assert service.stats()["cache"]["insertions"] == 0

    def test_range_and_limit_have_distinct_cache_keys(self):
        keys, index, service = self.make_service()
        lo = np.array([int(keys.min())], dtype=np.uint64)
        hi = lo + np.uint64(31)
        service.submit_range(lo, hi, arrival=0.0)
        service.submit_range(lo, hi, limit=2, arrival=0.0)
        unlimited, limited = service.drain()
        assert service.stats()["cache"]["hits"] == 0
        assert unlimited.hits_per_lookup().sum() > limited.hits_per_lookup().sum()
        service.submit_range(lo, hi, limit=2, arrival=1.0)
        (again,) = service.drain()
        assert again.from_cache
        assert np.array_equal(again.result_rows(), limited.result_rows())
