"""Keyset-cursor pagination: pages must reassemble the ordered scan exactly.

Acceptance property: for random scenes (duplicate-free, mixed and
duplicate-heavy key columns) and random page sizes, the concatenation of
cursor pages — each page an independent ``order="key"`` range lookup that
resumes from the previous page's cursor — is bit-identical to the one-shot
ordered scan of the same range, with no dropped rows, no duplicated rows,
and exact page boundaries even when a duplicate-key run straddles a page
break.  Per-page counters must stay sane: every page reports exactly its
row count, carries the ``ordered_k`` trace stats and flags whether it
resumed a cursor.

The duplicate-run boundary is additionally pinned at the cursor-codec
level (``keyset_page_slice`` / ``make_cursor_filter`` with cursors on the
first, middle and last row of a run) and at the RXIndex level, and the
SA/B+/LSM baselines' paged probes must reproduce RX's pages bit for bit.

Like the differential harness, the generator seed defaults to 20260727 and
can be overridden with the ``DIFF_SEED`` environment variable.
"""

import os
import random

import numpy as np
import pytest

from repro.baselines.base import keyset_page_slice
from repro.baselines.btree import GpuBPlusTree
from repro.baselines.lsm import GpuLsmTree
from repro.baselines.sorted_array import SortedArrayIndex
from repro.core.config import RXConfig
from repro.core.cursor import (
    Cursor,
    encode_cursor,
    make_cursor_filter,
    next_cursor_token,
    parse_cursor,
)
from repro.core.rx_index import RXIndex

DIFF_SEED = int(os.environ.get("DIFF_SEED", "20260727"))

#: duplicate grids: max key multiplicity of the generated column
MULTIPLICITIES = [1, 3, 8]
PAGE_SIZES = [1, 3, 16, 1000]
NUM_SCENES = 6


def _scene(rng: random.Random, multiplicity: int) -> tuple[np.ndarray, np.ndarray]:
    """A random key column with controlled duplicate runs, plus values."""
    n_positions = rng.randrange(40, 120)
    keys: list[int] = []
    key = 0
    for _ in range(n_positions):
        key += rng.randrange(1, 5)
        keys.extend([key] * rng.randrange(1, multiplicity + 1))
    keys = np.array(keys, dtype=np.uint64)
    # Shuffle so rowIDs are uncorrelated with key order (the interesting
    # case: within a duplicate run the sorted rowIDs are scattered rows).
    perm = np.array(rng.sample(range(keys.shape[0]), keys.shape[0]))
    keys = keys[perm]
    values = np.arange(keys.shape[0], dtype=np.uint64) * np.uint64(7)
    return keys, values


def _golden_scan(keys: np.ndarray, lower: int, upper: int) -> np.ndarray:
    """RowIDs of ``[lower, upper]`` in ``(key, rowID)`` order."""
    sel = (keys >= np.uint64(lower)) & (keys <= np.uint64(upper))
    rows = np.nonzero(sel)[0].astype(np.uint64)
    return rows[np.lexsort((rows, keys[sel]))]


def _drain(index, lower: int, upper: int, page_size: int):
    """Drain a paged ordered scan; returns (pages, runs)."""
    lowers = np.array([lower], dtype=np.uint64)
    uppers = np.array([upper], dtype=np.uint64)
    pages, runs, cursor = [], [], None
    for _ in range(100_000):
        run, cursor = index.range_lookup(
            lowers, uppers, limit=page_size, order="key", cursor=cursor
        )
        pages.append(run.row_ids)
        runs.append(run)
        if cursor is None:
            return pages, runs
    raise AssertionError("cursor drain did not terminate")


class TestCursorCodec:
    def test_roundtrip(self):
        token = encode_cursor(123, 456)
        assert token == "123|456"
        cur = parse_cursor(token)
        assert cur == Cursor(key=123, row_id=456)
        assert parse_cursor(cur) is cur
        assert parse_cursor(None) is None
        assert cur.encode() == token

    @pytest.mark.parametrize(
        "token",
        [
            # wrong field count / missing separator
            "", "12", "1|2|3", "|",
            # non-integer parts
            "a|b", "1|", "|1", "a|1", "1|b", "1.5|2", "1|2.5", " 1 | 2x",
            # negative components
            "-1|2", "1|-2", "-1|-2",
            # too wide for the engine's fixed-width arithmetic (these used
            # to surface as OverflowError deep inside the filter builder)
            f"{2**64}|1", f"{2**70}|1", f"1|{2**63}", f"1|{2**70}",
        ],
    )
    def test_malformed_tokens_rejected(self, token):
        with pytest.raises(ValueError):
            parse_cursor(token)

    def test_non_string_tokens_rejected(self):
        for token in (3.5, b"1|2", ["1|2"], {"key": 1}):
            with pytest.raises(ValueError, match="cursor"):
                parse_cursor(token)

    def test_max_key_bound(self):
        assert parse_cursor("100|5", max_key=100) == Cursor(100, 5)
        with pytest.raises(ValueError, match="maximum representable key"):
            parse_cursor("101|5", max_key=100)

    def test_key_beyond_codec_range_rejected_at_index(self):
        from repro.core.config import KeyMode

        # The extended codec represents far fewer than 2^64 keys, so a
        # cursor key past its range is caught by the codec bound (not the
        # generic 64-bit width cap).
        from repro.core.config import RangeRayMode

        config = RXConfig.paper_default()
        config.key_mode = KeyMode.EXTENDED
        config.range_ray_mode = RangeRayMode.PARALLEL_FROM_ZERO
        index = RXIndex(config)
        index.build(np.arange(64, dtype=np.uint64))
        over = index.codec.max_key() + 1
        with pytest.raises(ValueError, match="maximum representable key"):
            index.range_lookup(
                np.array([0], dtype=np.uint64),
                np.array([9], dtype=np.uint64),
                limit=4,
                order="key",
                cursor=f"{over}|0",
            )

    def test_malformed_tokens_rejected_at_service_boundary(self):
        from repro.serve import IndexService

        index = RXIndex(RXConfig.paper_default())
        index.build(np.arange(64, dtype=np.uint64))
        service = IndexService(index)
        lowers = np.array([0], dtype=np.uint64)
        uppers = np.array([9], dtype=np.uint64)
        for token in ("1|2|3", "a|1", f"{2**70}|1", f"1|{2**70}"):
            with pytest.raises(ValueError, match="cursor"):
                service.submit_range(
                    lowers, uppers, limit=4, order="key", cursor=token
                )
        # Nothing was enqueued by the rejected submissions.
        assert not service.scheduler.pending
        # A well-formed cursor still goes through the normal path.
        service.submit_range(lowers, uppers, limit=4, order="key", cursor="3|3")
        assert service.drain()

    def test_no_cursor_returns_base_filter_unchanged(self):
        keys = np.arange(8, dtype=np.uint64)
        base = lambda r, p, l: p % 2 == 0  # noqa: E731
        assert make_cursor_filter(keys, [None], base_any_hit=base) is base
        assert make_cursor_filter(keys, [None, None]) is None

    @pytest.mark.parametrize("boundary", ["first", "middle", "last"])
    def test_filter_resumes_exactly_past_duplicate_boundary(self, boundary):
        """Cursor on the first/middle/last row of a duplicate run: rows of
        the run at or before the cursor are dropped, rows after survive."""
        # Key 5 occupies rows 2, 3, 4 (a 3-row duplicate run).
        keys = np.array([1, 3, 5, 5, 5, 7, 9], dtype=np.uint64)
        run_rows = {"first": 2, "middle": 3, "last": 4}
        cursor = Cursor(key=5, row_id=run_rows[boundary])
        keep = make_cursor_filter(keys, [cursor])
        prim = np.arange(keys.shape[0], dtype=np.int64)
        mask = keep(prim, prim, np.zeros(keys.shape[0], dtype=np.int64))
        expected = (keys > 5) | ((keys == 5) & (prim > run_rows[boundary]))
        assert np.array_equal(mask, expected)

    @pytest.mark.parametrize("boundary", ["first", "middle", "last"])
    def test_keyset_page_slice_duplicate_boundary(self, boundary):
        keys = np.array([1, 3, 5, 5, 5, 7, 9], dtype=np.uint64)
        rows = np.arange(keys.shape[0], dtype=np.uint64)
        run_rows = {"first": 2, "middle": 3, "last": 4}
        lo, hi = keyset_page_slice(keys, rows, 0, 9, 5, run_rows[boundary])
        assert hi == keys.shape[0]
        assert lo == run_rows[boundary] + 1  # resumes just past the cursor row

    def test_next_cursor_token_only_on_full_pages(self):
        keys = np.array([4, 9, 9], dtype=np.uint64)
        assert next_cursor_token(keys, np.array([0, 2], dtype=np.int64), 2) == "9|2"
        assert next_cursor_token(keys, np.array([0], dtype=np.int64), 2) is None
        assert next_cursor_token(keys, np.zeros(0, dtype=np.int64), 2) is None


@pytest.mark.parametrize("scene_index", range(NUM_SCENES))
def test_pages_reassemble_the_ordered_scan(scene_index):
    """The property: page concatenation == one-shot ordered scan == golden."""
    rng = random.Random(DIFF_SEED * 777 + scene_index)
    multiplicity = MULTIPLICITIES[scene_index % len(MULTIPLICITIES)]
    keys, values = _scene(rng, multiplicity)
    index = RXIndex(RXConfig.paper_default())
    index.build(keys, values)
    max_key = int(keys.max())
    label = f"seed={DIFF_SEED} scene={scene_index} multiplicity={multiplicity}"

    for _ in range(3):
        lower = rng.randrange(0, max_key)
        upper = rng.randrange(lower, max_key + 2)
        golden = _golden_scan(keys, lower, upper)
        for page_size in PAGE_SIZES:
            pages, runs = _drain(index, lower, upper, page_size)
            got = np.concatenate(pages)
            case = f"{label} range=[{lower},{upper}] k={page_size}"
            # Bit-identical reassembly: no drops, no duplicates, in order.
            assert np.array_equal(got, golden), case
            # One-shot ordered scan of the whole range agrees.
            one_shot, _ = index.range_lookup(
                np.array([lower], dtype=np.uint64),
                np.array([upper], dtype=np.uint64),
                limit=max(golden.shape[0], 1),
                order="key",
            )
            assert np.array_equal(one_shot.row_ids, golden), case
            # Exact page boundaries: every page but the last is full.
            for i, page in enumerate(pages[:-1]):
                assert page.shape[0] == page_size, f"{case} page={i}"
            assert pages[-1].shape[0] <= page_size, case
            # Per-page counters stay sane.
            for i, run in enumerate(runs):
                page_case = f"{case} page={i}"
                assert int(run.hits_per_lookup[0]) == runs[i].row_ids.shape[0], page_case
                assert run.stats["trace_mode"] == "ordered_k", page_case
                assert run.stats["range_limit"] == page_size, page_case
                assert run.stats["resumed"] == (i > 0), page_case
                assert run.stats["total_prim_tests"] >= run.row_ids.shape[0], page_case
                expected_agg = int(values[run.row_ids.astype(np.int64)].sum())
                assert run.aggregate == expected_agg, page_case


class TestDuplicateRunBoundaryRXIndex:
    """Bugfix pin: a cursor landing on a duplicate-key run must not re-emit
    rows already paid out, wherever in the run it lands."""

    def _column(self):
        # Key 50 repeats 7 times; rowIDs within the run are scattered.
        keys = np.array(
            [10, 50, 20, 50, 30, 50, 40, 50, 60, 50, 70, 50, 80, 50, 90],
            dtype=np.uint64,
        )
        index = RXIndex(RXConfig.paper_default())
        index.build(keys)
        run_rows = np.nonzero(keys == 50)[0]  # ascending rowIDs of the run
        return keys, index, run_rows

    @pytest.mark.parametrize("position", [0, 3, 6])
    def test_resume_at_run_position(self, position):
        keys, index, run_rows = self._column()
        golden = _golden_scan(keys, 0, 90)
        cursor = encode_cursor(50, int(run_rows[position]))
        consumed = int(np.nonzero(golden == run_rows[position])[0][0]) + 1
        run, _ = index.range_lookup(
            np.array([0], dtype=np.uint64),
            np.array([90], dtype=np.uint64),
            limit=keys.shape[0],
            order="key",
            cursor=cursor,
        )
        assert np.array_equal(run.row_ids, golden[consumed:])

    def test_page_break_inside_run_never_reemits(self):
        keys, index, run_rows = self._column()
        golden = _golden_scan(keys, 0, 90)
        # k=2 forces several page breaks inside the 7-row duplicate run.
        pages, _ = _drain(index, 0, 90, 2)
        assert np.array_equal(np.concatenate(pages), golden)
        flat = np.concatenate(pages)
        assert np.unique(flat).shape[0] == flat.shape[0]  # no re-emits


class TestBaselineParity:
    """SA/B+/LSM paged probes must reproduce RX's pages bit for bit."""

    def test_duplicate_column_sa_lsm(self):
        rng = random.Random(DIFF_SEED * 31)
        keys, values = _scene(rng, 6)
        rx = RXIndex(RXConfig.paper_default())
        sa = SortedArrayIndex()
        lsm = GpuLsmTree()
        for index in (rx, sa, lsm):
            index.build(keys, values)
        lower, upper = 5, int(keys.max()) - 3
        for page_size in (1, 5, 64):
            rx_pages, _ = _drain(rx, lower, upper, page_size)
            for other in (sa, lsm):
                pages, runs = _drain(other, lower, upper, page_size)
                assert len(pages) == len(rx_pages), other.name
                for a, b in zip(pages, rx_pages):
                    assert np.array_equal(a, b), other.name
                assert all(r.stats["trace_mode"] == "ordered_k" for r in runs)

    def test_unique_column_btree(self):
        rng = np.random.default_rng(DIFF_SEED)
        keys = rng.permutation(np.arange(3000, dtype=np.uint64))[:1200]
        rx = RXIndex(RXConfig.paper_default())
        bt = GpuBPlusTree()
        for index in (rx, bt):
            index.build(keys)
        for page_size in (1, 7, 128):
            rx_pages, _ = _drain(rx, 100, 2800, page_size)
            bt_pages, _ = _drain(bt, 100, 2800, page_size)
            assert len(bt_pages) == len(rx_pages)
            for a, b in zip(bt_pages, rx_pages):
                assert np.array_equal(a, b)


class TestOrderedLookupValidation:
    def test_cursor_without_order_rejected(self):
        keys = np.arange(64, dtype=np.uint64)
        for index in (
            RXIndex(RXConfig.paper_default()),
            SortedArrayIndex(),
            GpuBPlusTree(),
            GpuLsmTree(),
        ):
            index.build(keys)
            with pytest.raises(ValueError, match="order='key'"):
                index.range_lookup(
                    np.array([0], dtype=np.uint64),
                    np.array([9], dtype=np.uint64),
                    limit=4,
                    cursor="3|3",
                )
            with pytest.raises(ValueError, match="order"):
                index.range_lookup(
                    np.array([0], dtype=np.uint64),
                    np.array([9], dtype=np.uint64),
                    limit=4,
                    order="value",
                )
            with pytest.raises(ValueError, match="limit|page size"):
                index.range_lookup(
                    np.array([0], dtype=np.uint64),
                    np.array([9], dtype=np.uint64),
                    limit=None,
                    order="key",
                )

    def test_multi_range_ordered_rejected(self):
        index = RXIndex(RXConfig.paper_default())
        index.build(np.arange(64, dtype=np.uint64))
        with pytest.raises(ValueError, match="one range"):
            index.range_lookup(
                np.array([0, 10], dtype=np.uint64),
                np.array([9, 19], dtype=np.uint64),
                limit=4,
                order="key",
            )
