"""Tests for the OptiX-shaped front-end: accel build/compact/update, launches."""

import numpy as np
import pytest

from repro.rtx.build_input import BuildFlags, build_input_for_points
from repro.rtx.geometry import RayBatch
from repro.rtx.pipeline import (
    DeviceContext,
    Pipeline,
    accel_build,
    accel_compact,
    accel_update,
)


def _line_input(n: int, primitive: str = "triangle"):
    points = np.column_stack([np.arange(n), np.zeros(n), np.zeros(n)])
    return build_input_for_points(primitive, points)


def _perpendicular_rays(xs):
    xs = np.asarray(xs, dtype=float)
    return RayBatch(
        origins=np.column_stack([xs, np.zeros_like(xs), np.full_like(xs, -0.5)]),
        directions=np.tile([0.0, 0.0, 1.0], (xs.shape[0], 1)),
        tmin=0.0,
        tmax=1.0,
    )


class TestAccelBuild:
    def test_build_returns_accel_with_bvh(self):
        ctx = DeviceContext()
        accel = accel_build(ctx, _line_input(32))
        assert accel.num_primitives == 32
        assert accel.primitive_kind == "triangle"
        assert accel.bvh.node_count >= 1

    def test_build_accounts_memory(self):
        ctx = DeviceContext()
        accel_build(ctx, _line_input(32))
        assert ctx.memory.current_bytes > 0
        assert ctx.memory.peak_bytes > ctx.memory.current_bytes  # temp freed

    def test_flags_propagate_to_options(self):
        ctx = DeviceContext()
        accel = accel_build(ctx, _line_input(8), flags=BuildFlags.ALLOW_UPDATE)
        assert accel.bvh.options.allow_update is True

    def test_build_metrics_populated(self):
        ctx = DeviceContext()
        accel = accel_build(ctx, _line_input(16))
        assert accel.build_metrics.num_primitives == 16
        assert accel.build_metrics.bytes_written > 0

    def test_size_bytes_reflects_compaction_state(self):
        ctx = DeviceContext()
        accel = accel_build(ctx, _line_input(16))
        before = accel.size_bytes
        accel_compact(ctx, accel)
        assert accel.size_bytes < before


class TestAccelCompact:
    def test_compaction_reduces_memory(self):
        ctx = DeviceContext()
        accel = accel_build(ctx, _line_input(64))
        used_before = ctx.memory.current_bytes
        result = accel_compact(ctx, accel)
        assert result.saved_bytes > 0
        assert ctx.memory.current_bytes < used_before

    def test_compaction_rejected_with_update_flag(self):
        ctx = DeviceContext()
        accel = accel_build(
            ctx, _line_input(16), flags=BuildFlags.ALLOW_UPDATE | BuildFlags.ALLOW_COMPACTION
        )
        with pytest.raises(ValueError):
            accel_compact(ctx, accel)

    def test_compaction_preserves_hits(self):
        ctx = DeviceContext()
        accel = accel_build(ctx, _line_input(32))
        pipe = Pipeline(ctx, accel)
        before = sorted(pipe.launch(_perpendicular_rays([5, 9])).hits.prim_indices.tolist())
        accel_compact(ctx, accel)
        pipe.refresh()
        after = sorted(pipe.launch(_perpendicular_rays([5, 9])).hits.prim_indices.tolist())
        assert before == after == [5, 9]


class TestAccelUpdate:
    def test_update_requires_flag(self):
        ctx = DeviceContext()
        accel = accel_build(ctx, _line_input(16))
        with pytest.raises(ValueError):
            accel_update(ctx, accel, _line_input(16))

    def test_update_moves_primitives(self):
        ctx = DeviceContext()
        accel = accel_build(ctx, _line_input(16), flags=BuildFlags.ALLOW_UPDATE)
        # Move every primitive one unit to the right and refit.
        points = np.column_stack([np.arange(16) + 1, np.zeros(16), np.zeros(16)])
        new_input = build_input_for_points("triangle", points)
        result = accel_update(ctx, accel, new_input)
        assert result.nodes_updated == accel.bvh.node_count
        pipe = Pipeline(ctx, accel)
        hits = pipe.launch(_perpendicular_rays([1.0])).hits
        assert hits.prim_indices.tolist() == [0]

    def test_update_rejects_changed_primitive_count(self):
        ctx = DeviceContext()
        accel = accel_build(ctx, _line_input(16), flags=BuildFlags.ALLOW_UPDATE)
        with pytest.raises(ValueError):
            accel_update(ctx, accel, _line_input(17))

    def test_update_grows_bounds_for_big_moves(self):
        ctx = DeviceContext()
        accel = accel_build(ctx, _line_input(64), flags=BuildFlags.ALLOW_UPDATE)
        rng = np.random.default_rng(1)
        shuffled = rng.permutation(64)
        points = np.column_stack([shuffled, np.zeros(64), np.zeros(64)])
        result = accel_update(ctx, accel, build_input_for_points("triangle", points))
        assert result.surface_area_growth > 1.5


class TestPipeline:
    def test_launch_with_explicit_rays(self):
        ctx = DeviceContext()
        accel = accel_build(ctx, _line_input(20))
        pipe = Pipeline(ctx, accel)
        result = pipe.launch(_perpendicular_rays([3, 400]))
        assert result.num_rays == 2
        assert result.hits_per_lookup().tolist() == [1, 0]

    def test_launch_with_raygen_program(self):
        ctx = DeviceContext()
        accel = accel_build(ctx, _line_input(20))

        def raygen(xs):
            return _perpendicular_rays(xs)

        pipe = Pipeline(ctx, accel, raygen=raygen)
        result = pipe.launch(xs=[7, 8])
        assert sorted(result.hits.prim_indices.tolist()) == [7, 8]

    def test_launch_without_rays_or_raygen_fails(self):
        ctx = DeviceContext()
        accel = accel_build(ctx, _line_input(4))
        with pytest.raises(ValueError):
            Pipeline(ctx, accel).launch()

    def test_any_hit_program_filters(self):
        ctx = DeviceContext()
        accel = accel_build(ctx, _line_input(10))
        pipe = Pipeline(ctx, accel, any_hit=lambda r, p, l: p >= 5)
        rays = RayBatch(origins=[[-0.5, 0, 0]], directions=[[1, 0, 0]], tmin=[0.0], tmax=[11.0])
        result = pipe.launch(rays)
        assert sorted(result.hits.prim_indices.tolist()) == [5, 6, 7, 8, 9]

    def test_counters_attached_to_launch(self):
        ctx = DeviceContext()
        accel = accel_build(ctx, _line_input(16))
        result = Pipeline(ctx, accel).launch(_perpendicular_rays([1]))
        assert result.counters.node_visits > 0
        assert result.counters.rays == 1
