"""Tests for compaction and refitting of acceleration structures."""

import numpy as np
import pytest

from repro.rtx.bvh import BvhBuildOptions, build_bvh
from repro.rtx.compaction import compact_accel
from repro.rtx.geometry import TriangleBuffer, make_triangle_vertices
from repro.rtx.refit import refit_accel


def _buffer(points) -> TriangleBuffer:
    return TriangleBuffer(make_triangle_vertices(np.asarray(points, dtype=np.float64)))


def _line_buffer(n: int) -> TriangleBuffer:
    return _buffer(np.column_stack([np.arange(n), np.zeros(n), np.zeros(n)]))


class TestCompaction:
    def test_compaction_halves_structure(self):
        bvh = build_bvh(_line_buffer(64))
        result = compact_accel(bvh)
        assert result.reduction_fraction == pytest.approx(0.5)
        assert result.bvh.compacted

    def test_compaction_idempotent(self):
        bvh = build_bvh(_line_buffer(16))
        once = compact_accel(bvh)
        twice = compact_accel(once.bvh)
        assert twice.bytes_copied == 0
        assert twice.saved_bytes == 0

    def test_compaction_refused_for_updatable_accel(self):
        bvh = build_bvh(_line_buffer(16), BvhBuildOptions(allow_update=True))
        with pytest.raises(ValueError):
            compact_accel(bvh)

    def test_compaction_does_not_change_topology(self):
        bvh = build_bvh(_line_buffer(32))
        result = compact_accel(bvh)
        assert result.bvh.node_count == bvh.node_count
        assert np.array_equal(result.bvh.prim_indices, bvh.prim_indices)


class TestRefit:
    def test_refit_requires_update_flag(self):
        bvh = build_bvh(_line_buffer(8))
        with pytest.raises(ValueError):
            refit_accel(bvh, _line_buffer(8))

    def test_refit_rejects_different_count(self):
        bvh = build_bvh(_line_buffer(8), BvhBuildOptions(allow_update=True))
        with pytest.raises(ValueError):
            refit_accel(bvh, _line_buffer(9))

    def test_refit_updates_bounds_to_new_positions(self):
        bvh = build_bvh(_line_buffer(16), BvhBuildOptions(allow_update=True))
        shifted = _buffer(np.column_stack([np.arange(16) + 100, np.zeros(16), np.zeros(16)]))
        refit_accel(bvh, shifted)
        assert bvh.node_mins[0, 0] >= 99.0
        assert bvh.node_maxs[0, 0] <= 116.0

    def test_refit_with_identical_positions_keeps_area(self):
        bvh = build_bvh(_line_buffer(32), BvhBuildOptions(allow_update=True))
        result = refit_accel(bvh, _line_buffer(32))
        assert result.surface_area_growth == pytest.approx(1.0, abs=1e-5)

    def test_refit_after_shuffle_inflates_bounds(self):
        # The Table 4 mechanism: relocating primitives far from their original
        # position blows the refitted bounding volumes up.
        n = 128
        bvh = build_bvh(_line_buffer(n), BvhBuildOptions(allow_update=True))
        rng = np.random.default_rng(0)
        shuffled = _buffer(np.column_stack([rng.permutation(n), np.zeros(n), np.zeros(n)]))
        result = refit_accel(bvh, shuffled)
        assert result.surface_area_growth > 2.0

    def test_refit_increments_generation(self):
        bvh = build_bvh(_line_buffer(8), BvhBuildOptions(allow_update=True))
        refit_accel(bvh, _line_buffer(8))
        refit_accel(bvh, _line_buffer(8))
        assert bvh.refit_generation == 2

    def test_refit_reports_bytes(self):
        bvh = build_bvh(_line_buffer(8), BvhBuildOptions(allow_update=True))
        result = refit_accel(bvh, _line_buffer(8))
        assert result.bytes_read > 0
        assert result.bytes_written > 0
