"""Tests for the Naive / Extended / 3D key codecs."""

import numpy as np
import pytest

from repro.core.config import KeyDecomposition, KeyMode, PointRayMode, RangeRayMode
from repro.core.keycodec import ExtendedCodec, NaiveCodec, ThreeDCodec, make_codec


class TestFactory:
    def test_make_codec_each_mode(self):
        assert isinstance(make_codec(KeyMode.NAIVE), NaiveCodec)
        assert isinstance(make_codec(KeyMode.EXTENDED), ExtendedCodec)
        assert isinstance(make_codec(KeyMode.THREE_D), ThreeDCodec)

    def test_three_d_accepts_decomposition(self):
        codec = make_codec(KeyMode.THREE_D, KeyDecomposition(16, 10, 0))
        assert codec.decomposition.x_bits == 16


class TestNaiveCodec:
    def test_max_key_is_2_23(self):
        assert NaiveCodec().max_key() == 2**23 - 1

    def test_rejects_keys_beyond_limit(self):
        with pytest.raises(ValueError):
            NaiveCodec().validate_keys(np.array([2**23], dtype=np.uint64))

    def test_encode_uses_key_as_x(self):
        points, x_he = NaiveCodec().encode_points(np.array([0, 5, 100], dtype=np.uint64))
        assert points[:, 0].tolist() == [0.0, 5.0, 100.0]
        assert np.all(points[:, 1:] == 0)
        assert x_he is None

    def test_point_rays_all_modes(self):
        codec = NaiveCodec()
        queries = np.array([3, 7], dtype=np.uint64)
        for mode in PointRayMode:
            rays = codec.point_ray_batch(queries, mode)
            assert len(rays) == 2

    def test_range_rays_cover_requested_span(self):
        codec = NaiveCodec()
        rays = codec.range_ray_batch(
            np.array([10], dtype=np.uint64),
            np.array([20], dtype=np.uint64),
            RangeRayMode.PARALLEL_FROM_OFFSET,
        )
        assert len(rays) == 1
        assert rays.origins[0, 0] == pytest.approx(9.5)
        assert rays.tmax[0] == pytest.approx(11.0)


class TestExtendedCodec:
    def test_max_key_is_2_29(self):
        assert ExtendedCodec().max_key() == 2**29 - 1

    def test_coordinates_are_strictly_increasing(self):
        codec = ExtendedCodec()
        keys = np.arange(0, 10_000, 7, dtype=np.uint64)
        points, _ = codec.encode_points(keys)
        assert np.all(np.diff(points[:, 0].astype(np.float64)) > 0)

    def test_gap_value_lies_between_adjacent_keys(self):
        codec = ExtendedCodec()
        keys = np.array([1000], dtype=np.uint64)
        coord = codec.encode_points(keys)[0][0, 0]
        above = codec.gap_above(keys)[0]
        next_coord = codec.encode_points(keys + np.uint64(1))[0][0, 0]
        assert coord < above < next_coord

    def test_offset_ray_origin_rejected(self):
        codec = ExtendedCodec()
        with pytest.raises(ValueError):
            codec.point_ray_batch(np.array([1], dtype=np.uint64), PointRayMode.PARALLEL_FROM_OFFSET)
        with pytest.raises(ValueError):
            codec.range_ray_batch(
                np.array([1], dtype=np.uint64),
                np.array([2], dtype=np.uint64),
                RangeRayMode.PARALLEL_FROM_OFFSET,
            )

    def test_x_half_extent_is_one_ulp(self):
        codec = ExtendedCodec()
        keys = np.array([123456], dtype=np.uint64)
        points, x_he = codec.encode_points(keys)
        coord = np.float32(points[0, 0])
        ulp = np.nextafter(coord, np.float32(np.inf)) - coord
        assert x_he[0] == pytest.approx(float(ulp))


class TestThreeDCodec:
    def test_default_supports_64_bit(self):
        assert ThreeDCodec().max_key() == (1 << 64) - 1

    def test_decompose_recompose_round_trip(self):
        codec = ThreeDCodec()
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 1 << 63, size=200, dtype=np.uint64)
        x, y, z = codec.decompose(keys)
        assert np.array_equal(codec.recompose(x, y, z), keys)

    def test_decompose_respects_bit_budget(self):
        codec = ThreeDCodec(KeyDecomposition(16, 10, 0))
        keys = np.array([(1 << 26) - 1], dtype=np.uint64)
        x, y, z = codec.decompose(keys)
        assert x[0] == (1 << 16) - 1
        assert y[0] == (1 << 10) - 1
        assert z[0] == 0

    def test_matches_naive_for_small_keys(self):
        # The paper: 3D Mode is identical to Naive Mode below 2^23.
        keys = np.array([0, 17, 2**22], dtype=np.uint64)
        naive_points, _ = NaiveCodec().encode_points(keys)
        three_d_points, _ = ThreeDCodec().encode_points(keys)
        assert np.array_equal(naive_points, three_d_points)

    def test_point_ray_anchored_in_three_dimensions(self):
        codec = ThreeDCodec(KeyDecomposition(4, 4, 4))
        key = np.array([0b0110_1011_0011], dtype=np.uint64)
        rays = codec.point_ray_batch(key, PointRayMode.PERPENDICULAR)
        assert rays.origins[0, 0] == pytest.approx(0b0011)
        assert rays.origins[0, 1] == pytest.approx(0b1011)
        assert rays.origins[0, 2] == pytest.approx(0b0110 - 0.5)

    def test_single_row_range_is_one_ray(self):
        codec = ThreeDCodec(KeyDecomposition(8, 8, 0))
        rays = codec.range_ray_batch(
            np.array([10], dtype=np.uint64),
            np.array([200], dtype=np.uint64),
            RangeRayMode.PARALLEL_FROM_OFFSET,
        )
        assert len(rays) == 1

    def test_multi_row_range_fans_out(self):
        # Figure 4: a range crossing row boundaries needs one ray per row.
        codec = ThreeDCodec(KeyDecomposition(2, 8, 0))
        rays = codec.range_ray_batch(
            np.array([15], dtype=np.uint64),
            np.array([21], dtype=np.uint64),
            RangeRayMode.PARALLEL_FROM_OFFSET,
        )
        assert len(rays) == 3
        assert rays.lookup_ids.tolist() == [0, 0, 0]

    def test_range_fan_out_cap_enforced(self):
        codec = ThreeDCodec(KeyDecomposition(2, 8, 0))
        with pytest.raises(ValueError):
            codec.range_ray_batch(
                np.array([0], dtype=np.uint64),
                np.array([1000], dtype=np.uint64),
                RangeRayMode.PARALLEL_FROM_OFFSET,
                max_rays_per_range=4,
            )

    def test_range_rejects_inverted_bounds(self):
        codec = ThreeDCodec()
        with pytest.raises(ValueError):
            codec.range_ray_batch(
                np.array([5], dtype=np.uint64),
                np.array([4], dtype=np.uint64),
                RangeRayMode.PARALLEL_FROM_OFFSET,
            )
