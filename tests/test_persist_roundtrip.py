"""Save/load round-trip fidelity of the crash-safe epoch store.

Two layers of pinning:

* the CRC32C kernel — the slicing-by-64 vectorised implementation must
  match the per-byte reference (and the published check value) bit for
  bit, or every "verified" load is meaningless;
* the index itself — a randomised differential replay builds RX indexes
  across primitive types, sharding configs and both load paths
  (memory-mapped and heap), saves and reloads them, and requires every
  trace mode's hits *and counters* to be bit-identical to the in-memory
  index that was saved.

Reseed with ``DIFF_SEED`` (env var) to explore a different case set.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.config import RXConfig, UpdatePolicy
from repro.core.rx_index import RXIndex
from repro.persist import (
    Crc32c,
    SnapshotTorn,
    crc32c,
    crc32c_reference,
    load_snapshot,
    save_snapshot,
)
from repro.rtx.bvh import bvh_arrays_diff

DIFF_SEED = int(os.environ.get("DIFF_SEED", "20260727"))

PRIMITIVES = ["triangle", "sphere", "aabb"]


class TestCrc32c:
    def test_check_value(self):
        # The CRC32C (Castagnoli) check value from RFC 3720 / the original
        # reflected-polynomial specification.
        assert crc32c(b"123456789") == 0xE3069283

    def test_empty(self):
        assert crc32c(b"") == 0

    @pytest.mark.parametrize(
        "size", [1, 7, 63, 64, 65, 255, 1024, 4096 + 17, 1 << 16]
    )
    def test_matches_reference(self, size):
        rng = np.random.default_rng([size, DIFF_SEED])
        data = rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
        assert crc32c(data) == crc32c_reference(data)

    def test_streaming_matches_whole(self):
        rng = np.random.default_rng(DIFF_SEED)
        data = rng.integers(0, 256, size=100_003, dtype=np.uint8).tobytes()
        acc = Crc32c()
        for lo in range(0, len(data), 9973):
            acc.update(data[lo : lo + 9973])
        assert acc.digest() == crc32c(data)

    def test_arrays_hash_like_their_bytes(self):
        rng = np.random.default_rng(DIFF_SEED)
        arr = rng.integers(0, 1 << 62, size=513, dtype=np.int64)
        assert crc32c(arr) == crc32c(arr.tobytes())


class TestStoreBasics:
    def test_missing_store_is_torn(self, tmp_path):
        with pytest.raises(SnapshotTorn, match="no committed snapshot"):
            load_snapshot(tmp_path / "nowhere")

    def test_segments_survive_verbatim(self, tmp_path):
        rng = np.random.default_rng(DIFF_SEED)
        arrays = {
            "a": rng.standard_normal((7, 3)).astype(np.float32),
            "b": rng.integers(0, 1 << 31, size=11, dtype=np.int64),
        }
        save_snapshot(
            tmp_path,
            epoch=0,
            segments={"seg": (arrays, {"tag": 42})},
            index_meta={"kind": "raw"},
        )
        for mmap in (True, False):
            snap = load_snapshot(tmp_path, mmap=mmap)
            assert snap.meta("seg") == {"tag": 42}
            for name, expected in arrays.items():
                got = snap.arrays("seg")[name]
                assert got.dtype == expected.dtype
                assert np.array_equal(got, expected)

    def test_resave_reuses_every_clean_segment(self, tmp_path):
        arrays = {"x": np.arange(16, dtype=np.uint64)}
        save_snapshot(
            tmp_path, epoch=0, segments={"seg": (arrays, None)}, index_meta={}
        )
        again = save_snapshot(
            tmp_path, epoch=1, segments={"seg": (arrays, None)}, index_meta={}
        )
        assert again.segments_reused == 1
        assert again.segments_rewritten == 0
        assert again.manifest_version == 2


def _random_case(rng, case_index):
    """One randomised index configuration + workload."""
    primitive = PRIMITIVES[case_index % len(PRIMITIVES)]
    shard_bits = [0, 3][(case_index // len(PRIMITIVES)) % 2]
    config = RXConfig.paper_default()
    config.primitive = type(config.primitive)(primitive)
    config.compaction = False
    config.shard_bits = shard_bits
    if shard_bits:
        config.allow_updates = True
        config.update_policy = UpdatePolicy.DELTA_SHARD
    num_keys = int(rng.integers(256, 2048))
    keys = rng.integers(0, 1 << 18, size=num_keys, dtype=np.uint64)
    if rng.random() < 0.5:
        # Inject duplicate runs so ordered paging crosses them.
        keys[: num_keys // 4] = keys[num_keys // 2 : num_keys // 2 + num_keys // 4]
    return config, keys


def _trace_all_modes(index, queries, lowers, uppers, limit):
    """Hits + counters of every trace mode, as comparable structures."""
    out = {}
    pipeline = index.pipeline
    point_rays = index.codec.point_ray_batch(queries, index.config.point_ray_mode)
    range_rays = index.codec.range_ray_batch(
        lowers, uppers, index.config.range_ray_mode,
        max_rays_per_range=index.config.max_rays_per_range,
    )
    for mode, rays, kwargs in [
        ("all", point_rays, {}),
        ("any_hit", point_rays, {}),
        ("first_k", range_rays, {"limit": limit}),
        ("ordered_k", range_rays, {"limit": limit}),
    ]:
        launch = pipeline.launch(rays, mode=mode, **kwargs)
        out[mode] = (
            launch.hits.ray_indices.copy(),
            launch.hits.prim_indices.copy(),
            launch.hits.lookup_ids.copy(),
            launch.counters.as_dict(),
        )
    return out


def _assert_identical(a, b, label):
    assert a.keys() == b.keys()
    for mode in a:
        ra, pa, la, ca = a[mode]
        rb, pb, lb, cb = b[mode]
        assert np.array_equal(ra, rb), f"{label}/{mode}: ray indices differ"
        assert np.array_equal(pa, pb), f"{label}/{mode}: prim indices differ"
        assert np.array_equal(la, lb), f"{label}/{mode}: lookup ids differ"
        assert ca == cb, f"{label}/{mode}: counters differ"


class TestDifferentialRoundtrip:
    @pytest.mark.parametrize("case_index", range(12))
    def test_loaded_index_traces_bit_identically(self, tmp_path, case_index):
        rng = np.random.default_rng([DIFF_SEED, case_index])
        config, keys = _random_case(rng, case_index)
        index = RXIndex(config)
        index.build(keys)

        queries = rng.choice(keys, size=64)
        lowers = rng.integers(0, 1 << 17, size=16, dtype=np.uint64)
        uppers = lowers + rng.integers(1, 1 << 14, size=16, dtype=np.uint64)
        limit = int(rng.integers(2, 17))
        golden = _trace_all_modes(index, queries, lowers, uppers, limit)

        index.save(tmp_path)
        mmap = bool(case_index % 2)
        loaded = RXIndex.load(tmp_path, mmap=mmap)

        assert bvh_arrays_diff(index.accel.bvh, loaded.accel.bvh) is None
        assert np.array_equal(index.keys, loaded.keys)
        assert np.array_equal(index.values, loaded.values)
        replay = _trace_all_modes(loaded, queries, lowers, uppers, limit)
        _assert_identical(golden, replay, f"case {case_index} (mmap={mmap})")

    def test_ordered_paging_resumes_identically_after_load(self, tmp_path):
        rng = np.random.default_rng(DIFF_SEED)
        keys = rng.integers(0, 1 << 16, size=1024, dtype=np.uint64)
        keys[:128] = keys[128:256]  # duplicate runs across page boundaries
        index = RXIndex()
        index.build(keys)
        index.save(tmp_path)
        loaded = RXIndex.load(tmp_path)

        lo = np.array([0], dtype=np.uint64)
        hi = np.array([1 << 15], dtype=np.uint64)

        def pages(idx):
            cursor, out = None, []
            while True:
                run, cursor = idx.range_lookup(
                    lo, hi, limit=7, order="key", cursor=cursor
                )
                out.append(run.row_ids.copy())
                if cursor is None:
                    return out

        for a, b in zip(pages(index), pages(loaded), strict=True):
            assert np.array_equal(a, b)

    def test_compacted_snapshot_round_trips(self, tmp_path):
        rng = np.random.default_rng(DIFF_SEED)
        keys = rng.integers(0, 1 << 16, size=512, dtype=np.uint64)
        config = RXConfig.paper_default()
        assert config.compaction
        index = RXIndex(config)
        index.build(keys)
        index.save(tmp_path)
        loaded = RXIndex.load(tmp_path)
        assert loaded.accel.compacted
        assert bvh_arrays_diff(index.accel.bvh, loaded.accel.bvh) is None

    def test_loaded_forest_stays_delta_updatable(self, tmp_path):
        rng = np.random.default_rng(DIFF_SEED)
        keys = rng.integers(0, 1 << 18, size=2048, dtype=np.uint64)
        config = RXConfig.paper_default()
        config.compaction = False
        config.allow_updates = True
        config.shard_bits = 4
        config.update_policy = UpdatePolicy.DELTA_SHARD
        index = RXIndex(config)
        index.build(keys)
        index.save(tmp_path)
        loaded = RXIndex.load(tmp_path)

        new_keys = keys.copy()
        new_keys[7] += 3
        index.update(new_keys)
        loaded.update(new_keys)
        assert bvh_arrays_diff(index.accel.bvh, loaded.accel.bvh) is None

    def test_stats_persist_block(self, tmp_path):
        rng = np.random.default_rng(DIFF_SEED)
        keys = rng.integers(0, 1 << 16, size=256, dtype=np.uint64)
        index = RXIndex()
        index.build(keys)
        assert index.stats()["persist"]["saves"] == 0
        save_info = index.save(tmp_path)
        block = index.stats()["persist"]
        assert block["saves"] == 1
        assert block["bytes_on_disk"] == save_info["bytes_on_disk"] > 0
        assert block["segments_rewritten"] == save_info["segments_rewritten"]

        loaded = RXIndex.load(tmp_path)
        block = loaded.stats()["persist"]
        assert block["loads"] == 1
        assert block["last_load_seconds"] > 0
        assert block["checksum_verify_seconds"] > 0
        assert block["segments_total"] == save_info["segments_total"]
