"""Tests for the NNLS traversal/intersection decomposition (Section 4.9)."""

import numpy as np
import pytest

from repro.analysis.nnls import decompose_range_lookup_cost


class TestDecomposition:
    def test_recovers_exact_linear_model(self):
        entries = np.array([1, 4, 16, 64, 256, 1024], dtype=float)
        times = 100.0 + 35.0 * entries
        result = decompose_range_lookup_cost(entries, times)
        assert result.traversal_time_ms == pytest.approx(100.0, rel=1e-6)
        assert result.intersect_time_ms == pytest.approx(35.0, rel=1e-6)
        assert result.residual == pytest.approx(0.0, abs=1e-6)

    def test_non_negativity_enforced(self):
        entries = np.array([1.0, 2.0, 4.0])
        times = np.array([10.0, 8.0, 6.0])  # decreasing: a negative slope fit
        result = decompose_range_lookup_cost(entries, times)
        assert result.intersect_time_ms >= 0.0
        assert result.traversal_time_ms >= 0.0

    def test_traversal_dominates_flag(self):
        entries = np.array([1.0, 2.0, 4.0, 8.0])
        result = decompose_range_lookup_cost(entries, 50.0 + 1.0 * entries)
        assert result.traversal_dominates

    def test_noise_tolerated(self):
        rng = np.random.default_rng(0)
        entries = np.array([1, 4, 16, 64, 256], dtype=float)
        times = 80.0 + 20.0 * entries + rng.normal(0, 1.0, size=entries.shape)
        result = decompose_range_lookup_cost(entries, times)
        assert result.traversal_time_ms == pytest.approx(80.0, rel=0.2)
        assert result.intersect_time_ms == pytest.approx(20.0, rel=0.05)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            decompose_range_lookup_cost(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            decompose_range_lookup_cost(np.array([1.0, 2.0]), np.array([1.0]))
