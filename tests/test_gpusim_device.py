"""Tests for the GPU device presets."""

import pytest

from repro.gpusim.device import (
    DEVICE_PRESETS,
    RTX_2080TI,
    RTX_3090,
    RTX_4090,
    RTX_A6000,
    get_device,
)


class TestPresets:
    def test_four_presets_available(self):
        assert set(DEVICE_PRESETS) == {"4090", "3090", "a6000", "2080ti"}

    def test_table8_attributes(self):
        # Table 8 of the paper.
        assert RTX_4090.rt_core_count == 128 and RTX_4090.rt_core_generation == 3
        assert RTX_A6000.rt_core_count == 84 and RTX_A6000.rt_core_generation == 2
        assert RTX_3090.rt_core_count == 82 and RTX_3090.rt_core_generation == 2
        assert RTX_2080TI.rt_core_count == 68 and RTX_2080TI.rt_core_generation == 1

    def test_vram_sizes(self):
        assert RTX_4090.vram_bytes == 24 * 1024**3
        assert RTX_A6000.vram_bytes == 48 * 1024**3
        assert RTX_2080TI.vram_bytes == 11 * 1024**3

    def test_newer_generations_are_faster(self):
        assert RTX_4090.rt_tests_per_second > RTX_3090.rt_tests_per_second > RTX_2080TI.rt_tests_per_second
        assert RTX_4090.dram_bandwidth_gbs > RTX_2080TI.dram_bandwidth_gbs
        assert RTX_4090.instructions_per_second > RTX_2080TI.instructions_per_second

    def test_rt_throughput_doubles_per_generation(self):
        # Per-core throughput doubles with each generation (Section 4.10).
        per_core_ada = RTX_4090.rt_tests_per_second / (RTX_4090.rt_core_count * RTX_4090.clock_ghz)
        per_core_turing = RTX_2080TI.rt_tests_per_second / (
            RTX_2080TI.rt_core_count * RTX_2080TI.clock_ghz
        )
        assert per_core_ada / per_core_turing == pytest.approx(4.0)

    def test_threads_in_flight(self):
        assert RTX_4090.threads_in_flight == 128 * 16 * 32


class TestLookup:
    def test_get_device_by_alias(self):
        assert get_device("RTX 4090") is RTX_4090
        assert get_device("a6000") is RTX_A6000
        assert get_device("2080TI") is RTX_2080TI

    def test_unknown_device_rejected(self):
        with pytest.raises(KeyError):
            get_device("H100")
